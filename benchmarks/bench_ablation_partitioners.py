"""Ablation: irregular partitioner choice vs executor communication.

DESIGN.md's irregular substrate uses recursive coordinate bisection by
default.  This ablation quantifies why: the same unstructured edge sweep
runs under RCB, BFS graph-growing, block, and random partitions of the
node array, and the executor's communication volume (and logical time)
tracks the partition's edge cut.  The inspector cost, by contrast, is
partition-insensitive — it is dereference-bound (Table 1's story).
"""

import functools

import numpy as np

from common import check_shape, print_header
from repro.apps.meshes import delaunay_mesh
from repro.chaos import ChaosArray, EdgeSweep, bfs_owners, random_owners, rcb_owners
from repro.chaos.partition import block_owners
from repro.vmachine import VirtualMachine

NPOINTS = 8192
MESH = delaunay_mesh(NPOINTS, seed=3)
P = 8


def _owners(kind: str, nprocs: int) -> np.ndarray:
    if kind == "rcb":
        return rcb_owners(MESH.coords, nprocs)
    if kind == "bfs":
        return bfs_owners(NPOINTS, MESH.ia, MESH.ib, nprocs)
    if kind == "block":
        return block_owners(NPOINTS, nprocs)
    return random_owners(NPOINTS, nprocs, seed=1)


@functools.cache
def run_one(kind: str):
    owners = _owners(kind, P)
    cut = int(np.sum(owners[MESH.ia] != owners[MESH.ib]))

    def spmd(comm):
        proc = comm.process
        x = ChaosArray.zeros(comm, owners)
        y = ChaosArray.like(x)
        x.local[:] = 1.0
        # Computation follows the data: each edge is processed by the
        # owner of its first endpoint (the standard Chaos arrangement),
        # so the gather halo is exactly the partition's edge cut.
        mine = np.flatnonzero(owners[MESH.ia] == comm.rank)
        with proc.timer.phase("inspector"):
            sweep = EdgeSweep(x, MESH.ia[mine], MESH.ib[mine])
        comm.barrier()
        b0 = proc.stats["bytes_sent"]
        with proc.timer.phase("executor"):
            sweep.execute(x, y)
        return proc.stats["bytes_sent"] - b0

    result = VirtualMachine(P).run(spmd)
    t = result.merged_timing
    bytes_moved = int(sum(result.values))
    return t.get_ms("inspector"), t.get_ms("executor"), bytes_moved, cut


def run_ablation():
    print_header(
        f"Ablation: partitioner choice ({NPOINTS}-point mesh, "
        f"{MESH.nedges} edges, P={P})"
    )
    print(f"{'partition':<10}{'inspector ms':>14}{'executor ms':>13}"
          f"{'exec bytes':>12}{'edge cut':>10}")
    rows = {}
    for kind in ("rcb", "bfs", "block", "random"):
        insp, execu, nbytes, cut = run_one(kind)
        rows[kind] = (insp, execu, nbytes, cut)
        print(f"{kind:<10}{insp:>14.1f}{execu:>13.2f}{nbytes:>12,}{cut:>10,}")

    check_shape(
        rows["rcb"][3] < 0.3 * rows["random"][3],
        "RCB's edge cut is a small fraction of random's",
    )
    check_shape(
        rows["rcb"][2] < rows["random"][2],
        "executor communication volume tracks the edge cut",
    )
    check_shape(
        rows["rcb"][1] < rows["random"][1],
        "executor time follows (locality pays every iteration)",
    )
    check_shape(
        rows["rcb"][0] < rows["random"][0],
        "the one-time inspector also benefits: dereferences happen per "
        "*unique* reference, and locality shrinks each rank's halo",
    )
    check_shape(
        rows["rcb"][0] > 5 * rows["rcb"][1],
        "even so, the inspector dwarfs one executor iteration "
        "(the amortization that makes inspector/executor worthwhile)",
    )
    check_shape(
        rows["bfs"][3] < 0.4 * rows["random"][3],
        "graph-growing (BFS) also achieves a low cut",
    )
    return rows


def test_ablation_partitioners(benchmark):
    benchmark.pedantic(run_ablation, rounds=1, iterations=1)


if __name__ == "__main__":
    run_ablation()
