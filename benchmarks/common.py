"""Shared machinery for the reproduction benchmarks.

Every module in this directory regenerates one table or figure of the
paper's evaluation (section 5).  Experiments run at the paper's full
scale on the virtual machine; the numbers printed are logical-clock
milliseconds next to the paper's measured 1996 values.  Expectation:
*shape* agreement (who wins, scaling, crossovers), not absolute equality.

Run with output visible::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import functools
import json
from pathlib import Path

from repro.apps.coupled import (
    CoupledTimings,
    run_coupled_single_program,
    run_coupled_two_programs,
)
from repro.apps.matvec_cs import MatvecTimings, run_client_server_matvec
from repro.apps.meshes import delaunay_mesh, full_remap_mapping

# ---------------------------------------------------------------------------
# Paper workload scales (section 5.1): 256x256 regular mesh, 65536-point
# irregular mesh, whole-mesh remap.
# ---------------------------------------------------------------------------

MESH_SHAPE = (256, 256)
NPOINTS = MESH_SHAPE[0] * MESH_SHAPE[1]
PROC_COUNTS = (2, 4, 8, 16)


@functools.cache
def paper_mesh():
    """The 65536-point unstructured mesh (Delaunay substitute)."""
    return delaunay_mesh(NPOINTS, seed=1997)


@functools.cache
def paper_mapping():
    """Whole-mesh regular<->irregular correspondence (permuted)."""
    return full_remap_mapping(MESH_SHAPE, NPOINTS, seed=7)


@functools.cache
def coupled_single(nprocs: int, remap: str) -> CoupledTimings:
    """Cached section-5.1 run (Tables 1 and 2 share these)."""
    return run_coupled_single_program(
        nprocs, MESH_SHAPE, paper_mesh(), paper_mapping(),
        timesteps=1, remap=remap,
    )


@functools.cache
def coupled_two(preg: int, pirreg: int) -> CoupledTimings:
    """Cached section-5.2 run (Tables 3 and 4 share these)."""
    return run_coupled_two_programs(
        preg, pirreg, MESH_SHAPE, paper_mesh(), paper_mapping(), timesteps=1
    )


@functools.cache
def matvec(nclient: int, nserver: int, nvectors: int) -> MatvecTimings:
    """Cached section-5.4 run (Figures 10-15 share these)."""
    return run_client_server_matvec(nclient, nserver, n=512, nvectors=nvectors)


# ---------------------------------------------------------------------------
# Printing helpers
# ---------------------------------------------------------------------------


RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent

_current_experiment: list = []


# ---------------------------------------------------------------------------
# Exhaustive-grid machinery (shared by the ablation benches and
# bench_autotune): sweep a cell function over profiles x processor counts
# and persist the machine-readable trajectory at the repo root.
# ---------------------------------------------------------------------------


def grid_sweep(cell, profiles, proc_counts) -> dict:
    """Run ``cell(profile, nprocs)`` over the full grid.

    ``cell`` returns a dict of JSON-friendly numbers for one grid point;
    the sweep keys it as ``"<profile>/P<nprocs>"`` (the shape
    ``check_regression.py`` diffs) and stamps ``profile``/``nprocs`` in
    if the cell didn't.
    """
    results = {}
    for profile in profiles:
        for nprocs in proc_counts:
            row = cell(profile, nprocs)
            row.setdefault("profile", profile.name)
            row.setdefault("nprocs", nprocs)
            results[f"{profile.name}/P{nprocs}"] = row
    return results


def write_trajectory(name: str, benchmark: str, workload, results) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root.

    The committed trajectory files share one shape — ``{"benchmark",
    "workload", "results"}`` with ``*_ms`` leaves under ``results`` —
    which is exactly what ``check_regression.py`` walks.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(
            {"benchmark": benchmark, "workload": workload, "results": results},
            indent=2,
            default=_jsonify,
        )
        + "\n"
    )
    return path


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
    # Start a fresh record for this experiment.
    _current_experiment.clear()
    _current_experiment.append(title)


def record(name: str, payload) -> None:
    """Persist one experiment's data under benchmarks/results/<name>.json.

    Numbers (and lists/dicts of numbers) only — the record is meant for
    regenerating EXPERIMENTS.md tables and for regression diffing.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    out = {
        "experiment": name,
        "title": _current_experiment[0] if _current_experiment else name,
        "data": payload,
    }
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(out, indent=2, default=_jsonify) + "\n")


def _jsonify(obj):
    if hasattr(obj, "__dict__"):
        return obj.__dict__
    if hasattr(obj, "item"):
        return obj.item()
    return str(obj)


def print_series(label: str, procs, ours, paper=None, unit="ms") -> None:
    cols = "".join(f"{p:>10}" for p in procs)
    print(f"{'':28}{cols}")
    row = "".join(f"{v:>10.0f}" for v in ours)
    print(f"{label + ' (ours, ' + unit + ')':<28}{row}")
    if paper is not None:
        prow = "".join(f"{v:>10.0f}" for v in paper)
        print(f"{label + ' (paper)':<28}{prow}")


def check_shape(condition: bool, message: str) -> None:
    """Record a shape expectation; fail the benchmark if violated."""
    status = "OK " if condition else "FAIL"
    print(f"  [{status}] {message}")
    assert condition, f"shape expectation violated: {message}"
