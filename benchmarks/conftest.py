"""Make ``benchmarks.common`` importable when pytest collects this dir."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
