#!/usr/bin/env python
"""Guard the committed ``BENCH_*.json`` trajectories against regressions.

Compares timing fields (``*_ms`` leaves under ``results``) between a
baseline and a current benchmark JSON and exits nonzero when any grows
by more than ``--threshold`` percent — or when a timing leaf present in
the baseline is *missing* from the current document (a regenerated
trajectory must not silently drop a watched metric).  Non-timing scalar
drift (message
counts, flags) is reported but does not fail the check — the logical
clock is deterministic, so timing fields should normally be *identical*
run to run; the threshold exists so intentional model changes fail
loudly instead of silently rewriting the baselines.

Modes::

    # explicit pair
    python benchmarks/check_regression.py --baseline old.json --current new.json

    # regenerated file(s) vs the committed copy at HEAD
    python benchmarks/check_regression.py BENCH_overlap.json BENCH_fusion.json

    # prove the detector works: inject a synthetic +10% regression
    python benchmarks/check_regression.py --self-test BENCH_overlap.json

Exit status: 0 clean, 1 regression found (or self-test failure),
2 usage/IO error.
"""

from __future__ import annotations

import argparse
import copy
import json
import subprocess
import sys
from pathlib import Path

# Runnable without PYTHONPATH=src, like the other benchmark drivers.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.observe.regression import (  # noqa: E402
    compare_benchmarks,
    iter_ms_fields,
)


class BenchFileError(Exception):
    """A benchmark JSON is missing or malformed (user-facing message)."""


def _load(path: str | Path) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except FileNotFoundError:
        raise BenchFileError(
            f"{path}: no such benchmark file — run the matching "
            "benchmarks/bench_*.py driver to generate it"
        ) from None
    except json.JSONDecodeError as exc:
        raise BenchFileError(
            f"{path}: malformed benchmark JSON ({exc}) — regenerate it "
            "with the matching benchmarks/bench_*.py driver"
        ) from None
    except OSError as exc:
        raise BenchFileError(f"{path}: cannot read benchmark file: {exc}") \
            from None
    if not isinstance(data, dict):
        raise BenchFileError(
            f"{path}: expected a JSON object with a 'results' mapping, "
            f"got {type(data).__name__}"
        )
    return data


def _load_committed(path: str) -> dict | None:
    """The committed (HEAD) copy of ``path``, or None when the file is
    not tracked at HEAD (a *new* trajectory)."""
    repo_root = Path(__file__).resolve().parent.parent
    rel = Path(path).resolve().relative_to(repo_root)
    try:
        out = subprocess.run(
            ["git", "show", f"HEAD:{rel.as_posix()}"],
            cwd=repo_root,
            capture_output=True,
            check=True,
        ).stdout
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None
    try:
        return json.loads(out)
    except json.JSONDecodeError as exc:
        raise BenchFileError(
            f"{path}: the committed copy at HEAD is malformed JSON ({exc})"
        ) from None


def _report(name: str, baseline: dict, current: dict, threshold: float) -> bool:
    """Print the comparison; True when a regression was found."""
    regressions, drifts = compare_benchmarks(
        baseline, current, threshold_pct=threshold
    )
    nfields = sum(
        1
        for cfg in baseline.get("results", {}).values()
        for _ in iter_ms_fields(cfg)
    )
    if not regressions and not drifts:
        print(f"{name}: OK ({nfields} timing fields within {threshold:g}%)")
        return False
    for d in drifts:
        print(f"{name}: drift  {d.config}.{d.field}: "
              f"{d.baseline!r} -> {d.current!r}")
    for r in regressions:
        print(f"{name}: REGRESSION  {r}")
    if not regressions:
        print(f"{name}: OK with drift ({len(drifts)} non-timing change(s))")
    return bool(regressions)


def _self_test(path: str, threshold: float) -> int:
    """Detector sanity: identical compare passes, +(threshold+5)% fails."""
    baseline = _load(path)
    ok, _ = compare_benchmarks(baseline, baseline, threshold_pct=threshold)
    if ok:
        print(f"self-test FAILED: identical compare flagged {len(ok)} "
              "regression(s)")
        return 1
    inflated = copy.deepcopy(baseline)
    factor = 1.0 + (threshold + 5.0) / 100.0
    ninflated = 0
    for cfg in inflated.get("results", {}).values():
        for field, _ in iter_ms_fields(cfg):
            node = cfg
            *parents, leaf = field.split(".")
            for p in parents:
                node = node[p]
            node[leaf] *= factor
            ninflated += 1
    if ninflated == 0:
        print(f"self-test FAILED: no *_ms fields found in {path}")
        return 1
    found, _ = compare_benchmarks(baseline, inflated, threshold_pct=threshold)
    if len(found) != ninflated:
        print(f"self-test FAILED: inflated {ninflated} fields by "
              f"{(factor - 1) * 100:.0f}% but detected {len(found)}")
        return 1
    print(f"self-test OK: {path} — identical compare clean, "
          f"{ninflated}/{ninflated} injected +{(factor - 1) * 100:.0f}% "
          "regressions detected")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("files", nargs="*",
                        help="benchmark JSONs compared against HEAD")
    parser.add_argument("--baseline", help="explicit baseline JSON")
    parser.add_argument("--current", help="explicit current JSON")
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="allowed %% growth of any *_ms field "
                             "(default: %(default)s)")
    parser.add_argument("--self-test", action="store_true",
                        help="inject a synthetic regression into each FILE "
                             "and assert it is detected")
    args = parser.parse_args(argv)

    if args.self_test:
        if not args.files:
            parser.error("--self-test needs at least one FILE")
        try:
            return max(_self_test(f, args.threshold) for f in args.files)
        except BenchFileError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if (args.baseline is None) != (args.current is None):
        parser.error("--baseline and --current go together")

    failed = False
    try:
        if args.baseline is not None:
            failed |= _report(
                f"{args.baseline} -> {args.current}",
                _load(args.baseline), _load(args.current), args.threshold,
            )
        elif not args.files:
            parser.error("give FILE(s) to check against HEAD, or "
                         "--baseline/--current")

        for path in args.files:
            committed = _load_committed(path)
            current = _load(path)
            if committed is None:
                # A trajectory with no committed ancestor is *new*, not a
                # regression: note it and pass.
                print(f"{path}: new trajectory (nothing committed at "
                      "HEAD); nothing to compare — OK")
                continue
            failed |= _report(f"{path} (vs HEAD)", committed, current,
                              args.threshold)
    except BenchFileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
