"""Benchmark: the high-throughput multi-tenant coupling service.

Measures the three claims the service makes:

``cold vs warm binds``
    One session binds K distinct permutation-region signatures twice.
    The first pass pays the collective schedule build per bind (real
    per-element index work on a 40k-element permutation); the second
    pass hits the shared schedule cache on both programs and skips the
    build entirely.  Expectation: warm p50 bind latency >=5x lower.

``throughput vs tenant count``
    Fleets of 16 / 128 / 1024 concurrent demo tenants (8 shape
    classes, so the shared cache serves all but the first binder of
    each class) against one server group.  Records wall-clock
    throughput and p50/p99 per-op latency, the deterministic logical
    clock, round counts, and the cache counters proving cross-tenant
    sharing.

``overload``
    256 retrying tenants against a queue-depth watermark of 64: sheds
    stay bounded, the queue never exceeds the watermark, and *every*
    session completes — zero wedged.

Wall-clock fields use ``_us``/``_s`` suffixes (environment-dependent,
exempt from the regression guard); the deterministic logical
``elapsed_ms`` fields are guarded by ``check_regression.py``.

Results land in ``BENCH_service.json`` at the repo root and
``results/service.json``.  ``--smoke`` (or ``BENCH_SMOKE=1``) runs a
reduced matrix for CI.
"""

import asyncio
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from common import check_shape, print_header, record
from repro.apps.service_demo import DemoVectors, demo_tenant, run_service_demo
from repro.service import (
    ArraySpec,
    ServiceBusyError,
    ServiceConfig,
    TenantSpec,
    run_service_gateway,
    serve_service,
)
from repro.vmachine import ProgramSpec, run_programs

REPO_ROOT = Path(__file__).parent.parent

SMOKE = "--smoke" in sys.argv or os.environ.get("BENCH_SMOKE") == "1"
TENANT_COUNTS = (8, 32) if SMOKE else (16, 128, 1024)
PROBE_N = 8_000 if SMOKE else 40_000
PROBE_K = 4 if SMOKE else 6
OVERLOAD_TENANTS = 48 if SMOKE else 256
OVERLOAD_QUEUE = 16 if SMOKE else 64


def percentile(values, q):
    return float(np.percentile(np.asarray(values, dtype=float), q))


# ---------------------------------------------------------------------------
# Cold vs warm bind latency
# ---------------------------------------------------------------------------


def run_cold_warm():
    """One session, PROBE_K permutation signatures, two bind passes."""
    sizes = [PROBE_N] * PROBE_K

    async def body(session):
        for i in range(PROBE_K):
            await session.create_array(
                f"x{i}",
                ArraySpec("chaos", PROBE_N, region=("perm", i),
                          owners=("rng", i)),
            )
        cold, warm = [], []
        for times in (cold, warm):
            for i in range(PROBE_K):
                t0 = time.perf_counter()
                binding = await session.bind("vec", f"v{i}", f"x{i}")
                times.append(time.perf_counter() - t0)
                await session.unbind(binding)
        await session.close()
        return cold, warm

    config = ServiceConfig()

    def gateway(ctx):
        return run_service_gateway(
            ctx, "server", [TenantSpec("probe", body)], config
        )

    def server(ctx):
        return serve_service(
            ctx, "gateway", {"vec": DemoVectors(ctx.comm, sizes)}, config
        )

    res = run_programs(
        [ProgramSpec("gateway", 2, gateway), ProgramSpec("server", 2, server)]
    )
    report = res["gateway"].values[0]
    assert report.ok, report.tenants[0].error
    cold, warm = report.tenants[0].result
    out = {
        "signatures": PROBE_K,
        "elements": PROBE_N,
        "cold_p50_us": percentile(cold, 50) * 1e6,
        "cold_p99_us": percentile(cold, 99) * 1e6,
        "warm_p50_us": percentile(warm, 50) * 1e6,
        "warm_p99_us": percentile(warm, 99) * 1e6,
        "speedup_x": percentile(cold, 50) / percentile(warm, 50),
        "schedule_hits": report.cache["schedule_hits"],
        "schedule_misses": report.cache["schedule_misses"],
    }
    print(
        f"  cold p50 {out['cold_p50_us'] / 1e3:8.2f} ms   "
        f"warm p50 {out['warm_p50_us'] / 1e3:8.2f} ms   "
        f"({out['speedup_x']:.1f}x)"
    )
    check_shape(
        out["speedup_x"] >= 5.0,
        f"warm bind p50 >=5x lower than cold ({out['speedup_x']:.1f}x)",
    )
    check_shape(
        out["schedule_misses"] == PROBE_K
        and out["schedule_hits"] == PROBE_K,
        "second pass served entirely from the shared schedule cache",
    )
    return out


# ---------------------------------------------------------------------------
# Throughput vs tenant count
# ---------------------------------------------------------------------------


def run_throughput(tenants: int):
    shapes = min(8, tenants)
    t0 = time.perf_counter()
    report, summary, res = run_service_demo(
        tenants=tenants,
        shapes=shapes,
        size=64,
        iterations=1,
        max_queue_depth=max(1024, tenants),
    )
    wall_s = time.perf_counter() - t0
    assert report.ok, [t.error for t in report.tenants if not t.ok][:3]
    latencies = [lat for t in report.tenants for lat in t.latencies]
    total_ops = sum(t.ops_ok for t in report.tenants)
    out = {
        "tenants": tenants,
        "shapes": shapes,
        "ops": total_ops,
        "rounds": report.rounds,
        # deterministic logical clock — guarded by check_regression.py
        "elapsed_ms": res["gateway"].elapsed_ms,
        "wall_s": wall_s,
        "throughput_ops_per_s": total_ops / wall_s,
        "latency_p50_us": percentile(latencies, 50) * 1e6,
        "latency_p99_us": percentile(latencies, 99) * 1e6,
        "schedule_hits": report.cache["schedule_hits"],
        "schedule_misses": report.cache["schedule_misses"],
        "plan_hits": report.cache["plan_hits"],
        "shed": report.admission["shed_queue_full"]
        + report.admission["shed_tenant_cap"],
        "slot_high_water": report.slot_high_water,
        "ops_served": summary["ops_served"],
    }
    print(
        f"  {tenants:>5} tenants: {out['throughput_ops_per_s']:8.0f} ops/s  "
        f"p50 {out['latency_p50_us'] / 1e3:7.2f} ms  "
        f"p99 {out['latency_p99_us'] / 1e3:7.2f} ms  "
        f"rounds {out['rounds']:>4}  "
        f"cache {out['schedule_hits']}/{out['schedule_hits'] + out['schedule_misses']}"
    )
    check_shape(
        out["schedule_misses"] == shapes,
        f"{tenants} tenants built exactly {shapes} schedules "
        f"(got {out['schedule_misses']})",
    )
    check_shape(
        out["rounds"] < total_ops,
        f"{tenants} tenants: rounds ({out['rounds']}) fused below total "
        f"ops ({total_ops})",
    )
    return out


# ---------------------------------------------------------------------------
# Overload: bounded shed, zero wedged
# ---------------------------------------------------------------------------


def retrying_tenant(shape_attr, size, fill):
    """demo_tenant with a retry-on-busy loop around every op."""

    async def body(session):
        retries = 0

        async def retry(op, *args):
            nonlocal retries
            while True:
                try:
                    return await op(*args)
                except ServiceBusyError:
                    retries += 1
                    await asyncio.sleep(0)

        await retry(
            session.create_array, "x",
            ArraySpec("blockparti", size, fill=("value", fill)),
        )
        binding = await retry(session.bind, "vec", shape_attr, "x")
        await retry(session.push, binding)
        total = await retry(session.call, "vec", "total", shape_attr)
        await retry(session.pull, binding)
        await session.close()
        return total, retries

    return body


def run_overload():
    shapes = 4
    sizes = [64 + 8 * i for i in range(shapes)]
    config = ServiceConfig(max_queue_depth=OVERLOAD_QUEUE)

    def gateway(ctx):
        fleet = [
            TenantSpec(
                f"t{i}",
                retrying_tenant(f"v{i % shapes}", sizes[i % shapes],
                                float(i % 7 + 1)),
            )
            for i in range(OVERLOAD_TENANTS)
        ]
        return run_service_gateway(ctx, "server", fleet, config)

    def server(ctx):
        return serve_service(
            ctx, "gateway", {"vec": DemoVectors(ctx.comm, sizes)}, config
        )

    t0 = time.perf_counter()
    res = run_programs(
        [ProgramSpec("gateway", 2, gateway), ProgramSpec("server", 2, server)]
    )
    wall_s = time.perf_counter() - t0
    report = res["gateway"].values[0]
    retries = sum(t.result[1] for t in report.tenants if t.result)
    out = {
        "tenants": OVERLOAD_TENANTS,
        "queue_watermark": OVERLOAD_QUEUE,
        "wall_s": wall_s,
        "completed": sum(1 for t in report.tenants if t.ok),
        "shed": report.admission["shed_queue_full"]
        + report.admission["shed_tenant_cap"],
        "retries": retries,
        "queue_high_water": report.admission["queue_high_water"],
        "rounds": report.rounds,
    }
    print(
        f"  {OVERLOAD_TENANTS} tenants / watermark {OVERLOAD_QUEUE}: "
        f"{out['completed']} completed, {out['shed']} shed, "
        f"queue high water {out['queue_high_water']}"
    )
    check_shape(
        out["completed"] == OVERLOAD_TENANTS,
        f"zero wedged sessions ({out['completed']}/{OVERLOAD_TENANTS} "
        "completed under overload)",
    )
    check_shape(
        out["shed"] > 0,
        f"backpressure engaged ({out['shed']} submissions shed)",
    )
    # Admitted ops never exceed the watermark; system lifecycle ops
    # (session closes) bypass admission by design, so one completing
    # wave can stack at most another watermark's worth on top.
    check_shape(
        out["queue_high_water"] <= 2 * OVERLOAD_QUEUE,
        f"queue depth bounded by watermark + one close wave "
        f"(high water {out['queue_high_water']} <= {2 * OVERLOAD_QUEUE})",
    )
    return out


# ---------------------------------------------------------------------------


def run_bench():
    print_header(
        "Multi-tenant coupling service: shared caches, batching, "
        f"backpressure{' (smoke)' if SMOKE else ''}"
    )
    results = {}

    print("cold vs warm bind latency "
          f"({PROBE_K} x {PROBE_N}-element permutation signatures)")
    results["cold_warm"] = run_cold_warm()

    print("throughput vs tenant count (8 shape classes, shared caches)")
    for tenants in TENANT_COUNTS:
        results[f"tenants_{tenants}"] = run_throughput(tenants)

    print("overload (retrying tenants vs queue-depth watermark)")
    results["overload"] = run_overload()

    if SMOKE:
        # Smoke runs assert the invariants but never overwrite the
        # committed full-matrix trajectory files.
        return results

    record("service", results)
    trajectory = {
        "benchmark": "multi_tenant_coupling_service",
        "smoke": SMOKE,
        "workload": {
            "tenant_counts": list(TENANT_COUNTS),
            "pattern": "demo fleet: create/bind/push/total/pull per tenant, "
                       "8 shape classes sharing one schedule cache; "
                       "cold/warm probe binds permutation-region "
                       "signatures twice; overload fleet retries on busy",
        },
        "results": results,
    }
    (REPO_ROOT / "BENCH_service.json").write_text(
        json.dumps(trajectory, indent=2) + "\n"
    )
    return results


def test_bench_service(benchmark):
    benchmark.pedantic(run_bench, rounds=1, iterations=1)


if __name__ == "__main__":
    run_bench()
