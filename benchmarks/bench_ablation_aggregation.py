"""Ablation: message aggregation in the data move (§4.1.4).

Meta-Chaos sends *at most one message per processor pair* per move.  This
ablation executes the same copy with aggregation disabled (one message per
element, the naive schedule-free alternative) and reports the logical-time
ratio — the justification for step 5 of the paper's five-step recipe.
"""

import functools

import numpy as np

from common import check_shape, print_header
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import (
    IndexRegion,
    SectionRegion,
    mc_compute_schedule,
    mc_copy,
    mc_new_set_of_regions,
)
from repro.core.registry import get_adapter
from repro.core.universe import SingleProgramUniverse
from repro.distrib.section import Section
from repro.vmachine import VirtualMachine

N = 64  # 4096 elements
PERM = np.random.default_rng(40).permutation(N * N)
_TAG = 1 << 22


def _unaggregated_move(schedule, src_array, dst_array, comm):
    """The same transfer, one message per element."""
    universe = SingleProgramUniverse(comm)
    src_ad = get_adapter(schedule.src_lib)
    dst_ad = get_adapter(schedule.dst_lib)
    for d in sorted(schedule.sends):
        offs = schedule.sends[d]
        if d == comm.rank:
            dst_ad.local_data(dst_array)[schedule.recvs[d]] = src_ad.local_data(
                src_array
            )[offs]
            comm.process.charge_pack(len(offs))
            continue
        for off in offs:
            comm.send(d, src_array.local[off : off + 1].copy(), _TAG)
            comm.process.charge_pack(1)
    for s in sorted(schedule.recvs):
        offs = schedule.recvs[s]
        if s == comm.rank:
            continue
        for off in offs:
            dst_array.local[off : off + 1] = comm.recv(s, _TAG)
            comm.process.charge_pack(1)


@functools.cache
def run_one(nprocs: int, aggregated: bool):
    def spmd(comm):
        A = BlockPartiArray.zeros(comm, (N, N))
        A.local[:] = np.arange(A.local.size, dtype=float)
        B = ChaosArray.zeros(comm, PERM % comm.size)
        sched = mc_compute_schedule(
            comm,
            "blockparti", A,
            mc_new_set_of_regions(SectionRegion(Section.full((N, N)))),
            "chaos", B, mc_new_set_of_regions(IndexRegion(PERM)),
        )
        comm.barrier()
        t0 = comm.process.clock
        m0 = comm.process.stats["messages_sent"]
        if aggregated:
            mc_copy(comm, sched, A, B)
        else:
            _unaggregated_move(sched, A, B, comm)
        return (
            comm.process.clock - t0,
            comm.process.stats["messages_sent"] - m0,
        )

    res = VirtualMachine(nprocs).run(spmd)
    time_ms = max(v[0] for v in res.values) * 1e3
    messages = int(sum(v[1] for v in res.values))
    return time_ms, messages


def run_ablation():
    print_header("Ablation: aggregated vs per-element messages (4096-element copy)")
    print(f"{'P':>4}{'aggregated ms':>16}{'naive ms':>12}{'ratio':>8}"
          f"{'agg msgs':>10}{'naive msgs':>12}")
    for p in (2, 4, 8):
        agg_t, agg_m = run_one(p, True)
        nav_t, nav_m = run_one(p, False)
        ratio = nav_t / agg_t
        print(f"{p:>4}{agg_t:>16.1f}{nav_t:>12.1f}{ratio:>8.1f}"
              f"{agg_m:>10}{nav_m:>12}")
        check_shape(ratio > 5, f"P={p}: aggregation wins by >5x (got {ratio:.1f}x)")
        check_shape(
            agg_m <= p * (p - 1),
            f"P={p}: aggregated move sends at most P(P-1) messages ({agg_m})",
        )
        check_shape(
            nav_m > 50 * agg_m,
            f"P={p}: the naive move floods the network ({nav_m} messages)",
        )


def test_ablation_aggregation(benchmark):
    benchmark.pedantic(run_ablation, rounds=1, iterations=1)


if __name__ == "__main__":
    run_ablation()
