"""Paper Table 4: Meta-Chaos data copy across two programs (§5.2).

"Time for the Meta-Chaos data copy for 2 separate programs on IBM SP2, in
msec per iteration" — one regular->irregular copy plus one back, per
time-step, across the Preg x Pirreg grid.
"""

from common import record, check_shape, coupled_two, print_header

PAPER = {
    2: {2: 63, 4: 61, 8: 66},
    4: {2: 55, 4: 33, 8: 36},
    8: {2: 61, 4: 32, 8: 21},
}
GRID = (2, 4, 8)


def run_table4():
    results = {pr: {pi: coupled_two(pr, pi) for pi in GRID} for pr in GRID}
    print_header("Table 4: two-program copy per iteration (rows: Preg, cols: Pirreg)")
    print(f"{'':>8}" + "".join(f"{pi:>16}" for pi in GRID))
    for pr in GRID:
        ours = "".join(
            f"{results[pr][pi].copy_per_iter_ms:>8.0f}/{PAPER[pr][pi]:<7}"
            for pi in GRID
        )
        print(f"{pr:>8}{ours}   (ours/paper)")

    # Shape 1: near-symmetry — copy(preg,pirreg) ~ copy(pirreg,preg)
    # ("the time for the data copy is symmetric").
    for a in GRID:
        for b in GRID:
            if a < b:
                x = results[a][b].copy_per_iter_ms
                y = results[b][a].copy_per_iter_ms
                check_shape(
                    abs(x - y) < 0.5 * max(x, y),
                    f"copy({a},{b})={x:.0f} ~ copy({b},{a})={y:.0f}",
                )
    # Shape 2: limited by the smaller program — balanced grows faster.
    check_shape(
        results[8][8].copy_per_iter_ms < results[2][8].copy_per_iter_ms,
        "copy is limited by whichever program runs on fewer processors",
    )
    check_shape(
        results[2][2].copy_per_iter_ms > results[8][8].copy_per_iter_ms,
        "copy speeds up when both sides grow",
    )
    record("table4", {
        "grid": list(GRID),
        "copy_ms": {
            pr: {pi: results[pr][pi].copy_per_iter_ms for pi in GRID}
            for pr in GRID
        },
        "paper": PAPER,
    })
    return results


def test_table4(benchmark):
    benchmark.pedantic(run_table4, rounds=1, iterations=1)


if __name__ == "__main__":
    run_table4()
