"""Paper Table 2: remap schedule build + copy, Chaos vs Meta-Chaos (§5.1).

"Schedule build time (total) and data copy time (per iteration) for
regular and irregular meshes in one program on IBM SP2, in msec."

Three implementations of the regular<->irregular whole-mesh remap:

- Chaos alone (regular mesh wrapped in a pointwise translation table);
- Meta-Chaos, cooperation method;
- Meta-Chaos, duplication method.
"""

from common import record, PROC_COUNTS, check_shape, coupled_single, print_header, print_series

PAPER = {
    "chaos": {"sched": {2: 1099, 4: 830, 8: 437, 16: 215},
              "copy": {2: 64, 4: 52, 8: 38, 16: 33}},
    "mc-coop": {"sched": {2: 1509, 4: 832, 8: 436, 16: 215},
                "copy": {2: 71, 4: 50, 8: 32, 16: 21}},
    "mc-dup": {"sched": {2: 2768, 4: 1645, 8: 1025, 16: 745},
               "copy": {2: 70, 4: 50, 8: 33, 16: 21}},
}
LABELS = {"chaos": "Chaos", "mc-coop": "MC cooperation", "mc-dup": "MC duplication"}


def run_table2():
    results = {
        backend: {p: coupled_single(p, backend) for p in PROC_COUNTS}
        for backend in ("chaos", "mc-coop", "mc-dup")
    }
    print_header("Table 2: remap schedule build (total) / copy (per iteration)")
    for backend in ("chaos", "mc-coop", "mc-dup"):
        print_series(
            f"{LABELS[backend]} sched", PROC_COUNTS,
            [results[backend][p].sched_ms for p in PROC_COUNTS],
            [PAPER[backend]["sched"][p] for p in PROC_COUNTS],
        )
        print_series(
            f"{LABELS[backend]} copy", PROC_COUNTS,
            [results[backend][p].copy_per_iter_ms for p in PROC_COUNTS],
            [PAPER[backend]["copy"][p] for p in PROC_COUNTS],
        )

    coop = results["mc-coop"]
    dup = results["mc-dup"]
    chaos = results["chaos"]
    for p in PROC_COUNTS:
        ratio = dup[p].sched_ms / coop[p].sched_ms
        check_shape(
            1.4 < ratio < 3.6,
            f"P={p}: duplication ~2x cooperation (ratio {ratio:.2f})",
        )
        rel = coop[p].sched_ms / chaos[p].sched_ms
        check_shape(
            0.5 < rel < 2.0,
            f"P={p}: MC cooperation within 2x of native Chaos ({rel:.2f})",
        )
        check_shape(
            coop[p].copy_per_iter_ms <= chaos[p].copy_per_iter_ms * 1.15,
            f"P={p}: MC copy not slower than Chaos copy "
            f"({coop[p].copy_per_iter_ms:.0f} vs {chaos[p].copy_per_iter_ms:.0f})",
        )
    check_shape(
        coop[2].sched_ms > 3.5 * coop[16].sched_ms,
        "cooperation schedule build scales down with P",
    )
    record("table2", {
        "procs": list(PROC_COUNTS),
        **{
            f"{b}_{what}": [
                getattr(results[b][p], attr) for p in PROC_COUNTS
            ]
            for b in ("chaos", "mc-coop", "mc-dup")
            for what, attr in (("sched_ms", "sched_ms"),
                               ("copy_ms", "copy_per_iter_ms"))
        },
        "paper": PAPER,
    })
    return results


def test_table2(benchmark):
    benchmark.pedantic(run_table2, rounds=1, iterations=1)


if __name__ == "__main__":
    run_table2()
