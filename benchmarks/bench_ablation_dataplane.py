"""Ablation: compiled data plane vs the per-run Python loop executors.

Before the data plane, every pack/unpack/local-copy walked its schedule
half run-by-run in Python (``RunList.gather``/``scatter``/``copy_runs``),
with a single-grid fast path that bailed to the loop the moment a run
table had more than one pitch.  The compiled plane lowers each half
*once* into a cached :class:`~repro.core.dataplane.MoveProgram` — one
``as_strided`` block copy per uniform stretch, or one fancy-index
operation over a cached dense index vector — so steady-state replays are
a handful of batched NumPy calls regardless of run count.

This ablation measures the *wall-clock* cost of the three data-plane
operations (pack / unpack / direct copy) under both executions, on the
two workload shapes the paper's section 5 moves at scale (65536
elements, the irregular-mesh size):

``regular``
    A piecewise-uniform section: two same-sized blocks whose row pitches
    differ, defeating the old single-grid fast path — the pre-PR
    executor loops over all ~4k rows.  The compiled plane runs it as two
    strided-view copies.
``irregular``
    Run-stored shuffled blocks (8-16 contiguous elements each, block
    order permuted): ~9k short runs, the Chaos-style mesh remap shape.
    The compiled plane replays it as one fancy-index operation over the
    cached dense index vector.

The loop reference below is the pre-PR executor code, kept verbatim so
the comparison stays honest as the library evolves.  Timings are
steady-state (programs compiled, index vectors built) — exactly the
regime of a timestep loop replaying one schedule.

Logical clocks are byte-identical under both executions by construction;
the end-to-end ``elapsed_ms`` fields recorded here are deterministic
logical-clock values and are guarded by ``check_regression.py``, while
the wall-clock fields (``*_s``, ``speedup_x``) are environment-dependent
and exempt.

Shape expectations: compiled pack is >=10x the loop on the regular
profile and >=3x on the irregular one; all three operations produce
byte-identical results under both executions.

Results land in ``BENCH_dataplane.json`` at the repo root and
``results/ablation_dataplane.json``.
"""

import json
import time
from pathlib import Path

import numpy as np

from common import check_shape, print_header, record
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import (
    IndexRegion,
    SectionRegion,
    mc_compute_schedule,
    mc_copy,
    mc_new_set_of_regions,
)
from repro.core.dataplane import compile_offsets, copy_compiled
from repro.core.runs import RunList, _run_slice
from repro.distrib.section import Section
from repro.vmachine import IBM_SP2, VirtualMachine

N = 65536                    # paper scale: the 65536-point irregular mesh
REPEATS = 7                  # best-of timing repetitions
REPO_ROOT = Path(__file__).parent.parent


# ---------------------------------------------------------------------------
# The pre-PR executors, verbatim (RunList.gather/scatter loop bodies and
# the aligned-segment copy), as free functions over a RunList.
# ---------------------------------------------------------------------------


def _uniform_grid_ref(runs):
    if runs is None or len(runs) < 2:
        return None
    step = int(runs[0, 1])
    count = int(runs[0, 2])
    if step <= 0 or not (runs[:, 1] == step).all() or not (runs[:, 2] == count).all():
        return None
    starts = runs[:, 0]
    rowstep = int(starts[1] - starts[0])
    if rowstep <= 0 or not (np.diff(starts) == rowstep).all():
        return None
    return int(starts[0]), rowstep, step, len(runs), count


def loop_gather(rl: RunList, data: np.ndarray, out=None) -> np.ndarray:
    """Pre-PR ``RunList.gather``: single-grid fast path, else per-run loop."""
    if not rl.is_compressed:
        if out is None:
            return data[rl.dense()]
        out[...] = data[rl.dense()]
        return out
    grid = _uniform_grid_ref(rl._exec_runs())
    if grid is not None:
        start0, rowstep, step, nrows, count = grid
        st = data.strides[0]
        view = np.lib.stride_tricks.as_strided(
            data[start0:], shape=(nrows, count), strides=(rowstep * st, step * st)
        )
        if out is None:
            out = np.empty(nrows * count, dtype=data.dtype)
        out.reshape(nrows, count)[...] = view
        return out
    if out is None:
        out = np.empty(len(rl), dtype=data.dtype)
    pos = 0
    for start, step, count in rl._exec_runs().tolist():
        if step == 0:
            out[pos : pos + count] = data[start]
        elif step == 1:
            out[pos : pos + count] = data[start : start + count]
        else:
            out[pos : pos + count] = data[_run_slice(start, step, count)]
        pos += count
    return out


def loop_scatter(rl: RunList, data: np.ndarray, values: np.ndarray) -> None:
    """Pre-PR ``RunList.scatter``: per-run slice stores."""
    if not rl.is_compressed:
        data[rl.dense()] = values
        return
    pos = 0
    for start, step, count in rl._exec_runs().tolist():
        chunk = values[pos : pos + count]
        if step == 0:
            data[start] = chunk[-1]
        elif step == 1:
            data[start : start + count] = chunk
        else:
            data[_run_slice(start, step, count)] = chunk
        pos += count


def _aligned_segments_ref(a: RunList, b: RunList):
    a_runs = a.runs.tolist()
    b_runs = b.runs.tolist()
    ia = ib = 0
    oa = ob = 0
    while ia < len(a_runs) and ib < len(b_runs):
        a_start, a_step, a_count = a_runs[ia]
        b_start, b_step, b_count = b_runs[ib]
        take = min(a_count - oa, b_count - ob)
        yield (a_start + a_step * oa, a_step, b_start + b_step * ob, b_step, take)
        oa += take
        ob += take
        if oa == a_count:
            ia += 1
            oa = 0
        if ob == b_count:
            ib += 1
            ob = 0


def loop_copy(src_data, src_rl: RunList, dst_data, dst_rl: RunList) -> None:
    """Pre-PR ``copy_runs``: aligned slice pairs over the run refinement."""
    if not (src_rl.is_compressed and dst_rl.is_compressed):
        dst_data[dst_rl.dense()] = src_data[src_rl.dense()]
        return
    for s0, sstep, d0, dstep, count in _aligned_segments_ref(src_rl, dst_rl):
        if sstep == 0:
            chunk = src_data[s0]
            if dstep == 0 or count == 1:
                dst_data[d0] = chunk
            else:
                dst_data[_run_slice(d0, dstep, count) if dstep != 1
                         else slice(d0, d0 + count)] = chunk
            continue
        src_sl = slice(s0, s0 + count) if sstep == 1 else _run_slice(s0, sstep, count)
        if dstep == 0:
            dst_data[d0] = src_data[s0 + sstep * (count - 1)]
        elif dstep == 1:
            dst_data[d0 : d0 + count] = src_data[src_sl]
        else:
            dst_data[_run_slice(d0, dstep, count)] = src_data[src_sl]


# ---------------------------------------------------------------------------
# Workload profiles.
# ---------------------------------------------------------------------------


def regular_offsets() -> np.ndarray:
    """Piecewise-uniform: two 2048-row blocks, count 16, pitches 24 / 20.

    One pitch change is enough to defeat the pre-PR single-grid fast
    path, so the old executor walks all 4096 rows in Python.
    """
    rows, count = 2048, 16
    a = (24 * np.arange(rows)[:, None] + np.arange(count)[None, :]).ravel()
    b = a.max() + 8 + (
        20 * np.arange(rows)[:, None] + np.arange(count)[None, :]
    ).ravel()
    return np.concatenate([a, b])


def irregular_offsets() -> np.ndarray:
    """Shuffled contiguous blocks of 8-16 elements covering [0, N).

    Small enough to stay genuinely irregular, large enough that the
    run form stays below the hybrid dense-storage threshold - the
    pre-PR executor walks every run in Python.
    """
    rng = np.random.default_rng(42)
    blocks = []
    pos = 0
    while pos < N:
        size = int(rng.integers(8, 17))
        blocks.append(np.arange(pos, min(pos + size, N)))
        pos += size
    rng.shuffle(blocks)
    return np.concatenate(blocks)


PROFILES = {
    "regular": regular_offsets,
    "irregular": irregular_offsets,
}


def best_of(fn, *args) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def elapsed_end_to_end(profile_name: str) -> float:
    """Deterministic logical elapsed time (ms) of an end-to-end copy of
    the profile's offsets on the IBM SP2 at P=4 — the regression-guard
    anchor proving the compiled plane charges exactly the old costs."""
    n = 4096  # smaller end-to-end instance; clock identity is scale-free
    if profile_name == "regular":
        idx = regular_offsets()
        idx = idx[idx < n]
    else:
        idx = irregular_offsets()[:n]

    m = len(idx)

    def spmd(comm):
        side = int(np.sqrt(n))
        A = BlockPartiArray.from_function(
            comm, (side, side), lambda i, j: i * side + j * 1.0
        )
        B = ChaosArray.zeros(comm, np.arange(m) % comm.size)
        sched = mc_compute_schedule(
            comm,
            "blockparti", A,
            mc_new_set_of_regions(IndexRegion(np.arange(m))),
            "chaos", B,
            mc_new_set_of_regions(IndexRegion(np.argsort(np.argsort(idx)))),
        )
        mc_copy(comm, sched, A, B)
        return None

    return VirtualMachine(4, profile=IBM_SP2).run(spmd).elapsed_ms


def run_ablation():
    print_header(
        "Ablation: compiled data plane (cached MovePrograms) vs per-run "
        f"Python loop executors — {N} elements, steady state"
    )
    results = {}
    speedups = {}
    for name, make in PROFILES.items():
        idx = make()
        n = len(idx)
        rl_loop = RunList.from_dense(idx)       # reference side
        rl_comp = RunList.from_dense(idx)       # compiled side (own cache)
        prog = compile_offsets(rl_comp)
        data = np.random.default_rng(7).random(idx.max() + 1)
        values = np.random.default_rng(8).random(n)
        out_a = np.empty(n)
        out_b = np.empty(n)

        # -- pack (gather) ---------------------------------------------------
        loop_gather(rl_loop, data, out_a)       # warm caches on both sides
        prog.gather(data, out=out_b)
        check_shape(
            bool((out_a == out_b).all()),
            f"{name}: compiled gather byte-identical to the loop",
        )
        t_loop_g = best_of(loop_gather, rl_loop, data, out_a)
        t_comp_g = best_of(prog.gather, data, out_b)

        # -- unpack (scatter) ------------------------------------------------
        sink_a = np.zeros_like(data)
        sink_b = np.zeros_like(data)
        loop_scatter(rl_loop, sink_a, values)
        prog.scatter(sink_b, values)
        check_shape(
            bool((sink_a == sink_b).all()),
            f"{name}: compiled scatter byte-identical to the loop",
        )
        t_loop_s = best_of(loop_scatter, rl_loop, sink_a, values)
        t_comp_s = best_of(prog.scatter, sink_b, values)

        # -- direct copy (aligned halves) -------------------------------------
        dst_rl_loop = RunList.from_dense(np.arange(n))
        dst_rl_comp = RunList.from_dense(np.arange(n))
        dst_prog = compile_offsets(dst_rl_comp)
        copy_a = np.zeros(n)
        copy_b = np.zeros(n)
        loop_copy(data, rl_loop, copy_a, dst_rl_loop)
        copy_compiled(prog, data, dst_prog, copy_b)
        check_shape(
            bool((copy_a == copy_b).all()),
            f"{name}: compiled direct copy byte-identical to the loop",
        )
        t_loop_c = best_of(loop_copy, data, rl_loop, copy_a, dst_rl_loop)
        t_comp_c = best_of(copy_compiled, prog, data, dst_prog, copy_b)

        speedup = {
            "pack": t_loop_g / t_comp_g,
            "unpack": t_loop_s / t_comp_s,
            "copy": t_loop_c / t_comp_c,
        }
        speedups[name] = speedup
        results[name] = {
            "profile": name,
            "nprocs": 1,
            "nelements": n,
            "nruns": rl_loop.nruns,
            "program_kind": prog.kind,
            "pack": {
                "loop_s": t_loop_g,
                "compiled_s": t_comp_g,
                "speedup_x": speedup["pack"],
            },
            "unpack": {
                "loop_s": t_loop_s,
                "compiled_s": t_comp_s,
                "speedup_x": speedup["unpack"],
            },
            "copy": {
                "loop_s": t_loop_c,
                "compiled_s": t_comp_c,
                "speedup_x": speedup["copy"],
            },
            # deterministic logical clock of an end-to-end copy — the
            # regression-guarded proof the compiled plane is clock-neutral
            "elapsed_ms": elapsed_end_to_end(name),
        }
        print(
            f"  {name:<10} ({n} elements, {rl_loop.nruns} runs -> "
            f"{prog.kind} program)"
        )
        for op in ("pack", "unpack", "copy"):
            r = results[name][op]
            print(
                f"    {op:<7} loop {r['loop_s'] * 1e3:8.3f} ms   "
                f"compiled {r['compiled_s'] * 1e3:8.3f} ms   "
                f"({r['speedup_x']:6.1f}x)"
            )

    check_shape(
        speedups["regular"]["pack"] >= 10.0,
        f"regular pack >=10x the per-run loop "
        f"({speedups['regular']['pack']:.1f}x)",
    )
    check_shape(
        speedups["irregular"]["pack"] >= 3.0,
        f"irregular pack >=3x the per-run loop "
        f"({speedups['irregular']['pack']:.1f}x)",
    )

    record("ablation_dataplane", results)
    trajectory = {
        "benchmark": "compiled_dataplane_ablation",
        "workload": {
            "nelements": N,
            "pattern": "piecewise-uniform two-pitch section (regular) and "
                       "shuffled 8-16 element blocks (irregular); loop "
                       "reference is the pre-dataplane per-run executor",
            "operations": ["pack", "unpack", "copy"],
        },
        "results": results,
    }
    (REPO_ROOT / "BENCH_dataplane.json").write_text(
        json.dumps(trajectory, indent=2) + "\n"
    )
    return results


def test_ablation_dataplane(benchmark):
    benchmark.pedantic(run_ablation, rounds=1, iterations=1)


if __name__ == "__main__":
    run_ablation()
