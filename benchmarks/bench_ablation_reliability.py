"""Ablation: reliable-delivery protocol overhead on the data plane.

The historical transport is perfectly reliable, so the paper's executor
sends raw data envelopes.  The opt-in ``Reliability`` layer
(``repro.vmachine.reliability``) adds per-channel sequence numbers,
cumulative acks, duplicate suppression and bounded retransmission — the
robustness needed to survive a faulty channel, paid for in extra control
messages and (under loss) charged RTO backoff.

Three configurations of the same permutation move, at P in {4, 8, 16} on
both machine profiles:

- **raw** — the historical zero-overhead transport (baseline);
- **reliable/clean** — protocol enabled on a perfect channel: the
  overhead is the ack traffic plus the closing fence;
- **reliable/lossy** — protocol on a seeded faulty channel (10% each of
  drop/dup/reorder/delay on the data class): adds retransmissions and
  RTO waits charged to the logical clock.

Shape expectations: the destination array is byte-identical across all
three configurations (that is the point of the protocol); reliable/clean
costs more than raw; reliable/lossy costs more than reliable/clean and
records retransmissions.  Results land in ``BENCH_reliability.json`` at
the repo root (machine-readable trajectory for regression tracking).
"""

import functools
import json
from pathlib import Path

import numpy as np

from common import check_shape, print_header, record
from repro.blockparti import BlockPartiArray
from repro.core import (
    IndexRegion,
    SectionRegion,
    mc_compute_schedule,
    mc_copy,
    mc_new_set_of_regions,
)
from repro.core.universe import SingleProgramUniverse
from repro.distrib.section import Section
from repro.vmachine import ALPHA_FARM_ATM, IBM_SP2, VirtualMachine
from repro.vmachine.faults import FaultPlan, FaultRates

N = 128                      # global array is N x N doubles
PROC_COUNTS = (4, 8, 16)
PROFILES = (IBM_SP2, ALPHA_FARM_ATM)
SEED = 1997
REPO_ROOT = Path(__file__).parent.parent

PERM = np.random.default_rng(SEED).permutation(N * N)


def _lossy_plan():
    return FaultPlan(
        seed=SEED,
        rates=FaultRates(drop=0.1, dup=0.1, reorder=0.1, delay=0.1),
    )


@functools.cache
def run_copy(nprocs: int, profile, mode: str):
    """(max per-rank copy clock delta, per-rank dest arrays, stats)."""

    def spmd(comm):
        A = BlockPartiArray.zeros(comm, (N, N), nprocs_grid=(comm.size, 1))
        B = BlockPartiArray.zeros(comm, (N, N), nprocs_grid=(comm.size, 1))
        A.local[:] = np.arange(len(A.local), dtype=np.float64) + 1e5 * comm.rank
        src = mc_new_set_of_regions(
            SectionRegion(Section((0, 0), (N, N), (1, 1)))
        )
        dst = mc_new_set_of_regions(IndexRegion(PERM))
        sched = mc_compute_schedule(
            comm, "blockparti", A, src, "blockparti", B, dst
        )
        universe = SingleProgramUniverse(comm)
        if mode != "raw":
            universe.enable_reliability()
        comm.barrier()
        t0 = comm.process.clock
        mc_copy(universe, sched, A, B, timeout=120.0)
        return comm.process.clock - t0, B.local.copy()

    faults = _lossy_plan() if mode == "lossy" else None
    vm = VirtualMachine(nprocs, profile=profile, faults=faults,
                        recv_timeout_s=120.0)
    result = vm.run(spmd)
    elapsed = max(v[0] for v in result.values)
    dest = [v[1] for v in result.values]
    stats = {
        "rel_acks_sent": result.total_stat("rel_acks_sent"),
        "rel_retransmits": result.total_stat("rel_retransmits"),
        "rel_rto_wait_s": result.total_stat("rel_rto_wait_s"),
        "faults_drop": result.total_stat("faults_drop"),
    }
    return elapsed, dest, stats


def run_ablation():
    print_header(
        f"Ablation: reliable-delivery protocol overhead "
        f"({N}x{N} doubles, global permutation move)"
    )
    results = {}
    for profile in PROFILES:
        for nprocs in PROC_COUNTS:
            t_raw, d_raw, _ = run_copy(nprocs, profile, "raw")
            t_rel, d_rel, s_rel = run_copy(nprocs, profile, "reliable")
            t_loss, d_loss, s_loss = run_copy(nprocs, profile, "lossy")
            identical = all(
                np.array_equal(a, b) and np.array_equal(a, c)
                for a, b, c in zip(d_raw, d_rel, d_loss)
            )
            over_clean = t_rel / t_raw - 1.0
            over_lossy = t_loss / t_raw - 1.0
            key = f"{profile.name}/P{nprocs}"
            results[key] = {
                "profile": profile.name,
                "nprocs": nprocs,
                "raw_ms": t_raw * 1e3,
                "reliable_clean_ms": t_rel * 1e3,
                "reliable_lossy_ms": t_loss * 1e3,
                "overhead_clean_pct": over_clean * 100.0,
                "overhead_lossy_pct": over_lossy * 100.0,
                "acks_clean": s_rel["rel_acks_sent"],
                "retransmits_lossy": s_loss["rel_retransmits"],
                "rto_wait_lossy_ms": s_loss["rel_rto_wait_s"] * 1e3,
                "drops_lossy": s_loss["faults_drop"],
                "identical_destination": bool(identical),
            }
            print(
                f"  {profile.name:<20} P={nprocs:<3} "
                f"raw {t_raw * 1e3:8.3f} ms   "
                f"rel {t_rel * 1e3:8.3f} ms (+{over_clean * 100:5.1f}%)   "
                f"lossy {t_loss * 1e3:8.3f} ms (+{over_lossy * 100:5.1f}%)"
            )
            check_shape(
                identical,
                f"{key}: destination identical across raw/reliable/lossy",
            )
            check_shape(
                t_rel > t_raw,
                f"{key}: the protocol is not free "
                f"(+{over_clean * 100:.1f}% on a clean channel)",
            )
            check_shape(
                t_loss >= t_rel and s_loss["rel_retransmits"] > 0,
                f"{key}: loss costs retransmissions "
                f"({int(s_loss['rel_retransmits'])} retransmits, "
                f"{int(s_loss['faults_drop'])} drops)",
            )

    record("ablation_reliability", results)
    trajectory = {
        "benchmark": "reliability_protocol_ablation",
        "workload": {
            "array": [N, N],
            "pattern": "full-array global permutation (IndexRegion)",
            "lossy_rates": {"drop": 0.1, "dup": 0.1, "reorder": 0.1,
                            "delay": 0.1},
            "seed": SEED,
        },
        "results": results,
    }
    (REPO_ROOT / "BENCH_reliability.json").write_text(
        json.dumps(trajectory, indent=2) + "\n"
    )
    return results


def test_ablation_reliability(benchmark):
    benchmark.pedantic(run_ablation, rounds=1, iterations=1)


if __name__ == "__main__":
    run_ablation()
