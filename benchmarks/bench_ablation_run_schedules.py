"""Ablation: run-compressed schedules vs dense offset arrays.

The paper's economy rests on schedules being cheap to build, store and
replay (§4.1.4; Multiblock Parti's strided-block descriptors are why
Table 5's regular exchanges are cheap).  This ablation quantifies what
making the run form the *actual* schedule representation buys:

- **per-rank schedule memory** — ``(start, step, count)`` runs per peer
  versus dense int64 offsets: O(runs) vs O(elements) for a regular 2-D
  section move, and no penalty for an irregular permutation (hybrid
  storage keeps those dense);
- **wall-clock pack/unpack** — stride-1 runs execute as contiguous slice
  copies and strided runs as strided slices, versus NumPy fancy
  gather/scatter over dense offset arrays;
- **identical simulated physics** — the logical clock of a copy through
  run-compressed halves is *exactly* the clock through dense halves
  (this optimization changes wall-clock and memory, never the model).

Shape expectations: >=5x memory reduction on the regular move, a
measurable pack/unpack speedup, and <=10% regression (memory and time)
on the irregular move.
"""

import functools
import time

import numpy as np

from common import check_shape, print_header, record
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import (
    IndexRegion,
    RunList,
    SectionRegion,
    mc_compute_schedule,
    mc_copy,
    mc_new_set_of_regions,
)
from repro.distrib.section import Section
from repro.vmachine import VirtualMachine

P = 8
N_REG = 1024            # regular: 1024x1024 doubles, half-array section move
N_IRR = 256             # irregular: 256x256 -> 65536-point permutation
PERM = np.random.default_rng(1997).permutation(N_IRR * N_IRR)
REPS = 20


def _regular_sors():
    return (
        mc_new_set_of_regions(
            SectionRegion(Section((0, 0), (N_REG // 2 - 1, N_REG - 1), (1, 1)))
        ),
        mc_new_set_of_regions(
            SectionRegion(Section((N_REG // 2, 0), (N_REG - 1, N_REG - 1), (1, 1)))
        ),
    )


def _irregular_sors():
    return (
        mc_new_set_of_regions(SectionRegion(Section.full((N_IRR, N_IRR)))),
        mc_new_set_of_regions(IndexRegion(PERM)),
    )


@functools.cache
def build_schedules(workload: str):
    """Per-rank (sends, recvs, src_local_n, dst_local_n, mem, dense) halves."""

    def spmd(comm):
        if workload == "regular":
            A = BlockPartiArray.zeros(comm, (N_REG, N_REG))
            B = BlockPartiArray.zeros(comm, (N_REG, N_REG))
            src, dst = _regular_sors()
            sched = mc_compute_schedule(
                comm, "blockparti", A, src, "blockparti", B, dst
            )
            nb = len(B.local)
        else:
            A = BlockPartiArray.zeros(comm, (N_IRR, N_IRR))
            B = ChaosArray.zeros(comm, PERM % comm.size)
            src, dst = _irregular_sors()
            sched = mc_compute_schedule(comm, "blockparti", A, src, "chaos", B, dst)
            nb = len(B.local)
        return (
            dict(sched.sends),
            dict(sched.recvs),
            len(A.local),
            nb,
            sched.nbytes_memory,
            sched.nbytes_dense,
        )

    return VirtualMachine(P).run(spmd).values


@functools.cache
def logical_clocks(workload: str, dense: bool):
    """Final logical clock per rank for 3 copies (run vs dense halves)."""

    def spmd(comm):
        if workload == "regular":
            A = BlockPartiArray.zeros(comm, (N_REG, N_REG))
            B = BlockPartiArray.zeros(comm, (N_REG, N_REG))
            src, dst = _regular_sors()
            sched = mc_compute_schedule(
                comm, "blockparti", A, src, "blockparti", B, dst
            )
        else:
            A = BlockPartiArray.zeros(comm, (N_IRR, N_IRR))
            B = ChaosArray.zeros(comm, PERM % comm.size)
            src, dst = _irregular_sors()
            sched = mc_compute_schedule(comm, "blockparti", A, src, "chaos", B, dst)
        if dense:
            sched = sched.dense()
        for _ in range(3):
            mc_copy(comm, sched, A, B)
        return comm.process.clock

    return VirtualMachine(P).run(spmd).values


def _best(fn, reps=REPS):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_pack_unpack(workload: str):
    """Host-side wall-clock of every rank's pack+unpack, run vs dense.

    Times exactly the executor primitives: ``RunList.gather``/``scatter``
    on the run path, NumPy fancy indexing on the dense path; identical
    element counts either way.
    """
    rng = np.random.default_rng(3)
    run_halves = []
    dense_halves = []
    for sends, recvs, ns, nd, _, _ in build_schedules(workload):
        src_data = rng.random(max(ns, 1))
        dst_data = rng.random(max(nd, 1))
        for offs in sends.values():
            if len(offs):
                run_halves.append(("pack", src_data, offs, None))
                dense_halves.append(("pack", src_data, np.asarray(offs), None))
        for offs in recvs.values():
            if len(offs):
                buf = rng.random(len(offs))
                run_halves.append(("unpack", dst_data, offs, buf))
                dense_halves.append(("unpack", dst_data, np.asarray(offs), buf))

    def exec_run():
        for kind, data, offs, buf in run_halves:
            rl = offs if isinstance(offs, RunList) else RunList.from_dense(offs)
            if kind == "pack":
                rl.gather(data)
            else:
                rl.scatter(data, buf)

    def exec_dense():
        for kind, data, offs, buf in dense_halves:
            if kind == "pack":
                data[offs]
            else:
                data[offs] = buf

    return _best(exec_run), _best(exec_dense)


def run_ablation():
    print_header(
        f"Ablation: run-compressed schedules vs dense offsets (P={P}; "
        f"regular {N_REG}x{N_REG} section move, irregular {N_IRR * N_IRR}-pt "
        f"permutation)"
    )
    results = {}
    for workload in ("regular", "irregular"):
        per_rank = build_schedules(workload)
        mem_run = [r[4] for r in per_rank]
        mem_dense = [r[5] for r in per_rank]
        # Ranks with traffic (dense > 0); the reduction is per rank.
        ratios = [d / m for m, d in zip(mem_run, mem_dense) if d]
        t_run, t_dense = measure_pack_unpack(workload)
        speedup = t_dense / t_run if t_run else float("inf")
        results[workload] = {
            "schedule_bytes_run_per_rank": mem_run,
            "schedule_bytes_dense_per_rank": mem_dense,
            "memory_reduction_min": min(ratios),
            "pack_unpack_wall_s": {"run": t_run, "dense": t_dense},
            "pack_unpack_speedup": speedup,
        }
        print(f"  {workload:<10} schedule bytes/rank: "
              f"run {max(mem_run):>9} vs dense {max(mem_dense):>9} "
              f"(min reduction {min(ratios):.1f}x)")
        print(f"  {workload:<10} pack+unpack wall:    "
              f"run {t_run * 1e3:8.3f} ms vs dense {t_dense * 1e3:8.3f} ms "
              f"({speedup:.2f}x)")

    # Identical simulated physics, run vs dense halves, both workloads.
    clocks_ok = all(
        logical_clocks(w, dense=False) == logical_clocks(w, dense=True)
        for w in ("regular", "irregular")
    )

    reg, irr = results["regular"], results["irregular"]
    check_shape(
        reg["memory_reduction_min"] >= 5,
        f"regular section move: >=5x per-rank schedule-memory reduction "
        f"({reg['memory_reduction_min']:.1f}x)",
    )
    check_shape(
        reg["pack_unpack_speedup"] >= 1.3,
        f"regular section move: measurable pack/unpack wall-clock speedup "
        f"({reg['pack_unpack_speedup']:.2f}x)",
    )
    check_shape(
        max(m / d for m, d in zip(irr["schedule_bytes_run_per_rank"],
                                  irr["schedule_bytes_dense_per_rank"]) if d)
        <= 1.10,
        "irregular permutation: hybrid storage adds <=10% schedule memory",
    )
    check_shape(
        irr["pack_unpack_wall_s"]["run"]
        <= irr["pack_unpack_wall_s"]["dense"] * 1.10,
        f"irregular permutation: <=10% pack/unpack wall-clock regression "
        f"({irr['pack_unpack_speedup']:.2f}x)",
    )
    check_shape(
        clocks_ok,
        "logical clocks identical through run-compressed and dense halves",
    )
    record("ablation_run_schedules", results)
    return results


def test_ablation_run_schedules(benchmark):
    benchmark.pedantic(run_ablation, rounds=1, iterations=1)


if __name__ == "__main__":
    run_ablation()
