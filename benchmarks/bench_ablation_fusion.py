"""Ablation: fused multi-array moves (MovePlan) vs k sequential copies.

The paper's executor already aggregates one schedule's traffic into "at
most one message ... between each source and each destination processor"
(§4.1.4), but a program moving k arrays per timestep — the coupled codes
of §5.1 exchange several physical quantities over one mesh mapping —
still pays k·P·(P−1) message latencies.  The :mod:`repro.core.plan`
compiler extends the aggregation *across schedules*: k schedules compile
into one :class:`~repro.core.plan.MovePlan` whose execution sends one
fused message per processor pair, saving k−1 α's per pair and per
execution.

Workload — the latency-bound regime where fusion matters most: k small
fields (one 32×32 double array each) moved from block-distributed Parti
sources onto permutation-scattered Chaos destinations, all k fields sharing one
scatter permutation (§5.1: several physical quantities exchanged over a
single mesh mapping).  Per-pair payloads are tens of bytes, so the
per-message α dominates β·m and the k-fold message reduction translates
nearly k-fold into logical elapsed time.

Shape expectations, per profile and P ∈ {4, 8, 16}:

- fused and sequential executions produce byte-identical destinations;
- the data plane sends exactly ``unfused/k`` fused messages — the
  message-count reduction is ``(k−1)·pairs``, matching the executors'
  ``plan_alpha_saved`` counter;
- fused logical elapsed time improves monotonically-ish with k and by
  >=40% at k=8 on the IBM SP2 profile at P=16;
- at k=1 the plan only adds the fused wire header (16 B + 16 B/segment),
  so elapsed stays within 8% of the plain copy even on tens-of-bytes
  payloads where the header is comparatively largest.

Results land in ``BENCH_fusion.json`` at the repo root (machine-readable
trajectory for regression tracking) and ``results/ablation_fusion.json``.
"""

import functools
import json
from pathlib import Path

import numpy as np

from common import check_shape, print_header, record
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import (
    IndexRegion,
    SectionRegion,
    mc_compute_plan,
    mc_compute_schedule,
    mc_copy,
    mc_copy_many,
    mc_new_set_of_regions,
)
from repro.distrib.section import Section
from repro.vmachine import ALPHA_FARM_ATM, IBM_SP2, VirtualMachine

N = 32                       # each field is N x N doubles (small: latency-bound)
K_VALUES = (1, 2, 4, 8)
PROC_COUNTS = (4, 8, 16)
PROFILES = (IBM_SP2, ALPHA_FARM_ATM)
REPO_ROOT = Path(__file__).parent.parent


#: the one mesh mapping all k fields share (paper §5.1: several physical
#: quantities exchanged over a single regular<->irregular correspondence)
PERM = np.random.default_rng(100).permutation(N * N)


@functools.cache
def run_move(nprocs: int, profile, k: int, fused: bool):
    """(max clock delta of the copy phase, dests, data-plane messages)."""

    def spmd(comm):
        sor_src = mc_new_set_of_regions(SectionRegion(Section.full((N, N))))
        srcs, dsts, scheds = [], [], []
        for j in range(k):
            perm = PERM
            A = BlockPartiArray.from_function(
                comm, (N, N), lambda i, jj, j=j: (j + 1.0) * (i * N + jj)
            )
            B = ChaosArray.zeros(comm, perm % comm.size)
            scheds.append(
                mc_compute_schedule(
                    comm, "blockparti", A, sor_src,
                    "chaos", B, mc_new_set_of_regions(IndexRegion(perm)),
                )
            )
            srcs.append(A)
            dsts.append(B)
        plan = mc_compute_plan(scheds) if fused else None
        comm.barrier()
        t0 = comm.process.clock
        m0 = comm.process.stats.get("messages_sent", 0)
        if fused:
            mc_copy_many(comm, plan, srcs, dsts)
        else:
            for sched, A, B in zip(scheds, srcs, dsts):
                mc_copy(comm, sched, A, B)
        dt = comm.process.clock - t0
        dm = comm.process.stats.get("messages_sent", 0) - m0
        gathered = [B.gather_global() for B in dsts]
        return dt, dm, gathered if comm.rank == 0 else None

    result = VirtualMachine(nprocs, profile=profile).run(spmd)
    elapsed = max(v[0] for v in result.values)
    messages = sum(v[1] for v in result.values)
    dests = result.values[0][2]
    return elapsed, messages, dests


def run_ablation():
    print_header(
        f"Ablation: fused multi-array moves — one message per pair across "
        f"k schedules ({N}x{N} doubles per field, Parti -> permuted Chaos)"
    )
    results = {}
    for profile in PROFILES:
        for nprocs in PROC_COUNTS:
            for k in K_VALUES:
                t_seq, m_seq, d_seq = run_move(nprocs, profile, k, fused=False)
                t_fus, m_fus, d_fus = run_move(nprocs, profile, k, fused=True)
                identical = all(
                    np.array_equal(a, b) for a, b in zip(d_seq, d_fus)
                )
                improvement = 1.0 - t_fus / t_seq
                key = f"{profile.name}/P{nprocs}/k{k}"
                results[key] = {
                    "profile": profile.name,
                    "nprocs": nprocs,
                    "k": k,
                    "sequential_ms": t_seq * 1e3,
                    "fused_ms": t_fus * 1e3,
                    "improvement_pct": improvement * 100.0,
                    "identical_destination": bool(identical),
                    "messages": {"sequential": m_seq, "fused": m_fus},
                    "alpha_saved": m_seq - m_fus,
                }
                print(
                    f"  {profile.name:<20} P={nprocs:<3} k={k:<2} "
                    f"sequential {t_seq * 1e3:8.3f} ms   "
                    f"fused {t_fus * 1e3:8.3f} ms   "
                    f"({improvement * 100:5.1f}% faster, "
                    f"{m_seq}->{m_fus} msgs)"
                )
                check_shape(
                    identical,
                    f"{key}: destinations byte-identical fused vs sequential",
                )
                check_shape(
                    m_fus * k == m_seq,
                    f"{key}: data plane fuses k={k} messages per pair into "
                    f"one ({m_seq} -> {m_fus})",
                )
                if k == 1:
                    # The only cost of a 1-schedule plan is the fused wire
                    # header (16 B + 16 B/segment) on payloads this small.
                    check_shape(
                        abs(improvement) < 0.08,
                        f"{key}: k=1 plan within 8% of the plain copy "
                        f"({improvement * 100:+.2f}%)",
                    )
                else:
                    check_shape(
                        improvement > 0,
                        f"{key}: fusion reduces logical elapsed time "
                        f"({improvement * 100:.1f}%)",
                    )

    sp2_16_k8 = results[f"{IBM_SP2.name}/P16/k8"]
    check_shape(
        sp2_16_k8["improvement_pct"] >= 40.0,
        f"IBM SP2 P=16 k=8: >=40% elapsed-time reduction "
        f"({sp2_16_k8['improvement_pct']:.1f}%)",
    )

    record("ablation_fusion", results)
    trajectory = {
        "benchmark": "fused_move_plan_ablation",
        "workload": {
            "field": [N, N],
            "pattern": "k Parti row-block fields scattered onto k permuted "
                       "Chaos destinations; fused = one MovePlan execution",
            "k_values": list(K_VALUES),
        },
        "results": results,
    }
    (REPO_ROOT / "BENCH_fusion.json").write_text(
        json.dumps(trajectory, indent=2) + "\n"
    )
    return results


def test_ablation_fusion(benchmark):
    benchmark.pedantic(run_ablation, rounds=1, iterations=1)


if __name__ == "__main__":
    run_ablation()
