"""Paper Figure 13: twenty vectors, sequential client (§5.4).

"Total time for twenty vectors for a one-process client.  The server runs
on four nodes."  With twenty multiplies of the same matrix, the one-time
costs (schedules + matrix shipment) amortize and the server-compute and
vector-transfer components dominate; the paper derives a speedup of ~4.5
for the eight-process server relative to computing in the client.
"""

from common import record, check_shape, matvec, print_header

SERVER_PROCS = (1, 2, 4, 8, 12, 16)
NV = 20


def run_fig13():
    results = {ns: matvec(1, ns, NV) for ns in SERVER_PROCS}
    print_header(f"Figure 13: breakdown for {NV} vectors, sequential client (ms)")
    print(f"{'component':<18}" + "".join(f"{ns:>9}" for ns in SERVER_PROCS))
    for comp, attr in (
        ("compute schedule", "sched_ms"),
        ("send matrix", "matrix_ms"),
        ("HPF program", "server_ms"),
        ("send/recv vector", "vector_ms"),
        ("total", "total_ms"),
    ):
        row = "".join(f"{getattr(results[ns], attr):>9.0f}" for ns in SERVER_PROCS)
        print(f"{comp:<18}{row}")
    local = results[8].local_alternative_ms
    print(f"{'client-local (model)':<18}{local:>9.0f}  "
          f"(20 sequential 512x512 multiplies in the client)")
    for ns in SERVER_PROCS:
        print(f"  speedup vs local, {ns:>2} server procs: "
              f"{results[ns].speedup_vs_local:4.2f}x")

    check_shape(
        results[8].speedup_vs_local > 2.0,
        f"8-process server beats the sequential client by >2x "
        f"({results[8].speedup_vs_local:.2f}x; paper reports 4.5x)",
    )
    check_shape(
        results[8].speedup_vs_local > results[1].speedup_vs_local,
        "speedup grows with server processes (1 -> 8)",
    )
    one = matvec(1, 8, 1)
    check_shape(
        abs(results[8].sched_ms - one.sched_ms) < 0.2 * one.sched_ms + 2
        and abs(results[8].matrix_ms - one.matrix_ms) < 0.2 * one.matrix_ms + 2,
        "schedule and matrix costs are one-time (identical for 1 or 20 vectors)",
    )
    check_shape(
        results[8].server_ms > 10 * one.server_ms,
        "per-vector work scales with the number of vectors",
    )
    record("fig13", {
        "server_procs": list(SERVER_PROCS),
        "total_ms": [results[ns].total_ms for ns in SERVER_PROCS],
        "speedup_vs_local": [
            results[ns].speedup_vs_local for ns in SERVER_PROCS
        ],
    })
    return results


def test_fig13(benchmark):
    benchmark.pedantic(run_fig13, rounds=1, iterations=1)


if __name__ == "__main__":
    run_fig13()
