"""Ablation: latency-hiding executor (OVERLAP) vs paper-faithful (ORDERED).

The paper's executor aggregates traffic into "at most one message ...
between each source and each destination processor" (§4.1.4) but fixes no
order; the reproduction historically drained sends and receives in
ascending rank order.  ``ExecutorPolicy.OVERLAP`` staggers injection
(each sender starts at ``(rank + 1) % P``) and completes receives in
*arrival* order via wait-any, unpacking one message while later ones are
still in flight.

Workload — a skewed multi-peer move where ordered draining hurts most:
even ranks own the source rows (pure senders), odd ranks own the
destination elements (pure receivers, idle until data arrives), and every
sender scatters its block across *all* receivers (``IndexRegion``
permutation).  Under ORDERED every sender injects toward the lowest
receiver first, so the highest receiver gets all its messages late and
then unpacks serially; under OVERLAP the rotated injection staggers
arrivals one message apart per receiver and arrival-order completion
pipelines each unpack under the next message's flight time.

Shape expectations: >=10% logical-elapsed-time reduction at P=16 on the
IBM SP2 profile, measurable reductions elsewhere, *identical* destination
data and message/byte counts under both policies.  Results also land in
``BENCH_overlap.json`` at the repo root (machine-readable trajectory for
regression tracking).
"""

import functools

import numpy as np

from common import check_shape, grid_sweep, print_header, record, write_trajectory
from repro.blockparti import BlockPartiArray
from repro.core import (
    ExecutorPolicy,
    IndexRegion,
    SectionRegion,
    mc_compute_schedule,
    mc_copy,
    mc_new_set_of_regions,
)
from repro.distrib.section import Section
from repro.vmachine import ALPHA_FARM_ATM, IBM_SP2, VirtualMachine

N = 256                      # global array is N x N doubles
PROC_COUNTS = (8, 16)
PROFILES = (IBM_SP2, ALPHA_FARM_ATM)


def _skewed_sors(n: int, nprocs: int):
    """Even-rank row blocks scattered across all odd-rank blocks."""
    nsend = nprocs // 2          # senders = even ranks, receivers = odd
    rows = n // nprocs           # rows per rank block
    block = n * n // nprocs      # elements per rank block
    chunk = block // nsend       # elements per (sender, receiver) message
    src = mc_new_set_of_regions(*[
        SectionRegion(
            Section((2 * t * rows, 0), ((2 * t + 1) * rows, n), (1, 1))
        )
        for t in range(nsend)
    ])
    j = np.arange(nsend * block)
    t = j // block               # source block index (sender 2t)
    r = j % block
    c = r // chunk               # chunk index -> receiver 2((t+c) % nsend)+1
    i = r % chunk
    rho = 2 * ((t + c) % nsend) + 1
    dst = mc_new_set_of_regions(IndexRegion(rho * block + c * chunk + i))
    return src, dst


@functools.cache
def run_copy(nprocs: int, profile, policy: ExecutorPolicy):
    """(max per-rank clock delta of the copy, per-rank dest arrays, stats)."""

    def spmd(comm):
        A = BlockPartiArray.zeros(comm, (N, N), nprocs_grid=(comm.size, 1))
        B = BlockPartiArray.zeros(comm, (N, N), nprocs_grid=(comm.size, 1))
        A.local[:] = np.arange(len(A.local), dtype=np.float64) + 1e5 * comm.rank
        src, dst = _skewed_sors(N, comm.size)
        sched = mc_compute_schedule(
            comm, "blockparti", A, src, "blockparti", B, dst, policy=policy
        )
        comm.barrier()
        t0 = comm.process.clock
        mc_copy(comm, sched, A, B, policy=policy)
        return comm.process.clock - t0, B.local.copy()

    result = VirtualMachine(nprocs, profile=profile).run(spmd)
    elapsed = max(v[0] for v in result.values)
    dest = [v[1] for v in result.values]
    stats = {
        "messages": result.total_stat("messages_sent"),
        "bytes": result.total_stat("bytes_sent"),
    }
    return elapsed, dest, stats


def run_ablation():
    print_header(
        f"Ablation: latency-hiding executor — rotated injection + wait-any "
        f"completion ({N}x{N} doubles, even->odd skewed scatter)"
    )
    def cell(profile, nprocs):
        t_ord, d_ord, s_ord = run_copy(nprocs, profile, ExecutorPolicy.ORDERED)
        t_ovl, d_ovl, s_ovl = run_copy(nprocs, profile, ExecutorPolicy.OVERLAP)
        identical = all(
            np.array_equal(a, b) for a, b in zip(d_ord, d_ovl)
        )
        improvement = 1.0 - t_ovl / t_ord
        key = f"{profile.name}/P{nprocs}"
        print(
            f"  {profile.name:<20} P={nprocs:<3} "
            f"ordered {t_ord * 1e3:8.3f} ms   overlap {t_ovl * 1e3:8.3f} ms   "
            f"({improvement * 100:5.1f}% faster)"
        )
        check_shape(
            identical,
            f"{key}: destination data identical under both policies",
        )
        check_shape(
            s_ord == s_ovl,
            f"{key}: identical message and byte counts "
            f"({int(s_ord['messages'])} msgs, {int(s_ord['bytes'])} bytes)",
        )
        check_shape(
            improvement > 0,
            f"{key}: overlap reduces logical elapsed time "
            f"({improvement * 100:.1f}%)",
        )
        return {
            "ordered_ms": t_ord * 1e3,
            "overlap_ms": t_ovl * 1e3,
            "improvement_pct": improvement * 100.0,
            "identical_destination": bool(identical),
            "messages": {"ordered": s_ord["messages"], "overlap": s_ovl["messages"]},
            "bytes": {"ordered": s_ord["bytes"], "overlap": s_ovl["bytes"]},
        }

    results = grid_sweep(cell, PROFILES, PROC_COUNTS)

    sp2_16 = results[f"{IBM_SP2.name}/P16"]
    check_shape(
        sp2_16["improvement_pct"] >= 10.0,
        f"IBM SP2 P=16: >=10% elapsed-time reduction "
        f"({sp2_16['improvement_pct']:.1f}%)",
    )

    record("ablation_overlap", results)
    write_trajectory(
        "overlap",
        "overlap_executor_ablation",
        {
            "array": [N, N],
            "pattern": "even-rank row blocks scattered across all odd-rank "
                       "blocks (IndexRegion permutation)",
        },
        results,
    )
    return results


def test_ablation_overlap(benchmark):
    benchmark.pedantic(run_ablation, rounds=1, iterations=1)


if __name__ == "__main__":
    run_ablation()
