"""Paper Figure 15: break-even number of vectors (§5.4).

"Break-even number of exchanged vectors, for a sequential and a
two-process client ... The server runs on four nodes, with up to four
processes per node."  The break-even point is the number of multiplies by
the same matrix after which shipping the work to the server (schedules +
matrix + per-vector path) beats computing in the client; the paper finds
~2 for the 4-8-process server with a sequential client, and *no*
break-even for the 2-client/2-server configuration.
"""

from common import record, check_shape, matvec, print_header

SERVER_PROCS = (2, 4, 8, 12, 16)
CLIENTS = (1, 2)
MAX_V = 50


def break_even(nclient: int, nserver: int) -> int | None:
    """Smallest vector count where the server path wins, from two runs.

    ``t(v) = setup + v * pervec`` and the local alternative is
    ``v * local1``, so the crossover is ``setup / (local1 - pervec)``.
    """
    t1 = matvec(nclient, nserver, 1)
    t2 = matvec(nclient, nserver, 2)
    pervec = t2.total_ms - t1.total_ms
    setup = t1.total_ms - pervec
    local1 = t1.local_alternative_ms  # one vector, this client size
    if local1 <= pervec:
        return None
    v = int(setup / (local1 - pervec)) + 1
    return v if v <= MAX_V else None


def run_fig15():
    print_header("Figure 15: break-even number of vectors")
    table = {}
    for nclient in CLIENTS:
        for ns in SERVER_PROCS:
            table[(nclient, ns)] = break_even(nclient, ns)
    print(f"{'server procs':<16}" + "".join(f"{ns:>8}" for ns in SERVER_PROCS))
    for nclient in CLIENTS:
        row = "".join(
            f"{table[(nclient, ns)] if table[(nclient, ns)] else '--':>8}"
            for ns in SERVER_PROCS
        )
        print(f"{nclient}-process client{row}")

    seq = {ns: table[(1, ns)] for ns in SERVER_PROCS}
    check_shape(
        seq[8] is not None and seq[8] <= 8,
        f"sequential client breaks even within a few vectors at 8 server "
        f"processes (got {seq[8]}; paper: ~2)",
    )
    check_shape(
        seq[4] is not None and seq[8] <= seq[4],
        "break-even improves (or holds) from 4 to 8 server processes",
    )
    check_shape(
        seq[2] is None or seq[2] >= seq[8],
        "a 2-process server needs the most vectors (or never pays off)",
    )
    two = {ns: table[(2, ns)] for ns in SERVER_PROCS}
    check_shape(
        two[2] is None or two[2] > 2 * (seq[2] or MAX_V) or two[2] > seq[8],
        "2-process client / 2-process server is the paper's no-break-even "
        f"corner (got {two[2]})",
    )
    check_shape(
        all((two[ns] or MAX_V + 1) >= (seq[ns] or MAX_V + 1) for ns in SERVER_PROCS),
        "a parallel client (faster local alternative) always needs at "
        "least as many vectors to justify the server",
    )
    record("fig15", {
        "server_procs": list(SERVER_PROCS),
        "breakeven": {
            f"client{nc}": [table[(nc, ns)] for ns in SERVER_PROCS]
            for nc in CLIENTS
        },
    })
    return table


def test_fig15(benchmark):
    benchmark.pedantic(run_fig15, rounds=1, iterations=1)


if __name__ == "__main__":
    run_fig15()
