"""Paper Figure 14: total time vs number of vectors (§5.4).

"Total time, broken down by various functions, for varying numbers of
vectors exchanged between the client and server.  The client runs
sequentially and the server is an eight-process program running on four
nodes."  The fixed components (schedules, matrix) are flat; compute and
vector transfer grow linearly — the amortization argument.
"""

import numpy as np

from common import record, check_shape, matvec, print_header

VECTOR_COUNTS = (1, 2, 4, 6, 8, 12, 16, 20)
NSERVER = 8


def run_fig14():
    results = {v: matvec(1, NSERVER, v) for v in VECTOR_COUNTS}
    print_header(
        f"Figure 14: breakdown vs number of vectors (sequential client, "
        f"{NSERVER}-process server), ms"
    )
    print(f"{'component':<18}" + "".join(f"{v:>8}" for v in VECTOR_COUNTS))
    for comp, attr in (
        ("compute schedule", "sched_ms"),
        ("send matrix", "matrix_ms"),
        ("HPF program", "server_ms"),
        ("send/recv vector", "vector_ms"),
        ("total", "total_ms"),
    ):
        row = "".join(f"{getattr(results[v], attr):>8.0f}" for v in VECTOR_COUNTS)
        print(f"{comp:<18}{row}")

    fixed = [results[v].sched_ms + results[v].matrix_ms for v in VECTOR_COUNTS]
    check_shape(
        max(fixed) - min(fixed) < 0.15 * np.mean(fixed),
        "schedule + matrix components are flat in the vector count",
    )
    per_vec = [
        (results[v].server_ms + results[v].vector_ms) / v for v in VECTOR_COUNTS
    ]
    check_shape(
        max(per_vec) - min(per_vec) < 0.35 * np.mean(per_vec),
        "compute + vector transfer grow ~linearly with the vector count",
    )
    marginal = (results[20].total_ms - results[1].total_ms) / 19
    check_shape(
        marginal < 0.25 * results[1].total_ms,
        f"marginal vector ({marginal:.1f} ms) far cheaper than the first "
        f"({results[1].total_ms:.0f} ms) — setup amortizes",
    )
    record("fig14", {
        "vectors": list(VECTOR_COUNTS),
        "total_ms": [results[v].total_ms for v in VECTOR_COUNTS],
        "marginal_ms": marginal,
    })
    return results


def test_fig14(benchmark):
    benchmark.pedantic(run_fig14, rounds=1, iterations=1)


if __name__ == "__main__":
    run_fig14()
