"""Ablation: schedule reuse (the §4.1.4 amortization, quantified).

"Since the schedule can often be computed once and reused for multiple
data transfers (e.g. for an iterative computation), the cost of creating
the schedule can be amortized."  This ablation runs K regular<->irregular
remap iterations three ways:

- rebuilding the schedule every iteration (what a naive port would do);
- building once and reusing the handle (the paper's usage);
- going through the content-keyed :class:`~repro.core.cache.ScheduleCache`
  (automatic reuse; hashing overhead only).
"""

import functools

import numpy as np

from common import check_shape, print_header, record
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import (
    IndexRegion,
    ScheduleCache,
    SectionRegion,
    mc_compute_schedule,
    mc_copy,
    mc_new_set_of_regions,
)
from repro.distrib.section import Section
from repro.vmachine import VirtualMachine

N = 96          # 9216 elements
STEPS = 10
P = 8
PERM = np.random.default_rng(50).permutation(N * N)


def _sors():
    return (
        mc_new_set_of_regions(SectionRegion(Section.full((N, N)))),
        mc_new_set_of_regions(IndexRegion(PERM)),
    )


@functools.cache
def run_one(mode: str) -> float:
    def spmd(comm):
        A = BlockPartiArray.zeros(comm, (N, N))
        A.local[:] = comm.rank + 1.0
        B = ChaosArray.zeros(comm, PERM % comm.size)
        cache = ScheduleCache(comm)
        comm.barrier()
        t0 = comm.process.clock
        sched = None
        for _ in range(STEPS):
            if mode == "rebuild":
                src, dst = _sors()
                sched = mc_compute_schedule(
                    comm, "blockparti", A, src, "chaos", B, dst
                )
            elif mode == "reuse":
                if sched is None:
                    src, dst = _sors()
                    sched = mc_compute_schedule(
                        comm, "blockparti", A, src, "chaos", B, dst
                    )
            else:  # cache
                src, dst = _sors()
                sched = cache.get_or_build(
                    "blockparti", A, src, "chaos", B, dst
                )
            mc_copy(comm, sched, A, B)
        return comm.process.clock - t0

    result = VirtualMachine(P).run(spmd)
    return max(result.values) * 1e3


def run_ablation():
    print_header(
        f"Ablation: schedule reuse over {STEPS} remap iterations "
        f"({N}x{N} regular -> {N * N}-point irregular, P={P})"
    )
    times = {mode: run_one(mode) for mode in ("rebuild", "reuse", "cache")}
    for mode, t in times.items():
        print(f"  {mode:<10} {t:10.1f} ms total "
              f"({t / STEPS:8.2f} ms/iteration)")
    speedup = times["rebuild"] / times["reuse"]
    print(f"  reuse is {speedup:.1f}x cheaper than rebuilding every step")

    check_shape(
        times["reuse"] < times["rebuild"] / 4,
        f"reusing the schedule amortizes the build ({speedup:.1f}x)",
    )
    check_shape(
        times["cache"] < times["rebuild"] / 3,
        "the content-keyed cache captures most of the saving automatically",
    )
    check_shape(
        times["cache"] < times["reuse"] * 1.25,
        "cache-key hashing overhead stays small vs explicit reuse",
    )
    record("ablation_schedule_reuse", {
        "steps": STEPS,
        "total_ms": times,
    })
    return times


def test_ablation_schedule_reuse(benchmark):
    benchmark.pedantic(run_ablation, rounds=1, iterations=1)


if __name__ == "__main__":
    run_ablation()
