"""Paper Table 5: two structured meshes in one program (§5.3).

"Schedule build time (total) and data copy time (per iteration) for two
structured meshes in one program on IBM SP2, in msec."

Workload: two 1000x1000 (block,block)-distributed double arrays; half of
each array participates (A[0:500, :] -> B[500:1000, :]) — the multiblock
inter-block boundary-update pattern.  Native Multiblock Parti schedules
are the baseline; Meta-Chaos runs both schedule methods over the same
sections.
"""

import functools

from common import record, PROC_COUNTS, check_shape, print_header, print_series
from repro.blockparti import BlockPartiArray, build_copy_schedule, parti_region
from repro.core import ScheduleMethod, mc_compute_schedule, mc_copy, mc_new_set_of_regions
from repro.vmachine import VirtualMachine

PAPER = {
    "parti": {"sched": {2: 19, 4: 11, 8: 10, 16: 9},
              "copy": {2: 467, 4: 195, 8: 101, 16: 53}},
    "mc-coop": {"sched": {2: 29, 4: 29, 8: 20, 16: 25},
                "copy": {2: 396, 4: 198, 8: 102, 16: 52}},
    "mc-dup": {"sched": {2: 24, 4: 20, 8: 14, 16: 13},
               "copy": {2: 396, 4: 198, 8: 102, 16: 52}},
}
LABELS = {"parti": "Block Parti", "mc-coop": "MC cooperation", "mc-dup": "MC duplication"}

N = 1000
SRC_REGION = parti_region((0, 0), (N // 2 - 1, N - 1))
DST_REGION = parti_region((N // 2, 0), (N - 1, N - 1))


@functools.cache
def run_one(nprocs: int, backend: str):
    def spmd(comm):
        proc = comm.process
        # At P=2, split columns (1x2 grid): the row-half copy then stays
        # entirely processor-local, reproducing the paper's observation
        # that "a large percentage of the data is copied locally" in the
        # two-processor case (where MC's direct local copy beats Parti's
        # intermediate buffer).
        grid = (1, 2) if comm.size == 2 else None
        A = BlockPartiArray.zeros(comm, (N, N), nprocs_grid=grid)
        B = BlockPartiArray.zeros(comm, (N, N), nprocs_grid=grid)
        A.local[:] = comm.rank + 1.0
        if backend == "parti":
            with proc.timer.phase("sched"):
                sched = build_copy_schedule(A, SRC_REGION, B, DST_REGION)
            with proc.timer.phase("copy"):
                sched.execute(A, B)
        else:
            method = (
                ScheduleMethod.COOPERATION
                if backend == "mc-coop"
                else ScheduleMethod.DUPLICATION
            )
            with proc.timer.phase("sched"):
                sched = mc_compute_schedule(
                    comm,
                    "blockparti", A, mc_new_set_of_regions(SRC_REGION),
                    "blockparti", B, mc_new_set_of_regions(DST_REGION),
                    method,
                )
            with proc.timer.phase("copy"):
                mc_copy(comm, sched, A, B)
        return True

    result = VirtualMachine(nprocs).run(spmd)
    t = result.merged_timing
    return t.get_ms("sched"), t.get_ms("copy")


def run_table5():
    results = {
        backend: {p: run_one(p, backend) for p in PROC_COUNTS}
        for backend in ("parti", "mc-coop", "mc-dup")
    }
    print_header("Table 5: two structured meshes — schedule (total) / copy (per iter)")
    for backend in ("parti", "mc-coop", "mc-dup"):
        print_series(
            f"{LABELS[backend]} sched", PROC_COUNTS,
            [results[backend][p][0] for p in PROC_COUNTS],
            [PAPER[backend]["sched"][p] for p in PROC_COUNTS],
        )
        print_series(
            f"{LABELS[backend]} copy", PROC_COUNTS,
            [results[backend][p][1] for p in PROC_COUNTS],
            [PAPER[backend]["copy"][p] for p in PROC_COUNTS],
        )

    for p in PROC_COUNTS:
        parti_s, parti_c = results["parti"][p]
        coop_s, coop_c = results["mc-coop"][p]
        dup_s, dup_c = results["mc-dup"][p]
        check_shape(
            parti_s <= coop_s,
            f"P={p}: native Parti schedule cheapest ({parti_s:.0f} <= {coop_s:.0f})",
        )
        check_shape(
            coop_s < 4 * parti_s,
            f"P={p}: MC overhead over Parti stays small "
            f"({coop_s:.0f} vs {parti_s:.0f})",
        )
        check_shape(
            abs(coop_c - dup_c) < 0.1 * max(coop_c, dup_c) + 1.0,
            f"P={p}: both MC methods copy identically",
        )
        check_shape(
            coop_c <= parti_c * 1.05,
            f"P={p}: MC copy <= Parti copy (direct local copies; "
            f"{coop_c:.0f} vs {parti_c:.0f})",
        )
    check_shape(
        results["mc-coop"][4][1] > 3 * results["mc-coop"][16][1],
        "copy time scales with processors (P>=4, all-remote regime)",
    )
    check_shape(
        results["mc-coop"][2][1] < results["parti"][2][1] * 0.75,
        "P=2: MC's direct local copy clearly beats Parti's buffer "
        "(the paper's 396 vs 467 ms effect)",
    )
    record("table5", {
        "procs": list(PROC_COUNTS),
        **{
            f"{b}_{what}": [results[b][p][i] for p in PROC_COUNTS]
            for b in ("parti", "mc-coop", "mc-dup")
            for i, what in ((0, "sched_ms"), (1, "copy_ms"))
        },
        "paper": PAPER,
    })
    return results


def test_table5(benchmark):
    benchmark.pedantic(run_table5, rounds=1, iterations=1)


if __name__ == "__main__":
    run_table5()
