"""Paper Figures 10-12: client/server time breakdown vs server processes.

One 512x512 double matrix is shipped to an HPF server which performs one
matrix-vector multiply per operand vector.  The figures stack four
components — compute schedule, send matrix, HPF program (server compute),
send/recv vector — against the number of server processes (1..16 on four
4-way SMP Alpha nodes), for a sequential (Fig 10), two-process (Fig 11)
and four-process (Fig 12) client.
"""

from common import record, check_shape, matvec, print_header

SERVER_PROCS = (1, 2, 4, 8, 12, 16)
CLIENTS = {"Figure 10 (sequential client)": 1,
           "Figure 11 (two-process client)": 2,
           "Figure 12 (four-process client)": 4}


def run_fig10_12():
    all_results = {}
    for title, nclient in CLIENTS.items():
        results = {ns: matvec(nclient, ns, 1) for ns in SERVER_PROCS}
        all_results[nclient] = results
        print_header(f"{title}: time breakdown vs server processes (ms)")
        print(f"{'component':<18}" + "".join(f"{ns:>9}" for ns in SERVER_PROCS))
        for comp, attr in (
            ("compute schedule", "sched_ms"),
            ("send matrix", "matrix_ms"),
            ("HPF program", "server_ms"),
            ("send/recv vector", "vector_ms"),
            ("total", "total_ms"),
        ):
            row = "".join(
                f"{getattr(results[ns], attr):>9.0f}" for ns in SERVER_PROCS
            )
            print(f"{comp:<18}{row}")

        totals = {ns: results[ns].total_ms for ns in SERVER_PROCS}
        check_shape(
            totals[8] < 0.8 * totals[1],
            f"client={nclient}: total improves substantially 1 -> 8 server "
            f"processes ({totals[1]:.0f} -> {totals[8]:.0f})",
        )
        check_shape(
            abs(totals[16] - totals[8]) < 0.08 * totals[8],
            f"client={nclient}: total flat beyond 8 processes "
            f"({totals[8]:.0f} vs {totals[16]:.0f}) — extra processes no "
            "longer pay (the paper's 8-process optimum)",
        )
        check_shape(
            results[16].server_ms < results[1].server_ms / 3,
            f"client={nclient}: server compute scales down with processes",
        )
        check_shape(
            results[16].sched_ms > results[4].sched_ms,
            f"client={nclient}: schedule cost rises again past 4 server "
            "processes (message count + ATM contention)",
        )
        check_shape(
            results[4].matrix_ms < results[1].matrix_ms
            and abs(results[16].matrix_ms - results[4].matrix_ms)
            < 0.15 * results[4].matrix_ms,
            f"client={nclient}: matrix transfer parallelizes 1 -> 4 then "
            "hits the client's injection bound",
        )
        record(f"fig10_12_client{nclient}", {
            "server_procs": list(SERVER_PROCS),
            "sched_ms": [results[ns].sched_ms for ns in SERVER_PROCS],
            "matrix_ms": [results[ns].matrix_ms for ns in SERVER_PROCS],
            "server_ms": [results[ns].server_ms for ns in SERVER_PROCS],
            "vector_ms": [results[ns].vector_ms for ns in SERVER_PROCS],
            "total_ms": [results[ns].total_ms for ns in SERVER_PROCS],
        })
    return all_results


def test_fig10_12(benchmark):
    benchmark.pedantic(run_fig10_12, rounds=1, iterations=1)


if __name__ == "__main__":
    run_fig10_12()
