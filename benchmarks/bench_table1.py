"""Paper Table 1: inspector/executor time for the coupled meshes (§5.1).

"Inspector time (total) and executor time (per iteration) for regular and
irregular meshes in one program on IBM SP2, in msec."

Workload: 256x256 regular mesh (Multiblock Parti) + 65536-point irregular
mesh (Chaos), intra-mesh schedules and sweeps only.
"""

from common import record, PROC_COUNTS, check_shape, coupled_single, print_header, print_series

PAPER_INSPECTOR = {2: 1533, 4: 1340, 8: 667, 16: 684}
PAPER_EXECUTOR = {2: 91, 4: 66, 8: 65, 16: 53}


def run_table1():
    results = {p: coupled_single(p, "mc-coop") for p in PROC_COUNTS}
    print_header("Table 1: inspector (total) / executor (per iteration)")
    print_series(
        "inspector", PROC_COUNTS,
        [results[p].inspector_ms for p in PROC_COUNTS],
        [PAPER_INSPECTOR[p] for p in PROC_COUNTS],
    )
    print_series(
        "executor", PROC_COUNTS,
        [results[p].executor_per_iter_ms for p in PROC_COUNTS],
        [PAPER_EXECUTOR[p] for p in PROC_COUNTS],
    )
    insp = [results[p].inspector_ms for p in PROC_COUNTS]
    execu = [results[p].executor_per_iter_ms for p in PROC_COUNTS]
    check_shape(insp[0] > insp[-1] * 2, "inspector time scales down with P")
    check_shape(execu[0] > execu[-1], "executor time scales down with P")
    check_shape(
        500 < insp[0] < 5000, "inspector at P=2 lands in the paper's regime"
    )
    check_shape(
        insp[0] > 10 * execu[0],
        "one-time inspector >> per-iteration executor (amortization story)",
    )
    # Partition sensitivity: the paper does not state its partitioner; a
    # locality-free (block-on-random-ids) partition reproduces the paper's
    # executor magnitude, while RCB (our default) runs leaner.
    from common import MESH_SHAPE, paper_mapping, paper_mesh
    from repro.apps.coupled import run_coupled_single_program

    blockpart = run_coupled_single_program(
        2, MESH_SHAPE, paper_mesh(), paper_mapping(),
        timesteps=1, remap="mc-coop", partition="block",
    )
    print(f"  (block partition @P=2: executor "
          f"{blockpart.executor_per_iter_ms:.0f} ms vs paper's 91 ms — the "
          "executor gap to the paper is partition locality, not the model)")
    check_shape(
        0.5 * PAPER_EXECUTOR[2] < blockpart.executor_per_iter_ms
        < 2.0 * PAPER_EXECUTOR[2],
        "a locality-free partition reproduces the paper's executor magnitude",
    )
    record("table1", {
        "block_partition_executor_ms_p2": blockpart.executor_per_iter_ms,
        "procs": list(PROC_COUNTS),
        "inspector_ms": insp,
        "executor_per_iter_ms": execu,
        "paper_inspector_ms": [PAPER_INSPECTOR[p] for p in PROC_COUNTS],
        "paper_executor_ms": [PAPER_EXECUTOR[p] for p in PROC_COUNTS],
    })
    return results


def test_table1(benchmark):
    benchmark.pedantic(run_table1, rounds=1, iterations=1)


if __name__ == "__main__":
    run_table1()
