"""Ablation: vectorized vs per-element schedule construction (wall clock).

DESIGN.md commits to building schedules with vectorized NumPy arithmetic
("linearization is never materialized ... no O(total elements) Python
loops").  This is the one benchmark measuring *wall-clock* time of the
implementation itself: the vectorized owner computation of a regular
section against a straightforward per-element Python-loop reference
(validated to produce identical results).
"""

import numpy as np

from common import check_shape, print_header
from repro.distrib.cartesian import CartesianDist
from repro.distrib.section import Section

N = 512
DIST = CartesianDist.block_nd((N, N), 16)
SECTION = Section((0, 0), (N, N // 2), (1, 1))


def vectorized():
    return DIST.section_map(SECTION)


def per_element_reference():
    """The naive implementation a non-vectorized port would write."""
    shape = DIST.global_shape
    ranks = np.empty(SECTION.size, dtype=np.int64)
    offsets = np.empty(SECTION.size, dtype=np.int64)
    k = 0
    for i in range(SECTION.starts[0], SECTION.stops[0], SECTION.steps[0]):
        for j in range(SECTION.starts[1], SECTION.stops[1], SECTION.steps[1]):
            flat = np.array([i * shape[1] + j])
            r, o = DIST.owner_of_flat(flat)
            ranks[k] = r[0]
            offsets[k] = o[0]
            k += 1
    return ranks, offsets


def test_results_identical():
    import itertools

    # Validate on a smaller section so the loop reference stays quick.
    small = Section((0, 0), (40, 40), (3, 2))
    r1, o1 = DIST.section_map(small)
    flat = small.global_flat(DIST.global_shape)
    r2, o2 = DIST.owner_of_flat(flat)
    np.testing.assert_array_equal(r1, r2)
    np.testing.assert_array_equal(o1, o2)


def test_ablation_vectorized(benchmark):
    import time

    # Wall-clock the per-element reference once (it is the slow side).
    small = Section((0, 0), (64, 64), (1, 1))

    def loop_small():
        shape = DIST.global_shape
        for i in range(small.starts[0], small.stops[0]):
            for j in range(small.starts[1], small.stops[1]):
                DIST.owner_of_flat(np.array([i * shape[1] + j]))

    t0 = time.perf_counter()
    loop_small()
    loop_time = time.perf_counter() - t0
    loop_per_elem = loop_time / small.size

    result = benchmark(vectorized)
    vec_per_elem = (
        benchmark.stats.stats.mean / SECTION.size
        if benchmark.stats is not None
        else 0.0
    )
    print_header("Ablation: vectorized vs per-element schedule arithmetic")
    print(f"per-element Python loop: {loop_per_elem * 1e6:8.2f} us/element")
    print(f"vectorized section_map:  {vec_per_elem * 1e9:8.2f} ns/element")
    speedup = loop_per_elem / max(vec_per_elem, 1e-12)
    print(f"speedup: {speedup:,.0f}x")
    check_shape(speedup > 50, f"vectorization pays >50x (got {speedup:,.0f}x)")
