"""Ablation: replicated vs paged (distributed) translation tables.

The replicated table dereferences locally but costs O(N) memory *per
rank* — the very property that makes the duplication method "not
practical" across programs (§5.1).  The paged table stores O(N/P) per
rank but pays a request/reply communication round per dereference batch.
This ablation quantifies the trade-off the paper's design discussion
rests on.
"""

import functools

import numpy as np

from common import check_shape, print_header
from repro.chaos import PagedTranslationTable, TranslationTable
from repro.vmachine import VirtualMachine

N = 65536
OWNERS = np.random.default_rng(41).integers(0, 16, N)


@functools.cache
def run_one(nprocs: int, paged: bool):
    queries = np.random.default_rng(42).integers(0, N, N // 4)

    def spmd(comm):
        owners = OWNERS % comm.size
        if paged:
            table = PagedTranslationTable(comm, owners)
        else:
            table = TranslationTable.from_owners(owners, comm.size)
        mine = queries[comm.rank :: comm.size]
        comm.barrier()
        t0 = comm.process.clock
        if paged:
            table.dereference(mine)
        else:
            table.dereference(mine)
        return (comm.process.clock - t0, table.nbytes)

    res = VirtualMachine(nprocs).run(spmd)
    time_ms = max(v[0] for v in res.values) * 1e3
    mem = max(v[1] for v in res.values)
    return time_ms, mem


def run_ablation():
    print_header("Ablation: replicated vs paged translation table "
                 f"({N}-entry table, {N // 4} lookups)")
    print(f"{'P':>4}{'replicated ms':>16}{'paged ms':>12}"
          f"{'repl mem/rank':>16}{'paged mem/rank':>16}")
    for p in (2, 4, 8, 16):
        r_t, r_m = run_one(p, False)
        p_t, p_m = run_one(p, True)
        print(f"{p:>4}{r_t:>16.1f}{p_t:>12.1f}{r_m:>16,}{p_m:>16,}")
        check_shape(
            p_m <= r_m / p + 64,
            f"P={p}: paged table memory scales down ~1/P",
        )
        check_shape(
            p_t >= r_t,
            f"P={p}: paged dereference is never faster (pays a comm round)",
        )
    r16_t, _ = run_one(16, False)
    p16_t, _ = run_one(16, True)
    check_shape(
        p16_t < 4 * r16_t,
        "the paged penalty stays bounded (batched request/reply)",
    )


def test_ablation_paged_table(benchmark):
    benchmark.pedantic(run_ablation, rounds=1, iterations=1)


if __name__ == "__main__":
    run_ablation()
