"""Benchmark: one-sided windows driving sparse CP-ALS through containers.

The coupling pattern the two-sided schedules cannot express cheaply:
data-dependent assembly (duplicate COO entries summed into a
:class:`~repro.containers.DistHashMap`) followed by an iterative solve
whose every remote access is one-sided — factor rows fetched with window
``get``, MTTKRP partials scattered with window ``accumulate`` (or pushed
through a :class:`~repro.containers.DistQueue` in the ``queue`` variant).
The receiver never posts a matching receive; every operation is still
charged on the logical clock like a send, so the numbers below are
deterministic trajectories.

Configurations: P in {4, 8, 16} on the SP2 profile, both scatter
variants.  Every cell cross-checks the gathered factors against the
serial NumPy oracle (rtol 1e-10) and records the one-sided message and
byte counts next to the clock times.  Results land in
``BENCH_rma.json`` at the repo root for regression tracking.
"""

import functools
import json
from pathlib import Path

import numpy as np

from common import check_shape, print_header, record
from repro.apps.cp_als import cp_als_serial, cp_als_spmd
from repro.vmachine import IBM_SP2, VirtualMachine

SHAPE = (12, 11, 10)
RANK_R = 3
NNZ = 200
ITERS = 3
SEED = 7
PROC_COUNTS = (4, 8, 16)
VARIANTS = ("accumulate", "queue")
REPO_ROOT = Path(__file__).parent.parent

RMA_COUNTERS = (
    "rma_puts", "rma_gets", "rma_accs", "rma_fetch_ops",
    "rma_bytes_put", "rma_bytes_got", "rma_fences",
    "hashmap_writes", "hashmap_write_rounds", "queue_pushes",
)


@functools.cache
def oracle():
    return cp_als_serial(SHAPE, RANK_R, NNZ, ITERS, SEED)


@functools.cache
def run_cp_als(nprocs: int, variant: str):
    def spmd(comm):
        t0 = comm.process.clock
        out = cp_als_spmd(comm, shape=SHAPE, R=RANK_R, nnz=NNZ,
                          iters=ITERS, seed=SEED,
                          use_queue=(variant == "queue"))
        return comm.process.clock - t0, out

    vm = VirtualMachine(nprocs, profile=IBM_SP2, recv_timeout_s=120.0)
    result = vm.run(spmd)
    elapsed = max(v[0] for v in result.values)
    outs = [v[1] for v in result.values]
    counters = {
        k: sum(o.stats.get(k, 0) for o in outs) for k in RMA_COUNTERS
    }
    match = all(
        np.allclose(o.factors[m], oracle()[m], rtol=1e-10, atol=1e-12)
        for o in outs for m in range(3)
    )
    return elapsed, outs, counters, match


def run_bench():
    print_header(
        f"One-sided windows: sparse CP-ALS {SHAPE} rank {RANK_R}, "
        f"{NNZ} raw nonzeros, {ITERS} sweeps"
    )
    results = {}
    for nprocs in PROC_COUNTS:
        for variant in VARIANTS:
            elapsed, outs, counters, match = run_cp_als(nprocs, variant)
            one_sided_msgs = int(
                counters["rma_puts"] + counters["rma_gets"]
                + counters["rma_accs"] + counters["rma_fetch_ops"])
            one_sided_bytes = int(
                counters["rma_bytes_put"] + counters["rma_bytes_got"])
            key = f"IBM_SP2/P{nprocs}/{variant}"
            results[key] = {
                "profile": "IBM_SP2",
                "nprocs": nprocs,
                "variant": variant,
                "cp_als_ms": elapsed * 1e3,
                "one_sided_messages": one_sided_msgs,
                "one_sided_bytes": one_sided_bytes,
                "fences": int(counters["rma_fences"]),
                "hashmap_write_rounds": int(
                    counters["hashmap_write_rounds"]),
                "queue_pushes": int(counters["queue_pushes"]),
                "dedup_nnz": int(sum(o.local_nnz for o in outs)),
                "oracle_match": bool(match),
            }
            print(
                f"  P={nprocs:<3} {variant:<11} "
                f"{elapsed * 1e3:9.3f} ms   "
                f"{one_sided_msgs:6d} one-sided msgs   "
                f"{one_sided_bytes:8d} bytes   oracle "
                f"{'OK' if match else 'MISMATCH'}"
            )
            check_shape(match, f"{key}: factors match the serial oracle "
                               f"(rtol 1e-10)")
            check_shape(one_sided_msgs > 0,
                        f"{key}: traffic is one-sided "
                        f"({one_sided_msgs} window ops)")
    for nprocs in PROC_COUNTS:
        acc = results[f"IBM_SP2/P{nprocs}/accumulate"]
        que = results[f"IBM_SP2/P{nprocs}/queue"]
        check_shape(
            que["one_sided_bytes"] > acc["one_sided_bytes"],
            f"P{nprocs}: the queue detour moves extra bytes — records "
            f"carry their row index ({que['one_sided_bytes']} vs "
            f"{acc['one_sided_bytes']})",
        )

    record("rma_cp_als", results)
    trajectory = {
        "benchmark": "one_sided_cp_als",
        "workload": {
            "tensor": list(SHAPE),
            "cp_rank": RANK_R,
            "raw_nnz": NNZ,
            "sweeps": ITERS,
            "seed": SEED,
        },
        "results": results,
    }
    (REPO_ROOT / "BENCH_rma.json").write_text(
        json.dumps(trajectory, indent=2) + "\n"
    )
    return results


def test_bench_rma(benchmark):
    benchmark.pedantic(run_bench, rounds=1, iterations=1)


if __name__ == "__main__":
    run_bench()
