"""Auto-mapper validation: analytical search vs exhaustive measurement.

For each of three workloads shaped like the paper's evaluation tables —
the §5.2 regular→irregular mesh remap (table 3), the reverse direction
with the irregular side pinned (table 4), and the §5.3 multiblock
boundary-section update with four fused fields (table 5) — and each
P ∈ {4, 8, 16, 64}:

1. ``search_mapping`` ranks the pruned candidate space analytically
   (host-side arithmetic, zero virtual-machine runs), after calibrating
   the build-tier coefficients once per workload at the smallest P;
2. every candidate is then *measured* under ``observe=True`` — the
   exhaustive grid the searcher is supposed to replace;
3. the gate: the auto-chosen mapping's measured total is within 5% of
   the exhaustive measured optimum, and the analytical search costs far
   less wall time than the exhaustive measurement it replaces (and less
   than a single mis-mapped run at the larger P).

Results land in ``BENCH_autotune.json`` at the repo root (trajectory
for ``check_regression.py``) and ``results/autotune.json``.

``--smoke`` shrinks to one workload at P ∈ {4, 8} and 4096 elements for
CI (structure identical, minutes → seconds).
"""

import sys
import time

from common import (
    check_shape,
    grid_sweep,
    print_header,
    record,
    write_trajectory,
)
from repro.autotune import (
    CostModel,
    DistSpec,
    WorkloadSpec,
    calibrate,
    measure_mapping,
    search_mapping,
)
from repro.vmachine import IBM_SP2

SMOKE = "--smoke" in sys.argv

NELEMS = 4096 if SMOKE else 65536
PROC_COUNTS = (4, 8) if SMOKE else (4, 8, 16, 64)
TOLERANCE = 0.05

#: per-side distribution menu (regular kinds + the seeded partitioner
#: standing in for the application's)
MENU = (DistSpec("block"), DistSpec("cyclic"), DistSpec("irregular", seed=11))

#: the three table-shaped workloads: name -> (WorkloadSpec kwargs,
#: mapping_space kwargs pinning the side the application already owns)
WORKLOADS = {
    "table3_remap": (
        dict(pattern="permute", seed=3, reuse=10),
        dict(fixed_src=DistSpec("block"), dist_menu=MENU),
    ),
    "table4_reverse": (
        dict(pattern="permute", seed=4, reuse=10),
        dict(fixed_dst=DistSpec("irregular", seed=13), dist_menu=MENU),
    ),
    "table5_multiblock": (
        dict(pattern="section", seed=5, reuse=50, narrays=4),
        dict(fixed_src=DistSpec("block"),
             dist_menu=(DistSpec("block"), DistSpec("cyclic"))),
    ),
}
if SMOKE:
    WORKLOADS = {"table3_remap": WORKLOADS["table3_remap"]}


def _calibrated_model(name, wl_kwargs, space_kwargs) -> CostModel:
    """Fit the build-tier coefficients once per workload at the smallest
    P; the machine profile doesn't change with P, so the fit carries."""
    wl = WorkloadSpec(name, nelems=NELEMS, nprocs=PROC_COUNTS[0], **wl_kwargs)
    first = search_mapping(wl, **space_kwargs)
    return calibrate(wl, [p.mapping for p in first.ranked[:4]])


def run_autotune():
    print_header(
        f"Auto-mapper: analytical search vs exhaustive measurement "
        f"(n={NELEMS}, P={PROC_COUNTS}"
        + (", smoke)" if SMOKE else ")")
    )
    models = {
        name: _calibrated_model(name, wl_kwargs, space_kwargs)
        for name, (wl_kwargs, space_kwargs) in WORKLOADS.items()
    }
    all_results = {}
    for name, (wl_kwargs, space_kwargs) in WORKLOADS.items():

        def cell(profile, nprocs, name=name, wl_kwargs=wl_kwargs,
                 space_kwargs=space_kwargs):
            wl = WorkloadSpec(name, nelems=NELEMS, nprocs=nprocs, **wl_kwargs)
            search = search_mapping(wl, model=models[name], **space_kwargs)

            # The exhaustive measured grid the searcher replaces: run
            # every structurally admissible candidate, including the
            # ones branch-and-bound pruned (the measurement must not
            # trust the model it is validating).
            from repro.autotune import mapping_space

            measured = {}
            wall = {}
            for mapping in mapping_space(wl, **space_kwargs):
                t0 = time.perf_counter()
                measured[mapping] = measure_mapping(wl, mapping)
                wall[mapping] = time.perf_counter() - t0

            chosen = search.best.mapping
            chosen_ms = measured[chosen].total_s * 1e3
            best_mapping = min(measured, key=lambda m: measured[m].total_s)
            best_ms = measured[best_mapping].total_s * 1e3
            worst_mapping = max(measured, key=lambda m: measured[m].total_s)
            worst_ms = measured[worst_mapping].total_s * 1e3
            gap = (chosen_ms - best_ms) / best_ms
            search_wall_ms = search.search_wall_s * 1e3
            exhaustive_wall_ms = sum(wall.values()) * 1e3
            mismapped_wall_ms = wall[worst_mapping] * 1e3

            key = f"{name}/P{nprocs}"
            print(
                f"  {key:<28} chose {chosen.label():<44} "
                f"{chosen_ms:9.3f} ms (best {best_ms:9.3f} ms, "
                f"gap {gap * 100:4.1f}%, worst {worst_ms:9.3f} ms)"
            )
            print(
                f"  {'':<28} search {search_wall_ms:7.1f} ms wall vs "
                f"exhaustive measurement {exhaustive_wall_ms:9.1f} ms wall "
                f"({len(measured)} candidates)"
            )
            check_shape(
                gap <= TOLERANCE,
                f"{key}: auto-chosen mapping within "
                f"{TOLERANCE:.0%} of measured optimum ({gap:.2%})",
            )
            check_shape(
                search_wall_ms < exhaustive_wall_ms,
                f"{key}: analytical search ({search_wall_ms:.0f} ms) "
                f"cheaper than the exhaustive grid "
                f"({exhaustive_wall_ms:.0f} ms)",
            )
            return {
                "workload": name,
                "chosen_mapping": chosen.label(),
                "chosen_measured_ms": chosen_ms,
                "best_mapping": best_mapping.label(),
                "best_measured_ms": best_ms,
                "worst_mapping": worst_mapping.label(),
                "worst_measured_ms": worst_ms,
                "optimality_gap_pct": gap * 100.0,
                "candidates": len(measured),
                "pruned_in_search": search.pruned,
                "search_wall_ms": search_wall_ms,
                "exhaustive_wall_ms": exhaustive_wall_ms,
                "mismapped_run_wall_ms": mismapped_wall_ms,
                "mismap_penalty_ms": worst_ms - best_ms,
            }

        results = grid_sweep(cell, (IBM_SP2,), PROC_COUNTS)
        for key, row in results.items():
            all_results[f"{name}/{key.split('/')[-1]}"] = row

    # At scale, one mis-mapped *measured* run alone costs more wall time
    # than the whole analytical search.
    big = max(PROC_COUNTS)
    for name in WORKLOADS:
        row = all_results[f"{name}/P{big}"]
        check_shape(
            row["search_wall_ms"] < row["mismapped_run_wall_ms"],
            f"{name}/P{big}: search ({row['search_wall_ms']:.0f} ms) "
            f"cheaper than one mis-mapped run "
            f"({row['mismapped_run_wall_ms']:.0f} ms wall)",
        )

    record("autotune", all_results)
    if not SMOKE:
        write_trajectory(
            "autotune",
            "cost_model_auto_mapper",
            {
                "nelems": NELEMS,
                "proc_counts": list(PROC_COUNTS),
                "workloads": {
                    name: kw for name, (kw, _) in WORKLOADS.items()
                },
                "tolerance_pct": TOLERANCE * 100.0,
            },
            all_results,
        )
    return all_results


def test_autotune(benchmark):
    benchmark.pedantic(run_autotune, rounds=1, iterations=1)


if __name__ == "__main__":
    run_autotune()
