#!/usr/bin/env python3
"""Render recorded benchmark results as Markdown.

Every ``bench_*.py`` module persists its numbers under
``benchmarks/results/<name>.json`` when it runs; this script turns those
records into the Markdown tables EXPERIMENTS.md quotes, so the document
can be refreshed mechanically::

    pytest benchmarks/ --benchmark-only     # produce/refresh the records
    python benchmarks/report.py             # print all tables
    python benchmarks/report.py table2 fig15
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS = Path(__file__).parent / "results"


def _fmt(v) -> str:
    if v is None:
        return "—"
    if isinstance(v, float):
        return f"{v:.0f}" if abs(v) >= 10 else f"{v:.2f}"
    return str(v)


def render(record: dict) -> str:
    name = record["experiment"]
    data = record["data"]
    lines = [f"### {record.get('title', name)}", ""]
    # Grid-style records (tables 3/4): dict-of-dict numeric blocks.
    grids = {
        k: v for k, v in data.items()
        if isinstance(v, dict) and k != "paper"
        and all(isinstance(x, dict) for x in v.values())
    }
    series_keys = [
        k for k, v in data.items()
        if isinstance(v, list) and k not in ("procs", "grid", "vectors",
                                             "server_procs")
    ]
    axis = (
        data.get("procs") or data.get("server_procs")
        or data.get("vectors") or data.get("grid")
    )
    if grids:
        for gname, grid in grids.items():
            lines.append(f"**{gname}** (rows x cols)")
            lines.append("")
            cols = list(next(iter(grid.values())).keys())
            lines.append("| | " + " | ".join(str(c) for c in cols) + " |")
            lines.append("|" + "---|" * (len(cols) + 1))
            for row, vals in grid.items():
                lines.append(
                    f"| {row} | " + " | ".join(_fmt(vals[c]) for c in cols) + " |"
                )
            lines.append("")
    elif axis:
        rows: list[tuple[str, list]] = []
        for key, vals in data.items():
            if key in ("procs", "grid", "vectors", "server_procs", "paper"):
                continue
            if isinstance(vals, list) and len(vals) == len(axis):
                rows.append((key, vals))
            elif isinstance(vals, dict):
                for sub, subvals in vals.items():
                    if isinstance(subvals, list) and len(subvals) == len(axis):
                        rows.append((f"{key}.{sub}", subvals))
        if not rows:
            lines.append("```json")
            lines.append(json.dumps(data, indent=2, default=str))
            lines.append("```")
            lines.append("")
            return "\n".join(lines)
        lines.append("| series | " + " | ".join(str(a) for a in axis) + " |")
        lines.append("|" + "---|" * (len(axis) + 1))
        for key, vals in rows:
            lines.append(
                f"| {key} | " + " | ".join(_fmt(v) for v in vals) + " |"
            )
        lines.append("")
    else:
        lines.append("```json")
        lines.append(json.dumps(data, indent=2, default=str))
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    results_dir = RESULTS
    if argv and argv[0] == "--dir":
        results_dir = Path(argv[1])
        argv = argv[2:]
    if not results_dir.exists():
        print("no results yet — run `pytest benchmarks/ --benchmark-only` first")
        return 1
    wanted = set(argv) if argv else None
    shown = 0
    for path in sorted(results_dir.glob("*.json")):
        if wanted and path.stem not in wanted:
            continue
        print(render(json.loads(path.read_text())))
        shown += 1
    if wanted and shown < len(wanted):
        known = sorted(p.stem for p in results_dir.glob("*.json"))
        print(f"(some requested records missing; recorded: {known})")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
