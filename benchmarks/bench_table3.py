"""Paper Table 3: Meta-Chaos schedule build across two programs (§5.2).

"Time for Meta-Chaos schedule computation for 2 separate programs on IBM
SP2, in msec" — regular program Preg x irregular program Pirreg, each on
2/4/8 processors, cooperation method.
"""

from common import record, check_shape, coupled_two, print_header

PAPER = {
    2: {2: 1350, 4: 726, 8: 396},
    4: {2: 1377, 4: 738, 8: 403},
    8: {2: 1381, 4: 718, 8: 398},
}
GRID = (2, 4, 8)


def run_table3():
    results = {pr: {pi: coupled_two(pr, pi) for pi in GRID} for pr in GRID}
    print_header("Table 3: two-program schedule build (rows: Preg, cols: Pirreg)")
    print(f"{'':>8}" + "".join(f"{pi:>16}" for pi in GRID))
    for pr in GRID:
        ours = "".join(f"{results[pr][pi].sched_ms:>8.0f}/{PAPER[pr][pi]:<7}" for pi in GRID)
        print(f"{pr:>8}{ours}   (ours/paper)")

    # Shape: time tracks the irregular side, not the regular side.
    for pr in GRID:
        row = [results[pr][pi].sched_ms for pi in GRID]
        check_shape(
            row[0] > 2.0 * row[2],
            f"Preg={pr}: build speeds up ~linearly with Pirreg "
            f"({row[0]:.0f} -> {row[2]:.0f})",
        )
    for pi in GRID:
        col = [results[pr][pi].sched_ms for pr in GRID]
        spread = (max(col) - min(col)) / max(col)
        check_shape(
            spread < 0.35,
            f"Pirreg={pi}: build nearly flat in Preg (spread {spread:.0%})",
        )
    record("table3", {
        "grid": list(GRID),
        "sched_ms": {pr: {pi: results[pr][pi].sched_ms for pi in GRID} for pr in GRID},
        "paper": PAPER,
    })
    return results


def test_table3(benchmark):
    benchmark.pedantic(run_table3, rounds=1, iterations=1)


if __name__ == "__main__":
    run_table3()
