"""Artifact format: serialization round trips, sealing, tamper localization."""

import base64
import copy
import json

import numpy as np
import pytest

from repro.replay.artifact import (
    IntegrityViolation,
    ReplayFormatError,
    checksum_ok,
    decode_payload,
    decode_receipt,
    encode_payload,
    encode_receipt,
    faultplan_from_dict,
    faultplan_to_dict,
    load_artifact,
    save_artifact,
    seal_body,
    verify_artifact,
)
from repro.replay.fingerprint import payload_digest
from repro.vmachine.faults import (
    CrashEvent,
    DeliveryReceipt,
    FaultPlan,
    FaultRates,
    FaultRule,
    OK_RECEIPT,
)
from repro.vmachine.trace import TraceEvent, event_from_tuple, event_to_tuple

#: every event kind the runtime emits (messages, fault annotations from
#: the chaos layer, fused-plan executor marks) — all must round-trip
ALL_KINDS = [
    "send", "recv",
    "fault:drop", "fault:dup", "fault:hold", "fault:delay", "fault:corrupt",
    "plan:fuse",
]


class TestTraceEventRoundTrip:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_round_trip_every_kind(self, kind):
        e = TraceEvent(kind, 0.0123456789012345, 3, 7, (5 << 32) + 17,
                       4096, wait=0.25, phase="push/wire")
        assert event_from_tuple(event_to_tuple(e)) == e

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_round_trip_through_json(self, kind):
        e = TraceEvent(kind, 1.5e-5, 0, 15, (1 << 32) + (1 << 24) + 3,
                       80, wait=0.0, phase="")
        t = json.loads(json.dumps(event_to_tuple(e)))
        assert event_from_tuple(t) == e

    def test_huge_wire_tags_survive_json_exactly(self):
        # Split communicators Cantor-pair context blocks: tags far beyond
        # 2**53 must not lose bits (JSON ints are exact in Python).
        tag = (1 << 20) * (1 << 32) + 123456789
        e = TraceEvent("send", 0.0, 0, 1, tag, 8)
        assert event_from_tuple(json.loads(json.dumps(event_to_tuple(e)))).tag == tag

    def test_default_fields(self):
        e = TraceEvent("send", 1.0, 0, 1, 5, 64)
        got = event_from_tuple(event_to_tuple(e))
        assert got.wait == 0.0 and got.phase == ""


def _receipt_fields(r):
    return (r.delivered, r.dropped, r.corrupted, r.held, r.duplicated,
            r.delay_s)


class TestReceiptCodec:
    def test_ok_receipt_is_compact(self):
        assert encode_receipt(OK_RECEIPT) == "ok"
        assert decode_receipt("ok") is OK_RECEIPT

    def test_faulted_receipt_round_trips(self):
        r = DeliveryReceipt(delivered=2, dropped=False, corrupted=False,
                            held=True, duplicated=1, delay_s=0.125)
        got = decode_receipt(json.loads(json.dumps(encode_receipt(r))))
        assert _receipt_fields(got) == _receipt_fields(r)

    def test_dropped_receipt_round_trips(self):
        r = DeliveryReceipt(delivered=0, dropped=True, corrupted=False,
                            held=False, duplicated=0, delay_s=0.0)
        assert _receipt_fields(decode_receipt(encode_receipt(r))) == \
            _receipt_fields(r)


class TestFaultPlanCodec:
    def _plan(self):
        return FaultPlan(
            seed=42,
            rules=[
                FaultRule(
                    rates=FaultRates(drop=0.1, dup=0.05, reorder=0.2,
                                     delay=0.15, corrupt=0.01,
                                     delay_range_s=(1e-4, 5e-3)),
                    src=1, dst=None, classes=("data", "user"),
                ),
            ],
            slowdown={2: 1.5, 0: 2.0},
            crashes=[CrashEvent(rank=3, after_sends=10)],
        )

    def test_round_trip_is_stable(self):
        d = faultplan_to_dict(self._plan())
        d2 = faultplan_to_dict(faultplan_from_dict(json.loads(json.dumps(d))))
        assert d == d2

    def test_none_passes_through(self):
        assert faultplan_to_dict(None) is None
        assert faultplan_from_dict(None) is None

    def test_reconstructed_plan_draws_identically(self):
        a, b = self._plan(), faultplan_from_dict(faultplan_to_dict(self._plan()))
        # Same per-channel RNG streams: the draw schedule re-derives from
        # the seed, which is the whole record/replay contract for faults.
        assert a.seed == b.seed
        ra = a._channel_rng(0, 1) if hasattr(a, "_channel_rng") else None
        if ra is not None:
            rb = b._channel_rng(0, 1)
            assert [ra.random() for _ in range(8)] == [rb.random() for _ in range(8)]


class TestPayloadCodec:
    def test_ndarray_round_trip(self):
        x = np.arange(12, dtype=np.float64).reshape(3, 4)[:, ::2]
        y = decode_payload(encode_payload(x))
        np.testing.assert_array_equal(x, y)
        assert payload_digest(x) == payload_digest(y)

    def test_tuple_payload_round_trip(self):
        x = (3, "hdr", np.arange(5))
        y = decode_payload(encode_payload(x))
        assert y[0] == 3 and y[1] == "hdr"
        np.testing.assert_array_equal(x[2], y[2])

    def test_unpicklable_returns_none(self):
        assert encode_payload(lambda: None) is None


def _tiny_artifact(payload=b"hello-world"):
    digest = payload_digest(payload)
    body = {
        "version": 1, "kind": "vm", "payloads": True, "note": "",
        "config": {"nprocs": 2, "profile": "IBM-SP2/MPL", "programs": None,
                   "recv_timeout_s": None, "copy_on_send": False,
                   "observe": False, "workload": None},
        "env": {}, "env_fingerprint": "x", "fault_plan": None,
        "ranks": [
            {"sends": [[0, 1, 5, 11, 1e-5, digest, "ok"]], "recvs": [],
             "probes": "", "trace": [], "clock": 1e-5, "value": "aa"},
            {"sends": [],
             "recvs": [[0, 0, 5, 11, 1e-5, 2e-5, 0.0, digest,
                        encode_payload(payload)]],
             "probes": "01", "trace": [], "clock": 2e-5, "value": "bb"},
        ],
        "error": None,
    }
    return seal_body(body)


class TestEnvelope:
    def test_save_load_json(self, tmp_path):
        art = _tiny_artifact()
        p = save_artifact(art, str(tmp_path / "a.json"))
        assert load_artifact(p) == art

    def test_save_load_gzip(self, tmp_path):
        art = _tiny_artifact()
        p = save_artifact(art, str(tmp_path / "a.json.gz"))
        assert load_artifact(p) == art

    def test_checksum_detects_any_body_change(self):
        art = _tiny_artifact()
        assert checksum_ok(art)
        mutated = copy.deepcopy(art)
        mutated["body"]["ranks"][0]["clock"] = 9.0
        assert not checksum_ok(mutated)

    def test_non_artifact_rejected(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text("{\"hello\": 1}")
        with pytest.raises(ReplayFormatError):
            load_artifact(str(p))

    def test_garbage_rejected(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text("not json at all")
        with pytest.raises(ReplayFormatError):
            load_artifact(str(p))

    def test_unknown_version_rejected(self, tmp_path):
        art = _tiny_artifact()
        art["body"]["version"] = 99
        p = save_artifact(art, str(tmp_path / "v.json"))
        with pytest.raises(ReplayFormatError, match="version"):
            load_artifact(p)


class TestTamperLocalization:
    def test_clean_artifact_verifies(self):
        assert verify_artifact(_tiny_artifact()) == []

    def test_single_byte_payload_flip_is_localized(self):
        art = _tiny_artifact(payload=np.arange(64, dtype=np.float64))
        rec = art["body"]["ranks"][1]["recvs"][0]
        raw = bytearray(base64.b64decode(rec[8]))
        # Flip one byte inside the array data (past the pickle header) so
        # the payload still unpickles but its content digest changes.
        raw[-8] ^= 0x01
        rec[8] = base64.b64encode(bytes(raw)).decode()
        violations = verify_artifact(art)
        kinds = {v.kind for v in violations}
        assert "checksum" in kinds  # envelope notices *something* changed
        payload_v = [v for v in violations if v.kind == "payload"]
        assert payload_v, "payload damage was not localized"
        v = payload_v[0]
        # Localization: the exact rank, directed channel and sequence
        # number of the damaged record.
        assert v.rank == 1 and v.channel == (0, 1) and v.seq == 0
        assert "digest" in v.detail or "decode" in v.detail
        assert "channel 0 -> 1" in str(v)

    def test_header_tamper_hits_checksum(self):
        art = _tiny_artifact()
        art["body"]["ranks"][0]["sends"][0][3] = 99999  # nbytes
        violations = verify_artifact(art)
        assert any(v.kind == "checksum" for v in violations)

    def test_violation_str_mentions_location(self):
        v = IntegrityViolation("payload", 3, (1, 3), 7, "digest mismatch")
        s = str(v)
        assert "rank 3" in s and "1 -> 3" in s and "seq 7" in s
