"""End-to-end ``python -m repro record|replay`` CLI behaviour."""

import base64
import gzip
import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent.parent
SRC = REPO / "src"


def _run(*args):
    env = {"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"}
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=300,
    )


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "run.replay.json.gz"
    proc = _run("record", "--workload", "copy", "--param", "procs=3",
                "--param", "seed=7", "--payloads", "--out", str(path))
    assert proc.returncode == 0, proc.stderr
    assert "recorded copy" in proc.stdout
    return path


class TestRecordReplayCLI:
    def test_full_replay_exits_zero(self, recorded):
        proc = _run("replay", str(recorded))
        assert proc.returncode == 0, proc.stderr
        assert "integrity OK" in proc.stdout
        assert "identical" in proc.stdout

    def test_single_rank_replay_exits_zero(self, recorded):
        proc = _run("replay", str(recorded), "--rank", "1")
        assert proc.returncode == 0, proc.stderr

    def test_verify_only(self, recorded):
        proc = _run("replay", str(recorded), "--verify-only")
        assert proc.returncode == 0, proc.stderr
        assert "integrity OK" in proc.stdout

    def test_missing_artifact_exits_2(self, tmp_path):
        proc = _run("replay", str(tmp_path / "nope.json"))
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr

    def test_unknown_workload_exits_2(self, tmp_path):
        proc = _run("record", "--workload", "nonesuch",
                    "--out", str(tmp_path / "x.json"))
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr

    def test_tampered_artifact_localized_and_exits_1(self, recorded,
                                                     tmp_path):
        art = json.loads(gzip.decompress(recorded.read_bytes()))
        # Flip one byte inside the first captured payload we can find.
        for rank in art["body"]["ranks"]:
            for rec in rank["recvs"]:
                if len(rec) > 8 and rec[8]:
                    raw = bytearray(base64.b64decode(rec[8]))
                    raw[-1] ^= 0x01
                    rec[8] = base64.b64encode(bytes(raw)).decode()
                    break
            else:
                continue
            break
        else:
            pytest.skip("no captured payload in artifact")
        bad = tmp_path / "tampered.replay.json"
        bad.write_text(json.dumps(art))
        proc = _run("replay", str(bad), "--verify-only")
        assert proc.returncode == 1
        out = proc.stdout + proc.stderr
        assert "checksum" in out
        # Localization in the human-readable report: rank + channel.
        assert "rank" in out and "channel" in out
