"""Record/replay behaviour: chaos byte-identity, isolation, divergence,
replay handles, clock neutrality."""

import copy

import numpy as np
import pytest

from repro.replay import (
    Recorder,
    ReplayLogExhausted,
    diff_bodies,
    replay_full,
    replay_rank,
)
from repro.replay.workloads import build_workload, run_workload
from repro.vmachine import VirtualMachine
from repro.vmachine.machine import SPMDError
from repro.vmachine.timing import TimingReport, merge_timings


def _record(name, params, payloads=True):
    rec = Recorder(payloads=payloads)
    run_workload(name, params, rec)
    return rec.artifact


# ---------------------------------------------------------------------------
# full-fidelity replay under chaos (<=20% drop/dup/reorder/delay,
# reliability on) across ScheduleMethod x ExecutorPolicy
# ---------------------------------------------------------------------------


class TestChaosFullFidelity:
    @pytest.mark.parametrize("method", ["cooperation", "duplication"])
    @pytest.mark.parametrize("policy", ["ordered", "overlap"])
    def test_chaos_copy_replays_byte_identical(self, method, policy):
        art = _record("copy", {
            "procs": 3, "seed": 17, "method": method, "policy": policy,
        }, payloads=False)
        report = replay_full(art)
        assert report.identical, report.summary()
        assert report.ranks_compared == 3

    def test_coupled_chaos_replays_byte_identical(self):
        art = _record("coupled", {"psrc": 3, "pdst": 2, "seed": 5},
                      payloads=False)
        report = replay_full(art)
        assert report.identical, report.summary()
        assert report.ranks_compared == 5


# ---------------------------------------------------------------------------
# single-rank isolation replay
# ---------------------------------------------------------------------------


def _collective_workload(comm):
    """P-rank SPMD exercising barrier/bcast/allreduce/point-to-point —
    the trace shape the isolation replayer must reproduce exactly."""
    comm.barrier()
    seeded = comm.bcast(np.arange(16.0) if comm.rank == 0 else None, root=0)
    local = float(seeded.sum()) * (comm.rank + 1)
    total = comm.allreduce(local, lambda a, b: a + b)
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.send(right, np.full(4, comm.rank, dtype=np.float64), tag=9)
    got = comm.recv(left, tag=9)
    return total + float(got.sum())


class TestIsolationReplay:
    def test_p16_rank_trace_reproduced_exactly(self):
        rec = Recorder(payloads=True)
        vm = VirtualMachine(16, recorder=rec)
        res = vm.run(_collective_workload)
        art = rec.artifact
        assert len(art["body"]["ranks"]) == 16
        for rank in (0, 7, 15):
            report = replay_rank(art, rank, fn=_collective_workload)
            assert report.identical, report.summary()
            # byte-identical means: same trace tuples, same final clock,
            # same sends, same value digest — all checked by diff_bodies.
        assert res.values[0] == pytest.approx(res.values[0])

    def test_chaos_rank_isolation_through_reliability(self):
        # Probe-stream service must survive the reliability layer's
        # while-probe ack/backlog drains.
        art = _record("copy", {"procs": 4, "seed": 31})
        for rank in range(4):
            report = replay_rank(art, rank)
            assert report.identical, f"rank {rank}: {report.summary()}"

    def test_coupled_rank_isolation(self):
        art = _record("coupled", {"psrc": 2, "pdst": 2, "seed": 8})
        report = replay_rank(art, 3)  # a dstp rank, addressed globally
        assert report.identical, report.summary()

    def test_isolation_requires_payload_capture(self):
        art = _record("copy", {"procs": 3, "seed": 1}, payloads=False)
        with pytest.raises(ValueError, match="payload"):
            replay_rank(art, 0)

    def test_wrong_workload_is_flagged_not_hung(self):
        art = _record("copy", {"procs": 3, "seed": 1})

        def other(comm):  # consumes more messages than recorded
            for _ in range(3):
                comm.barrier()
            comm.send((comm.rank + 1) % comm.size, b"x", tag=2)
            return comm.recv((comm.rank - 1) % comm.size, tag=2)

        report = replay_rank(art, 0, fn=other)
        assert not report.identical


# ---------------------------------------------------------------------------
# divergence reporting
# ---------------------------------------------------------------------------


class TestDivergenceLocalization:
    def _artifact(self):
        return _record("copy", {"procs": 3, "seed": 17}, payloads=False)

    def test_identical_bodies_no_divergence(self):
        body = self._artifact()["body"]
        assert diff_bodies(body, copy.deepcopy(body)) == []

    def test_tampered_send_digest_names_rank_channel_seq(self):
        body = self._artifact()["body"]
        mutated = copy.deepcopy(body)
        # Corrupt one send record's payload digest on rank 1.
        target = mutated["ranks"][1]["sends"][4]
        target[5] = "deadbeefdeadbeef"
        divs = diff_bodies(body, mutated)
        assert divs, "tamper not detected"
        d = next(d for d in divs if d.kind == "send")
        assert d.rank == 1
        assert d.channel[0] == 1  # send channel starts at the sender
        assert d.seq == target[0]
        assert d.field == "digest"
        assert "channel" in str(d) and "seq" in str(d)

    def test_tampered_clock_flagged(self):
        body = self._artifact()["body"]
        mutated = copy.deepcopy(body)
        mutated["ranks"][2]["clock"] += 1e-9
        divs = diff_bodies(body, mutated)
        assert any(d.kind == "clock" and d.rank == 2 for d in divs)

    def test_tampered_probe_stream_flagged(self):
        body = self._artifact()["body"]
        mutated = copy.deepcopy(body)
        probes = mutated["ranks"][0]["probes"]
        if not probes:
            pytest.skip("workload recorded no probes on rank 0")
        i = len(probes) // 2
        mutated["ranks"][0]["probes"] = (
            probes[:i] + ("0" if probes[i] == "1" else "1") + probes[i + 1:]
        )
        divs = diff_bodies(body, mutated)
        assert any(d.kind == "probe" and d.rank == 0 and d.seq == i
                   for d in divs)

    def test_missing_message_is_count_divergence(self):
        body = self._artifact()["body"]
        mutated = copy.deepcopy(body)
        del mutated["ranks"][0]["recvs"][-1]
        divs = diff_bodies(body, mutated)
        assert any(d.kind == "recv" for d in divs)


# ---------------------------------------------------------------------------
# replay handles on results and failures (recording off)
# ---------------------------------------------------------------------------


class TestReplayHandle:
    def test_result_carries_handle_without_recording(self):
        plan = build_workload("copy", {"procs": 3, "seed": 9})
        res = VirtualMachine(
            3, faults=plan["fault_plan"], **plan["vm_kwargs"]
        ).run(plan["fn"])
        h = res.replay
        assert h["nprocs"] == 3
        assert h["profile"] == "IBM-SP2/MPL"
        assert h["seed"] == 9
        assert h["fault_plan"]  # plan fingerprint, not None
        assert "env_fingerprint" in h

    def test_fault_free_run_has_null_seed(self):
        res = VirtualMachine(2).run(lambda comm: comm.rank)
        assert res.replay["seed"] is None
        assert res.replay["fault_plan"] is None

    def test_spmderror_carries_handle(self):
        def boom(comm):
            if comm.rank == 1:
                raise RuntimeError("injected")
            return comm.rank

        with pytest.raises(SPMDError) as ei:
            VirtualMachine(3, recv_timeout_s=10.0).run(boom)
        h = ei.value.replay_handle
        assert h["nprocs"] == 3 and h["profile"] == "IBM-SP2/MPL"

    def test_leak_error_carries_handle(self):
        def leaky(comm):
            if comm.rank == 0:
                comm.send(1, b"never consumed", tag=3)
            return None

        with pytest.raises(SPMDError) as ei:
            VirtualMachine(2).run(leaky)
        assert ei.value.replay_handle["nprocs"] == 2

    def test_coupled_results_carry_handle_with_programs(self):
        art_rec = Recorder(payloads=False)
        res = run_workload("coupled", {"psrc": 2, "pdst": 2, "seed": 3},
                           art_rec)
        h = res["srcp"].replay
        assert h["programs"] == [["srcp", 2], ["dstp", 2]]
        assert h["nprocs"] == 4


# ---------------------------------------------------------------------------
# recording must not perturb the run
# ---------------------------------------------------------------------------


class TestRecordingNeutrality:
    def _run(self, recorder):
        plan = build_workload("copy", {"procs": 3, "seed": 17})
        vm = VirtualMachine(3, faults=plan["fault_plan"], trace=True,
                            recorder=recorder, **plan["vm_kwargs"])
        res = vm.run(plan["fn"])
        events = [
            [(e.kind, e.time, e.rank, e.peer, e.tag, e.nbytes, e.wait)
             for e in tr]
            for tr in res.traces
        ]
        return res.clocks, events, res.values[0]

    def test_zero_logical_clock_charge(self):
        clocks_off, events_off, val_off = self._run(None)
        clocks_on, events_on, val_on = self._run(Recorder(payloads=True))
        assert clocks_off == clocks_on
        assert events_off == events_on
        np.testing.assert_array_equal(val_off, val_on)


# ---------------------------------------------------------------------------
# satellite: deterministic iteration in merge_timings
# ---------------------------------------------------------------------------


class TestTimingMergeDeterminism:
    def test_merge_order_independent_of_insertion_order(self):
        a = TimingReport(phases={"zeta": 1.0, "alpha": 2.0, "mid": 3.0})
        b = TimingReport(phases={"mid": 1.0, "zeta": 4.0, "alpha": 0.5})
        m1 = merge_timings([a, b])
        m2 = merge_timings([b, a])
        assert list(m1.phases) == sorted(m1.phases)
        assert list(m1.phases) == list(m2.phases)
        assert m1.phases == {"alpha": 2.0, "mid": 3.0, "zeta": 4.0}


# ---------------------------------------------------------------------------
# log-exhaustion semantics
# ---------------------------------------------------------------------------


class TestLogExhaustion:
    def test_exhaustion_is_not_rank_lost(self):
        from repro.vmachine.faults import RankLostError

        # Must NOT subclass RankLostError: the coupling layer downgrades
        # rank loss to peer-loss degradation, which would swallow replay
        # divergences instead of reporting them.
        assert not issubclass(ReplayLogExhausted, RankLostError)
        assert issubclass(ReplayLogExhausted, RuntimeError)
