"""Pytest configuration: make ``tests.helpers`` importable and quiet down
hypothesis' health checks for the (thread-spawning) SPMD property tests."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=25,
)
settings.load_profile("repro")
