"""Shared test utilities: SPMD runners and sequential oracles."""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.core import (
    IndexRegion,
    ScheduleMethod,
    SectionRegion,
    SetOfRegions,
    mc_compute_schedule,
    mc_copy,
)
from repro.distrib.section import Section
from repro.vmachine import IBM_SP2, VirtualMachine


def run_spmd(nprocs: int, fn: Callable, *args: Any, profile=IBM_SP2, **kwargs: Any):
    """Run ``fn(comm, *args, **kwargs)`` on a fresh machine; return result."""
    return VirtualMachine(nprocs, profile).run(fn, *args, **kwargs)


def values_of(result) -> list:
    return result.values


def oracle_copy(
    src_global: np.ndarray,
    src_sor: SetOfRegions,
    dst_global: np.ndarray,
    dst_sor: SetOfRegions,
) -> np.ndarray:
    """Sequential reference of a Meta-Chaos copy: element k of the source
    linearization lands at element k of the destination linearization."""
    out = dst_global.copy()
    src_idx = src_sor.global_flat(src_global.shape)
    dst_idx = dst_sor.global_flat(out.shape)
    assert len(src_idx) == len(dst_idx)
    out.reshape(-1)[dst_idx] = src_global.reshape(-1)[src_idx]
    return out


def section_sor(slices: tuple[slice, ...], shape: tuple[int, ...]) -> SetOfRegions:
    return SetOfRegions([SectionRegion(Section.from_slices(slices, shape))])


def index_sor(indices: np.ndarray) -> SetOfRegions:
    return SetOfRegions([IndexRegion(np.asarray(indices, dtype=np.int64))])


def both_methods():
    return [ScheduleMethod.COOPERATION, ScheduleMethod.DUPLICATION]
