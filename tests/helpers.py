"""Shared test utilities: SPMD runners and sequential oracles."""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.core import (
    IndexRegion,
    ScheduleMethod,
    SectionRegion,
    SetOfRegions,
    mc_compute_schedule,
    mc_copy,
)
from repro.distrib.section import Section
from repro.vmachine import IBM_SP2, VirtualMachine


def run_spmd(nprocs: int, fn: Callable, *args: Any, profile=IBM_SP2, **kwargs: Any):
    """Run ``fn(comm, *args, **kwargs)`` on a fresh machine; return result."""
    return VirtualMachine(nprocs, profile).run(fn, *args, **kwargs)


def values_of(result) -> list:
    return result.values


def oracle_copy(
    src_global: np.ndarray,
    src_sor: SetOfRegions,
    dst_global: np.ndarray,
    dst_sor: SetOfRegions,
) -> np.ndarray:
    """Sequential reference of a Meta-Chaos copy: element k of the source
    linearization lands at element k of the destination linearization."""
    out = dst_global.copy()
    src_idx = src_sor.global_flat(src_global.shape)
    dst_idx = dst_sor.global_flat(out.shape)
    assert len(src_idx) == len(dst_idx)
    out.reshape(-1)[dst_idx] = src_global.reshape(-1)[src_idx]
    return out


def section_sor(slices: tuple[slice, ...], shape: tuple[int, ...]) -> SetOfRegions:
    return SetOfRegions([SectionRegion(Section.from_slices(slices, shape))])


def index_sor(indices: np.ndarray) -> SetOfRegions:
    return SetOfRegions([IndexRegion(np.asarray(indices, dtype=np.int64))])


def both_methods():
    return [ScheduleMethod.COOPERATION, ScheduleMethod.DUPLICATION]


def layouts_of(values: np.ndarray):
    """(label, array) pairs whose flat logical (C) order equals ``values``.

    Covers the layout matrix of the compiled data plane: contiguous 1-D,
    reversed and strided 1-D views, and C-contiguous / transposed /
    column-sliced 2-D shapes (the last two have no zero-copy 1-D view).
    """
    n = values.size
    out = [("contiguous", values.copy())]

    rev_buf = np.empty(n, dtype=values.dtype)
    rev = rev_buf[::-1]
    rev[:] = values
    out.append(("reversed-view", rev))

    hole_buf = np.zeros(2 * n, dtype=values.dtype)
    strided = hole_buf[::2]
    strided[:] = values
    out.append(("strided-view", strided))

    for r in range(2, n):
        if n % r == 0:
            c = n // r
            break
    else:
        return out
    out.append(("c-contig-2d", values.copy().reshape(r, c)))

    tr = np.empty((c, r), dtype=values.dtype).T
    tr[...] = values.reshape(r, c)
    out.append(("transposed-2d", tr))

    wide = np.zeros((r, 2 * c), dtype=values.dtype)
    sl = wide[:, ::2]
    sl[...] = values.reshape(r, c)
    out.append(("sliced-2d", sl))
    return out


def strided_local(values: np.ndarray, label: str) -> np.ndarray:
    """The one layout named ``label`` from :func:`layouts_of`.

    Sizes with no 2-D factorization (primes, < 4 elements) have no 2-D
    layouts; those labels fall back to contiguous storage.
    """
    table = dict(layouts_of(values))
    return table.get(label, table["contiguous"])
