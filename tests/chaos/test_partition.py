"""Partitioner tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chaos.partition import block_owners, cyclic_owners, random_owners, rcb_owners


class TestSimplePartitioners:
    def test_block_contiguous(self):
        o = block_owners(10, 3)
        np.testing.assert_array_equal(o, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2])

    def test_cyclic(self):
        o = cyclic_owners(7, 3)
        np.testing.assert_array_equal(o, [0, 1, 2, 0, 1, 2, 0])

    def test_random_in_range_and_covering(self):
        o = random_owners(100, 7, seed=1)
        assert o.min() >= 0 and o.max() < 7
        assert len(np.unique(o)) == 7  # every rank non-empty

    def test_random_deterministic_by_seed(self):
        np.testing.assert_array_equal(
            random_owners(50, 4, seed=9), random_owners(50, 4, seed=9)
        )
        assert not np.array_equal(
            random_owners(50, 4, seed=9), random_owners(50, 4, seed=10)
        )


class TestRCB:
    @pytest.fixture
    def coords(self):
        return np.random.default_rng(20).random((200, 2))

    def test_balanced_parts(self, coords):
        for p in (2, 3, 4, 7, 8):
            o = rcb_owners(coords, p)
            counts = np.bincount(o, minlength=p)
            assert counts.min() >= len(coords) // p - 2
            assert counts.max() <= -(-len(coords) // p) + 2

    def test_parts_are_spatially_coherent(self, coords):
        """RCB parts have smaller bounding boxes than random parts."""
        p = 4
        o = rcb_owners(coords, p)
        r = random_owners(len(coords), p, seed=0)

        def mean_bbox_area(owners):
            areas = []
            for part in range(p):
                pts = coords[owners == part]
                span = pts.max(axis=0) - pts.min(axis=0)
                areas.append(span[0] * span[1])
            return np.mean(areas)

        assert mean_bbox_area(o) < 0.6 * mean_bbox_area(r)

    def test_single_part(self, coords):
        o = rcb_owners(coords, 1)
        assert (o == 0).all()

    def test_1d_coords_rejected(self):
        with pytest.raises(ValueError):
            rcb_owners(np.zeros(10), 2)

    def test_rcb_reduces_edge_cut_vs_random(self):
        """The property that keeps the irregular sweep's halo small."""
        from repro.apps.meshes import grid_mesh

        mesh = grid_mesh(12, 12)
        p = 4
        o_rcb = rcb_owners(mesh.coords, p)
        o_rand = random_owners(mesh.npoints, p, seed=2)

        def edge_cut(owners):
            return int(np.sum(owners[mesh.ia] != owners[mesh.ib]))

        assert edge_cut(o_rcb) < 0.5 * edge_cut(o_rand)


@given(n=st.integers(1, 200), p=st.integers(1, 8))
def test_property_block_and_cyclic_are_balanced(n, p):
    for fn in (block_owners, cyclic_owners):
        o = fn(n, p)
        counts = np.bincount(o, minlength=p)
        assert counts.max() - counts.min() <= -(-n // p)


@given(n=st.integers(2, 100), p=st.integers(1, 6), seed=st.integers(0, 5))
def test_property_rcb_is_partition(n, p, seed):
    coords = np.random.default_rng(seed).random((n, 2))
    if p > n:
        p = n
    o = rcb_owners(coords, p)
    assert o.min() >= 0 and o.max() < p
    assert len(o) == n
