"""ChaosArray tests."""

import numpy as np
import pytest

from repro.chaos import ChaosArray, TranslationTable
from repro.vmachine.machine import SPMDError

from helpers import run_spmd

N = 50
VALUES = np.random.default_rng(13).random(N)
OWNERS = np.random.default_rng(14).integers(0, 4, N)


class TestConstruction:
    def test_zeros_partition(self):
        def spmd(comm):
            a = ChaosArray.zeros(comm, OWNERS % comm.size)
            return a.local.size

        assert sum(run_spmd(4, spmd).values) == N

    def test_from_global_roundtrip(self):
        def spmd(comm):
            a = ChaosArray.from_global(comm, VALUES, OWNERS % comm.size)
            return a.gather_global()

        for p in (1, 2, 4):
            np.testing.assert_allclose(run_spmd(p, spmd).values[0], VALUES)

    def test_like_shares_table(self):
        def spmd(comm):
            a = ChaosArray.from_global(comm, VALUES, OWNERS % comm.size)
            b = ChaosArray.like(a)
            return b.table is a.table and (b.local == 0).all()

        assert all(run_spmd(3, spmd).values)

    def test_like_with_dtype(self):
        def spmd(comm):
            a = ChaosArray.zeros(comm, OWNERS % comm.size)
            b = ChaosArray.like(a, dtype=np.int32)
            return b.dtype == np.int32

        assert all(run_spmd(2, spmd).values)

    def test_local_storage_in_global_index_order(self):
        def spmd(comm):
            a = ChaosArray.from_global(comm, VALUES, OWNERS % comm.size)
            mine = a.my_globals()
            return bool(np.allclose(a.local, VALUES[mine]))

        assert all(run_spmd(4, spmd).values)

    def test_wrong_local_size_rejected(self):
        def spmd(comm):
            t = TranslationTable.from_owners(OWNERS % comm.size, comm.size)
            ChaosArray(comm, t, np.zeros(N + 1))

        with pytest.raises(SPMDError, match="local storage"):
            run_spmd(2, spmd)

    def test_table_size_mismatch_rejected(self):
        def spmd(comm):
            t = TranslationTable.from_owners(np.zeros(5, dtype=int), 1)
            ChaosArray(comm, t, np.zeros(5))

        with pytest.raises(SPMDError, match="spans"):
            run_spmd(2, spmd)

    def test_global_shape_and_itemsize(self):
        def spmd(comm):
            a = ChaosArray.zeros(comm, OWNERS % comm.size)
            return (a.global_shape, a.itemsize, a.size)

        assert run_spmd(2, spmd).values[0] == ((N,), 8, N)
