"""Translation-table tests (replicated and paged)."""

import numpy as np
import pytest

from repro.chaos import ChaosArray, PagedTranslationTable, TranslationTable
from repro.distrib.cartesian import CartesianDist

from helpers import run_spmd

OWNERS = np.random.default_rng(12).integers(0, 4, 64)


class TestReplicatedTable:
    def test_dereference_matches_dist(self):
        def spmd(comm):
            t = TranslationTable.from_owners(OWNERS % comm.size, comm.size)
            g = np.arange(64)
            r, o = t.dereference(g)
            r2, o2 = t.dist.owner_of_flat(g)
            return bool((r == r2).all() and (o == o2).all())

        assert all(run_spmd(4, spmd).values)

    def test_dereference_charges_per_element(self):
        def spmd(comm):
            t = TranslationTable.from_owners(OWNERS % comm.size, comm.size)
            t0 = comm.process.clock
            t.dereference(np.arange(64))
            per_elem = (comm.process.clock - t0) / 64
            return per_elem

        per_elem = run_spmd(2, spmd).values[0]
        assert per_elem == pytest.approx(30e-6)  # IBM_SP2 deref

    def test_memory_footprint_is_data_sized(self):
        def spmd(comm):
            t = TranslationTable.from_owners(OWNERS % comm.size, comm.size)
            return t.nbytes

        assert run_spmd(2, spmd).values[0] == 16 * 64

    def test_local_indices_partition(self):
        def spmd(comm):
            t = TranslationTable.from_owners(OWNERS % comm.size, comm.size)
            return t.local_indices(comm.rank)

        res = run_spmd(4, spmd)
        allidx = np.concatenate(res.values)
        assert sorted(allidx.tolist()) == list(range(64))

    def test_from_distribution_pointwise_wraps_regular(self):
        """The Table 2 baseline step: wrapping a regular mesh costs O(n)."""

        def spmd(comm):
            dist = CartesianDist.block_nd((8, 8), comm.size)
            t0 = comm.process.clock
            t = TranslationTable.from_distribution(dist, 64)
            cost = comm.process.clock - t0
            r1, _ = t.dist.owner_of_flat(np.arange(64))
            r2, _ = dist.owner_of_flat(np.arange(64))
            return bool((r1 == r2).all()) and cost > 0

        assert all(run_spmd(4, spmd).values)


class TestPagedTable:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_collective_dereference_matches_replicated(self, nprocs):
        def spmd(comm):
            owners = OWNERS % comm.size
            replicated = TranslationTable.from_owners(owners, comm.size)
            paged = PagedTranslationTable(comm, owners)
            # every rank queries a different, overlapping slice
            q = np.arange(64)[comm.rank::2] if comm.size > 1 else np.arange(64)
            r1, o1 = paged.dereference(q)
            r2, o2 = replicated.dist.owner_of_flat(q)
            return bool((r1 == r2).all() and (o1 == o2).all())

        assert all(run_spmd(nprocs, spmd).values)

    def test_memory_scales_down(self):
        def spmd(comm):
            paged = PagedTranslationTable(comm, OWNERS % comm.size)
            return paged.nbytes

        res = run_spmd(4, spmd)
        assert all(v <= 16 * 64 / 4 + 16 for v in res.values)

    def test_dereference_requires_communication(self):
        def spmd(comm):
            paged = PagedTranslationTable(comm, OWNERS % comm.size)
            comm.barrier()
            before = comm.process.stats["messages_sent"]
            paged.dereference(np.arange(64))
            return comm.process.stats["messages_sent"] - before

        res = run_spmd(4, spmd)
        assert sum(res.values) > 0

    def test_local_sizes_match(self):
        def spmd(comm):
            owners = OWNERS % comm.size
            paged = PagedTranslationTable(comm, owners)
            expected = int(np.sum(owners == comm.rank))
            return paged.local_size(comm.rank) == expected

        assert all(run_spmd(4, spmd).values)
