"""Chaos inspector/executor schedule tests."""

import numpy as np
import pytest

from repro.chaos import (
    ChaosArray,
    TranslationTable,
    build_chaos_copy_schedule,
    build_gather_schedule,
)
from repro.vmachine import IBM_SP2

from helpers import run_spmd

N = 60
VALUES = np.random.default_rng(15).random(N)
OWNERS = np.random.default_rng(16).integers(0, 4, N)
REFS = np.random.default_rng(17).integers(0, N, 150)


class TestGatherSchedule:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4])
    def test_gather_resolves_all_references(self, nprocs):
        def spmd(comm):
            a = ChaosArray.from_global(comm, VALUES, OWNERS % comm.size)
            myrefs = REFS[comm.rank :: comm.size]
            sched, local = build_gather_schedule(a, myrefs)
            buf = sched.gather(a)
            return bool(np.allclose(buf[local], VALUES[myrefs]))

        assert all(run_spmd(nprocs, spmd).values)

    def test_scatter_add_accumulates_to_owners(self):
        def spmd(comm):
            a = ChaosArray.from_global(comm, VALUES, OWNERS % comm.size)
            y = ChaosArray.like(a)
            myrefs = REFS[comm.rank :: comm.size]
            sched, local = build_gather_schedule(a, myrefs)
            contrib = np.zeros(a.local.size + sched.halo_size)
            np.add.at(contrib, local, 1.0)  # +1 per reference
            sched.scatter_add(y, contrib)
            return y.gather_global()

        got = run_spmd(4, spmd).values[0]
        expected = np.bincount(REFS, minlength=N).astype(float)
        np.testing.assert_allclose(got, expected)

    def test_dedup_derefs_unique_only(self):
        """References are hashed and deduplicated before table lookup."""

        def spmd(comm):
            a = ChaosArray.from_global(comm, VALUES, OWNERS % comm.size)
            refs = np.zeros(1000, dtype=np.int64)  # 1000 refs, 1 unique
            t0 = comm.process.clock
            build_gather_schedule(a, refs)
            return comm.process.clock - t0

        elapsed = run_spmd(1, spmd).values[0]
        # 1000 hashes + 1 deref, NOT 1000 derefs
        assert elapsed < 1000 * IBM_SP2.hash_ref + 20 * IBM_SP2.deref

    def test_gather_message_aggregation(self):
        def spmd(comm):
            a = ChaosArray.from_global(comm, VALUES, OWNERS % comm.size)
            myrefs = REFS[comm.rank :: comm.size]
            sched, _ = build_gather_schedule(a, myrefs)
            comm.barrier()
            before = comm.process.stats["messages_sent"]
            sched.gather(a)
            return comm.process.stats["messages_sent"] - before == len(sched.sends)

        assert all(run_spmd(4, spmd).values)

    def test_reusable_across_sweeps(self):
        def spmd(comm):
            a = ChaosArray.from_global(comm, VALUES, OWNERS % comm.size)
            myrefs = REFS[comm.rank :: comm.size]
            sched, local = build_gather_schedule(a, myrefs)
            ok = True
            for k in (1.0, 2.0, 5.0):
                a.local[:] = k * VALUES[a.my_globals()]
                buf = sched.gather(a)
                ok &= bool(np.allclose(buf[local], k * VALUES[myrefs]))
            return ok

        assert all(run_spmd(3, spmd).values)


class TestChaosCopySchedule:
    PERM = np.random.default_rng(18).permutation(N)

    def _build(self, comm):
        src = ChaosArray.from_global(comm, VALUES, OWNERS % comm.size)
        dst = ChaosArray.zeros(comm, (OWNERS + 1) % comm.size)
        sched = build_chaos_copy_schedule(
            comm, src.table, np.arange(N), dst.table, self.PERM
        )
        return src, dst, sched

    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_copy_matches_oracle(self, nprocs):
        def spmd(comm):
            src, dst, sched = self._build(comm)
            sched.execute(src.local, dst.local, comm)
            return dst.gather_global()

        got = run_spmd(nprocs, spmd).values[0]
        expected = np.zeros(N)
        expected[self.PERM] = VALUES
        np.testing.assert_allclose(got, expected)

    def test_reverse_restores(self):
        def spmd(comm):
            src, dst, sched = self._build(comm)
            sched.execute(src.local, dst.local, comm)
            back = ChaosArray.like(src)
            sched.reverse().execute(dst.local, back.local, comm)
            return back.gather_global()

        np.testing.assert_allclose(run_spmd(3, spmd).values[0], VALUES)

    def test_mapping_length_mismatch(self):
        def spmd(comm):
            src, dst, _ = self._build(comm)
            build_chaos_copy_schedule(
                comm, src.table, np.arange(5), dst.table, np.arange(6)
            )

        from repro.vmachine.machine import SPMDError

        with pytest.raises(SPMDError, match="differ in length"):
            run_spmd(2, spmd)

    def test_copy_costs_more_than_metachaos(self):
        """Paper §5.1: the Chaos copy pays an extra internal copy."""
        import repro.chaos.interface  # noqa: F401
        from helpers import index_sor

        from repro.core import mc_compute_schedule, mc_copy

        def spmd(comm):
            src, dst, csched = self._build(comm)
            t0 = comm.process.clock
            csched.execute(src.local, dst.local, comm)
            chaos_time = comm.process.clock - t0

            msched = mc_compute_schedule(
                comm,
                "chaos", src, index_sor(np.arange(N)),
                "chaos", dst, index_sor(self.PERM),
            )
            t0 = comm.process.clock
            mc_copy(comm, msched, src, dst)
            mc_time = comm.process.clock - t0
            return chaos_time, mc_time

        for chaos_time, mc_time in run_spmd(2, spmd).values:
            assert chaos_time > mc_time
