"""Distributed CSR sparse matrix-vector tests."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.chaos import ChaosArray, DistributedCSR, random_owners, rcb_owners
from repro.vmachine import IBM_SP2
from repro.vmachine.machine import SPMDError

from helpers import run_spmd

N = 48
A = sp.random(N, N, density=0.2, random_state=5, format="csr")
XV = np.random.default_rng(110).random(N)
DENSE = np.where(
    np.random.default_rng(111).random((10, N)) > 0.6,
    np.random.default_rng(112).random((10, N)),
    0.0,
)


def _assemble(comm, rows, vals, n):
    pieces = comm.gather((rows, vals))
    if comm.rank != 0:
        return None
    y = np.zeros(n)
    for r, v in pieces:
        y[r] = v
    return y


class TestSpmv:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 6])
    def test_matches_scipy(self, nprocs):
        def spmd(comm):
            x = ChaosArray.from_global(
                comm, XV, random_owners(N, comm.size, seed=1) % comm.size
            )
            M = DistributedCSR.from_global(
                comm, A, random_owners(N, comm.size, seed=2) % comm.size, x
            )
            return _assemble(comm, M.my_rows, M.spmv(x), N)

        got = run_spmd(nprocs, spmd).values[0]
        np.testing.assert_allclose(got, A @ XV)

    def test_dense_input(self):
        def spmd(comm):
            x = ChaosArray.from_global(
                comm, XV, random_owners(N, comm.size, seed=1) % comm.size
            )
            M = DistributedCSR.from_global(
                comm, DENSE, random_owners(10, comm.size, seed=3) % comm.size, x
            )
            return _assemble(comm, M.my_rows, M.spmv(x), 10)

        got = run_spmd(3, spmd).values[0]
        np.testing.assert_allclose(got, DENSE @ XV)

    def test_empty_rows_produce_zero(self):
        mat = np.zeros((6, N))
        mat[1] = 1.0
        mat[4, ::2] = 2.0

        def spmd(comm):
            x = ChaosArray.from_global(
                comm, XV, np.arange(N) % comm.size
            )
            M = DistributedCSR.from_global(
                comm, mat, np.arange(6) % comm.size, x
            )
            return _assemble(comm, M.my_rows, M.spmv(x), 6)

        got = run_spmd(2, spmd).values[0]
        np.testing.assert_allclose(got, mat @ XV)
        assert got[0] == 0.0 and got[2] == 0.0

    def test_inspector_reused_across_spmv(self):
        """The executor reuses the localized columns: repeated products
        cost no further dereferences (only gather traffic + flops)."""

        def spmd(comm):
            x = ChaosArray.from_global(
                comm, XV, random_owners(N, comm.size, seed=1) % comm.size
            )
            M = DistributedCSR.from_global(
                comm, A, random_owners(N, comm.size, seed=2) % comm.size, x
            )
            M.spmv(x)  # warm
            t0 = comm.process.clock
            M.spmv(x)
            executor_time = comm.process.clock - t0
            # The executor must not pay table dereference rates.
            assert executor_time < M.nnz_local * IBM_SP2.deref / 4 + 0.01
            return True

        assert all(run_spmd(4, spmd).values)

    def test_spmv_iteration_converges(self):
        """Power iteration on a stochastic matrix: a real Chaos-style
        application loop (repeated spmv on the same schedule)."""
        P_mat = np.random.default_rng(113).random((N, N))
        P_mat /= P_mat.sum(axis=0, keepdims=True)  # column-stochastic

        def spmd(comm):
            owners = random_owners(N, comm.size, seed=4) % comm.size
            x = ChaosArray.from_global(comm, np.ones(N) / N, owners)
            M = DistributedCSR.from_global(comm, P_mat, owners, x)
            for _ in range(12):
                local = M.spmv(x)
                # rows were partitioned with the same owners as x, so the
                # result rows are exactly my x entries (ascending ids).
                order = np.argsort(M.my_rows)
                x.local[:] = local[order]
            return x.gather_global()

        got = run_spmd(4, spmd).values[0]
        expect = np.ones(N) / N
        for _ in range(12):
            expect = P_mat @ expect
        np.testing.assert_allclose(got, expect, rtol=1e-10)

    def test_layout_mismatch_rejected(self):
        def spmd(comm):
            x = ChaosArray.from_global(comm, XV, np.arange(N) % comm.size)
            M = DistributedCSR.from_global(comm, A, np.arange(N) % comm.size, x)
            other = ChaosArray.from_global(
                comm, XV, (np.arange(N) + 1) % comm.size
            )
            M.spmv(other)

        with pytest.raises(SPMDError, match="layout"):
            run_spmd(2, spmd)

    def test_structure_validation(self):
        def spmd(comm):
            x = ChaosArray.from_global(comm, XV, np.arange(N) % comm.size)
            DistributedCSR(
                x, np.array([0]), np.array([0, 1, 2]), np.array([0]),
                np.array([1.0]),
            )

        with pytest.raises(SPMDError, match="indptr"):
            run_spmd(1, spmd)


class TestWeightedRCB:
    def test_weight_balance(self):
        rng = np.random.default_rng(114)
        coords = rng.random((300, 2))
        weights = rng.integers(1, 20, 300).astype(float)
        o = rcb_owners(coords, 6, weights)
        loads = np.bincount(o, weights=weights, minlength=6)
        assert loads.max() / loads.mean() < 1.2

    def test_unit_weights_match_default(self):
        coords = np.random.default_rng(115).random((100, 2))
        np.testing.assert_array_equal(
            rcb_owners(coords, 4), rcb_owners(coords, 4, np.ones(100))
        )

    def test_bad_weights_rejected(self):
        coords = np.zeros((5, 2))
        with pytest.raises(ValueError, match="one entry"):
            rcb_owners(coords, 2, np.ones(4))
        with pytest.raises(ValueError, match="nonnegative"):
            rcb_owners(coords, 2, -np.ones(5))
