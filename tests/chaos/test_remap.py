"""Redistribution (remap) and graph-partitioner tests."""

import numpy as np
import pytest

from repro.apps.meshes import grid_mesh
from repro.chaos import (
    ChaosArray,
    bfs_owners,
    build_remap_schedule,
    random_owners,
    rcb_owners,
    remap,
)
from repro.vmachine.machine import SPMDError

from helpers import run_spmd

N = 60
VALUES = np.random.default_rng(50).random(N)


class TestRemap:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_values_preserved(self, nprocs):
        old = random_owners(N, 8, seed=1)
        new = random_owners(N, 8, seed=2)

        def spmd(comm):
            a = ChaosArray.from_global(comm, VALUES, old % comm.size)
            b = remap(a, new % comm.size)
            return b.gather_global()

        got = run_spmd(nprocs, spmd).values[0]
        np.testing.assert_allclose(got, VALUES)

    def test_new_distribution_applied(self):
        new = random_owners(N, 4, seed=3)

        def spmd(comm):
            a = ChaosArray.from_global(comm, VALUES, np.arange(N) % comm.size)
            b = remap(a, new % comm.size)
            return b.local.size

        sizes = run_spmd(4, spmd).values
        expected = np.bincount(new % 4, minlength=4)
        assert sizes == expected.tolist()

    def test_schedule_reuse(self):
        new = random_owners(N, 3, seed=4)

        def spmd(comm):
            a = ChaosArray.from_global(comm, VALUES, np.arange(N) % comm.size)
            sched, table = build_remap_schedule(a, new % comm.size)
            b1 = remap(a, new % comm.size, sched, table)
            a.local *= 2.0
            b2 = remap(a, new % comm.size, sched, table)
            return b1.gather_global(), b2.gather_global()

        g1, g2 = run_spmd(3, spmd).values[0]
        np.testing.assert_allclose(g1, VALUES)
        np.testing.assert_allclose(g2, 2.0 * VALUES)

    def test_wrong_owner_map_size(self):
        def spmd(comm):
            a = ChaosArray.from_global(comm, VALUES, np.arange(N) % comm.size)
            remap(a, np.zeros(N + 1, dtype=np.int64))

        with pytest.raises(SPMDError, match="owner map"):
            run_spmd(2, spmd)

    def test_remap_to_same_distribution_is_identity(self):
        def spmd(comm):
            owners = np.arange(N) % comm.size
            a = ChaosArray.from_global(comm, VALUES, owners)
            b = remap(a, owners)
            return bool(np.allclose(a.local, b.local))

        assert all(run_spmd(4, spmd).values)


class TestBFSPartitioner:
    MESH = grid_mesh(14, 14)

    def test_balanced(self):
        for p in (2, 3, 4, 7):
            o = bfs_owners(self.MESH.npoints, self.MESH.ia, self.MESH.ib, p)
            counts = np.bincount(o, minlength=p)
            assert counts.sum() == self.MESH.npoints
            assert counts.max() <= -(-self.MESH.npoints // p) + 1

    def test_low_edge_cut(self):
        p = 4
        o = bfs_owners(self.MESH.npoints, self.MESH.ia, self.MESH.ib, p)
        r = random_owners(self.MESH.npoints, p, seed=9)

        def cut(owners):
            return int(np.sum(owners[self.MESH.ia] != owners[self.MESH.ib]))

        assert cut(o) < 0.5 * cut(r)

    def test_single_part(self):
        o = bfs_owners(10, np.array([0, 1]), np.array([1, 2]), 1)
        assert (o == 0).all()

    def test_disconnected_points_assigned(self):
        # Point 4 has no edges at all.
        o = bfs_owners(5, np.array([0, 1, 2]), np.array([1, 2, 3]), 2)
        assert o.min() >= 0 and len(o) == 5

    def test_invalid_nparts(self):
        with pytest.raises(ValueError):
            bfs_owners(5, np.zeros(0, dtype=int), np.zeros(0, dtype=int), 0)

    def test_deterministic(self):
        a = bfs_owners(self.MESH.npoints, self.MESH.ia, self.MESH.ib, 4, seed=5)
        b = bfs_owners(self.MESH.npoints, self.MESH.ia, self.MESH.ib, 4, seed=5)
        np.testing.assert_array_equal(a, b)
