"""Unstructured edge-sweep executor tests."""

import numpy as np
import pytest

from repro.apps.meshes import delaunay_mesh, grid_mesh
from repro.chaos import ChaosArray, EdgeSweep, rcb_owners
from repro.chaos.partition import block_owners, random_owners
from repro.vmachine.machine import SPMDError

from helpers import run_spmd

MESH = grid_mesh(8, 8)
X0 = np.random.default_rng(21).random(MESH.npoints)


def oracle_edge_sweep(x, ia, ib, iterations=1):
    y = np.zeros_like(x)
    for _ in range(iterations):
        flux = (x[ia] + x[ib]) / 4.0
        np.add.at(y, ia, flux)
        np.add.at(y, ib, flux)
    return y


class TestEdgeSweep:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 6])
    @pytest.mark.parametrize("partition", ["rcb", "block", "random"])
    def test_matches_oracle(self, nprocs, partition):
        def spmd(comm):
            if partition == "rcb":
                owners = rcb_owners(MESH.coords, comm.size)
            elif partition == "block":
                owners = block_owners(MESH.npoints, comm.size)
            else:
                owners = random_owners(MESH.npoints, comm.size, seed=3)
            x = ChaosArray.from_global(comm, X0, owners)
            y = ChaosArray.like(x)
            eo = block_owners(MESH.nedges, comm.size)
            mine = np.flatnonzero(eo == comm.rank)
            sweep = EdgeSweep(x, MESH.ia[mine], MESH.ib[mine])
            sweep.execute(x, y)
            return y.gather_global()

        got = run_spmd(nprocs, spmd).values[0]
        np.testing.assert_allclose(got, oracle_edge_sweep(X0, MESH.ia, MESH.ib))

    def test_repeated_execution(self):
        def spmd(comm):
            owners = rcb_owners(MESH.coords, comm.size)
            x = ChaosArray.from_global(comm, X0, owners)
            y = ChaosArray.like(x)
            eo = block_owners(MESH.nedges, comm.size)
            mine = np.flatnonzero(eo == comm.rank)
            sweep = EdgeSweep(x, MESH.ia[mine], MESH.ib[mine])
            for _ in range(3):
                y.local[:] = 0.0
                sweep.execute(x, y)
                x.local[:] = y.local
            return x.gather_global()

        got = run_spmd(4, spmd).values[0]
        expect = X0.copy()
        for _ in range(3):
            expect = oracle_edge_sweep(expect, MESH.ia, MESH.ib)
        np.testing.assert_allclose(got, expect)

    def test_mismatched_endpoint_arrays(self):
        def spmd(comm):
            owners = block_owners(MESH.npoints, comm.size)
            x = ChaosArray.from_global(comm, X0, owners)
            EdgeSweep(x, MESH.ia[:5], MESH.ib[:4])

        with pytest.raises(SPMDError, match="same length"):
            run_spmd(2, spmd)

    def test_rcb_partition_communicates_less_than_random(self):
        """Locality matters: RCB's halo (and message volume) is smaller."""
        mesh = delaunay_mesh(400, seed=4)
        x0 = np.random.default_rng(5).random(400)

        def make(partition):
            def spmd(comm):
                owners = (
                    rcb_owners(mesh.coords, comm.size)
                    if partition == "rcb"
                    else random_owners(mesh.npoints, comm.size, seed=6)
                )
                x = ChaosArray.from_global(comm, x0, owners)
                y = ChaosArray.like(x)
                eo = block_owners(mesh.nedges, comm.size)
                mine = np.flatnonzero(eo == comm.rank)
                # Edges also live where their endpoints live under RCB? No:
                # keep edge distribution identical so only the halo differs.
                sweep = EdgeSweep(x, mesh.ia[mine], mesh.ib[mine])
                comm.barrier()
                before = comm.process.stats["bytes_sent"]
                sweep.execute(x, y)
                return comm.process.stats["bytes_sent"] - before

            return spmd

        rcb_bytes = sum(run_spmd(4, make("rcb")).values)
        rnd_bytes = sum(run_spmd(4, make("random")).values)
        assert rcb_bytes < rnd_bytes
