"""Canonical-form gather/scatter tests."""

import numpy as np
import pytest

from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import (
    IndexRegion,
    MaskRegion,
    SectionRegion,
    mc_new_set_of_regions,
)
from repro.distrib.section import Section
from repro.hpf import HPFArray
from repro.pcxx import DistributedCollection
from repro.util import gather_canonical, scatter_canonical
from repro.vmachine.machine import SPMDError

from helpers import run_spmd

G2 = np.random.default_rng(80).random((6, 8))
G1 = np.random.default_rng(81).random(40)


class TestGather:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_full_section_gather(self, nprocs):
        def spmd(comm):
            A = BlockPartiArray.from_global(comm, G2)
            sor = mc_new_set_of_regions(SectionRegion(Section.full((6, 8))))
            return gather_canonical(comm, "blockparti", A, sor)

        res = run_spmd(nprocs, spmd)
        np.testing.assert_allclose(res.values[0], G2.ravel())
        assert all(v is None for v in res.values[1:])

    def test_strided_section(self):
        def spmd(comm):
            A = HPFArray.from_global(comm, G2, ("block", "cyclic"))
            sor = mc_new_set_of_regions(
                SectionRegion(Section((0, 1), (6, 8), (2, 3)))
            )
            return gather_canonical(comm, "hpf", A, sor)

        got = run_spmd(3, spmd).values[0]
        np.testing.assert_allclose(got, G2[0:6:2, 1:8:3].ravel())

    def test_fortran_order_canonical(self):
        def spmd(comm):
            A = HPFArray.from_global(comm, G2, ("block", "block"))
            sor = mc_new_set_of_regions(
                SectionRegion(Section.full((6, 8)), order="F")
            )
            return gather_canonical(comm, "hpf", A, sor)

        got = run_spmd(2, spmd).values[0]
        np.testing.assert_allclose(got, G2.ravel(order="F"))

    def test_mask_region(self):
        mask = G2 > 0.5

        def spmd(comm):
            A = BlockPartiArray.from_global(comm, G2)
            sor = mc_new_set_of_regions(MaskRegion(mask))
            return gather_canonical(comm, "blockparti", A, sor)

        got = run_spmd(4, spmd).values[0]
        np.testing.assert_allclose(got, G2[mask])

    def test_nonzero_root(self):
        def spmd(comm):
            A = BlockPartiArray.from_global(comm, G1)
            sor = mc_new_set_of_regions(SectionRegion(Section.full((40,))))
            return gather_canonical(comm, "blockparti", A, sor, root=1)

        res = run_spmd(3, spmd)
        assert res.values[0] is None
        np.testing.assert_allclose(res.values[1], G1)

    def test_from_irregular_source(self):
        owners = np.random.default_rng(82).integers(0, 4, 40)

        def spmd(comm):
            A = ChaosArray.from_global(comm, G1, owners % comm.size)
            sor = mc_new_set_of_regions(IndexRegion(np.arange(40)[::-1]))
            return gather_canonical(comm, "chaos", A, sor)

        got = run_spmd(4, spmd).values[0]
        np.testing.assert_allclose(got, G1[::-1])


class TestScatter:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_roundtrip(self, nprocs):
        def spmd(comm):
            A = BlockPartiArray.from_global(comm, G2)
            sor = mc_new_set_of_regions(SectionRegion(Section.full((6, 8))))
            buf = gather_canonical(comm, "blockparti", A, sor)
            B = BlockPartiArray.zeros(comm, (6, 8))
            scatter_canonical(comm, buf, "blockparti", B, sor)
            return B.gather_global()

        got = run_spmd(nprocs, spmd).values[0]
        np.testing.assert_allclose(got, G2)

    def test_scatter_to_collection(self):
        def spmd(comm):
            c = DistributedCollection.create(comm, 40)
            sor = mc_new_set_of_regions(IndexRegion(np.arange(40)))
            vals = G1 if comm.rank == 0 else None
            scatter_canonical(comm, vals, "pcxx", c, sor)
            return c.gather_global()

        got = run_spmd(4, spmd).values[0]
        np.testing.assert_allclose(got, G1)

    def test_wrong_buffer_shape(self):
        def spmd(comm):
            A = BlockPartiArray.zeros(comm, (6, 8))
            sor = mc_new_set_of_regions(SectionRegion(Section.full((6, 8))))
            vals = np.zeros(5) if comm.rank == 0 else None
            scatter_canonical(comm, vals, "blockparti", A, sor)

        with pytest.raises(SPMDError, match="canonical buffer"):
            run_spmd(2, spmd)

    def test_integer_dtype_preserved(self):
        ints = np.arange(40)

        def spmd(comm):
            A = BlockPartiArray.zeros(comm, (40,), dtype=np.int64)
            sor = mc_new_set_of_regions(SectionRegion(Section.full((40,))))
            vals = ints if comm.rank == 0 else None
            scatter_canonical(comm, vals, "blockparti", A, sor)
            return A.gather_global()

        got = run_spmd(2, spmd).values[0]
        np.testing.assert_array_equal(got, ints)
