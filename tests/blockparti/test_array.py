"""BlockPartiArray tests."""

import numpy as np
import pytest

from repro.blockparti import BlockPartiArray
from repro.vmachine.machine import SPMDError

from helpers import run_spmd

G = np.random.default_rng(4).random((9, 7))


class TestConstruction:
    def test_zeros_local_sizes_partition(self):
        def spmd(comm):
            a = BlockPartiArray.zeros(comm, (9, 7))
            return a.local.size

        res = run_spmd(4, spmd)
        assert sum(res.values) == 63

    def test_from_global_gather_roundtrip(self):
        def spmd(comm):
            a = BlockPartiArray.from_global(comm, G)
            return a.gather_global()

        for p in (1, 2, 3, 4, 6):
            got = run_spmd(p, spmd).values[0]
            np.testing.assert_allclose(got, G)

    def test_from_function_owner_computes(self):
        def spmd(comm):
            a = BlockPartiArray.from_function(comm, (6, 5), lambda i, j: 10.0 * i + j)
            return a.gather_global()

        got = run_spmd(4, spmd).values[0]
        ii, jj = np.meshgrid(np.arange(6), np.arange(5), indexing="ij")
        np.testing.assert_allclose(got, 10.0 * ii + jj)

    def test_explicit_grid(self):
        def spmd(comm):
            a = BlockPartiArray.zeros(comm, (8, 8), nprocs_grid=(1, 4))
            return a.local_shape

        res = run_spmd(4, spmd)
        assert res.values == [(8, 2)] * 4

    def test_bad_grid_rejected(self):
        def spmd(comm):
            BlockPartiArray.zeros(comm, (8, 8), nprocs_grid=(3, 1))

        with pytest.raises(SPMDError, match="does not cover"):
            run_spmd(4, spmd)

    def test_wrong_local_size_rejected(self):
        def spmd(comm):
            a = BlockPartiArray.zeros(comm, (4, 4))
            BlockPartiArray(comm, a.dist, np.zeros(99))

        with pytest.raises(SPMDError, match="local storage"):
            run_spmd(2, spmd)

    def test_owned_block_covers_shape(self):
        def spmd(comm):
            a = BlockPartiArray.zeros(comm, (9, 7))
            return a.owned_block()

        blocks = run_spmd(3, spmd).values
        covered = np.zeros((9, 7), dtype=int)
        for (l0, h0), (l1, h1) in blocks:
            covered[l0:h0, l1:h1] += 1
        assert (covered == 1).all()

    def test_local_nd_writes_through(self):
        def spmd(comm):
            a = BlockPartiArray.zeros(comm, (4, 4))
            a.local_nd[...] = 7.0
            return float(a.local.sum())

        res = run_spmd(2, spmd)
        assert sum(res.values) == pytest.approx(7.0 * 16)

    def test_dtype_and_itemsize(self):
        def spmd(comm):
            a = BlockPartiArray.zeros(comm, (4,), dtype=np.float32)
            return (a.dtype == np.float32, a.itemsize)

        assert run_spmd(1, spmd).values[0] == (True, 4)

    def test_1d(self):
        def spmd(comm):
            a = BlockPartiArray.from_global(comm, np.arange(10.0))
            return a.gather_global()

        np.testing.assert_allclose(run_spmd(3, spmd).values[0], np.arange(10.0))
