"""Stencil sweep executor tests."""

import numpy as np
import pytest

from repro.blockparti import (
    BlockPartiArray,
    build_ghost_schedule,
    fill_block,
    jacobi_sweep,
)
from repro.vmachine.machine import SPMDError

from helpers import run_spmd

G = np.random.default_rng(8).random((11, 13))


def oracle_sweep(g, iterations=1):
    out = g.copy()
    for _ in range(iterations):
        nxt = out.copy()
        nxt[1:-1, 1:-1] = (
            out[:-2, 1:-1] + out[2:, 1:-1] + out[1:-1, :-2] + out[1:-1, 2:]
        )
        out = nxt
    return out


class TestJacobiSweep:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 6, 9])
    def test_single_sweep_matches_oracle(self, nprocs):
        def spmd(comm):
            a = BlockPartiArray.from_global(comm, G)
            gs = build_ghost_schedule(a)
            jacobi_sweep(a, gs)
            return a.gather_global()

        got = run_spmd(nprocs, spmd).values[0]
        np.testing.assert_allclose(got, oracle_sweep(G))

    def test_iterated_sweeps(self):
        def spmd(comm):
            a = BlockPartiArray.from_global(comm, G)
            gs = build_ghost_schedule(a)
            for _ in range(4):
                jacobi_sweep(a, gs)
            return a.gather_global()

        got = run_spmd(4, spmd).values[0]
        np.testing.assert_allclose(got, oracle_sweep(G, iterations=4))

    def test_boundary_rows_unchanged(self):
        def spmd(comm):
            a = BlockPartiArray.from_global(comm, G)
            gs = build_ghost_schedule(a)
            jacobi_sweep(a, gs)
            return a.gather_global()

        got = run_spmd(2, spmd).values[0]
        np.testing.assert_allclose(got[0], G[0])
        np.testing.assert_allclose(got[-1], G[-1])
        np.testing.assert_allclose(got[:, 0], G[:, 0])
        np.testing.assert_allclose(got[:, -1], G[:, -1])

    def test_charges_flops(self):
        def spmd(comm):
            a = BlockPartiArray.from_global(comm, G)
            gs = build_ghost_schedule(a)
            t0 = comm.process.clock
            jacobi_sweep(a, gs)
            return comm.process.clock - t0

        assert all(v > 0 for v in run_spmd(2, spmd).values)

    def test_1d_array_rejected(self):
        def spmd(comm):
            a = BlockPartiArray.zeros(comm, (10,))
            gs = build_ghost_schedule(a)
            jacobi_sweep(a, gs)

        with pytest.raises(SPMDError, match="2-D"):
            run_spmd(2, spmd)


class TestFillBlock:
    def test_refill_existing_array(self):
        def spmd(comm):
            a = BlockPartiArray.zeros(comm, (5, 4))
            fill_block(a, lambda i, j: 1.0 * i * j)
            return a.gather_global()

        got = run_spmd(4, spmd).values[0]
        ii, jj = np.meshgrid(np.arange(5), np.arange(4), indexing="ij")
        np.testing.assert_allclose(got, 1.0 * ii * jj)
