"""Ghost-fill and native regular-section copy schedule tests."""

import numpy as np
import pytest

from repro.blockparti import (
    BlockPartiArray,
    build_copy_schedule,
    build_ghost_schedule,
    parti_region,
)
from repro.distrib.section import Section
from repro.vmachine.machine import SPMDError

from helpers import run_spmd

G = np.random.default_rng(6).random((12, 10))


class TestGhostSchedule:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 6])
    def test_ghosts_match_global_neighbors(self, nprocs):
        def spmd(comm):
            a = BlockPartiArray.from_global(comm, G)
            gs = build_ghost_schedule(a)
            ext = gs.exchange(a)
            (l0, h0), (l1, h1) = a.owned_block()
            ok = True
            if l0 > 0:
                ok &= bool(np.allclose(ext[0, 1 : 1 + (h1 - l1)], G[l0 - 1, l1:h1]))
            if h0 < 12:
                ok &= bool(np.allclose(ext[-1, 1 : 1 + (h1 - l1)], G[h0, l1:h1]))
            if l1 > 0:
                ok &= bool(np.allclose(ext[1 : 1 + (h0 - l0), 0], G[l0:h0, l1 - 1]))
            if h1 < 10:
                ok &= bool(np.allclose(ext[1 : 1 + (h0 - l0), -1], G[l0:h0, h1]))
            return ok

        assert all(run_spmd(nprocs, spmd).values)

    def test_global_boundary_ghosts_zero(self):
        def spmd(comm):
            a = BlockPartiArray.from_global(comm, G)
            gs = build_ghost_schedule(a)
            ext = gs.exchange(a)
            (l0, _), (l1, _) = a.owned_block()
            checks = []
            if l0 == 0:
                checks.append(bool((ext[0] == 0).all()))
            if l1 == 0:
                checks.append(bool((ext[:, 0] == 0).all()))
            return all(checks) if checks else True

        assert all(run_spmd(4, spmd).values)

    def test_width_two(self):
        def spmd(comm):
            a = BlockPartiArray.from_global(comm, G)
            gs = build_ghost_schedule(a, width=2)
            ext = gs.exchange(a)
            (l0, h0), (l1, h1) = a.owned_block()
            if l0 >= 2:
                return bool(
                    np.allclose(ext[0:2, 2 : 2 + (h1 - l1)], G[l0 - 2 : l0, l1:h1])
                )
            return True

        assert all(run_spmd(2, spmd).values)

    def test_exchange_is_snapshot(self):
        # Mutating the array after exchange must not corrupt neighbors.
        def spmd(comm):
            a = BlockPartiArray.from_global(comm, G)
            gs = build_ghost_schedule(a)
            ext = gs.exchange(a)
            a.local[:] = -1.0
            ext2 = gs.exchange(a)
            (l0, h0), (l1, h1) = a.owned_block()
            if l0 > 0:
                return bool((ext2[0, 1 : 1 + (h1 - l1)] == -1.0).all())
            return True

        assert all(run_spmd(3, spmd).values)

    def test_message_count_one_per_face(self):
        def spmd(comm):
            a = BlockPartiArray.from_global(comm, G)
            gs = build_ghost_schedule(a)
            comm.barrier()
            before = comm.process.stats["messages_sent"]
            gs.exchange(a)
            return comm.process.stats["messages_sent"] - before, len(gs.faces)

        for sent, faces in run_spmd(4, spmd).values:
            assert sent == faces


class TestPartiCopySchedule:
    def _oracle(self, src_slices, dst_shape, dst_slices):
        out = np.zeros(dst_shape)
        out[dst_slices] = G[src_slices]
        return out

    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 8])
    def test_copy_matches_oracle(self, nprocs):
        def spmd(comm):
            A = BlockPartiArray.from_global(comm, G)
            B = BlockPartiArray.zeros(comm, (15, 15))
            sched = build_copy_schedule(
                A, parti_region((2, 1), (9, 8)), B, parti_region((5, 4), (12, 11))
            )
            sched.execute(A, B)
            return B.gather_global()

        got = run_spmd(nprocs, spmd).values[0]
        expected = self._oracle(
            (slice(2, 10), slice(1, 9)), (15, 15), (slice(5, 13), slice(4, 12))
        )
        np.testing.assert_allclose(got, expected)

    def test_strided_sections(self):
        def spmd(comm):
            A = BlockPartiArray.from_global(comm, G)
            B = BlockPartiArray.zeros(comm, (6, 5))
            src = parti_region((0, 0), (11, 9), (2, 2))
            dst = parti_region((0, 0), (5, 4))
            sched = build_copy_schedule(A, src, B, dst)
            sched.execute(A, B)
            return B.gather_global()

        got = run_spmd(4, spmd).values[0]
        np.testing.assert_allclose(got, G[0:12:2, 0:10:2])

    def test_size_mismatch_rejected(self):
        def spmd(comm):
            A = BlockPartiArray.from_global(comm, G)
            B = BlockPartiArray.zeros(comm, (6, 5))
            build_copy_schedule(
                A, parti_region((0, 0), (3, 3)), B, parti_region((0, 0), (2, 2))
            )

        with pytest.raises(SPMDError, match="counts differ"):
            run_spmd(2, spmd)

    def test_schedule_reusable(self):
        def spmd(comm):
            A = BlockPartiArray.from_global(comm, G)
            B = BlockPartiArray.zeros(comm, (12, 10))
            region = parti_region((0, 0), (11, 9))
            sched = build_copy_schedule(A, region, B, region)
            sched.execute(A, B)
            A.local *= 3.0
            sched.execute(A, B)
            return B.gather_global()

        got = run_spmd(3, spmd).values[0]
        np.testing.assert_allclose(got, 3.0 * G)

    def test_local_copy_uses_intermediate_buffer_charge(self):
        """Parti stages self-transfers through a buffer (paper §5.3):
        at P=1 the copy still costs two packing passes."""

        def spmd(comm):
            A = BlockPartiArray.from_global(comm, G)
            B = BlockPartiArray.zeros(comm, (12, 10))
            region = parti_region((0, 0), (11, 9))
            sched = build_copy_schedule(A, region, B, region)
            t0 = comm.process.clock
            sched.execute(A, B)
            return comm.process.clock - t0

        elapsed = run_spmd(1, spmd).values[0]
        pack = 120 * 350e-9  # one pass over 120 elements on the SP2 profile
        assert elapsed >= 2 * pack * 0.99

    def test_aggregation_one_message_per_pair(self):
        def spmd(comm):
            A = BlockPartiArray.from_global(comm, G)
            B = BlockPartiArray.zeros(comm, (12, 10))
            region = parti_region((0, 0), (11, 9))
            sched = build_copy_schedule(A, region, B, region)
            comm.barrier()
            before = comm.process.stats["messages_sent"]
            sched.execute(A, B)
            sent = comm.process.stats["messages_sent"] - before
            partners = len(
                [d for d, v in sched.sends.items() if len(v) and d != comm.rank]
            )
            return sent == partners

        assert all(run_spmd(4, spmd).values)
