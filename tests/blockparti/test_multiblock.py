"""Multiblock array + inter-block interface tests."""

import numpy as np
import pytest

from repro.blockparti import BlockInterface, BlockPartiArray, MultiblockArray, fill_block
from repro.distrib.section import Section
from repro.vmachine.machine import SPMDError

from helpers import run_spmd


class TestConstruction:
    def test_zeros_blocks(self):
        def spmd(comm):
            mb = MultiblockArray.zeros(comm, [(6, 4), (8, 8), (3, 3)])
            return mb.nblocks, [b.global_shape for b in mb.blocks]

        n, shapes = run_spmd(2, spmd).values[0]
        assert n == 3
        assert shapes == [(6, 4), (8, 8), (3, 3)]

    def test_empty_rejected(self):
        def spmd(comm):
            MultiblockArray(comm, [])

        with pytest.raises(SPMDError, match="at least one block"):
            run_spmd(2, spmd)

    def test_interface_validation(self):
        def spmd(comm):
            mb = MultiblockArray.zeros(comm, [(4, 4), (4, 4)])
            mb.add_interface(
                BlockInterface(0, 5, Section.full((4, 4)), Section.full((4, 4)))
            )

        with pytest.raises(SPMDError, match="unknown block"):
            run_spmd(1, spmd)

    def test_interface_count_mismatch(self):
        def spmd(comm):
            mb = MultiblockArray.zeros(comm, [(4, 4), (4, 4)])
            mb.connect(0, (slice(0, 2), slice(0, 4)), 1, (slice(0, 1), slice(0, 4)))

        with pytest.raises(SPMDError, match="counts differ"):
            run_spmd(1, spmd)


class TestInterfaceUpdate:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_two_block_boundary_copy(self, nprocs):
        """Classic multiblock CFD: block 1's left edge reads block 0's
        right edge."""

        def spmd(comm):
            mb = MultiblockArray.zeros(comm, [(6, 8), (6, 8)])
            fill_block(mb.block(0), lambda i, j: 100.0 * i + j)
            mb.connect(
                0, (slice(0, 6), slice(7, 8)),   # block 0 rightmost column
                1, (slice(0, 6), slice(0, 1)),   # block 1 leftmost column
            )
            mb.build_interface_schedules()
            mb.update_interfaces()
            blocks = mb.gather_global()
            return blocks

        blocks = run_spmd(nprocs, spmd).values[0]
        np.testing.assert_allclose(blocks[1][:, 0], 100.0 * np.arange(6) + 7)
        assert np.count_nonzero(blocks[1]) == 6  # only the interface filled

    def test_chained_interfaces(self):
        """Three blocks in a ring of boundary exchanges."""

        def spmd(comm):
            mb = MultiblockArray.zeros(comm, [(4, 4)] * 3)
            fill_block(mb.block(0), lambda i, j: 1.0 + 0 * i)
            for a, b in ((0, 1), (1, 2)):
                mb.connect(
                    a, (slice(3, 4), slice(0, 4)),
                    b, (slice(0, 1), slice(0, 4)),
                )
            mb.update_interfaces()  # implicit schedule build
            blocks = mb.gather_global()
            return blocks

        blocks = run_spmd(2, spmd).values[0]
        # Interfaces execute in declaration order within one update, so the
        # value propagates one hop per interface in the chain.
        np.testing.assert_allclose(blocks[1][0], 1.0)
        np.testing.assert_allclose(blocks[2][0], 0.0)

    def test_repeated_updates_propagate(self):
        def spmd(comm):
            mb = MultiblockArray.zeros(comm, [(4, 4)] * 3)
            fill_block(mb.block(0), lambda i, j: 1.0 + 0 * i)
            mb.connect(0, (slice(3, 4), slice(0, 4)), 1, (slice(3, 4), slice(0, 4)))
            mb.connect(1, (slice(3, 4), slice(0, 4)), 2, (slice(0, 1), slice(0, 4)))
            mb.update_interfaces()
            mb.update_interfaces()
            return mb.gather_global()

        blocks = run_spmd(3, spmd).values[0]
        np.testing.assert_allclose(blocks[2][0], 1.0)

    def test_strided_interface(self):
        def spmd(comm):
            mb = MultiblockArray.zeros(comm, [(8, 8), (8, 8)])
            fill_block(mb.block(0), lambda i, j: 10.0 * i + j)
            mb.connect(
                0, (slice(0, 8, 2), slice(0, 1)),
                1, (slice(0, 4), slice(7, 8)),
            )
            mb.update_interfaces()
            return mb.gather_global()

        blocks = run_spmd(2, spmd).values[0]
        np.testing.assert_allclose(blocks[1][:4, 7], 10.0 * np.arange(0, 8, 2))
