"""HPFArray distribution tests."""

import numpy as np
import pytest

from repro.hpf import HPFArray
from repro.hpf.array import parse_dist_spec
from repro.vmachine.machine import SPMDError

from helpers import run_spmd

G = np.random.default_rng(22).random((12, 9))


class TestSpecParsing:
    def test_block(self):
        assert parse_dist_spec("block") == ("block", 0)

    def test_cyclic(self):
        assert parse_dist_spec("CYCLIC") == ("cyclic", 0)

    def test_cyclic_k(self):
        assert parse_dist_spec("cyclic(5)") == ("block_cyclic", 5)

    def test_star(self):
        assert parse_dist_spec("*") == ("collapsed", 0)

    def test_unknown(self):
        with pytest.raises(ValueError):
            parse_dist_spec("blocky")


SPECS = [
    ("block", "block"),
    ("block", "*"),
    ("*", "block"),
    ("cyclic", "block"),
    ("cyclic", "cyclic"),
    ("cyclic(3)", "*"),
    ("block", "cyclic(2)"),
]


@pytest.mark.parametrize("specs", SPECS, ids=lambda s: "/".join(s))
class TestDistributions:
    def test_gather_roundtrip(self, specs):
        def spmd(comm):
            a = HPFArray.from_global(comm, G, specs)
            return a.gather_global()

        for p in (1, 2, 4):
            got = run_spmd(p, spmd).values[0]
            np.testing.assert_allclose(got, G)

    def test_local_sizes_partition(self, specs):
        def spmd(comm):
            a = HPFArray.from_global(comm, G, specs)
            return a.local.size

        assert sum(run_spmd(4, spmd).values) == G.size


class TestConstruction:
    def test_from_function(self):
        def spmd(comm):
            a = HPFArray.from_function(
                comm, (6, 4), lambda i, j: 10.0 * i + j, ("cyclic", "block")
            )
            return a.gather_global()

        got = run_spmd(4, spmd).values[0]
        ii, jj = np.meshgrid(np.arange(6), np.arange(4), indexing="ij")
        np.testing.assert_allclose(got, 10.0 * ii + jj)

    def test_explicit_grid(self):
        def spmd(comm):
            a = HPFArray.distribute(comm, (8, 8), ("block", "block"), grid=(4, 1))
            return a.local_shape

        assert run_spmd(4, spmd).values == [(2, 8)] * 4

    def test_collapsed_grid_extent_must_be_one(self):
        def spmd(comm):
            HPFArray.distribute(comm, (8, 8), ("*", "block"), grid=(2, 2))

        with pytest.raises(SPMDError, match="grid extent 1"):
            run_spmd(4, spmd)

    def test_fully_collapsed_multiproc_rejected(self):
        def spmd(comm):
            HPFArray.distribute(comm, (8,), ("*",))

        with pytest.raises(SPMDError, match="one processor"):
            run_spmd(2, spmd)

    def test_spec_count_mismatch(self):
        def spmd(comm):
            HPFArray.distribute(comm, (8, 8), ("block",))

        with pytest.raises(SPMDError, match="per dimension"):
            run_spmd(2, spmd)

    def test_aligned_with(self):
        def spmd(comm):
            a = HPFArray.distribute(comm, (8, 8), ("block", "block"))
            b = HPFArray.distribute(comm, (8, 8), ("block", "block"))
            c = HPFArray.distribute(comm, (8, 8), ("cyclic", "block"))
            return a.aligned_with(b) and not a.aligned_with(c)

        assert all(run_spmd(4, spmd).values)
