"""HPF TEMPLATE/ALIGN tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    IndexRegion,
    SectionRegion,
    mc_compute_schedule,
    mc_copy,
    mc_new_set_of_regions,
)
from repro.chaos import ChaosArray
from repro.distrib.section import Section
from repro.hpf import AlignedDist, HPFArray, Template, align_array, forall_indexed
from repro.vmachine.machine import SPMDError

from helpers import run_spmd


class TestTemplate:
    def test_block_template(self):
        t = Template((24, 10), ("block", "*"), 4)
        assert t.shape == (24, 10)
        assert t.ndim == 2

    def test_cyclic_template_rejected(self):
        with pytest.raises(ValueError, match="BLOCK"):
            Template((24,), ("cyclic",), 4)


class TestAlignedDist:
    def test_identity_alignment_matches_template_owners(self):
        t = Template((20,), ("block",), 4)
        d = AlignedDist(t.dist, (20,), (0,), (0,), (1,))
        d.check_valid()
        r1, _ = d.owner_of_flat(np.arange(20))
        r2, _ = t.dist.owner_of_flat(np.arange(20))
        np.testing.assert_array_equal(r1, r2)

    @pytest.mark.parametrize("offset,stride", [(0, 1), (3, 1), (0, 2), (5, 3)])
    def test_affine_alignment_is_partition(self, offset, stride):
        t = Template((64,), ("block",), 4)
        n = (64 - offset - 1) // stride + 1
        d = AlignedDist(t.dist, (n,), (0,), (offset,), (stride,))
        d.check_valid()

    def test_colocation_with_template_cells(self):
        t = Template((50, 8), ("block", "*"), 5)
        d = AlignedDist(t.dist, (20, 8), (0, 1), (7, 0), (2, 1))
        g = np.arange(20 * 8)
        i, j = np.unravel_index(g, (20, 8))
        r, _ = d.owner_of_flat(g)
        tr, _ = t.dist.owner_of_flat(
            np.ravel_multi_index((7 + 2 * i, j), (50, 8))
        )
        np.testing.assert_array_equal(r, tr)

    def test_transposed_axes(self):
        """A(i, j) aligned with T(j, i): axes swap."""
        t = Template((12, 30), ("*", "block"), 3)
        d = AlignedDist(t.dist, (30, 12), (1, 0), (0, 0), (1, 1))
        d.check_valid()
        # element (i, 0) lives where template column i lives
        r, _ = d.owner_of_flat(np.arange(0, 30 * 12, 12))  # (i, 0) flat
        tr, _ = t.dist.owner_of_flat(np.arange(30))  # T(0, i) flat
        np.testing.assert_array_equal(r, tr)

    def test_descriptor_roundtrip(self):
        t = Template((40,), ("block",), 4)
        d = AlignedDist(t.dist, (10,), (0,), (2,), (3,))
        assert d.descriptor().materialize() == d

    def test_out_of_bounds_rejected(self):
        t = Template((10,), ("block",), 2)
        with pytest.raises(ValueError, match="outside"):
            AlignedDist(t.dist, (6,), (0,), (0,), (2,))  # last cell = 10

    def test_duplicate_axis_rejected(self):
        t = Template((10, 10), ("block", "*"), 2)
        with pytest.raises(ValueError, match="same template axis"):
            AlignedDist(t.dist, (5, 5), (0, 0), (0, 0), (1, 1))

    def test_distributed_unused_axis_rejected(self):
        t = Template((10, 10), ("block", "block"), 4)
        with pytest.raises(ValueError, match="replication"):
            AlignedDist(t.dist, (10,), (0,), (0,), (1,))

    def test_zero_or_negative_stride_rejected(self):
        t = Template((10,), ("block",), 2)
        with pytest.raises(ValueError):
            AlignedDist(t.dist, (5,), (0,), (0,), (0,))
        with pytest.raises(ValueError):
            AlignedDist(t.dist, (5,), (0,), (9,), (-1,))


class TestAlignedArrays:
    def test_owner_computes_and_gather(self):
        def spmd(comm):
            t = Template((32, 6), ("block", "*"), comm.size)
            a = align_array(comm, (10, 6), t, offsets=(4, 0), strides=(2, 1))
            forall_indexed(a, lambda c: 10.0 * c[0] + c[1])
            return a.gather_global()

        got = run_spmd(4, spmd).values[0]
        ii, jj = np.meshgrid(np.arange(10), np.arange(6), indexing="ij")
        np.testing.assert_allclose(got, 10.0 * ii + jj)

    def test_two_aligned_arrays_same_template_are_colocated(self):
        """The point of ALIGN: elements that interact share processors, so
        a pointwise combination needs no communication."""

        def spmd(comm):
            t = Template((40,), ("block",), comm.size)
            a = align_array(comm, (40,), t)
            b = align_array(comm, (40,), t)
            assert a.local.size == b.local.size  # same owned box
            comm.barrier()
            before = comm.process.stats["messages_sent"]
            a.local[:] = 1.0
            b.local[:] = a.local * 2.0  # purely local
            after = comm.process.stats["messages_sent"]
            # barrier messages only (none from the combination itself)
            return after - before

        assert all(v == 0 for v in run_spmd(4, spmd).values)

    def test_metachaos_interop_from_aligned_array(self):
        def spmd(comm):
            t = Template((26,), ("block",), comm.size)
            a = align_array(comm, (12,), t, offsets=(1,), strides=(2,))
            forall_indexed(a, lambda c: 1.0 * c[0])
            z = ChaosArray.zeros(comm, np.arange(12) % comm.size)
            sched = mc_compute_schedule(
                comm,
                "hpf", a,
                mc_new_set_of_regions(SectionRegion(Section.full((12,)))),
                "chaos", z,
                mc_new_set_of_regions(IndexRegion(np.arange(12)[::-1])),
            )
            mc_copy(comm, sched, a, z)
            return z.gather_global()

        got = run_spmd(3, spmd).values[0]
        np.testing.assert_allclose(got, np.arange(12)[::-1])

    def test_comm_size_mismatch(self):
        def spmd(comm):
            t = Template((10,), ("block",), comm.size + 1)
            align_array(comm, (10,), t)

        with pytest.raises(SPMDError, match="spans"):
            run_spmd(2, spmd)


@given(
    tsize=st.integers(8, 60),
    nprocs=st.integers(1, 6),
    offset=st.integers(0, 6),
    stride=st.integers(1, 4),
)
@settings(max_examples=30, deadline=None)
def test_property_aligned_dist_is_partition(tsize, nprocs, offset, stride):
    n = (tsize - offset - 1) // stride + 1
    if n < 1:
        return
    t = Template((tsize,), ("block",), nprocs)
    d = AlignedDist(t.dist, (n,), (0,), (offset,), (stride,))
    d.check_valid()
