"""forall executor tests."""

import numpy as np
import pytest

from repro.hpf import HPFArray, forall, forall_indexed
from repro.vmachine.machine import SPMDError

from helpers import run_spmd

G = np.random.default_rng(23).random(30)


class TestForall:
    def test_elementwise(self):
        def spmd(comm):
            x = HPFArray.from_global(comm, G, ("cyclic",))
            out = HPFArray.distribute(comm, (30,), ("cyclic",))
            forall(out, lambda a: 2.0 * a + 1.0, x)
            return out.gather_global()

        np.testing.assert_allclose(run_spmd(3, spmd).values[0], 2.0 * G + 1.0)

    def test_multiple_operands(self):
        def spmd(comm):
            x = HPFArray.from_global(comm, G, ("block",))
            y = HPFArray.from_global(comm, 2.0 * G, ("block",))
            out = HPFArray.distribute(comm, (30,), ("block",))
            forall(out, lambda a, b: a * b, x, y)
            return out.gather_global()

        np.testing.assert_allclose(run_spmd(4, spmd).values[0], 2.0 * G * G)

    def test_unaligned_operands_rejected(self):
        def spmd(comm):
            x = HPFArray.from_global(comm, G, ("cyclic",))
            out = HPFArray.distribute(comm, (30,), ("block",))
            forall(out, lambda a: a, x)

        with pytest.raises(SPMDError, match="aligned"):
            run_spmd(2, spmd)

    def test_charges_flops(self):
        def spmd(comm):
            x = HPFArray.from_global(comm, G, ("block",))
            t0 = comm.process.clock
            forall(x, lambda a: a + 1.0, x, flops_per_elem=3.0)
            return comm.process.clock - t0

        vals = run_spmd(2, spmd).values
        assert all(v > 0 for v in vals)


class TestForallIndexed:
    def test_global_coordinates_available(self):
        def spmd(comm):
            out = HPFArray.distribute(comm, (5, 4), ("block", "cyclic"))
            forall_indexed(out, lambda coords: 10.0 * coords[0] + coords[1])
            return out.gather_global()

        got = run_spmd(4, spmd).values[0]
        ii, jj = np.meshgrid(np.arange(5), np.arange(4), indexing="ij")
        np.testing.assert_allclose(got, 10.0 * ii + jj)

    def test_with_operand(self):
        def spmd(comm):
            x = HPFArray.from_global(comm, G, ("cyclic",))
            out = HPFArray.distribute(comm, (30,), ("cyclic",))
            forall_indexed(out, lambda coords, a: a * coords[0], x)
            return out.gather_global()

        np.testing.assert_allclose(
            run_spmd(3, spmd).values[0], G * np.arange(30)
        )
