"""HPF intrinsic-style operation tests."""

import numpy as np
import pytest

from repro.hpf import (
    HPFArray,
    cshift,
    hpf_dot,
    hpf_max,
    hpf_min,
    hpf_section_copy,
    hpf_sum,
)
from repro.vmachine.machine import SPMDError

from helpers import run_spmd

G = np.random.default_rng(51).random(30)
G2 = np.random.default_rng(52).random((8, 10))


class TestReductions:
    @pytest.mark.parametrize("spec", ["block", "cyclic", "cyclic(4)"])
    def test_sum_max_min(self, spec):
        def spmd(comm):
            x = HPFArray.from_global(comm, G, (spec,))
            return hpf_sum(x), hpf_max(x), hpf_min(x)

        for s, mx, mn in run_spmd(3, spmd).values:
            assert np.isclose(s, G.sum())
            assert np.isclose(mx, G.max())
            assert np.isclose(mn, G.min())

    def test_dot(self):
        def spmd(comm):
            x = HPFArray.from_global(comm, G, ("block",))
            y = HPFArray.from_global(comm, 2.0 * G, ("block",))
            return hpf_dot(x, y)

        assert np.isclose(run_spmd(4, spmd).values[0], 2.0 * G @ G)

    def test_dot_requires_alignment(self):
        def spmd(comm):
            x = HPFArray.from_global(comm, G, ("block",))
            y = HPFArray.from_global(comm, G, ("cyclic",))
            hpf_dot(x, y)

        with pytest.raises(SPMDError, match="aligned"):
            run_spmd(2, spmd)

    def test_reductions_on_2d(self):
        def spmd(comm):
            x = HPFArray.from_global(comm, G2, ("block", "cyclic"))
            return hpf_sum(x)

        assert np.isclose(run_spmd(4, spmd).values[0], G2.sum())


class TestCshift:
    @pytest.mark.parametrize("shift", [0, 1, 5, 29, 30, -3])
    def test_1d(self, shift):
        def spmd(comm):
            x = HPFArray.from_global(comm, G, ("block",))
            return cshift(x, shift).gather_global()

        got = run_spmd(3, spmd).values[0]
        np.testing.assert_allclose(got, np.roll(G, -shift))

    def test_2d_dim0(self):
        def spmd(comm):
            x = HPFArray.from_global(comm, G2, ("block", "block"))
            return cshift(x, 3, dim=0).gather_global()

        got = run_spmd(4, spmd).values[0]
        np.testing.assert_allclose(got, np.roll(G2, -3, axis=0))

    def test_2d_dim1(self):
        def spmd(comm):
            x = HPFArray.from_global(comm, G2, ("block", "block"))
            return cshift(x, 4, dim=1).gather_global()

        got = run_spmd(2, spmd).values[0]
        np.testing.assert_allclose(got, np.roll(G2, -4, axis=1))

    def test_preserves_distribution(self):
        def spmd(comm):
            x = HPFArray.from_global(comm, G, ("cyclic",))
            return cshift(x, 2).aligned_with(x)

        assert all(run_spmd(3, spmd).values)


class TestSectionCopy:
    def test_between_different_distributions(self):
        def spmd(comm):
            src = HPFArray.from_global(comm, G2, ("block", "block"))
            dst = HPFArray.distribute(comm, (12, 12), ("cyclic", "block"))
            hpf_section_copy(
                src, (slice(2, 8), slice(0, 10)),
                dst, (slice(0, 6), slice(1, 11)),
            )
            return dst.gather_global()

        got = run_spmd(4, spmd).values[0]
        expected = np.zeros((12, 12))
        expected[0:6, 1:11] = G2[2:8, 0:10]
        np.testing.assert_allclose(got, expected)

    def test_strided(self):
        def spmd(comm):
            src = HPFArray.from_global(comm, G, ("block",))
            dst = HPFArray.distribute(comm, (10,), ("cyclic",))
            hpf_section_copy(src, (slice(0, 30, 3),), dst, (slice(0, 10),))
            return dst.gather_global()

        np.testing.assert_allclose(run_spmd(3, spmd).values[0], G[::3])
