"""Distributed matvec tests (the HPF server kernel)."""

import numpy as np
import pytest

from repro.hpf import HPFArray, distributed_matvec, local_matvec_time
from repro.vmachine import ALPHA_FARM_ATM, IBM_SP2
from repro.vmachine.machine import SPMDError

from helpers import run_spmd

M, N = 20, 16
A_G = np.random.default_rng(24).random((M, N))
X_G = np.random.default_rng(25).random(N)


class TestDistributedMatvec:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 8])
    def test_matches_numpy(self, nprocs):
        def spmd(comm):
            A = HPFArray.from_global(comm, A_G, ("block", "*"))
            x = HPFArray.from_global(comm, X_G, ("block",))
            y = HPFArray.distribute(comm, (M,), ("block",))
            distributed_matvec(A, x, y)
            return y.gather_global()

        got = run_spmd(nprocs, spmd).values[0]
        np.testing.assert_allclose(got, A_G @ X_G)

    def test_shape_mismatch(self):
        def spmd(comm):
            A = HPFArray.from_global(comm, A_G, ("block", "*"))
            x = HPFArray.distribute(comm, (N + 1,), ("block",))
            y = HPFArray.distribute(comm, (M,), ("block",))
            distributed_matvec(A, x, y)

        with pytest.raises(SPMDError, match="shape mismatch"):
            run_spmd(2, spmd)

    def test_non_matrix_rejected(self):
        def spmd(comm):
            A = HPFArray.from_global(comm, X_G, ("block",))
            distributed_matvec(A, A, A)

        with pytest.raises(SPMDError, match="matrix"):
            run_spmd(2, spmd)

    def test_internal_communication_grows_with_procs(self):
        """The allgather term behind the paper's 8-process server optimum."""

        def spmd(comm):
            A = HPFArray.from_global(comm, A_G, ("block", "*"))
            x = HPFArray.from_global(comm, X_G, ("block",))
            y = HPFArray.distribute(comm, (M,), ("block",))
            comm.barrier()
            before = comm.process.stats["messages_sent"]
            distributed_matvec(A, x, y)
            return comm.process.stats["messages_sent"] - before

        m2 = sum(run_spmd(2, spmd).values)
        m8 = sum(run_spmd(8, spmd).values)
        assert m8 > m2

    def test_compute_time_scales_down(self):
        # Large enough that flops dominate the allgather latency.
        big = np.random.default_rng(1).random((512, 512))

        def make(p):
            def spmd(comm):
                A = HPFArray.from_global(comm, big, ("block", "*"))
                x = HPFArray.from_global(comm, big[0], ("block",))
                y = HPFArray.distribute(comm, (512,), ("block",))
                with comm.process.timer.phase("mv"):
                    distributed_matvec(A, x, y)
                return None

            return spmd

        t1 = run_spmd(1, make(1)).merged_timing.get_ms("mv")
        t4 = run_spmd(4, make(4)).merged_timing.get_ms("mv")
        assert t4 < t1


class TestLocalMatvecTime:
    def test_flop_model(self):
        t = local_matvec_time(512, 512, ALPHA_FARM_ATM)
        assert t == pytest.approx(2 * 512 * 512 * ALPHA_FARM_ATM.gamma_flop)

    def test_profiles_differ(self):
        assert local_matvec_time(100, 100, IBM_SP2) != local_matvec_time(
            100, 100, ALPHA_FARM_ATM
        )
