"""Satellite: every caching layer reports through one ``cache_*``
namespace on the rank's MetricsRegistry (documented in
``repro.observe.metrics``)."""

import numpy as np

from repro.core import mc_new_set_of_regions
from repro.core.cache import ScheduleCache
from repro.core.region import SectionRegion
from repro.distrib.section import Section
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core.region import IndexRegion
from repro.vmachine import VirtualMachine


def _spmd_cached_copies(comm):
    n = 64
    perm = np.random.default_rng(0).permutation(n)
    cache = ScheduleCache(comm, maxsize=1)
    src = BlockPartiArray.from_global(comm, np.arange(n, dtype=float))
    dst = ChaosArray.zeros(comm, perm % comm.size)
    sor_s = mc_new_set_of_regions(SectionRegion(Section.full((n,))))
    sor_d = mc_new_set_of_regions(IndexRegion(perm))
    req = ("blockparti", src, sor_s, "chaos", dst, sor_d)
    cache.get_or_build(*req)          # miss
    cache.get_or_build(*req)          # hit
    cache.get_or_build_plan([req])    # plan miss (schedule hit)
    cache.get_or_build_plan([req])    # plan hit (schedule hit)
    # A different request evicts under maxsize=1 and invalidates plans.
    dst2 = ChaosArray.zeros(comm, (perm[::-1]) % comm.size)
    req2 = ("blockparti", src, sor_s, "chaos", dst2,
            mc_new_set_of_regions(IndexRegion(perm[::-1].copy())))
    cache.get_or_build(*req2)
    return dict(comm.process.metrics.counters)


class TestScheduleCacheMirror:
    def test_counters_surface_in_metrics(self):
        counters = VirtualMachine(2).run(_spmd_cached_copies).values[0]
        assert counters["cache_schedule_misses"] == 2
        assert counters["cache_schedule_hits"] == 3
        assert counters["cache_schedule_evictions"] == 1
        assert counters["cache_plan_misses"] == 1
        assert counters["cache_plan_hits"] == 1
        assert counters["cache_plan_invalidations"] == 1

    def test_attribute_counters_agree_with_mirror(self):
        def spmd(comm):
            _spmd_cached_copies(comm)
            return None

        VirtualMachine(2).run(spmd)  # just must not raise

    def test_outside_vm_is_silent(self):
        # Host-side construction: no current process, no mirror, no error.
        cache = ScheduleCache(None)
        assert cache.metrics is None


class TestProgramCacheMirror:
    def test_program_memo_hits_and_misses(self):
        n = 64
        perm = np.random.default_rng(0).permutation(n)

        def spmd(comm):
            from repro.core import mc_compute_schedule, mc_copy

            src = BlockPartiArray.from_global(
                comm, np.arange(n, dtype=float)
            )
            dst = ChaosArray.zeros(comm, perm % comm.size)
            sched = mc_compute_schedule(
                comm, "blockparti", src,
                mc_new_set_of_regions(SectionRegion(Section.full((n,)))),
                "chaos", dst, mc_new_set_of_regions(IndexRegion(perm)),
            )
            mc_copy(comm, sched, src, dst)   # lowers programs: misses
            mc_copy(comm, sched, src, dst)   # replays memos: hits
            c = comm.process.metrics.counters
            return c.get("cache_program_misses", 0), \
                c.get("cache_program_hits", 0)

        for misses, hits in VirtualMachine(2).run(spmd).values:
            assert misses > 0
            assert hits >= misses  # second copy replays every lowered half

    def test_mirror_is_clock_free(self):
        """Observed clocks are identical whether or not counters exist —
        guaranteed structurally (incr never touches the clock), asserted
        here by running the same move twice and comparing clock deltas."""
        n = 64
        perm = np.random.default_rng(0).permutation(n)

        def spmd(comm):
            from repro.core import mc_compute_schedule, mc_copy

            src = BlockPartiArray.from_global(
                comm, np.arange(n, dtype=float)
            )
            dst = ChaosArray.zeros(comm, perm % comm.size)
            sched = mc_compute_schedule(
                comm, "blockparti", src,
                mc_new_set_of_regions(SectionRegion(Section.full((n,)))),
                "chaos", dst, mc_new_set_of_regions(IndexRegion(perm)),
            )
            comm.barrier()
            t0 = comm.process.clock
            mc_copy(comm, sched, src, dst)
            d1 = comm.process.clock - t0
            comm.barrier()
            t1 = comm.process.clock
            mc_copy(comm, sched, src, dst)
            d2 = comm.process.clock - t1
            return d1, d2

        for d1, d2 in VirtualMachine(2).run(spmd).values:
            assert d1 == d2
