"""The cost model's exact tier: predicted clocks == measured clocks.

The headline property (ISSUE 9, satellite 3): for pure data moves —
single schedule, ORDERED, fusion 1 — the analytical replay reproduces
the virtual machine's per-rank logical clocks **to the last bit**,
across schedule method × distribution pair × processor count.  No
tolerance, no approximation: ``==`` on floats.
"""

import pytest

from repro.autotune import (
    CostModel,
    DistSpec,
    MappingPoint,
    WorkloadSpec,
    measure_mapping,
    pair_matrix,
)
from repro.core.policy import ExecutorPolicy
from repro.core.schedule import ScheduleMethod
from repro.vmachine.cost_model import ALPHA_FARM_ATM, IBM_SP2

DIST_PAIRS = [
    (DistSpec("block"), DistSpec("cyclic")),
    (DistSpec("cyclic"), DistSpec("block_cyclic", block=8)),
    (DistSpec("block"), DistSpec("irregular", seed=5)),
    (DistSpec("irregular", seed=3), DistSpec("irregular", seed=7)),
]


def _ids(pair):
    return f"{pair[0].label()}->{pair[1].label()}"


class TestBitExactMoves:
    """Predicted == measured, to the last bit (the tentpole property)."""

    @pytest.mark.parametrize("nprocs", [4, 8, 16])
    @pytest.mark.parametrize(
        "method", [ScheduleMethod.COOPERATION, ScheduleMethod.DUPLICATION]
    )
    @pytest.mark.parametrize("pair", DIST_PAIRS, ids=_ids)
    def test_ordered_single_schedule(self, pair, method, nprocs):
        src, dst = pair
        wl = WorkloadSpec("prop", nelems=256, nprocs=nprocs, pattern="permute")
        mapping = MappingPoint(src, dst, method=method)
        run = measure_mapping(wl, mapping)
        predicted = CostModel(wl.profile).simulate_move(
            pair_matrix(wl, src, dst),
            wl.itemsize,
            ExecutorPolicy.ORDERED,
            start_clocks=list(run.move_start_clocks),
        )
        assert predicted == list(run.move_clocks)

    @pytest.mark.parametrize("pattern", ["identity", "section"])
    def test_other_access_patterns(self, pattern):
        wl = WorkloadSpec("pat", nelems=240, nprocs=4, pattern=pattern)
        mapping = MappingPoint(DistSpec("block"), DistSpec("cyclic"))
        run = measure_mapping(wl, mapping)
        predicted = CostModel(wl.profile).simulate_move(
            pair_matrix(wl, mapping.src, mapping.dst),
            wl.itemsize,
            ExecutorPolicy.ORDERED,
            start_clocks=list(run.move_start_clocks),
        )
        assert predicted == list(run.move_clocks)

    def test_overlap_executor(self):
        wl = WorkloadSpec("ovl", nelems=256, nprocs=8, pattern="permute")
        mapping = MappingPoint(
            DistSpec("block"), DistSpec("irregular", seed=5),
            policy=ExecutorPolicy.OVERLAP,
        )
        run = measure_mapping(wl, mapping)
        predicted = CostModel(wl.profile).simulate_move(
            pair_matrix(wl, mapping.src, mapping.dst),
            wl.itemsize,
            ExecutorPolicy.OVERLAP,
            start_clocks=list(run.move_start_clocks),
        )
        assert predicted == list(run.move_clocks)

    def test_other_machine_profile(self):
        wl = WorkloadSpec(
            "atm", nelems=256, nprocs=4, pattern="permute",
            profile=ALPHA_FARM_ATM,
        )
        mapping = MappingPoint(DistSpec("block"), DistSpec("cyclic"))
        run = measure_mapping(wl, mapping)
        predicted = CostModel(ALPHA_FARM_ATM).simulate_move(
            pair_matrix(wl, mapping.src, mapping.dst),
            wl.itemsize,
            ExecutorPolicy.ORDERED,
            start_clocks=list(run.move_start_clocks),
        )
        assert predicted == list(run.move_clocks)

    @pytest.mark.parametrize("fusion,label", [(3, "fused"), (1, "sequential")])
    def test_multi_array_moves(self, fusion, label):
        k = 3
        wl = WorkloadSpec(
            "multi", nelems=256, nprocs=4, pattern="permute",
            narrays=k, reuse=2,
        )
        mapping = MappingPoint(
            DistSpec("block"), DistSpec("irregular", seed=5), fusion=fusion
        )
        run = measure_mapping(wl, mapping)
        counts = pair_matrix(wl, mapping.src, mapping.dst)
        clocks = list(run.move_start_clocks)
        model = CostModel(wl.profile)
        for _ in range(wl.reuse):
            clocks = model.simulate_move(
                counts, wl.itemsize, mapping.policy,
                start_clocks=clocks, segments=k, fused=fusion > 1,
            )
        assert clocks == list(run.move_clocks)


class TestMoveTerms:
    def test_terms_sum_to_clock_advance(self):
        """The move-term decomposition accounts for every clock second."""
        wl = WorkloadSpec("terms", nelems=512, nprocs=4, pattern="permute")
        counts = pair_matrix(wl, DistSpec("block"), DistSpec("cyclic"))
        terms: dict[str, float] = {}
        clocks = CostModel(wl.profile).simulate_move(
            counts, wl.itemsize, ExecutorPolicy.ORDERED, terms=terms
        )
        assert sum(terms.values()) == pytest.approx(sum(clocks), rel=1e-12)
        assert set(terms) <= {"alpha", "beta", "occupancy", "per_element"}

    def test_terms_do_not_perturb_clocks(self):
        wl = WorkloadSpec("terms", nelems=512, nprocs=8, pattern="permute")
        counts = pair_matrix(wl, DistSpec("cyclic"), DistSpec("block"))
        model = CostModel(wl.profile)
        with_terms = model.simulate_move(
            counts, wl.itemsize, ExecutorPolicy.ORDERED, terms={}
        )
        without = model.simulate_move(
            counts, wl.itemsize, ExecutorPolicy.ORDERED
        )
        assert with_terms == without


class TestPairMatrix:
    def test_counts_match_real_schedule(self):
        """Offline pair counts equal the executed schedule's stats."""
        from repro.core import (
            mc_compute_schedule,
            mc_new_set_of_regions,
        )
        from repro.core.region import IndexRegion, SectionRegion
        from repro.distrib.section import Section
        from repro.hpf.array import HPFArray
        from repro.chaos import ChaosArray
        from repro.vmachine import VirtualMachine

        wl = WorkloadSpec("pm", nelems=128, nprocs=4, pattern="permute")
        src, dst = DistSpec("block"), DistSpec("irregular", seed=9)
        offline = pair_matrix(wl, src, dst)

        def spmd(comm):
            a = HPFArray.distribute(comm, (wl.nelems,), (src.hpf_spec(),))
            b = ChaosArray.zeros(comm, dst.owners(wl.nelems, comm.size))
            sched = mc_compute_schedule(
                comm,
                "hpf", a,
                mc_new_set_of_regions(
                    SectionRegion(Section.full((wl.nelems,)))
                ),
                "chaos", b,
                mc_new_set_of_regions(IndexRegion(wl.dst_indices())),
            )
            # send_elements includes the diagonal (direct local copies).
            return dict(sched.stats(itemsize=wl.itemsize).send_elements)

        rows = VirtualMachine(wl.nprocs).run(spmd).values
        for s, sends in enumerate(rows):
            for d in range(wl.nprocs):
                assert sends.get(d, 0) == offline[s, d], (s, d)

    def test_conservation(self):
        wl = WorkloadSpec("c", nelems=1000, nprocs=8, pattern="permute")
        m = pair_matrix(wl, DistSpec("cyclic"), DistSpec("irregular", seed=2))
        assert m.sum() == wl.nelems

    def test_section_pattern_moves_half(self):
        wl = WorkloadSpec("s", nelems=1000, nprocs=4, pattern="section")
        m = pair_matrix(wl, DistSpec("block"), DistSpec("block"))
        assert m.sum() == wl.nelems // 2


class TestCoefficients:
    def test_exact_tier_ignores_coefficients(self):
        from repro.autotune import Coefficients

        wl = WorkloadSpec("coef", nelems=256, nprocs=4)
        counts = pair_matrix(wl, DistSpec("block"), DistSpec("cyclic"))
        scaled = CostModel(wl.profile, Coefficients(per_element=7.0))
        plain = CostModel(wl.profile)
        assert scaled.simulate_move(counts, 8) == plain.simulate_move(counts, 8)

    def test_build_tier_applies_coefficients(self):
        from repro.autotune import Coefficients

        wl = WorkloadSpec("coef", nelems=256, nprocs=4)
        m = MappingPoint(DistSpec("block"), DistSpec("cyclic"))
        doubled = CostModel(wl.profile, Coefficients(
            alpha=2.0, beta=2.0, occupancy=2.0, per_element=2.0
        ))
        plain = CostModel(wl.profile)
        assert doubled.predict(wl, m).build_s == pytest.approx(
            2.0 * plain.predict(wl, m).build_s
        )
