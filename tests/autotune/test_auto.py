"""The ``policy="auto"`` runtime hook and its safety properties."""

import numpy as np
import pytest

from repro.autotune import choose_policy, resolve_policy
from repro.core import (
    mc_compute_schedule,
    mc_copy,
    mc_copy_many,
    mc_new_set_of_regions,
)
from repro.core.policy import ExecutorPolicy
from repro.core.region import IndexRegion, SectionRegion
from repro.distrib.section import Section
from repro.hpf.array import HPFArray
from repro.chaos import ChaosArray
from repro.vmachine import VirtualMachine


class _Sched:
    def __init__(self, recvs):
        self.recvs = recvs


class _Plan:
    def __init__(self, recv_programs):
        self.recv_programs = recv_programs


class TestChoosePolicy:
    def test_multi_peer_receives_pick_overlap(self):
        s = _Sched({0: [1, 2], 1: [3], 2: []})
        assert choose_policy(s) is ExecutorPolicy.OVERLAP

    def test_single_peer_picks_ordered(self):
        assert choose_policy(_Sched({0: [1, 2]})) is ExecutorPolicy.ORDERED
        assert choose_policy(_Sched({})) is ExecutorPolicy.ORDERED

    def test_local_entry_excluded(self):
        # Rank 1's direct local copy (recvs[1]) is not a message.
        s = _Sched({0: [1], 1: [2, 3]})
        assert choose_policy(s, my_rank=1) is ExecutorPolicy.ORDERED
        assert choose_policy(s, my_rank=2) is ExecutorPolicy.OVERLAP

    def test_plan_objects(self):
        assert choose_policy(_Plan({0: "p", 2: "q"})) is ExecutorPolicy.OVERLAP
        assert choose_policy(_Plan({0: "p"})) is ExecutorPolicy.ORDERED

    def test_resolve_passthrough(self):
        s = _Sched({0: [1], 1: [2]})
        assert resolve_policy("overlap", s) is ExecutorPolicy.OVERLAP
        assert resolve_policy(ExecutorPolicy.ORDERED, s) \
            is ExecutorPolicy.ORDERED
        assert resolve_policy("AUTO", s) is ExecutorPolicy.OVERLAP

    def test_resolve_rejects_unknown_strings(self):
        with pytest.raises(ValueError):
            resolve_policy("fastest", _Sched({}))


def _permuted_copy(policy, n=256, nprocs=4):
    perm = np.random.default_rng(7).permutation(n)

    def spmd(comm):
        src = HPFArray.distribute(comm, (n,), ("block",))
        owners = np.random.default_rng(3).integers(0, comm.size, n)
        dst = ChaosArray.zeros(comm, owners)
        src.local[:] = np.asarray(src.global_indices((0,))[0], dtype=float) \
            if hasattr(src, "global_indices") else comm.rank
        src.local[:] = comm.rank * 1000.0 + np.arange(len(src.local))
        sched = mc_compute_schedule(
            comm,
            "hpf", src,
            mc_new_set_of_regions(SectionRegion(Section.full((n,)))),
            "chaos", dst,
            mc_new_set_of_regions(IndexRegion(perm)),
        )
        mc_copy(comm, sched, src, dst, policy=policy)
        return dst.local.copy()

    return VirtualMachine(nprocs).run(spmd).values


class TestAutoPolicyEndToEnd:
    def test_destination_identical_to_explicit_policies(self):
        """'auto' may pick either executor; bytes must match both."""
        auto = _permuted_copy("auto")
        ordered = _permuted_copy(ExecutorPolicy.ORDERED)
        for a, o in zip(auto, ordered):
            np.testing.assert_array_equal(a, o)

    def test_auto_in_fused_moves(self):
        n, k = 128, 2
        perms = [np.random.default_rng(i).permutation(n) for i in range(k)]

        def spmd(comm):
            sor_src = mc_new_set_of_regions(
                SectionRegion(Section.full((n,)))
            )
            srcs, dsts, scheds = [], [], []
            for i, perm in enumerate(perms):
                a = HPFArray.distribute(comm, (n,), ("block",))
                a.local[:] = comm.rank + i + 1.0
                b = ChaosArray.zeros(comm, perm % comm.size)
                srcs.append(a)
                dsts.append(b)
                scheds.append(mc_compute_schedule(
                    comm, "hpf", a, sor_src,
                    "chaos", b, mc_new_set_of_regions(IndexRegion(perm)),
                ))
            mc_copy_many(comm, scheds, srcs, dsts, policy="auto")
            return [d.local.copy() for d in dsts]

        values = VirtualMachine(4).run(spmd).values
        assert all(len(v) == 2 for v in values)

    def test_auto_never_charges_differently_than_its_choice(self):
        """Auto resolves to a concrete policy — identical logical clocks."""
        n = 256
        perm = np.random.default_rng(1).permutation(n)

        def run(policy):
            def spmd(comm):
                src = HPFArray.distribute(comm, (n,), ("block",))
                src.local[:] = 1.0
                dst = ChaosArray.zeros(
                    comm, np.random.default_rng(2).integers(0, comm.size, n)
                )
                sched = mc_compute_schedule(
                    comm, "hpf", src,
                    mc_new_set_of_regions(SectionRegion(Section.full((n,)))),
                    "chaos", dst,
                    mc_new_set_of_regions(IndexRegion(perm)),
                )
                mc_copy(comm, sched, src, dst, policy=policy)
                resolved = (
                    choose_policy(sched, comm.rank)
                    if policy == "auto" else policy
                )
                return comm.process.clock, resolved

            return VirtualMachine(4).run(spmd).values

        auto = run("auto")
        # Each rank's clock equals a run where every rank is forced to
        # what auto chose on that rank?  Policies are per-rank local, so
        # compare against the homogeneous run matching rank 0's choice
        # only when all ranks agreed.
        choices = {r[1] for r in auto}
        if len(choices) == 1:
            forced = run(choices.pop())
            assert [r[0] for r in auto] == [r[0] for r in forced]
