"""Calibration and validation: measured runs close the model loop."""

import pytest

from repro.autotune import (
    CostModel,
    DistSpec,
    MappingPoint,
    WorkloadSpec,
    calibrate,
    measure_mapping,
    search_mapping,
    validate_top,
)


class TestMeasureMapping:
    def test_decomposition_shape(self):
        wl = WorkloadSpec("m", nelems=256, nprocs=4, reuse=3)
        run = measure_mapping(
            wl, MappingPoint(DistSpec("block"), DistSpec("cyclic"))
        )
        assert run.total_s == pytest.approx(
            run.build_s + wl.reuse * run.move_s
        )
        assert len(run.move_clocks) == wl.nprocs
        assert run.build_s > 0 and run.move_s > 0

    def test_reuse_amortizes_build(self):
        """Same mapping, higher reuse: build identical, per-step move
        nearly so (later steps start from the skewed clocks the earlier
        steps left behind, so the per-step average drifts slightly —
        that is the machine model, not measurement noise)."""
        m = MappingPoint(DistSpec("block"), DistSpec("cyclic"))
        one = measure_mapping(
            WorkloadSpec("r1", nelems=256, nprocs=4, reuse=1), m
        )
        ten = measure_mapping(
            WorkloadSpec("r10", nelems=256, nprocs=4, reuse=10), m
        )
        assert ten.build_s == one.build_s
        assert ten.move_s == pytest.approx(one.move_s, rel=0.05)

    def test_paged_table_costs_more_build(self):
        wl = WorkloadSpec("pg", nelems=512, nprocs=4)
        src = DistSpec("block")
        dst = DistSpec("irregular", seed=3)
        repl = measure_mapping(wl, MappingPoint(src, dst, table="replicated"))
        paged = measure_mapping(wl, MappingPoint(src, dst, table="paged"))
        # The collective dereference round trades memory for latency.
        assert paged.build_s > repl.build_s

    def test_measured_terms_populated(self):
        wl = WorkloadSpec("t", nelems=256, nprocs=4)
        run = measure_mapping(
            wl, MappingPoint(DistSpec("block"), DistSpec("irregular", seed=1))
        )
        assert run.build_terms["per_element"] > 0
        assert run.move_terms["per_element"] > 0


class TestCalibrate:
    def test_refit_tightens_build_prediction(self):
        wl = WorkloadSpec("cal", nelems=1024, nprocs=4, reuse=4)
        cands = [
            MappingPoint(DistSpec("block"), DistSpec("cyclic")),
            MappingPoint(DistSpec("cyclic"), DistSpec("block")),
            MappingPoint(DistSpec("block"), DistSpec("irregular", seed=2)),
        ]
        base = CostModel(wl.profile)
        fitted = calibrate(wl, cands, base)

        def build_err(model):
            total = 0.0
            for m in cands:
                meas = measure_mapping(wl, m)
                pred = model.predict(wl, m)
                total += abs(pred.build_s - meas.build_s) / meas.build_s
            return total / len(cands)

        assert build_err(fitted) <= build_err(base) + 1e-12

    def test_unexercised_terms_keep_prior(self):
        from repro.autotune import Coefficients

        wl = WorkloadSpec("cal", nelems=256, nprocs=4)
        prior = Coefficients(alpha=3.5)
        fitted = calibrate(
            wl,
            [MappingPoint(DistSpec("block"), DistSpec("block"))],
            CostModel(wl.profile, prior),
        )
        # A block->block build exchanges no data-dependent alpha waits
        # beyond what it predicts; whichever terms saw no measurement
        # must survive untouched.
        coefs = fitted.coefficients.as_dict()
        for term, value in coefs.items():
            assert value > 0


class TestValidateTop:
    def test_pairs_predictions_with_measurements(self):
        wl = WorkloadSpec("v", nelems=512, nprocs=4, reuse=4)
        res = search_mapping(wl, top=4)
        pairs = validate_top(wl, res, top=2)
        assert len(pairs) == 2
        for pred, meas in pairs:
            assert pred.mapping == meas.mapping
            # The move tier is exact, so predicted move == measured move.
            assert pred.move_s == pytest.approx(meas.move_s, rel=1e-12)

    def test_auto_choice_within_tolerance_after_calibration(self):
        """Miniature of the bench acceptance: within 5% of measured best."""
        wl = WorkloadSpec("acc", nelems=1024, nprocs=4, reuse=8)
        res = search_mapping(wl)
        model = calibrate(wl, [p.mapping for p in res.ranked[:3]])
        res = search_mapping(wl, model=model)
        pairs = validate_top(wl, res, top=3)
        best_measured = min(m.total_s for _, m in pairs)
        chosen = pairs[0][1].total_s
        assert (chosen - best_measured) / best_measured <= 0.05
