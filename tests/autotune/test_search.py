"""Search-tier behaviour: enumeration, pruning, ranking, determinism."""

import pytest

from repro.autotune import (
    CostModel,
    DistSpec,
    MappingPoint,
    WorkloadSpec,
    mapping_space,
    search_mapping,
)
from repro.core.policy import ExecutorPolicy
from repro.core.schedule import ScheduleMethod


class TestMappingSpace:
    def test_paged_requires_irregular_side(self):
        wl = WorkloadSpec("sp", nelems=64, nprocs=4)
        for m in mapping_space(wl):
            if m.table == "paged":
                assert not (m.src.regular and m.dst.regular)

    def test_fusion_requires_multiple_arrays(self):
        wl = WorkloadSpec("sp", nelems=64, nprocs=4, narrays=1)
        assert all(m.fusion == 1 for m in mapping_space(wl))
        wl3 = WorkloadSpec("sp", nelems=64, nprocs=4, narrays=3)
        fusions = {m.fusion for m in mapping_space(wl3)}
        assert fusions == {1, 3}

    def test_duplication_pruned_for_huge_irregular_tables(self):
        wl = WorkloadSpec("big", nelems=(1 << 22) + 1, nprocs=4)
        for m in mapping_space(wl):
            if m.method is ScheduleMethod.DUPLICATION:
                assert m.src.regular and m.dst.regular

    def test_fixed_sides_pin_the_menu(self):
        wl = WorkloadSpec("sp", nelems=64, nprocs=4)
        pinned = DistSpec("irregular", seed=1)
        space = mapping_space(wl, fixed_src=pinned)
        assert all(m.src == pinned for m in space)
        assert len({m.dst for m in space}) > 1


class TestSearchMapping:
    def test_ranking_is_ascending(self):
        wl = WorkloadSpec("rk", nelems=512, nprocs=4, reuse=4)
        res = search_mapping(wl)
        totals = [p.total_s for p in res.ranked]
        assert totals == sorted(totals)

    def test_pruning_never_drops_the_optimum(self):
        """Branch-and-bound must agree with the exhaustive evaluation."""
        wl = WorkloadSpec("bb", nelems=512, nprocs=4, reuse=16)
        model = CostModel(wl.profile)
        res = search_mapping(wl, model=model)
        exhaustive = min(
            model.predict(wl, m).total_s for m in mapping_space(wl)
        )
        assert res.best.total_s == exhaustive
        assert res.evaluated + res.pruned == len(mapping_space(wl))

    def test_deterministic(self):
        wl = WorkloadSpec("det", nelems=256, nprocs=4, reuse=8)
        a = search_mapping(wl)
        b = search_mapping(wl)
        assert [p.mapping for p in a.ranked] == [p.mapping for p in b.ranked]

    def test_top_truncates(self):
        wl = WorkloadSpec("top", nelems=256, nprocs=4)
        res = search_mapping(wl, top=3)
        assert len(res.ranked) == 3

    def test_explicit_candidates(self):
        wl = WorkloadSpec("ex", nelems=256, nprocs=4)
        cands = [
            MappingPoint(DistSpec("block"), DistSpec("block")),
            MappingPoint(DistSpec("block"), DistSpec("cyclic"),
                         policy=ExecutorPolicy.OVERLAP),
        ]
        res = search_mapping(wl, candidates=cands)
        assert {p.mapping for p in res.ranked} <= set(cands)

    def test_identity_remap_prefers_matching_distributions(self):
        """A block->block identity remap sends no messages (pure local
        pack), so at high reuse it must beat every true redistribution."""
        ident = WorkloadSpec("id", nelems=4096, nprocs=4, pattern="identity",
                             reuse=100)
        res = search_mapping(
            ident,
            fixed_src=DistSpec("block"),
        )
        assert res.best.mapping.dst == DistSpec("block")
        # Local copies still pay pack charges, but nothing travels.
        assert set(res.best.move_terms) == {"per_element"}

    def test_search_is_fast(self):
        """The whole point: searching costs far less than one bad run."""
        wl = WorkloadSpec("fast", nelems=65536, nprocs=16, reuse=10)
        res = search_mapping(wl)
        assert res.search_wall_s < 30.0
        assert res.evaluated > 0


class TestPrediction:
    def test_row_shape(self):
        wl = WorkloadSpec("row", nelems=256, nprocs=4)
        pred = search_mapping(wl).best
        row = pred.row()
        assert set(row) == {
            "mapping", "predicted_total_ms", "predicted_move_ms",
            "predicted_build_ms", "move_terms_ms", "build_terms_ms",
        }

    def test_total_composition(self):
        wl = WorkloadSpec("comp", nelems=256, nprocs=4, reuse=7)
        pred = search_mapping(wl).best
        assert pred.total_s == pytest.approx(
            pred.build_s + wl.reuse * pred.move_s
        )
