"""Satellite: ``python -m repro --help`` renders every subcommand from
one registration table with consistent one-line help."""

import contextlib
import io

import pytest

from repro.__main__ import COMMANDS, main


class TestCommandTable:
    def test_every_command_registered_once(self):
        names = [c.name for c in COMMANDS]
        assert len(names) == len(set(names))
        assert "autotune" in names

    def test_expected_commands_present(self):
        names = {c.name for c in COMMANDS}
        assert names >= {
            "info", "demo", "coupled", "matvec", "plan-summary",
            "trace", "profile", "serve", "record", "replay", "autotune",
        }

    def test_help_is_one_line_per_command(self):
        for c in COMMANDS:
            assert c.help.strip(), c.name
            assert "\n" not in c.help, c.name

    def test_top_level_help_lists_all(self):
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            with pytest.raises(SystemExit) as exc:
                main(["--help"])
        assert exc.value.code == 0
        text = buf.getvalue()
        for c in COMMANDS:
            assert c.name in text, c.name

    def test_each_subcommand_help_parses(self):
        for c in COMMANDS:
            buf = io.StringIO()
            with contextlib.redirect_stdout(buf):
                with pytest.raises(SystemExit) as exc:
                    main([c.name, "--help"])
            assert exc.value.code == 0, c.name
            assert "usage:" in buf.getvalue(), c.name

    def test_dispatch_uses_the_table(self):
        """An unknown command errors out of argparse, not the dispatch."""
        with pytest.raises(SystemExit) as exc:
            with contextlib.redirect_stderr(io.StringIO()):
                main(["no-such-command"])
        assert exc.value.code == 2
