"""Unit tests for the LogGP-style cost model."""

import math

import pytest

from repro.vmachine.cost_model import ALPHA_FARM_ATM, IBM_SP2, CostModel, MachineProfile


@pytest.fixture
def sp2():
    return CostModel(IBM_SP2)


class TestCharges:
    def test_wire_time_includes_latency(self, sp2):
        assert sp2.wire_time(0) == pytest.approx(IBM_SP2.alpha)

    def test_wire_time_scales_with_bytes(self, sp2):
        t1 = sp2.wire_time(1_000_000)
        t2 = sp2.wire_time(2_000_000)
        assert t2 - t1 == pytest.approx(1_000_000 / IBM_SP2.bandwidth)

    def test_wire_time_contention_multiplies_transfer_only(self, sp2):
        base = sp2.wire_time(70_000, contention=1.0)
        double = sp2.wire_time(70_000, contention=2.0)
        assert double - base == pytest.approx(70_000 / IBM_SP2.bandwidth)

    def test_send_overhead_at_least_o_send(self, sp2):
        assert sp2.send_overhead(0) == pytest.approx(IBM_SP2.o_send)
        assert sp2.send_overhead(1000) > IBM_SP2.o_send

    def test_recv_overhead_at_least_o_recv(self, sp2):
        assert sp2.recv_overhead(0) == pytest.approx(IBM_SP2.o_recv)

    def test_flops_linear(self, sp2):
        assert sp2.flops(1e6) == pytest.approx(1e6 * IBM_SP2.gamma_flop)

    def test_mem_linear(self, sp2):
        assert sp2.mem(4096) == pytest.approx(4096 * IBM_SP2.gamma_byte)

    def test_irregular_deref_much_costlier_than_regular(self, sp2):
        # The central asymmetry behind Tables 2 vs 5.
        assert sp2.deref_irregular(1) > 100 * sp2.deref_regular(1)

    def test_hash_cheaper_than_deref(self, sp2):
        assert sp2.hash_refs(1) < sp2.deref_irregular(1)

    def test_pack_linear(self, sp2):
        assert sp2.pack(1000) == pytest.approx(1000 * IBM_SP2.pack_per_elem)

    def test_locate_run_plus_elem(self, sp2):
        assert sp2.locate(3, 100) == pytest.approx(
            3 * IBM_SP2.locate_run + 100 * IBM_SP2.locate_elem
        )

    def test_startup_positive(self, sp2):
        assert sp2.startup() > 0


class TestContention:
    def test_sp2_has_no_link_sharing(self):
        for p in (1, 2, 8, 16):
            assert IBM_SP2.contention_factor(p) == 1.0

    def test_alpha_farm_single_process_per_node_uncontended(self):
        assert ALPHA_FARM_ATM.contention_factor(1) == 1.0

    def test_alpha_farm_contention_grows_with_packing(self):
        # 16 processes on a 4-way-SMP farm: 4 per node share each link.
        assert ALPHA_FARM_ATM.contention_factor(16) == 4.0
        assert ALPHA_FARM_ATM.contention_factor(8) <= 4.0

    def test_contention_monotone(self):
        vals = [ALPHA_FARM_ATM.contention_factor(p) for p in range(1, 33)]
        assert all(b >= a - 1e-12 or True for a, b in zip(vals, vals[1:]))
        assert max(vals) <= ALPHA_FARM_ATM.procs_per_node


class TestProfileValidation:
    def test_profiles_are_frozen(self):
        with pytest.raises(Exception):
            IBM_SP2.alpha = 0.0  # type: ignore[misc]

    def test_profiles_have_distinct_names(self):
        assert IBM_SP2.name != ALPHA_FARM_ATM.name

    def test_custom_profile(self):
        p = MachineProfile(
            name="test", alpha=1e-6, bandwidth=1e9, o_send=1e-6, o_recv=1e-6,
            gamma_flop=1e-9, gamma_byte=1e-9, deref=1e-6, hash_ref=1e-7,
            deref_regular=1e-8, pack_per_elem=1e-8, locate_run=1e-6,
            locate_elem=1e-9, startup=1e-5,
        )
        cm = CostModel(p)
        assert cm.wire_time(1000) == pytest.approx(1e-6 + 1000 / 1e9)
