"""VirtualMachine SPMD execution tests."""

import numpy as np
import pytest

from repro.vmachine import VirtualMachine
from repro.vmachine.machine import SPMDError

from helpers import run_spmd


class TestRun:
    def test_values_in_rank_order(self):
        res = run_spmd(5, lambda comm: comm.rank * 2)
        assert res.values == [0, 2, 4, 6, 8]

    def test_args_and_kwargs_forwarded(self):
        def spmd(comm, a, b=0):
            return a + b + comm.rank

        res = VirtualMachine(2).run(spmd, 10, b=5)
        assert res.values == [15, 16]

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            VirtualMachine(0)

    def test_fresh_state_between_runs(self):
        vm = VirtualMachine(2)
        r1 = vm.run(lambda comm: comm.process.charge(1.0) or comm.process.clock)
        r2 = vm.run(lambda comm: comm.process.clock)
        assert r2.values == [0.0, 0.0]
        assert r1.clocks[0] == pytest.approx(1.0)

    def test_current_process_accessible(self):
        from repro.vmachine.process import current_process

        def spmd(comm):
            return current_process().rank == comm.rank

        assert all(run_spmd(3, spmd).values)


class TestErrors:
    def test_single_rank_failure_propagates(self):
        def spmd(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            comm.barrier()

        with pytest.raises(SPMDError, match="rank 1 exploded") as ei:
            run_spmd(3, spmd)
        assert [e.rank for e in ei.value.errors] in ([1], [0, 1], [1, 2], [0, 1, 2])

    def test_failure_unblocks_other_ranks(self):
        # Without mailbox closing this would hang for the full timeout.
        def spmd(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            comm.recv(0)  # would block forever

        with pytest.raises(SPMDError, match="boom"):
            run_spmd(2, spmd)

    def test_errors_sorted_by_rank(self):
        def spmd(comm):
            raise RuntimeError(f"r{comm.rank}")

        with pytest.raises(SPMDError) as ei:
            run_spmd(4, spmd)
        ranks = [e.rank for e in ei.value.errors]
        assert ranks == sorted(ranks)


class TestResult:
    def test_elapsed_is_slowest_rank(self):
        def spmd(comm):
            comm.process.charge(0.001 * (comm.rank + 1))

        res = run_spmd(4, spmd)
        assert res.elapsed_ms == pytest.approx(4.0)

    def test_merged_timing_is_max(self):
        def spmd(comm):
            with comm.process.timer.phase("p"):
                comm.process.charge(0.001 * comm.rank)

        res = run_spmd(3, spmd)
        assert res.merged_timing.get_ms("p") == pytest.approx(2.0)

    def test_total_stat_sums_ranks(self):
        def spmd(comm):
            comm.barrier()

        res = run_spmd(4, spmd)
        # dissemination barrier: ceil(log2 4) = 2 rounds, 1 msg per round
        assert res.total_stat("messages_sent") == 8

    def test_deterministic_clocks(self):
        def spmd(comm):
            comm.alltoall([np.arange(10) for _ in range(comm.size)])
            comm.bcast(np.zeros(100), root=0)
            return None

        c1 = run_spmd(4, spmd).clocks
        c2 = run_spmd(4, spmd).clocks
        assert c1 == c2
