"""Binomial-tree reduce/allreduce: fold order, tree shape, log-depth cost.

``Communicator.reduce`` combines partials over a binomial tree: O(log P)
logical depth instead of the O(P) serialized receives of a gather-based
fold, while keeping the *operand order* linear in virtual-rank order
(``root, root+1, ..., P-1, 0, ..., root-1``).  That ordering contract is
what lets non-commutative (but associative) operators work unchanged —
these tests pin it with list concatenation, the canonical associative
non-commutative op.
"""

import math

import pytest

from repro.vmachine import VirtualMachine

from helpers import run_spmd


def _concat(a, b):
    return a + b


class TestFoldOrder:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 13])
    def test_concat_in_rank_order_at_root_zero(self, size):
        def spmd(comm):
            return comm.reduce([comm.rank], _concat, root=0)

        vals = run_spmd(size, spmd).values
        assert vals[0] == list(range(size))
        assert all(v is None for v in vals[1:])

    @pytest.mark.parametrize("size,root", [(4, 1), (6, 5), (7, 3), (8, 4)])
    def test_concat_wraps_from_any_root(self, size, root):
        """Operands fold in virtual-rank order: root, root+1, ..., wrap."""

        def spmd(comm):
            return comm.reduce([comm.rank], _concat, root=root)

        vals = run_spmd(size, spmd).values
        expect = [(root + k) % size for k in range(size)]
        assert vals[root] == expect
        assert all(vals[r] is None for r in range(size) if r != root)

    @pytest.mark.parametrize("size", [1, 2, 5, 9, 16])
    def test_allreduce_concat_everywhere(self, size):
        def spmd(comm):
            return comm.allreduce([comm.rank], _concat)

        assert run_spmd(size, spmd).values == [list(range(size))] * size

    def test_string_concat_non_commutative(self):
        """String concat would scramble under any reordering."""

        def spmd(comm):
            return comm.reduce("abcdefg"[comm.rank], _concat, root=2)

        assert run_spmd(7, spmd).values[2] == "cdefgab"


class TestTreeShape:
    def _traced_reduce(self, size, root=0):
        def spmd(comm):
            comm.reduce([comm.rank], _concat, root=root)
            return None

        return VirtualMachine(size, trace=True).run(spmd).traces

    def test_root_receives_log_p_messages(self):
        """At P=8 root 0's children are exactly ranks 1, 2 and 4."""
        traces = self._traced_reduce(8)
        recv_sources = sorted(
            ev.peer for ev in traces[0] if ev.kind == "recv"
        )
        assert recv_sources == [1, 2, 4]

    @pytest.mark.parametrize("size", [2, 3, 6, 8, 13, 16])
    def test_binomial_shape_bounds(self, size):
        """Each non-root sends exactly one partial; every rank receives at
        most ceil(log2 P); total messages are exactly P-1."""
        traces = self._traced_reduce(size)
        depth = math.ceil(math.log2(size))
        total_sends = 0
        for rank, trace in enumerate(traces):
            sends = [ev for ev in trace if ev.kind == "send"]
            recvs = [ev for ev in trace if ev.kind == "recv"]
            total_sends += len(sends)
            if rank == 0:
                assert not sends
            else:
                assert len(sends) == 1
            assert len(recvs) <= depth
        assert total_sends == size - 1

    def test_logical_depth_is_logarithmic(self):
        """The root's elapsed time grows ~log P, not ~P: quadrupling the
        processor count from 8 to 32 must cost far less than 4x."""

        def spmd(comm):
            t0 = comm.process.clock
            comm.reduce(comm.rank, lambda a, b: a + b, root=0)
            return comm.process.clock - t0

        t8 = max(run_spmd(8, spmd).values)
        t32 = max(run_spmd(32, spmd).values)
        # Linear fold would scale by ~31/7 > 4.4; tree depth by 5/3 < 1.7.
        assert t32 / t8 < 2.5
