"""Message tracing and analysis tests."""

import numpy as np
import pytest

from repro.vmachine import (
    ProgramSpec,
    VirtualMachine,
    format_timeline,
    message_matrix,
    rank_activity,
    run_programs,
)


def ring(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.send(right, np.zeros(50), tag=1)
    comm.recv(left, tag=1)
    return True


class TestTracing:
    def test_disabled_by_default(self):
        res = VirtualMachine(3).run(ring)
        assert res.traces == [[], [], []]

    def test_events_recorded(self):
        res = VirtualMachine(3, trace=True).run(ring)
        for events in res.traces:
            kinds = [e.kind for e in events]
            assert kinds.count("send") == 1
            assert kinds.count("recv") == 1

    def test_message_matrix_bytes(self):
        res = VirtualMachine(4, trace=True).run(ring)
        m = message_matrix(res.traces)
        for r in range(4):
            assert m[r, (r + 1) % 4] == 400  # 50 doubles
            assert m[r, r] == 0

    def test_message_matrix_counts(self):
        res = VirtualMachine(4, trace=True).run(ring)
        m = message_matrix(res.traces, what="count")
        assert m.sum() == 4

    def test_rank_activity_accounts_waits(self):
        def spmd(comm):
            if comm.rank == 0:
                comm.process.charge(0.01)  # rank 0 is slow to send
                comm.send(1, None)
            else:
                comm.recv(0)
            return True

        res = VirtualMachine(2, trace=True).run(spmd)
        act = rank_activity(res.traces, res.clocks)
        assert act[1]["blocked"] > 0.009
        assert act[1]["busy"] < act[1]["total"]
        assert act[0]["blocked"] == 0.0

    def test_timeline_renders(self):
        res = VirtualMachine(2, trace=True).run(ring)
        text = format_timeline(res.traces)
        assert "send" in text and "recv" in text
        assert "0 -> 1" in text

    def test_timeline_truncation(self):
        def chatty(comm):
            for _ in range(30):
                comm.barrier()

        res = VirtualMachine(2, trace=True).run(chatty)
        text = format_timeline(res.traces, limit=5)
        assert "more events" in text

    def test_events_time_ordered_per_rank(self):
        res = VirtualMachine(4, trace=True).run(
            lambda comm: [comm.barrier() for _ in range(3)] and True
        )
        for events in res.traces:
            times = [e.time for e in events]
            assert times == sorted(times)

    def test_traced_programs(self):
        def prog_a(ctx):
            ctx.peer("b").send(0, np.zeros(10))
            return True

        def prog_b(ctx):
            ctx.peer("a").recv(0)
            return True

        res = run_programs(
            [ProgramSpec("a", 1, prog_a), ProgramSpec("b", 1, prog_b)],
            trace=True,
        )
        a_events = res["a"].traces[0]
        assert any(e.kind == "send" and e.nbytes == 80 for e in a_events)
        b_events = res["b"].traces[0]
        assert any(e.kind == "recv" for e in b_events)

    def test_tracing_does_not_change_clocks(self):
        plain = VirtualMachine(3).run(ring)
        traced = VirtualMachine(3, trace=True).run(ring)
        assert plain.clocks == traced.clocks
