"""Fault-injection layer: seeded determinism, fault taxonomy, receipts,
slowdown and crash events."""

import numpy as np
import pytest

from repro.vmachine import VirtualMachine
from repro.vmachine.comm import CONTEXT_STRIDE
from repro.vmachine.faults import (
    CrashEvent,
    FaultPlan,
    FaultRates,
    FaultRule,
    RankLostError,
    SimulatedCrash,
    tag_class,
)
from repro.vmachine.machine import SPMDError

TAG_DATA = (1 << 20) + 2


def run(nprocs, fn, *, faults=None, trace=False, check_leaks=True, **kw):
    vm = VirtualMachine(
        nprocs, trace=trace, check_leaks=check_leaks, faults=faults,
        recv_timeout_s=kw.pop("recv_timeout_s", 20.0),
    )
    return vm.run(fn, **kw)


class TestTagClass:
    def test_classes(self):
        assert tag_class(5) == "user"
        assert tag_class((1 << 24) + 3) == "collective"
        assert tag_class(1 << 20) == "sched"          # SRCINFO
        assert tag_class((1 << 20) + 1) == "sched"    # PIECES
        assert tag_class((1 << 20) + 3) == "sched"    # DESCRIPTOR
        assert tag_class(TAG_DATA) == "data"
        assert tag_class((1 << 23) | TAG_DATA) == "control"   # rel ack
        # A reliability data envelope inherits the wrapped tag's class.
        assert tag_class((1 << 22) | TAG_DATA) == "data"
        assert tag_class((1 << 22) | 7) == "user"

    def test_context_blocks_are_stripped(self):
        assert tag_class(3 * CONTEXT_STRIDE + TAG_DATA) == "data"
        assert tag_class(7 * CONTEXT_STRIDE + (1 << 24) + 1) == "collective"


class TestRatesValidation:
    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            FaultRates(drop=1.5)
        with pytest.raises(ValueError):
            FaultRates(dup=-0.1)

    def test_any_active(self):
        assert not FaultRates().any_active
        assert FaultRates(delay=0.2).any_active


class TestRuleTargeting:
    def test_default_targets_data_only(self):
        rule = FaultRule(rates=FaultRates(drop=1.0))
        assert rule.matches(0, 1, "data")
        assert not rule.matches(0, 1, "sched")
        assert not rule.matches(0, 1, "collective")

    def test_src_dst_filters(self):
        rule = FaultRule(rates=FaultRates(drop=1.0), src=0, dst=2)
        assert rule.matches(0, 2, "data")
        assert not rule.matches(1, 2, "data")
        assert not rule.matches(0, 1, "data")


class TestFaultEffects:
    def test_drop_returns_lost_receipt_and_never_delivers(self):
        plan = FaultPlan(seed=1, rates=FaultRates(drop=1.0), classes=("user",))

        def spmd(comm):
            if comm.rank == 0:
                receipt = comm.send(1, 123, tag=4)
                assert receipt.dropped and receipt.lost
            return comm.process.stats.get("faults_drop", 0)

        res = run(2, spmd, faults=plan)
        assert res.values[0] == 1

    def test_corrupt_is_counted_separately(self):
        plan = FaultPlan(seed=1, rates=FaultRates(corrupt=1.0),
                         classes=("user",))

        def spmd(comm):
            if comm.rank == 0:
                receipt = comm.send(1, "x", tag=4)
                assert receipt.corrupted and receipt.lost
            return comm.process.stats.get("faults_corrupt", 0)

        res = run(2, spmd, faults=plan)
        assert res.values[0] == 1

    def test_dup_delivers_both_copies(self):
        plan = FaultPlan(seed=1, rates=FaultRates(dup=1.0), classes=("user",))

        def spmd(comm):
            if comm.rank == 0:
                receipt = comm.send(1, 9, tag=4)
                assert receipt.duplicated == 1 and receipt.delivered == 2
                return None
            return [comm.recv(0, 4), comm.recv(0, 4)]

        res = run(2, spmd, faults=plan)
        assert res.values[1] == [9, 9]

    def test_delay_inflates_arrival(self):
        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, 1, tag=4)
                return None
            comm.recv(0, 4)
            return comm.process.clock

        base = run(2, spmd).values[1]
        plan = FaultPlan(seed=1, rates=FaultRates(delay=1.0),
                         classes=("user",))
        delayed = run(2, spmd, faults=plan).values[1]
        lo, hi = FaultRates().delay_range_s
        assert base + lo <= delayed <= base + hi + 1e-12

    def test_reorder_held_message_is_overtaken_by_next_send(self):
        plan = FaultPlan(seed=1, rates=FaultRates(reorder=1.0),
                         classes=("user",))

        def spmd(comm):
            if comm.rank == 0:
                r1 = comm.send(1, "a", tag=4)
                assert r1.held and not r1.lost
                assert comm.process.faults.held_count(0, 1) == 1
                r2 = comm.send(1, "b", tag=4)
                # second message also held (rate 1.0)
                assert r2.held
                assert comm.process.faults.held_count(0, 1) == 2
                n = comm.process.faults.flush_channel(0, 1)
                assert n == 2
                return None
            # FIFO among the flushed batch is preserved.
            return [comm.recv(0, 4), comm.recv(0, 4)]

        res = run(2, spmd, faults=plan)
        assert res.values[1] == ["a", "b"]

    def test_partial_reorder_overtaking(self):
        """With a seed where some messages are held, a later delivery on
        the channel flushes the held ones *behind* itself (overtaking)."""
        plan = FaultPlan(seed=3, rates=FaultRates(reorder=0.5),
                         classes=("user",))

        def spmd(comm):
            n = 12
            if comm.rank == 0:
                held_any = False
                for i in range(n):
                    r = comm.send(1, i, tag=4)
                    held_any = held_any or r.held
                comm.process.faults.flush_channel(0, 1)
                return held_any
            return [comm.recv(0, 4) for _ in range(n)]

        res = run(2, spmd, faults=plan)
        assert res.values[0] is True  # this seed holds at least one of 12
        got = res.values[1]
        # All messages eventually arrive, just not necessarily in order.
        assert sorted(got) == list(range(12))

    def test_unfaulted_classes_pass_through(self):
        plan = FaultPlan(seed=1, rates=FaultRates(drop=1.0),
                         classes=("data",))

        def spmd(comm):
            if comm.rank == 0:
                receipt = comm.send(1, 5, tag=4)  # "user" class: untouched
                assert receipt.delivered == 1 and not receipt.lost
                return None
            return comm.recv(0, 4)

        assert run(2, spmd, faults=plan).values[1] == 5

    def test_disabled_plan_is_a_no_op(self):
        plan = FaultPlan(seed=1, rates=FaultRates(drop=1.0),
                         classes=("user",), enabled=False)

        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, 5, tag=4)
                return None
            return comm.recv(0, 4)

        assert run(2, spmd, faults=plan).values[1] == 5


class TestDeterminism:
    @staticmethod
    def _chaos(comm):
        n = 30
        if comm.rank == 0:
            receipts = []
            for i in range(n):
                r = comm.send(1, np.arange(4) + i, tag=4)
                receipts.append((r.delivered, r.dropped, r.held,
                                 r.duplicated, round(r.delay_s, 12)))
            comm.process.faults.flush_channel(0, 1)
            return receipts
        s = dict(comm.process.stats)
        return s

    def test_same_seed_same_receipt_sequence(self):
        mk = lambda: FaultPlan(  # noqa: E731
            seed=42,
            rates=FaultRates(drop=0.2, dup=0.2, reorder=0.2, delay=0.2),
            classes=("user",),
        )
        a = run(2, self._chaos, faults=mk(), check_leaks=False).values[0]
        b = run(2, self._chaos, faults=mk(), check_leaks=False).values[0]
        assert a == b

    def test_different_seed_differs(self):
        mk = lambda s: FaultPlan(  # noqa: E731
            seed=s,
            rates=FaultRates(drop=0.2, dup=0.2, reorder=0.2, delay=0.2),
            classes=("user",),
        )
        a = run(2, self._chaos, faults=mk(1), check_leaks=False).values[0]
        b = run(2, self._chaos, faults=mk(2), check_leaks=False).values[0]
        assert a != b

    def test_fault_events_are_traced(self):
        plan = FaultPlan(seed=1, rates=FaultRates(drop=1.0), classes=("user",))

        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, 1, tag=4)
            return None

        res = run(2, spmd, faults=plan, trace=True)
        kinds = [ev.kind for ev in res.traces[0]]
        assert "fault:drop" in kinds


class TestSlowdown:
    def test_slow_rank_clock_scales(self):
        def spmd(comm):
            comm.process.charge_flops(1_000_000)
            return comm.process.clock

        base = run(2, spmd).values
        plan = FaultPlan(seed=0, slowdown={1: 3.0})
        slow = run(2, spmd, faults=plan).values
        assert slow[0] == pytest.approx(base[0])
        assert slow[1] == pytest.approx(3.0 * base[1])


class TestCrashEvents:
    def test_crash_event_needs_trigger(self):
        with pytest.raises(ValueError):
            CrashEvent(rank=1)

    def test_crash_after_sends_raises_and_peer_degrades(self):
        plan = FaultPlan(
            seed=0, crashes=[CrashEvent(rank=1, after_sends=1)]
        )

        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, "x", tag=4)
                comm.recv(1, 5)
                # Blocked on a message the dead rank never sends: the
                # failure detector must surface RankLostError promptly.
                comm.recv(1, 6)
            else:
                comm.send(0, "y", tag=5)       # first send succeeds
                comm.recv(0, 4)
                comm.send(0, "z", tag=6)       # second send: crash fires

        with pytest.raises(SPMDError) as ei:
            run(2, spmd, faults=plan, check_leaks=False)
        err = ei.value
        roots = {e.rank: e.exception for e in err.root_causes}
        assert isinstance(roots[1], SimulatedCrash)
        assert err.lost_ranks == [0]
        lost = [e.exception for e in err.errors if e.rank == 0][0]
        assert isinstance(lost, RankLostError)
        assert lost.lost_rank == 1
        assert "SimulatedCrash" in lost.reason

    def test_crash_at_time(self):
        plan = FaultPlan(
            seed=0, crashes=[CrashEvent(rank=0, at_time_s=0.0)]
        )

        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, 1, tag=4)  # first transport op: crash fires
            return None

        with pytest.raises(SPMDError) as ei:
            run(2, spmd, faults=plan, check_leaks=False)
        assert any(
            isinstance(e.exception, SimulatedCrash)
            for e in ei.value.root_causes
        )

    def test_rank_lost_error_carries_pending_dump(self):
        plan = FaultPlan(seed=0, crashes=[CrashEvent(rank=1, after_sends=0)])

        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, "unread", tag=9)
                comm.send(0, b"abcd", tag=7)  # self-send: stays pending
                comm.recv(1, 5)
            else:
                comm.send(0, "never leaves", tag=5)

        with pytest.raises(SPMDError) as ei:
            run(2, spmd, faults=plan, check_leaks=False)
        lost = [e.exception for e in ei.value.errors if e.rank == 0][0]
        assert isinstance(lost, RankLostError)
        assert any(src == 0 and n == 4 for src, _tag, n in lost.pending)
        assert "undelivered envelopes" in str(lost)
