"""The wait-any/wait-all completion layer and tag-scoped wildcards.

``waitany`` is the primitive behind the OVERLAP executor: it completes
whichever posted receive has the earliest *logical* arrival, so receivers
drain messages in arrival order instead of rank order.  Determinism is
part of the contract — the pick depends only on logical arrival times
(ties broken by source rank), never on host thread scheduling.

The tag-scoping tests pin the satellite fix: an ``ANY_TAG`` probe,
``Request.test`` or wildcard receive on one communicator must never match
another communicator's traffic (wire tags live in per-context blocks).
"""

import pytest

from repro.vmachine import ANY_TAG, waitall, waitany
from repro.vmachine.machine import SPMDError

from helpers import run_spmd


class TestWaitany:
    def test_completes_earliest_logical_arrival(self):
        """Rank 2's message leaves first, so it completes first even though
        the receive for rank 1 was posted first."""

        def spmd(comm):
            if comm.rank == 1:
                comm.process.charge(5e-3)  # delay injection by 5 ms
                comm.send(0, "slow")
            elif comm.rank == 2:
                comm.send(0, "fast")
            elif comm.rank == 0:
                reqs = [comm.irecv(1), comm.irecv(2)]
                first = waitany(reqs)
                second = waitany(reqs)
                return [first, second]
            return None

        got = run_spmd(3, spmd).values[0]
        assert got == [(1, "fast"), (0, "slow")]

    def test_tie_breaks_by_source_rank(self):
        """Equal arrivals resolve to the lower source, deterministically."""

        def spmd(comm):
            if comm.rank == 0:
                reqs = [comm.irecv(2), comm.irecv(1)]
                order = [waitany(reqs)[0] for _ in range(2)]
                return order
            comm.send(0, comm.rank)  # symmetric: identical arrival clocks
            return None

        # Request index 1 is source rank 1 -> completes first.
        assert run_spmd(3, spmd).values[0] == [1, 0]

    def test_same_pair_fifo_preserved(self):
        """Two receives matching the same (source, tag) drain in send order."""

        def spmd(comm):
            if comm.rank == 1:
                comm.send(0, "first", tag=4)
                comm.send(0, "second", tag=4)
            elif comm.rank == 0:
                reqs = [comm.irecv(1, tag=4), comm.irecv(1, tag=4)]
                a = waitany(reqs)[1]
                b = waitany(reqs)[1]
                return [a, b]
            return None

        assert run_spmd(2, spmd).values[0] == ["first", "second"]

    def test_waitany_without_incomplete_requests_raises(self):
        def spmd(comm):
            if comm.rank == 1:
                comm.send(0, 99)
            elif comm.rank == 0:
                reqs = [comm.irecv(1)]
                waitany(reqs)
                with pytest.raises(ValueError):
                    waitany(reqs)
                return True
            return None

        assert run_spmd(2, spmd).values[0] is True

    def test_waitall_returns_payloads_in_request_order(self):
        """Payload order follows the request list, not completion order."""

        def spmd(comm):
            if comm.rank == 0:
                reqs = [comm.irecv(s) for s in (1, 2, 3)]
                return waitall(reqs)
            if comm.rank == 1:
                comm.process.charge(3e-3)  # rank 1 sends last
            comm.send(0, f"from-{comm.rank}")
            return None

        assert run_spmd(4, spmd).values[0] == ["from-1", "from-2", "from-3"]

    def test_waitany_charges_only_completed_arrival(self):
        """Completing the early message must not advance the clock to the
        late message's arrival (physical wait costs no logical time)."""

        def spmd(comm):
            if comm.rank == 1:
                comm.process.charge(50e-3)
                comm.send(0, "late")
            elif comm.rank == 2:
                comm.send(0, "early")
            elif comm.rank == 0:
                reqs = [comm.irecv(1), comm.irecv(2)]
                waitany(reqs)
                clock_after_first = comm.process.clock
                waitany(reqs)
                return clock_after_first, comm.process.clock
            return None

        after_first, after_second = run_spmd(3, spmd).values[0]
        assert after_first < 50e-3  # early completion not dragged to 50 ms
        assert after_second >= 50e-3


class TestTagScoping:
    def test_any_tag_probe_does_not_cross_communicators(self):
        """A message on a split communicator is invisible to a world-scoped
        ANY_TAG probe (and vice versa)."""

        def spmd(comm):
            sub = comm.split(0)
            if comm.rank == 1:
                sub.send(0, "sub-traffic", tag=3)
            comm.barrier()  # ensure physical delivery everywhere
            if comm.rank == 0:
                world_sees = comm.probe(1, ANY_TAG)
                sub_sees = sub.probe(1, ANY_TAG)
                payload = sub.recv(1, tag=3)
                return world_sees, sub_sees, payload
            return None

        world_sees, sub_sees, payload = run_spmd(2, spmd).values[0]
        assert world_sees is False
        assert sub_sees is True
        assert payload == "sub-traffic"

    def test_request_test_scoped_to_context(self):
        """Request.test with ANY_TAG must not report another communicator's
        pending message as a match."""

        def spmd(comm):
            sub = comm.split(0)
            if comm.rank == 1:
                sub.send(0, "decoy", tag=9)
            comm.barrier()
            if comm.rank == 0:
                req = comm.irecv(1, tag=ANY_TAG)
                ready_with_decoy_only = req.test()
            comm.barrier()
            if comm.rank == 1:
                comm.send(0, "real", tag=2)
            if comm.rank == 0:
                got = req.wait()
                decoy = sub.recv(1, tag=9)
                return ready_with_decoy_only, got, decoy
            return None

        ready, got, decoy = run_spmd(2, spmd).values[0]
        assert ready is False  # the sub-communicator message never matched
        assert got == "real"
        assert decoy == "decoy"

    def test_recv_any_scoped_to_context(self):
        def spmd(comm):
            sub = comm.split(0)
            if comm.rank == 1:
                sub.send(0, "sub", tag=1)
                comm.send(0, "world", tag=1)
            if comm.rank == 0:
                src, payload = comm.recv_any(tag=1)
                assert (src, payload) == (1, "world")
                return sub.recv(1, tag=1)
            return None

        assert run_spmd(2, spmd).values[0] == "sub"

    def test_unconsumed_cross_context_message_still_leaks(self):
        """Scoping must not hide real protocol bugs from the leak check."""

        def spmd(comm):
            sub = comm.split(0)
            if comm.rank == 1:
                sub.send(0, "never received", tag=5)
            comm.barrier()
            return None

        with pytest.raises(SPMDError, match="never received"):
            run_spmd(2, spmd)
