"""Graceful degradation: prompt failure surfacing instead of hangs,
configurable receive timeouts with rich diagnostics, and the copy-on-send
debug mode for the zero-copy transport."""

import time

import numpy as np
import pytest

from repro.vmachine import VirtualMachine
from repro.vmachine.faults import CrashEvent, FaultPlan, RankLostError
from repro.vmachine.machine import SPMDError
from repro.vmachine.process import default_recv_timeout_s


class TestPromptFailureSurfacing:
    def test_peer_crash_unblocks_receiver_fast(self):
        """A receive blocked on a crashed rank must fail via the failure
        detector long before the (large) receive timeout expires."""
        plan = FaultPlan(seed=0, crashes=[CrashEvent(rank=1, after_sends=0)])

        def spmd(comm):
            if comm.rank == 0:
                comm.recv(1, 3)
            else:
                comm.send(0, "never", 3)  # crash fires before delivery

        t0 = time.monotonic()
        with pytest.raises(SPMDError) as ei:
            VirtualMachine(2, recv_timeout_s=60.0, faults=plan).run(spmd)
        elapsed = time.monotonic() - t0
        assert elapsed < 10.0  # detector, not timeout, ended the wait
        assert ei.value.lost_ranks == [0]
        lost = [e.exception for e in ei.value.errors if e.rank == 0][0]
        assert isinstance(lost, RankLostError)
        assert lost.lost_rank == 1

    def test_failure_cascade_keeps_root_cause(self):
        """P=4 pipeline: rank 2 crashes; the transitive RankLostError
        cascade must not bury the root cause."""
        plan = FaultPlan(seed=0, crashes=[CrashEvent(rank=2, at_time_s=0.0)])

        def spmd(comm):
            # ring: everyone waits on its left neighbour except rank 0,
            # which waits on rank 2's message directly
            if comm.rank == 2:
                comm.send(3, 1, 5)  # crash fires here
            elif comm.rank == 3:
                comm.recv(2, 5)
                comm.send(0, 1, 5)
            elif comm.rank == 0:
                comm.recv(3, 5)

        with pytest.raises(SPMDError) as ei:
            VirtualMachine(4, recv_timeout_s=30.0, faults=plan).run(spmd)
        err = ei.value
        assert [e.rank for e in err.root_causes] == [2]
        assert set(err.lost_ranks) == {0, 3}


class TestConfigurableTimeout:
    def test_per_machine_timeout_applies(self):
        def spmd(comm):
            comm.recv(1, 7)  # nothing ever sent

        t0 = time.monotonic()
        with pytest.raises(SPMDError) as ei:
            VirtualMachine(2, recv_timeout_s=0.2).run(spmd)
        assert time.monotonic() - t0 < 10.0
        assert any(
            isinstance(e.exception, TimeoutError) for e in ei.value.errors
        )

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_RECV_TIMEOUT_S", "0.25")
        assert default_recv_timeout_s() == 0.25

    def test_env_var_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_RECV_TIMEOUT_S", "soon")
        with pytest.raises(ValueError):
            default_recv_timeout_s()

    def test_timeout_diagnostics_name_source_tag_context_and_pending(self):
        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, b"xyzw", 9)   # pending, wrong tag
                comm.recv(1, 7)
            else:
                comm.send(0, b"dead-end", 9)
                comm.recv(0, 9)

        with pytest.raises(SPMDError) as ei:
            VirtualMachine(2, recv_timeout_s=0.3).run(spmd)
        msg = str(
            [e for e in ei.value.errors if e.rank == 0][0].exception
        )
        assert "source=1" in msg
        assert "tag=7" in msg
        assert "communicator context block" in msg
        assert "undelivered envelope" in msg
        assert "(src=1, tag=9, 8B)" in msg

    def test_per_call_timeout_overrides_machine_default(self):
        def spmd(comm):
            if comm.rank == 0:
                t0 = time.monotonic()
                with pytest.raises(TimeoutError):
                    comm.recv(1, 7, timeout=0.1)
                assert time.monotonic() - t0 < 5.0
            return None

        VirtualMachine(2, recv_timeout_s=60.0).run(spmd)


class TestCopyOnSend:
    @staticmethod
    def _mutate_after_send(comm):
        """Rank 0 sends a buffer and then mutates it; rank 1 observes the
        payload only after the mutation has happened (flag message)."""
        if comm.rank == 0:
            buf = np.zeros(4)
            comm.send(1, buf, 1)
            buf[:] = 99.0            # mutate-after-send hazard
            comm.send(1, "mutated", 2)
            return None
        comm.recv(0, 2)              # wait until the sender has mutated
        return comm.recv(0, 1).copy()

    def test_zero_copy_exposes_mutation(self):
        got = VirtualMachine(2).run(self._mutate_after_send).values[1]
        np.testing.assert_array_equal(got, np.full(4, 99.0))

    def test_copy_on_send_isolates_receiver(self):
        got = (
            VirtualMachine(2, copy_on_send=True)
            .run(self._mutate_after_send)
            .values[1]
        )
        np.testing.assert_array_equal(got, np.zeros(4))

    def test_env_var_enables_copy_on_send(self, monkeypatch):
        monkeypatch.setenv("REPRO_COPY_ON_SEND", "1")
        got = VirtualMachine(2).run(self._mutate_after_send).values[1]
        np.testing.assert_array_equal(got, np.zeros(4))
