"""Tests pinning down the LogGP-style transport model semantics."""

import numpy as np
import pytest

from repro.vmachine import ALPHA_FARM_ATM, IBM_SP2, ProgramSpec, VirtualMachine, run_programs

from helpers import run_spmd


class TestSendOccupancy:
    def test_sender_pays_injection_time(self):
        """A 3.5 MB payload occupies the SP2 sender ~100 ms (35 MB/s)."""
        payload = np.zeros(3_500_000 // 8)

        def spmd(comm):
            if comm.rank == 0:
                t0 = comm.process.clock
                comm.send(1, payload)
                return comm.process.clock - t0
            comm.recv(0)
            return None

        sender_time = run_spmd(2, spmd).values[0]
        expected = IBM_SP2.o_send + payload.nbytes / IBM_SP2.bandwidth
        assert sender_time == pytest.approx(expected)

    def test_receiver_sees_latency_after_injection(self):
        payload = np.zeros(1000)

        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, payload)
                return None
            comm.recv(0)
            return comm.process.clock

        recv_clock = run_spmd(2, spmd).values[1]
        expected_min = (
            IBM_SP2.o_send
            + payload.nbytes / IBM_SP2.bandwidth
            + IBM_SP2.alpha
            + IBM_SP2.o_recv
        )
        assert recv_clock >= expected_min * 0.999

    def test_small_messages_latency_bound(self):
        """For tiny payloads the fixed costs dominate the byte costs."""

        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, 1)
            elif comm.rank == 1:
                comm.recv(0)
                return comm.process.clock
            return None

        clock = run_spmd(2, spmd).values[1]
        assert clock < 5 * (IBM_SP2.o_send + IBM_SP2.alpha + IBM_SP2.o_recv)


class TestContention:
    def test_single_program_contention_from_own_size(self):
        """16 Alpha-farm processes share 4-way nodes: 4x slower transfer."""
        payload = np.zeros(140_000 // 8)  # 10 ms at 14 MB/s uncontended

        def spmd(comm):
            if comm.rank == 0:
                t0 = comm.process.clock
                comm.send(1, payload)
                return comm.process.clock - t0
            if comm.rank == 1:
                comm.recv(0)
            return None

        t2 = VirtualMachine(2, ALPHA_FARM_ATM).run(spmd).values[0]
        t16 = VirtualMachine(16, ALPHA_FARM_ATM).run(spmd).values[0]
        # 2 procs on one node share pairwise (factor 2); 16 procs pack 4
        # per node (factor 4) -> the transfer term doubles.
        ratio = (t16 - ALPHA_FARM_ATM.o_send) / (t2 - ALPHA_FARM_ATM.o_send)
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_coupled_programs_contend_independently(self):
        """A 1-process client is uncontended even next to a 16-proc server."""
        payload = np.zeros(140_000 // 8)

        def client(ctx):
            t0 = ctx.comm.process.clock
            ctx.peer("server").send(0, payload)
            return ctx.comm.process.clock - t0

        def server(ctx):
            if ctx.rank == 0:
                ctx.peer("client").recv(0)
            return None

        res = run_programs(
            [ProgramSpec("client", 1, client), ProgramSpec("server", 16, server)],
            profile=ALPHA_FARM_ATM,
        )
        t = res["client"].values[0]
        uncontended = ALPHA_FARM_ATM.o_send + payload.nbytes / ALPHA_FARM_ATM.bandwidth
        assert t == pytest.approx(uncontended)

    def test_sp2_never_contends(self):
        payload = np.zeros(1000)

        def spmd(comm):
            if comm.rank == 0:
                t0 = comm.process.clock
                comm.send(1, payload)
                return comm.process.clock - t0
            if comm.rank == 1:
                comm.recv(0)
            return None

        t2 = VirtualMachine(2, IBM_SP2).run(spmd).values[0]
        t16 = VirtualMachine(16, IBM_SP2).run(spmd).values[0]
        assert t2 == pytest.approx(t16)


class TestDeterminism:
    def test_identical_runs_identical_clocks(self):
        def spmd(comm):
            comm.alltoall([np.arange(comm.rank + 1) for _ in range(comm.size)])
            comm.allreduce(comm.rank, lambda a, b: a + b)
            return comm.process.clock

        a = run_spmd(6, spmd).values
        b = run_spmd(6, spmd).values
        assert a == b

    def test_clock_independent_of_thread_scheduling(self):
        """Logical time depends only on the message/compute pattern; ten
        repetitions under the GIL's whims give bit-identical clocks."""

        def spmd(comm):
            for _ in range(3):
                comm.barrier()
                if comm.rank == 0:
                    comm.send(comm.size - 1, np.zeros(10))
                elif comm.rank == comm.size - 1:
                    comm.recv(0)
            return comm.process.clock

        baseline = run_spmd(5, spmd).values
        for _ in range(9):
            assert run_spmd(5, spmd).values == baseline
