"""Unit tests for messages and mailboxes."""

import threading

import numpy as np
import pytest

from repro.vmachine.message import ANY_SOURCE, ANY_TAG, Mailbox, Message, payload_nbytes


def msg(source=0, tag=0, payload=None, arrival=0.0):
    return Message(source=source, dest=1, tag=tag, payload=payload, arrival=arrival)


class TestPayloadNbytes:
    def test_numpy_array(self):
        assert payload_nbytes(np.zeros(10)) == 80

    def test_bytes(self):
        assert payload_nbytes(b"abcd") == 4

    def test_scalars(self):
        assert payload_nbytes(3) == 8
        assert payload_nbytes(2.5) == 8
        assert payload_nbytes(None) == 8

    def test_tuple_recursive(self):
        n = payload_nbytes((np.zeros(4), np.zeros(2)))
        assert n == 8 + 32 + 16

    def test_dict_recursive(self):
        n = payload_nbytes({1: np.zeros(2)})
        assert n == 8 + 8 + 16

    def test_object_with_nbytes_attribute(self):
        class Fake:
            nbytes = 123

        assert payload_nbytes(Fake()) == 123

    def test_opaque_object_small_envelope(self):
        assert payload_nbytes(object()) == 64


class TestMatching:
    def test_exact_match(self):
        m = msg(source=3, tag=7)
        assert m.matches(3, 7)
        assert not m.matches(3, 8)
        assert not m.matches(2, 7)

    def test_wildcards(self):
        m = msg(source=3, tag=7)
        assert m.matches(ANY_SOURCE, 7)
        assert m.matches(3, ANY_TAG)
        assert m.matches(ANY_SOURCE, ANY_TAG)


class TestMailbox:
    def test_deliver_then_receive(self):
        mb = Mailbox(0)
        mb.deliver(msg(source=2, tag=5, payload="hi"))
        got = mb.receive(2, 5, timeout=1.0)
        assert got.payload == "hi"

    def test_receive_skips_nonmatching(self):
        mb = Mailbox(0)
        mb.deliver(msg(source=1, tag=1, payload="a"))
        mb.deliver(msg(source=2, tag=2, payload="b"))
        assert mb.receive(2, 2, timeout=1.0).payload == "b"
        assert mb.pending() == 1

    def test_fifo_per_source_tag(self):
        mb = Mailbox(0)
        for i in range(5):
            mb.deliver(msg(source=1, tag=1, payload=i))
        got = [mb.receive(1, 1, timeout=1.0).payload for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_timeout_raises(self):
        mb = Mailbox(0)
        with pytest.raises(TimeoutError, match="timed out"):
            mb.receive(0, 0, timeout=0.05)

    def test_blocking_receive_wakes_on_delivery(self):
        mb = Mailbox(0)
        result = []

        def receiver():
            result.append(mb.receive(1, 1, timeout=5.0).payload)

        t = threading.Thread(target=receiver)
        t.start()
        mb.deliver(msg(source=1, tag=1, payload="late"))
        t.join(timeout=5.0)
        assert result == ["late"]

    def test_closed_mailbox_rejects_delivery(self):
        mb = Mailbox(0)
        mb.close()
        with pytest.raises(RuntimeError, match="closed"):
            mb.deliver(msg())

    def test_closed_mailbox_unblocks_receive(self):
        mb = Mailbox(0)
        mb.close()
        with pytest.raises(RuntimeError, match="closed"):
            mb.receive(0, 0, timeout=5.0)

    def test_probe(self):
        mb = Mailbox(0)
        assert not mb.probe(1, 1)
        mb.deliver(msg(source=1, tag=1))
        assert mb.probe(1, 1)
        assert not mb.probe(1, 2)


class TestPackArena:
    def _arena(self):
        from repro.vmachine.message import PackArena

        stats = {}
        return PackArena(stats), stats

    def test_size_class_power_of_two(self):
        from repro.vmachine.message import ARENA_MIN_CLASS, PackArena

        assert PackArena.size_class(0) == ARENA_MIN_CLASS
        assert PackArena.size_class(1) == ARENA_MIN_CLASS
        assert PackArena.size_class(ARENA_MIN_CLASS) == ARENA_MIN_CLASS
        assert PackArena.size_class(ARENA_MIN_CLASS + 1) == 2 * ARENA_MIN_CLASS
        assert PackArena.size_class(1000) == 1024
        with pytest.raises(ValueError):
            PackArena.size_class(-1)

    def test_miss_then_hit(self):
        arena, stats = self._arena()
        lease = arena.checkout(300)
        assert len(lease.buffer) == 512
        assert stats["arena_misses"] == 1
        lease.release()
        again = arena.checkout(400)  # same size class
        assert again.buffer is lease.buffer
        assert stats["arena_hits"] == 1
        assert stats["arena_bytes_reused"] == 512

    def test_release_is_idempotent(self):
        arena, _ = self._arena()
        lease = arena.checkout(100)
        lease.release()
        lease.release()  # no double-pooling
        a = arena.checkout(100)
        b = arena.checkout(100)
        assert a.buffer is not b.buffer

    def test_high_water_tracks_total_capacity(self):
        arena, stats = self._arena()
        l1 = arena.checkout(256)
        l2 = arena.checkout(256)
        assert stats["arena_high_water_bytes"] == 512
        l1.release()
        l2.release()
        # Reuse does not grow the footprint ceiling.
        arena.checkout(256)
        assert stats["arena_high_water_bytes"] == 512
        assert arena.owned_bytes == 512

    def test_distinct_size_classes_do_not_mix(self):
        arena, _ = self._arena()
        small = arena.checkout(256)
        small.release()
        big = arena.checkout(2048)
        assert len(big.buffer) == 2048
        assert big.buffer is not small.buffer

    def test_bypass_is_unpooled(self):
        arena, stats = self._arena()
        lease = arena.checkout(256, pooled=False)
        lease.release()
        assert stats["arena_bypass"] == 1
        assert "arena_misses" not in stats
        assert arena.pooled_bytes == 0  # release went nowhere

    def test_checkout_release_charge_no_stats_time(self):
        # The arena is pure bookkeeping: no clock key ever appears.
        arena, stats = self._arena()
        arena.checkout(512).release()
        assert all(k.startswith("arena_") for k in stats)
