"""Nonblocking send/receive (Request) tests."""

import numpy as np
import pytest

from repro.vmachine import VirtualMachine

from helpers import run_spmd


class TestRequests:
    def test_isend_completes_immediately(self):
        def spmd(comm):
            if comm.rank == 0:
                req = comm.isend(1, "x")
                assert req.test()
                assert req.wait() is None  # sends carry no payload back
            elif comm.rank == 1:
                return comm.recv(0)
            return None

        assert run_spmd(2, spmd).values[1] == "x"

    def test_irecv_wait_returns_payload(self):
        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, np.arange(4), tag=7)
            elif comm.rank == 1:
                req = comm.irecv(0, tag=7)
                return req.wait().sum()
            return None

        assert run_spmd(2, spmd).values[1] == 6

    def test_wait_idempotent(self):
        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, 42)
            elif comm.rank == 1:
                req = comm.irecv(0)
                assert req.wait() == 42
                assert req.wait() == 42  # second wait returns the cached payload
                assert req.test()
            return True

        assert all(run_spmd(2, spmd).values)

    def test_test_is_nonblocking_and_free(self):
        def spmd(comm):
            if comm.rank == 1:
                req = comm.irecv(0)
                t0 = comm.process.clock
                ready_before = req.test()
                assert comm.process.clock == t0  # probing charges nothing
                comm.barrier()  # rank 0 sends before the barrier completes
                got = req.wait()
                return (ready_before, got)
            comm.send(1, "late")
            comm.barrier()
            return None

        ready_before, got = run_spmd(2, spmd).values[1]
        assert got == "late"

    def test_overlap_hides_flight_time(self):
        """Posting irecv and computing during the flight costs max(compute,
        flight), not their sum."""
        payload = np.zeros(3_500_000 // 8)  # ~100 ms on the SP2 wire
        compute_s = 0.08

        def overlapped(comm):
            if comm.rank == 0:
                comm.send(1, payload)
            elif comm.rank == 1:
                req = comm.irecv(0)
                comm.process.charge(compute_s)  # useful work during flight
                req.wait()
                return comm.process.clock
            return None

        def sequential(comm):
            if comm.rank == 0:
                comm.send(1, payload)
            elif comm.rank == 1:
                comm.recv(0)
                comm.process.charge(compute_s)  # same work, after the wait
                return comm.process.clock
            return None

        t_overlap = run_spmd(2, overlapped).values[1]
        t_seq = run_spmd(2, sequential).values[1]
        assert t_overlap < t_seq - compute_s * 0.9

    def test_multiple_outstanding_receives(self):
        def spmd(comm):
            if comm.rank == 0:
                for tag in (1, 2, 3):
                    comm.send(1, tag * 10, tag=tag)
            elif comm.rank == 1:
                reqs = [comm.irecv(0, tag=t) for t in (3, 1, 2)]
                return [r.wait() for r in reqs]
            return None

        assert run_spmd(2, spmd).values[1] == [30, 10, 20]

    def test_irecv_rank_checked(self):
        from repro.vmachine.machine import SPMDError

        def spmd(comm):
            comm.irecv(5)

        with pytest.raises(SPMDError, match="out of range"):
            run_spmd(2, spmd)
