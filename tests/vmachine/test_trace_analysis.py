"""Trace-analysis helpers under mixed event streams.

Regression tests for three historical bugs:

1. ``format_timeline`` pushed every non-``send`` kind through the recv
   branch, rendering faults as bogus ``rank <- peer`` receive arrows;
2. tags were truncated with ``& 0xFFFF``, aliasing Cantor-paired context
   blocks from split communicators;
3. ``FaultPlan._note`` recorded ``message.dest`` as the event's peer on
   both endpoints, so a receiver-side fault named *itself* as the peer.
"""

import numpy as np

from repro.vmachine import VirtualMachine
from repro.vmachine.comm import CONTEXT_STRIDE
from repro.vmachine.faults import FaultPlan
from repro.vmachine.trace import (
    MESSAGE_KINDS,
    TraceEvent,
    format_tag,
    format_timeline,
    message_matrix,
    rank_activity,
)

TAG = CONTEXT_STRIDE + 7  # context block 1, user tag 7

MIXED = [
    [  # rank 0
        TraceEvent("send", 0.001, 0, 1, TAG, 64),
        TraceEvent("fault:drop", 0.002, 0, 1, TAG, 64,
                   phase="copy:execute/wire/fault:drop"),
        TraceEvent("plan:fuse", 0.003, 0, 1, TAG, 128),
    ],
    [  # rank 1
        TraceEvent("recv", 0.004, 1, 0, TAG, 64, wait=0.0025),
    ],
]


class TestFormatTag:
    def test_context_block_and_user_tag(self):
        assert format_tag(TAG) == "1:7"
        assert format_tag(5 * CONTEXT_STRIDE + 123) == "5:123"

    def test_no_low_bit_aliasing(self):
        # Two communicators whose contexts collide under `& 0xFFFF`
        # must render distinctly.
        a = 3 * CONTEXT_STRIDE + 7
        b = 4 * CONTEXT_STRIDE + 7
        assert (a & 0xFFFF) == (b & 0xFFFF)
        assert format_tag(a) != format_tag(b)

    def test_negative_any_tag(self):
        assert format_tag(-1) == "-1"


class TestFormatTimeline:
    def test_message_endpoints_render_as_arrows(self):
        out = format_timeline(MIXED)
        assert "send 0 -> 1" in out
        assert "recv 1 <- 0" in out
        assert "(waited 2.500)" in out  # 0.0025 s rendered in ms

    def test_annotations_get_their_own_line_form(self):
        out = format_timeline(MIXED)
        fault_line = next(l for l in out.splitlines() if "fault:drop" in l)
        # Not a receive arrow...
        assert "<-" not in fault_line and "->" not in fault_line
        # ...but an @-rank marker with peer and span context.
        assert "fault:drop @ rank 0 (peer 1)" in fault_line
        assert "[copy:execute/wire/fault:drop]" in fault_line
        fuse_line = next(l for l in out.splitlines() if "plan:fuse" in l)
        assert "plan:fuse @ rank 0 (peer 1)" in fuse_line

    def test_tags_render_untruncated(self):
        out = format_timeline(MIXED)
        assert "tag=1:7" in out
        assert str(TAG & 0xFFFF) == "7"  # the old truncation loses the block

    def test_limit_truncation(self):
        out = format_timeline(MIXED, limit=2)
        assert "... 2 more events" in out


class TestRankActivity:
    def test_mixed_kinds_do_not_skew_budgets(self):
        acts = rank_activity(MIXED, clocks=[0.003, 0.004])
        r0, r1 = acts
        assert r0["messages_sent"] == 1
        assert r0["messages_received"] == 0
        assert r0["other_events"] == 2  # fault:drop + plan:fuse
        assert r0["blocked"] == 0.0  # annotations carry no wait
        assert r1["blocked"] == 0.0025
        assert r1["busy"] == 0.004 - 0.0025

    def test_message_kinds_constant(self):
        assert MESSAGE_KINDS == ("send", "recv")


class TestMessageMatrix:
    def test_annotations_never_count_as_traffic(self):
        m = message_matrix(MIXED, what="bytes")
        assert m[0, 1] == 64  # only the send; fault/fuse bytes excluded
        assert m.sum() == 64
        c = message_matrix(MIXED, what="count")
        assert c[0, 1] == 1 and c.sum() == 1


class TestFaultPeerLabeling:
    def _proc(self, rank: int):
        from repro.vmachine.cost_model import CostModel, IBM_SP2
        from repro.vmachine.process import Process

        p = Process(rank, 2, CostModel(IBM_SP2))
        p.trace = []
        return p

    def _message(self):
        from repro.vmachine.message import Message

        return Message(source=0, dest=1, tag=TAG, payload=b"x" * 8,
                       nbytes=8, arrival=0.0)

    def test_sender_side_fault_names_the_destination(self):
        p = self._proc(0)  # observing rank == message.source
        FaultPlan._note(p, "fault:drop", self._message())
        (e,) = p.trace
        assert (e.rank, e.peer) == (0, 1)
        assert p.metrics.get("faults_drop") == 1

    def test_receiver_side_fault_names_the_source(self):
        # Historical bug: peer was message.dest on *both* endpoints, so
        # a receiver-side event named the observing rank itself.
        p = self._proc(1)  # observing rank == message.dest
        FaultPlan._note(p, "fault:dup", self._message())
        (e,) = p.trace
        assert (e.rank, e.peer) == (1, 0)
        assert e.peer != e.rank

    def test_fault_kind_lands_in_span_context(self):
        p = self._proc(0)
        with p.span("wire"):
            FaultPlan._note(p, "fault:drop", self._message())
        (e,) = p.trace
        assert e.phase == "wire/fault:drop"

    def test_end_to_end_drop_event(self):
        from repro.vmachine.faults import FaultRates

        plan = FaultPlan(seed=1, rates=FaultRates(drop=1.0),
                         classes=("user",))

        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(8), tag=3)
            return comm.rank

        res = VirtualMachine(2, faults=plan, trace=True, observe=True).run(
            spmd
        )
        drops = [e for t in res.traces for e in t if e.kind == "fault:drop"]
        assert drops
        for e in drops:
            assert e.peer != e.rank
            assert e.phase.endswith("fault:drop")
        assert res.metrics[0].counters.get("faults_drop", 0) >= 1
