"""Boundary tests for :func:`repro.vmachine.payload_nbytes`.

The size only feeds the LogGP cost model, but it must be monotone in the
real data volume — in particular, strings are charged their UTF-8
encoded length (what would actually cross a wire), not their code-point
count.
"""

import numpy as np

from repro.vmachine import payload_nbytes


class TestStrings:
    def test_ascii_equals_len(self):
        assert payload_nbytes("hello") == 5

    def test_empty_string(self):
        assert payload_nbytes("") == 0

    def test_non_ascii_charges_encoded_bytes(self):
        # U+00E9 is 2 bytes in UTF-8; len() would report 1.
        s = "café"
        assert payload_nbytes(s) == len(s.encode("utf-8")) == 5

    def test_astral_plane_four_bytes_per_char(self):
        s = "\U0001f600" * 3  # emoji: 4 bytes each in UTF-8
        assert payload_nbytes(s) == 12
        assert len(s) == 3  # the code-point count would undercharge


class TestBuffers:
    def test_bytes_and_bytearray(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes(bytearray(7)) == 7
        assert payload_nbytes(b"") == 0

    def test_memoryview_reports_buffer_size(self):
        mv = memoryview(np.zeros(5, dtype=np.float64))
        assert payload_nbytes(mv) == 40

    def test_memoryview_slice(self):
        mv = memoryview(b"0123456789")[2:6]
        assert payload_nbytes(mv) == 4

    def test_numpy_array_nbytes(self):
        assert payload_nbytes(np.zeros((3, 4), dtype=np.float32)) == 48
        assert payload_nbytes(np.zeros(0)) == 0


class TestContainers:
    def test_nested_tuple(self):
        # 8 (tuple) + 8 (int) + 8 (inner tuple) + 4 (str) + 8 (float)
        assert payload_nbytes((1, ("abcd", 2.0))) == 8 + 8 + 8 + 4 + 8

    def test_nested_list_of_arrays(self):
        p = [np.zeros(2), np.zeros(3)]
        assert payload_nbytes(p) == 8 + 16 + 24

    def test_dict_charges_keys_and_values(self):
        p = {"ab": np.zeros(4, dtype=np.int64)}
        assert payload_nbytes(p) == 8 + 2 + 32

    def test_empty_containers(self):
        assert payload_nbytes(()) == 8
        assert payload_nbytes([]) == 8
        assert payload_nbytes({}) == 8


class TestScalarsAndOpaque:
    def test_scalars_fixed_envelope(self):
        for v in (0, 3.14, True, None):
            assert payload_nbytes(v) == 8

    def test_opaque_object_envelope(self):
        class Thing:
            pass

        assert payload_nbytes(Thing()) == 64

    def test_object_with_nbytes_property_is_trusted(self):
        class Sized:
            nbytes = 123

        assert payload_nbytes(Sized()) == 123

    def test_numpy_scalar_charges_itemsize(self):
        assert payload_nbytes(np.int32(7)) == 4
        assert payload_nbytes(np.float64(3.0)) == 8


class TestNbytesProbeBoundaries:
    """The ``.nbytes`` probe must only trust buffer-like byte counts.

    Historically any ``.nbytes`` attribute was trusted before the
    container/scalar branches ran, so payloads like a bare ``np.dtype``
    or an array-wrapping object with a non-integer ``nbytes`` were
    mischarged (or crashed ``int()``)."""

    def test_bare_dtype_charges_envelope(self):
        # np.dtype has itemsize, not a payload byte count; it must land
        # in the opaque branch, not be treated as a sized buffer.
        assert payload_nbytes(np.dtype("f8")) == 64
        assert payload_nbytes(np.dtype("i4")) == 64

    def test_callable_nbytes_is_not_trusted(self):
        class Wrapper:
            def nbytes(self):  # a method, not a byte count
                return 10**9

        assert payload_nbytes(Wrapper()) == 64

    def test_non_integer_nbytes_is_not_trusted(self):
        class Weird:
            nbytes = 12.5

        assert payload_nbytes(Weird()) == 64

    def test_negative_nbytes_is_not_trusted(self):
        class Broken:
            nbytes = -4

        assert payload_nbytes(Broken()) == 64

    def test_bool_nbytes_is_not_trusted(self):
        class Flagged:
            nbytes = True

        assert payload_nbytes(Flagged()) == 64

    def test_numpy_integer_nbytes_is_trusted(self):
        class Sized:
            nbytes = np.int64(80)

        assert payload_nbytes(Sized()) == 80

    def test_container_subclass_sized_by_contents(self):
        # A list subclass carrying a stray nbytes attribute must be sized
        # recursively like any list, not by the attribute.
        class FakeSized(list):
            nbytes = 10**6

        p = FakeSized([np.zeros(2), np.zeros(3)])
        assert payload_nbytes(p) == 8 + 16 + 24

    def test_dict_subclass_sized_by_contents(self):
        class FakeDict(dict):
            nbytes = 10**6

        assert payload_nbytes(FakeDict({"ab": np.zeros(4)})) == 8 + 2 + 32

    def test_str_and_scalars_unaffected_by_probe_order(self):
        # Clock identity: historical payload classes keep their sizes.
        assert payload_nbytes("café") == 5
        assert payload_nbytes((1, b"abc")) == 8 + 8 + 3
        assert payload_nbytes(0) == 8
        assert payload_nbytes(None) == 8
