"""Message-leak detection tests."""

import numpy as np
import pytest

from repro.vmachine import VirtualMachine
from repro.vmachine.machine import SPMDError


class TestLeakDetection:
    def test_unreceived_message_fails_the_run(self):
        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, "orphan")  # never received
            return True

        with pytest.raises(SPMDError, match="never received"):
            VirtualMachine(2).run(spmd)

    def test_can_be_disabled(self):
        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, "orphan")
            return True

        res = VirtualMachine(2, check_leaks=False).run(spmd)
        assert res.values == [True, True]

    def test_unwaited_irecv_is_a_leak(self):
        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, "x")
            elif comm.rank == 1:
                comm.irecv(0)  # posted, never waited
            return True

        with pytest.raises(SPMDError, match="never received"):
            VirtualMachine(2).run(spmd)

    def test_clean_program_passes(self):
        def spmd(comm):
            comm.alltoall([np.zeros(3) for _ in range(comm.size)])
            comm.barrier()
            return True

        assert all(VirtualMachine(4).run(spmd).values)

    def test_leak_report_names_the_rank(self):
        def spmd(comm):
            if comm.rank == 2:
                comm.send(0, None)
            return True

        with pytest.raises(SPMDError, match="rank 0"):
            VirtualMachine(3).run(spmd)
