"""One-sided windows: put/get/accumulate semantics, fence epochs,
atomics, determinism, accounting and fault-tolerant operation."""

import numpy as np
import pytest

from repro.vmachine import VirtualMachine, Window
from repro.vmachine.faults import FaultPlan, FaultRates, tag_class
from repro.vmachine.machine import SPMDError
from repro.vmachine.trace import MESSAGE_KINDS
from repro.vmachine.window import TAG_RMA_BASE


def run(nprocs, fn, *, faults=None, trace=False, observe=False,
        recv_timeout_s=30.0, **kwargs):
    vm = VirtualMachine(nprocs, faults=faults, trace=trace, observe=observe,
                        recv_timeout_s=recv_timeout_s)
    return vm.run(fn, **kwargs)


class TestBasics:
    def test_put_lands_after_fence(self):
        def spmd(comm):
            win = Window(comm, np.zeros(8))
            # Every rank writes its rank id into slot `rank` of rank 0.
            win.put(0, [float(comm.rank + 1)], start=comm.rank)
            win.fence()
            return win.local.copy()

        res = run(4, spmd)
        np.testing.assert_array_equal(
            res.values[0], [1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0])
        for r in range(1, 4):
            assert not res.values[r].any()

    def test_get_reads_remote_state(self):
        def spmd(comm):
            win = Window(comm, np.full(4, float(comm.rank)))
            win.fence()  # epoch 0: publish initial state
            h = win.get((comm.rank + 1) % comm.size)
            win.fence()
            return h.value

        res = run(4, spmd)
        for r in range(4):
            np.testing.assert_array_equal(
                res.values[r], np.full(4, float((r + 1) % 4)))

    def test_get_observes_post_epoch_state(self):
        # A get issued in the same epoch as a put sees the put applied:
        # gets are served after all mutations of the epoch.
        def spmd(comm):
            win = Window(comm, np.zeros(2))
            if comm.rank == 1:
                win.put(0, [7.0, 9.0])
            h = win.get(0) if comm.rank == 2 else None
            win.fence()
            return None if h is None else h.value

        res = run(4, spmd)
        np.testing.assert_array_equal(res.values[2], [7.0, 9.0])

    def test_accumulate_sums_all_origins(self):
        def spmd(comm):
            win = Window(comm, np.zeros(4))
            win.accumulate(0, np.ones(4) * (comm.rank + 1))
            win.fence()
            return win.local.copy()

        res = run(4, spmd)
        np.testing.assert_array_equal(res.values[0], np.full(4, 10.0))

    def test_accumulate_min_max(self):
        def spmd(comm):
            win = Window(comm, np.full(2, 5.0))
            win.accumulate(0, [float(comm.rank)], start=0, op="min")
            win.accumulate(0, [float(comm.rank)], start=1, op="max")
            win.fence()
            return win.local.copy()

        res = run(4, spmd)
        np.testing.assert_array_equal(res.values[0], [0.0, 5.0])

    def test_self_targeted_ops_need_no_message(self):
        def spmd(comm):
            win = Window(comm, np.zeros(4))
            win.put(comm.rank, [1.0, 2.0], start=1)
            h = win.get(comm.rank, 1, 2)
            win.fence()
            sent = comm.process.stats["messages_sent"]
            return h.value, sent

        res = run(2, spmd)
        for value, sent in res.values:
            np.testing.assert_array_equal(value, [1.0, 2.0])
            # Only the fence collectives (alltoall/allgather) sent traffic;
            # self-targeted one-sided ops are local.
            assert sent > 0

    def test_multiple_epochs_reset_state(self):
        def spmd(comm):
            win = Window(comm, np.zeros(2))
            for epoch in range(3):
                win.accumulate(0, [1.0], start=0)
                win.fence()
            assert win.epoch == 3
            return win.local.copy()

        res = run(3, spmd)
        np.testing.assert_array_equal(res.values[0], [9.0, 0.0])

    def test_integer_window(self):
        def spmd(comm):
            win = Window(comm, np.zeros(4, dtype=np.int64))
            win.accumulate(0, np.array([1, 2, 3, 4]))
            win.fence()
            return win.local.copy()

        res = run(2, spmd)
        np.testing.assert_array_equal(res.values[0], [2, 4, 6, 8])


class TestAtomics:
    def test_fetch_add_reserves_disjoint_ranges(self):
        # The BCL queue idiom: every rank reserves `k` slots off a shared
        # tail counter; the returned old values must be distinct multiples
        # of k covering [0, P*k).
        def spmd(comm):
            tail = Window(comm, np.zeros(1, dtype=np.int64))
            h = tail.fetch_add(0, 0, 3)
            tail.fence()
            return int(h.value), int(tail.local[0])

        res = run(4, spmd)
        olds = sorted(v[0] for v in res.values)
        assert olds == [0, 3, 6, 9]
        assert res.values[0][1] == 12

    def test_compare_and_swap_single_winner(self):
        EMPTY = -1

        def spmd(comm):
            win = Window(comm, np.full(1, EMPTY, dtype=np.int64))
            h = win.compare_and_swap(0, 0, EMPTY, comm.rank)
            win.fence()
            return int(h.value), int(win.local[0])

        res = run(4, spmd)
        olds = [v[0] for v in res.values]
        # Exactly one origin saw EMPTY (it won); later ones saw the winner.
        assert olds.count(EMPTY) == 1
        winner = olds.index(EMPTY)
        assert res.values[0][1] == winner

    def test_handle_raises_before_fence(self):
        def spmd(comm):
            win = Window(comm, np.zeros(2))
            h = win.get((comm.rank + 1) % comm.size)
            try:
                h.value
            except RuntimeError:
                premature = True
            else:
                premature = False
            win.fence()
            return premature, h.ready

        res = run(2, spmd)
        for premature, ready in res.values:
            assert premature and ready


class TestValidationAndIsolation:
    def test_rejects_2d_storage(self):
        def spmd(comm):
            Window(comm, np.zeros((2, 2)))

        with pytest.raises(SPMDError):
            run(2, spmd)

    def test_bounds_checked_against_remote_extent(self):
        def spmd(comm):
            # Uneven extents: rank r exposes r+1 elements.
            win = Window(comm, np.zeros(comm.rank + 1))
            err = None
            try:
                win.put(0, [1.0, 2.0])  # rank 0 only exposes 1 element
            except IndexError as e:
                err = str(e)
            win.fence()
            return err

        res = run(3, spmd)
        for err in res.values:
            assert err is not None and "extent" in err

    def test_rejects_unknown_accumulate_op(self):
        def spmd(comm):
            win = Window(comm, np.zeros(2))
            with pytest.raises(ValueError):
                win.accumulate(0, [1.0], op="prod")
            win.fence()

        run(2, spmd)

    def test_two_windows_do_not_cross_match(self):
        def spmd(comm):
            a = Window(comm, np.zeros(2))
            b = Window(comm, np.zeros(2))
            assert a._data_tag != b._data_tag
            if comm.rank == 1:
                a.put(0, [1.0], start=0)
                b.put(0, [2.0], start=1)
            # Interleaved fences: each window drains only its own traffic.
            a.fence()
            b.fence()
            return a.local.copy(), b.local.copy()

        res = run(2, spmd)
        np.testing.assert_array_equal(res.values[0][0], [1.0, 0.0])
        np.testing.assert_array_equal(res.values[0][1], [0.0, 2.0])

    def test_window_tags_classify_as_rma(self):
        def spmd(comm):
            win = Window(comm, np.zeros(1))
            win.fence()
            return win._data_tag, win._resp_tag

        res = run(2, spmd)
        data_tag, resp_tag = res.values[0]
        assert data_tag >= TAG_RMA_BASE
        # Wire tags carry the communicator context stride; the class
        # probe sees through it (and through reliability envelopes).
        assert tag_class(data_tag) == "rma"
        assert tag_class(resp_tag) == "rma"


class TestAccounting:
    def test_put_charges_origin_clock(self):
        def spmd(comm):
            before = comm.process.clock
            win = Window(comm, np.zeros(1024))
            mid = comm.process.clock
            if comm.rank == 1:
                win.put(0, np.ones(1024))
            after_issue = comm.process.clock
            win.fence()
            return mid - before, after_issue - mid

        res = run(2, spmd)
        ctor_cost, issue_cost = res.values[1]
        assert ctor_cost > 0          # allgather is charged
        assert issue_cost > 0         # put pays alpha + beta*nbytes at origin
        # The passive side pays nothing at issue time.
        assert res.values[0][1] == 0.0

    def test_metrics_counters(self):
        def spmd(comm):
            win = Window(comm, np.zeros(8))
            win.put(0, np.ones(4))
            win.accumulate(1, np.ones(2))
            h = win.get(0, 0, 4)
            win.fetch_add(1, 7, 1.0)
            win.fence()
            h.value
            return dict(comm.process.stats)

        res = run(2, spmd)
        s = res.values[0] if res.values[0].get("rma_puts") else res.values[1]
        for rank_stats in res.values:
            assert rank_stats["rma_fences"] == 1
        assert s["rma_puts"] == 1
        assert s["rma_accs"] == 1
        assert s["rma_gets"] == 1
        assert s["rma_fetch_ops"] == 1
        assert s["rma_bytes_put"] == 32
        assert s["rma_bytes_got"] == 32

    def test_trace_annotations_are_not_messages(self):
        def spmd(comm):
            win = Window(comm, np.zeros(4))
            if comm.rank == 1:
                win.put(0, np.ones(2))
            win.fence()
            return None

        res = run(2, spmd, trace=True)
        kinds = {ev.kind for ev in res.traces[1]}
        assert "rma:put" in kinds
        for ev in res.traces[1]:
            if ev.kind.startswith("rma:"):
                assert ev.kind not in MESSAGE_KINDS

    def test_observe_spans_present(self):
        def spmd(comm):
            win = Window(comm, np.zeros(4))
            win.put(0, np.ones(2))
            win.fence()
            return None

        res = run(2, spmd, observe=True)
        names = {s.name for s in res.spans[1]}
        assert "rma:put" in names
        assert "rma:fence" in names


class TestDeterminismAndFaults:
    def test_float_accumulate_is_bitwise_deterministic(self):
        # Many origins accumulate non-commutative float garbage; the
        # (origin, seq) total order makes the result bitwise stable.
        def spmd(comm):
            rng = np.random.default_rng(100 + comm.rank)
            win = Window(comm, np.zeros(16))
            for _ in range(5):
                win.accumulate(0, rng.standard_normal(16) * 1e-3)
            win.fence()
            return win.local.tobytes(), comm.process.clock

        a = run(4, spmd)
        b = run(4, spmd)
        assert a.values[0][0] == b.values[0][0]
        assert a.clocks == b.clocks

    def test_reliable_window_survives_rma_chaos(self):
        plan = FaultPlan(
            seed=13,
            rates=FaultRates(drop=0.2, dup=0.2, reorder=0.2, delay=0.2),
            classes=("rma",),
        )

        def spmd(comm):
            win = Window(comm, np.zeros(8), reliable=True)
            win.accumulate(0, np.ones(8) * (comm.rank + 1))
            h = win.get(0, 0, 8)
            win.fence()
            return h.value, dict(comm.process.stats)

        res = run(4, spmd, faults=plan)
        total = sum(range(1, 5))
        dropped = 0
        for value, stats in res.values:
            np.testing.assert_array_equal(value, np.full(8, float(total)))
            dropped += stats.get("faults_drop", 0)
        assert dropped > 0  # the plan actually hit the rma class

    def test_unreliable_window_clean_channel_matches_reliable(self):
        def spmd(comm, reliable):
            win = Window(comm, np.zeros(8), reliable=reliable)
            win.accumulate(0, np.arange(8.0) * (comm.rank + 1))
            win.fence()
            return win.local.copy()

        plain = run(4, spmd, reliable=False)
        reliable = run(4, spmd, reliable=True)
        np.testing.assert_array_equal(plain.values[0], reliable.values[0])
