"""Communicator tests: point-to-point, collectives, and inter-communicators."""

import numpy as np
import pytest

from repro.vmachine import ProgramSpec, VirtualMachine, run_programs

from helpers import run_spmd


class TestPointToPoint:
    def test_send_recv_roundtrip(self):
        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, {"k": np.arange(5)}, tag=9)
                return None
            if comm.rank == 1:
                got = comm.recv(0, tag=9)
                return got["k"].sum()
            return None

        res = run_spmd(3, spmd)
        assert res.values[1] == 10

    def test_tag_discrimination(self):
        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, "a", tag=1)
                comm.send(1, "b", tag=2)
            elif comm.rank == 1:
                # receive out of send order, by tag
                b = comm.recv(0, tag=2)
                a = comm.recv(0, tag=1)
                return a + b
            return None

        assert run_spmd(2, spmd).values[1] == "ab"

    def test_pairwise_fifo(self):
        def spmd(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(1, i, tag=4)
            elif comm.rank == 1:
                return [comm.recv(0, tag=4) for _ in range(10)]
            return None

        assert run_spmd(2, spmd).values[1] == list(range(10))

    def test_sendrecv_exchange(self):
        def spmd(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(right, comm.rank, left)

        res = run_spmd(5, spmd)
        assert res.values == [4, 0, 1, 2, 3]

    def test_rank_out_of_range(self):
        from repro.vmachine.machine import SPMDError

        def spmd(comm):
            comm.send(comm.size, None)

        with pytest.raises(SPMDError, match="out of range"):
            run_spmd(2, spmd)

    def test_receive_advances_clock_past_arrival(self):
        def spmd(comm):
            if comm.rank == 0:
                comm.process.charge(1.0)  # sender is 1s ahead
                comm.send(1, np.zeros(1000))
            elif comm.rank == 1:
                comm.recv(0)
                return comm.process.clock
            return None

        res = run_spmd(2, spmd)
        assert res.values[1] > 1.0  # receiver waited for the late send


@pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 8])
class TestCollectives:
    def test_barrier_completes(self, size):
        def spmd(comm):
            comm.barrier()
            return True

        assert all(run_spmd(size, spmd).values)

    def test_bcast_all_roots(self, size):
        def spmd(comm):
            out = []
            for root in range(comm.size):
                out.append(comm.bcast(comm.rank * 100, root=root))
            return out

        res = run_spmd(size, spmd)
        for vals in res.values:
            assert vals == [r * 100 for r in range(size)]

    def test_gather(self, size):
        def spmd(comm):
            return comm.gather(comm.rank ** 2, root=size - 1)

        res = run_spmd(size, spmd)
        assert res.values[size - 1] == [r ** 2 for r in range(size)]
        for v in res.values[: size - 1]:
            assert v is None

    def test_allgather(self, size):
        def spmd(comm):
            return comm.allgather(chr(ord("a") + comm.rank))

        expected = [chr(ord("a") + r) for r in range(size)]
        for v in run_spmd(size, spmd).values:
            assert v == expected

    def test_scatter(self, size):
        def spmd(comm):
            data = [i * 10 for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(data, root=0)

        assert run_spmd(size, spmd).values == [r * 10 for r in range(size)]

    def test_alltoall(self, size):
        def spmd(comm):
            return comm.alltoall([comm.rank * 100 + d for d in range(comm.size)])

        res = run_spmd(size, spmd)
        for r, got in enumerate(res.values):
            assert got == [s * 100 + r for s in range(size)]

    def test_reduce_and_allreduce(self, size):
        def spmd(comm):
            s = comm.reduce(comm.rank + 1, lambda a, b: a + b, root=0)
            a = comm.allreduce(comm.rank + 1, lambda a, b: a + b)
            return (s, a)

        res = run_spmd(size, spmd)
        total = size * (size + 1) // 2
        assert res.values[0][0] == total
        assert all(v[1] == total for v in res.values)


class TestSparseAlltoall:
    def test_ring_pattern(self):
        def spmd(comm):
            dest = (comm.rank + 1) % comm.size
            got = comm.alltoall_sparse({dest: f"from{comm.rank}"})
            return got

        res = run_spmd(4, spmd)
        for r, got in enumerate(res.values):
            src = (r - 1) % 4
            assert got == {src: f"from{src}"}

    def test_empty_participation(self):
        def spmd(comm):
            # only rank 0 sends anything
            payloads = {1: "x"} if comm.rank == 0 else {}
            return comm.alltoall_sparse(payloads)

        res = run_spmd(3, spmd)
        assert res.values[1] == {0: "x"}
        assert res.values[0] == {} and res.values[2] == {}

    def test_self_delivery_free(self):
        def spmd(comm):
            before = comm.process.stats["messages_sent"]
            got = comm.alltoall_sparse({comm.rank: "self"})
            # the allgather costs messages but the self payload must not
            return got[comm.rank]

        res = run_spmd(2, spmd)
        assert res.values == ["self", "self"]

    def test_message_count_matches_pattern(self):
        def spmd(comm):
            comm.barrier()
            base = comm.process.stats["messages_sent"]
            if comm.rank == 0:
                comm.alltoall_sparse({1: np.zeros(10), 2: np.zeros(10)})
            else:
                comm.alltoall_sparse({})
            # subtract the allgather's internal messages by measuring them
            return comm.process.stats["messages_sent"] - base

        res = run_spmd(3, spmd)
        # rank 0 sent 2 data messages beyond what others sent for the
        # metadata allgather (which costs the same on every rank +- tree
        # position); just verify rank 0 sent at least 2 more than rank 2.
        assert res.values[0] >= res.values[2] + 2


class TestInterComm:
    def test_cross_program_send_recv(self):
        def prog_a(ctx):
            ic = ctx.peer("b")
            ic.send(ctx.rank % ic.remote_size, f"a{ctx.rank}")
            return True

        def prog_b(ctx):
            ic = ctx.peer("a")
            got = sorted(
                ic.recv(s) for s in range(ic.remote_size)
                if s % ic.remote_size == 0 or True
            ) if False else None
            # each b-rank receives from the a-ranks that mapped onto it
            senders = [s for s in range(ic.remote_size) if s % ctx.size == ctx.rank]
            got = sorted(ic.recv(s) for s in senders)
            return got

        from repro.vmachine import ProgramSpec, run_programs

        res = run_programs(
            [ProgramSpec("a", 4, prog_a), ProgramSpec("b", 2, prog_b)]
        )
        assert res["b"].values[0] == ["a0", "a2"]
        assert res["b"].values[1] == ["a1", "a3"]

    def test_intercomm_remote_rank_bounds(self):
        from repro.vmachine.machine import SPMDError

        def prog_a(ctx):
            ctx.peer("b").send(5, None)

        def prog_b(ctx):
            pass

        with pytest.raises(SPMDError, match="out of range"):
            run_programs(
                [ProgramSpec("a", 1, prog_a), ProgramSpec("b", 2, prog_b)]
            )


class TestAccounting:
    def test_bytes_sent_equals_bytes_received(self):
        def spmd(comm):
            comm.alltoall([np.zeros(comm.rank + 1) for _ in range(comm.size)])
            comm.barrier()
            return (
                comm.process.stats["bytes_sent"],
                comm.process.stats["bytes_received"],
            )

        res = run_spmd(4, spmd)
        total_sent = sum(v[0] for v in res.values)
        total_recv = sum(v[1] for v in res.values)
        assert total_sent == total_recv > 0

    def test_elapsed_reflects_communication(self):
        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(1_000_000))
            elif comm.rank == 1:
                comm.recv(0)
            return None

        res = run_spmd(2, spmd)
        # 8 MB at 35 MB/s is ~0.23 s
        assert res.elapsed_ms > 200
