"""Tests for communicator extensions: scan and split."""

import numpy as np
import pytest

from helpers import run_spmd


class TestScan:
    @pytest.mark.parametrize("size", [1, 2, 4, 7])
    def test_inclusive_prefix_sum(self, size):
        def spmd(comm):
            return comm.scan(comm.rank + 1, lambda a, b: a + b)

        res = run_spmd(size, spmd)
        expected = list(np.cumsum(np.arange(1, size + 1)))
        assert res.values == expected

    def test_noncommutative_op(self):
        def spmd(comm):
            return comm.scan(str(comm.rank), lambda a, b: a + b)

        res = run_spmd(4, spmd)
        assert res.values == ["0", "01", "012", "0123"]

    def test_scan_offsets_use_case(self):
        """The classic use: exclusive offsets for variable-size pieces."""

        def spmd(comm):
            mysize = (comm.rank + 1) * 3
            inclusive = comm.scan(mysize, lambda a, b: a + b)
            return inclusive - mysize  # exclusive prefix = my offset

        res = run_spmd(4, spmd)
        assert res.values == [0, 3, 9, 18]


class TestSplit:
    def test_partition_by_parity(self):
        def spmd(comm):
            sub = comm.split(color=comm.rank % 2)
            return (sub.rank, sub.size, sub.allgather(comm.rank))

        res = run_spmd(6, spmd)
        evens = res.values[0][2]
        odds = res.values[1][2]
        assert evens == [0, 2, 4]
        assert odds == [1, 3, 5]
        for r, (sub_rank, sub_size, members) in enumerate(res.values):
            assert sub_size == 3
            assert members[sub_rank] == r

    def test_key_reorders(self):
        def spmd(comm):
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        res = run_spmd(4, spmd)
        assert res.values == [3, 2, 1, 0]

    def test_split_isolated_from_parent(self):
        def spmd(comm):
            sub = comm.split(color=comm.rank % 2)
            # Collective on sub while parent also used afterwards.
            s = sub.allreduce(1, lambda a, b: a + b)
            total = comm.allreduce(s, lambda a, b: a + b)
            return total

        res = run_spmd(4, spmd)
        assert all(v == 8 for v in res.values)

    def test_nested_split(self):
        def spmd(comm):
            half = comm.split(color=comm.rank // 2)
            quarter = half.split(color=half.rank)
            return quarter.size

        res = run_spmd(4, spmd)
        assert res.values == [1, 1, 1, 1]

    def test_singleton_group(self):
        def spmd(comm):
            sub = comm.split(color=comm.rank)  # every rank alone
            sub.barrier()
            return sub.size

        assert run_spmd(3, spmd).values == [1, 1, 1]
