"""Reliable-delivery protocol: in-order delivery over a faulty channel,
retransmission accounting, duplicate suppression, fencing, and failure
surfacing."""

import pytest

from repro.vmachine import VirtualMachine
from repro.vmachine.faults import (
    CrashEvent,
    FaultPlan,
    FaultRates,
    RankLostError,
)
from repro.vmachine.machine import SPMDError
from repro.vmachine.reliability import (
    REL_ACK,
    REL_DATA,
    Reliability,
    ReliabilityConfig,
)

TAG = 11  # plain user tag; rules below target the "user" class


def run(nprocs, fn, *, faults=None, trace=False, check_leaks=True,
        recv_timeout_s=20.0):
    vm = VirtualMachine(nprocs, trace=trace, check_leaks=check_leaks,
                        faults=faults, recv_timeout_s=recv_timeout_s)
    return vm.run(fn)


def _pipeline(n, cfg=None):
    """Rank 0 reliably streams ``n`` integers to rank 1; both return their
    (values, stats) observations."""

    def spmd(comm):
        rel = Reliability(cfg)
        if comm.rank == 0:
            for i in range(n):
                rel.send(comm, 1, i, TAG)
            rel.fence()
            return dict(comm.process.stats)
        got = [rel.recv(comm, 0, TAG) for _ in range(n)]
        return got, dict(comm.process.stats)

    return spmd


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(base_rto_s=-1.0)
        with pytest.raises(ValueError):
            ReliabilityConfig(backoff=0.5)
        with pytest.raises(ValueError):
            ReliabilityConfig(max_retries=-1)


class TestReliableDelivery:
    def test_clean_channel_delivers_in_order(self):
        res = run(2, _pipeline(20))
        got, _stats = res.values[1]
        assert got == list(range(20))

    def test_survives_drops_with_retransmits(self):
        plan = FaultPlan(seed=7, rates=FaultRates(drop=0.4),
                         classes=("user",))
        res = run(2, _pipeline(40), faults=plan)
        sender_stats = res.values[0]
        got, _ = res.values[1]
        assert got == list(range(40))
        assert sender_stats["rel_retransmits"] > 0
        assert sender_stats["rel_rto_wait_s"] > 0
        assert sender_stats["faults_drop"] > 0

    def test_corruption_is_retransmitted_too(self):
        plan = FaultPlan(seed=5, rates=FaultRates(corrupt=0.4),
                         classes=("user",))
        res = run(2, _pipeline(40), faults=plan)
        got, _ = res.values[1]
        assert got == list(range(40))
        assert res.values[0]["rel_retransmits"] > 0

    def test_duplicates_are_suppressed(self):
        plan = FaultPlan(seed=3, rates=FaultRates(dup=0.5),
                         classes=("user",))
        res = run(2, _pipeline(40), faults=plan)
        got, recv_stats = res.values[1]
        assert got == list(range(40))
        assert recv_stats["rel_dups_discarded"] > 0

    def test_reorder_holdback_is_resequenced(self):
        plan = FaultPlan(seed=9, rates=FaultRates(reorder=0.4),
                         classes=("user",))
        res = run(2, _pipeline(40), faults=plan)
        got, _ = res.values[1]
        assert got == list(range(40))
        # the sender's fault plan actually held something back
        assert res.values[0]["faults_hold"] > 0

    def test_full_chaos_mix(self):
        plan = FaultPlan(
            seed=12,
            rates=FaultRates(drop=0.2, dup=0.2, reorder=0.2, delay=0.2,
                             corrupt=0.1),
            classes=("user",),
        )
        res = run(2, _pipeline(60), faults=plan)
        got, _ = res.values[1]
        assert got == list(range(60))

    def test_rto_backoff_is_charged_to_the_logical_clock(self):
        """Reliability overhead must be visible in logical time: the same
        workload over a lossy channel finishes later than over a clean
        one, by at least the charged RTO waits."""

        def spmd(comm):
            rel = Reliability(ReliabilityConfig(base_rto_s=1e-3))
            if comm.rank == 0:
                for i in range(30):
                    rel.send(comm, 1, i, TAG)
                rel.fence()
                return comm.process.clock, comm.process.stats.get(
                    "rel_rto_wait_s", 0.0
                )
            for _ in range(30):
                rel.recv(comm, 0, TAG)
            return None

        clean_clock, _ = run(2, spmd).values[0]
        plan = FaultPlan(seed=7, rates=FaultRates(drop=0.4),
                         classes=("user",))
        lossy_clock, rto_wait = run(2, spmd, faults=plan).values[0]
        assert rto_wait > 0
        assert lossy_clock >= clean_clock + rto_wait


class TestDeterministicReplay:
    def _run_traced(self, seed):
        plan = FaultPlan(
            seed=seed,
            rates=FaultRates(drop=0.2, dup=0.2, reorder=0.2, delay=0.2),
            classes=("user",),
        )
        res = run(2, _pipeline(40), faults=plan, trace=True)
        events = [
            [(e.kind, e.time, e.rank, e.peer, e.tag, e.nbytes, e.wait)
             for e in tr]
            for tr in res.traces
        ]
        return events, res.clocks

    def test_same_seed_same_trace_and_clocks(self):
        ev_a, clk_a = self._run_traced(21)
        ev_b, clk_b = self._run_traced(21)
        assert ev_a == ev_b
        assert clk_a == clk_b

    def test_different_seed_different_trace(self):
        ev_a, _ = self._run_traced(21)
        ev_b, _ = self._run_traced(22)
        assert ev_a != ev_b


class TestFence:
    def test_fence_catches_up_cumulative_ack(self):
        def spmd(comm):
            rel = Reliability()
            if comm.rank == 0:
                for i in range(5):
                    rel.send(comm, 1, i, TAG)
                rel.fence()
                (ch,) = rel._out.values()
                return ch.next_seq, ch.acked
            for _ in range(5):
                rel.recv(comm, 0, TAG)
            return None

        next_seq, acked = run(2, spmd).values[0]
        assert next_seq == 5 and acked == 4

    def test_fence_releases_held_final_message(self):
        plan = FaultPlan(seed=1, rates=FaultRates(reorder=1.0),
                         classes=("user",))

        def spmd(comm):
            rel = Reliability()
            if comm.rank == 0:
                rel.send(comm, 1, "only", TAG)  # held by the fault plan
                rel.fence(timeout=10.0)         # flush + await the ack
                return True
            return rel.recv(comm, 0, TAG)

        res = run(2, spmd, faults=plan)
        assert res.values[1] == "only"

    def test_fence_on_dead_peer_raises_rank_lost_with_last_ack(self):
        plan = FaultPlan(seed=0,
                         crashes=[CrashEvent(rank=1, after_receives=0)])

        def spmd(comm):
            rel = Reliability(ReliabilityConfig(fence_timeout_s=2.0))
            if comm.rank == 0:
                rel.send(comm, 1, "x", TAG)
                rel.fence()
            else:
                rel.recv(comm, 0, TAG)  # crash fires before the receive

        with pytest.raises(SPMDError) as ei:
            run(2, spmd, faults=plan, check_leaks=False)
        lost = [e.exception for e in ei.value.errors if e.rank == 0][0]
        assert isinstance(lost, RankLostError)
        assert lost.last_ack is not None
        assert "out-channel" in lost.last_ack

    def test_max_retries_exhaustion_declares_peer_lost(self):
        plan = FaultPlan(seed=2, rates=FaultRates(drop=1.0),
                         classes=("user",))

        def spmd(comm):
            rel = Reliability(ReliabilityConfig(base_rto_s=1e-4,
                                                max_retries=3))
            if comm.rank == 0:
                rel.send(comm, 1, "doomed", TAG)
            return None

        with pytest.raises(SPMDError) as ei:
            run(2, spmd, faults=plan, check_leaks=False)
        lost = ei.value.errors[0].exception
        assert isinstance(lost, RankLostError)
        assert "3 retransmissions" in lost.reason
        assert lost.last_ack is not None


class TestRecvAny:
    def test_recv_any_completes_all_channels(self):
        def spmd(comm):
            rel = Reliability()
            if comm.rank == 0:
                seen = {}
                remaining = {1, 2, 3}
                while remaining:
                    p, v = rel.recv_any(comm, sorted(remaining), TAG)
                    seen[p] = v
                    remaining.discard(p)
                return seen
            rel.send(comm, 0, f"from-{comm.rank}", TAG)
            rel.fence()
            return None

        res = run(4, spmd)
        assert res.values[0] == {
            1: "from-1", 2: "from-2", 3: "from-3"
        }

    def test_recv_any_under_faults(self):
        plan = FaultPlan(
            seed=4,
            rates=FaultRates(drop=0.3, dup=0.3, reorder=0.2),
            classes=("user",),
        )

        def spmd(comm):
            rel = Reliability()
            n = 6
            if comm.rank == 0:
                got = {1: [], 2: [], 3: []}
                pending = {p: n for p in (1, 2, 3)}
                while pending:
                    p, v = rel.recv_any(comm, sorted(pending), TAG)
                    got[p].append(v)
                    pending[p] -= 1
                    if pending[p] == 0:
                        del pending[p]
                return got
            for i in range(n):
                rel.send(comm, 0, (comm.rank, i), TAG)
            rel.fence()
            return None

        res = run(4, spmd, faults=plan)
        got = res.values[0]
        for p in (1, 2, 3):
            assert got[p] == [(p, i) for i in range(6)]


class TestShadowTags:
    def test_shadow_bits_stay_below_collective_block(self):
        assert REL_DATA < (1 << 24) and REL_ACK < (1 << 24)
        assert REL_DATA & REL_ACK == 0
