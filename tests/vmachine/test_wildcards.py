"""ANY_SOURCE receives and probes through the Communicator."""

import numpy as np
import pytest

from helpers import run_spmd


class TestRecvAny:
    def test_collects_from_all_senders(self):
        def spmd(comm):
            if comm.rank == 0:
                got = {}
                for _ in range(comm.size - 1):
                    src, val = comm.recv_any(tag=4)
                    got[src] = val
                return got
            comm.send(0, comm.rank * 11, tag=4)
            return None

        got = run_spmd(4, spmd).values[0]
        assert got == {1: 11, 2: 22, 3: 33}

    def test_tag_namespace_respected(self):
        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, "a", tag=1)
                comm.send(1, "b", tag=2)
            elif comm.rank == 1:
                src, val = comm.recv_any(tag=2)
                assert (src, val) == (0, "b")
                src, val = comm.recv_any(tag=1)
                assert (src, val) == (0, "a")
            return True

        assert all(run_spmd(2, spmd).values)

    def test_charges_like_recv(self):
        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, np.zeros(1000))
            elif comm.rank == 1:
                t0 = comm.process.clock
                comm.recv_any()
                return comm.process.clock - t0
            return None

        assert run_spmd(2, spmd).values[1] > 0


class TestProbe:
    def test_probe_sees_pending(self):
        def spmd(comm):
            if comm.rank == 0:
                comm.send(1, "x", tag=9)
                comm.barrier()
            elif comm.rank == 1:
                comm.barrier()  # guarantees the message was sent
                assert comm.probe(0, tag=9)
                assert not comm.probe(0, tag=8)
                comm.recv(0, tag=9)
                assert not comm.probe(0, tag=9)
            else:
                comm.barrier()
            return True

        assert all(run_spmd(3, spmd).values)

    def test_probe_charges_nothing(self):
        def spmd(comm):
            t0 = comm.process.clock
            comm.probe((comm.rank + 1) % comm.size, tag=5)
            return comm.process.clock - t0

        assert all(v == 0.0 for v in run_spmd(2, spmd).values)
