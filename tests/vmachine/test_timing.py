"""Phase-timer and report-merging tests."""

import pytest

from repro.vmachine.timing import PhaseTimer, TimingReport, merge_timings


def make_report(**phases) -> TimingReport:
    r = TimingReport()
    for k, v in phases.items():
        r.add(k, v)
    return r


class TestTimingReport:
    def test_add_accumulates(self):
        r = TimingReport()
        r.add("a", 0.5)
        r.add("a", 0.25)
        assert r.get_ms("a") == pytest.approx(750.0)

    def test_total(self):
        r = make_report(a=0.1, b=0.2)
        assert r.total_ms() == pytest.approx(300.0)

    def test_missing_phase_zero(self):
        assert TimingReport().get_ms("x") == 0.0


class TestPhaseTimer:
    def test_samples_supplied_clock(self):
        clock = [0.0]
        t = PhaseTimer(lambda: clock[0])
        with t.phase("p"):
            clock[0] += 2.0
        assert t.report.get_ms("p") == pytest.approx(2000.0)

    def test_exception_still_records(self):
        clock = [0.0]
        t = PhaseTimer(lambda: clock[0])
        with pytest.raises(RuntimeError):
            with t.phase("p"):
                clock[0] += 1.0
                raise RuntimeError
        assert t.report.get_ms("p") == pytest.approx(1000.0)


class TestMerge:
    def test_max_merge(self):
        merged = merge_timings([make_report(a=1.0, b=2.0), make_report(a=3.0)])
        assert merged.phases["a"] == 3.0
        assert merged.phases["b"] == 2.0

    def test_sum_merge(self):
        merged = merge_timings(
            [make_report(a=1.0), make_report(a=2.0)], how="sum"
        )
        assert merged.phases["a"] == 3.0

    def test_mean_merge_counts_missing_as_zero(self):
        merged = merge_timings(
            [make_report(a=2.0), make_report(b=2.0)], how="mean"
        )
        assert merged.phases["a"] == 1.0
        assert merged.phases["b"] == 1.0

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            merge_timings([make_report(a=1.0)], how="median")
