"""Unit tests for the virtual processor context."""

import pytest

from repro.vmachine.cost_model import IBM_SP2, CostModel
from repro.vmachine.process import Process, current_process


@pytest.fixture
def proc():
    return Process(rank=0, nprocs=4, cost_model=CostModel(IBM_SP2))


class TestClock:
    def test_starts_at_zero(self, proc):
        assert proc.clock == 0.0

    def test_charge_advances(self, proc):
        proc.charge(1e-3)
        proc.charge(2e-3)
        assert proc.clock == pytest.approx(3e-3)

    def test_negative_charge_rejected(self, proc):
        with pytest.raises(ValueError):
            proc.charge(-1.0)

    def test_advance_to_future(self, proc):
        proc.advance_to(5e-3)
        assert proc.clock == 5e-3

    def test_advance_to_past_is_noop(self, proc):
        proc.charge(1e-2)
        proc.advance_to(5e-3)
        assert proc.clock == pytest.approx(1e-2)

    def test_charge_helpers_use_cost_model(self, proc):
        proc.charge_flops(1000)
        assert proc.clock == pytest.approx(1000 * IBM_SP2.gamma_flop)
        proc.charge_deref_irregular(10)
        proc.charge_deref_regular(10)
        proc.charge_mem(100)
        proc.charge_pack(10)
        proc.charge_hash(10)
        proc.charge_locate(2, 50)
        proc.charge_startup()
        expected = (
            1000 * IBM_SP2.gamma_flop
            + 10 * IBM_SP2.deref
            + 10 * IBM_SP2.deref_regular
            + 100 * IBM_SP2.gamma_byte
            + 10 * IBM_SP2.pack_per_elem
            + 10 * IBM_SP2.hash_ref
            + 2 * IBM_SP2.locate_run + 50 * IBM_SP2.locate_elem
            + IBM_SP2.startup
        )
        assert proc.clock == pytest.approx(expected)


class TestTimer:
    def test_phase_accumulates_logical_time(self, proc):
        with proc.timer.phase("work"):
            proc.charge(2e-3)
        with proc.timer.phase("work"):
            proc.charge(3e-3)
        assert proc.timer.report.get_ms("work") == pytest.approx(5.0)

    def test_untimed_phase_reads_zero(self, proc):
        assert proc.timer.report.get_ms("nothing") == 0.0

    def test_nested_phases(self, proc):
        with proc.timer.phase("outer"):
            proc.charge(1e-3)
            with proc.timer.phase("inner"):
                proc.charge(2e-3)
        assert proc.timer.report.get_ms("inner") == pytest.approx(2.0)
        # outer includes inner's time (it wraps it on the same clock)
        assert proc.timer.report.get_ms("outer") == pytest.approx(3.0)


class TestBinding:
    def test_current_process_outside_run_raises(self):
        with pytest.raises(RuntimeError, match="no virtual process"):
            current_process()

    def test_bind_unbind(self, proc):
        proc.bind()
        try:
            assert current_process() is proc
        finally:
            proc.unbind()
        with pytest.raises(RuntimeError):
            current_process()


class TestStats:
    def test_initial_counters(self, proc):
        assert proc.stats["messages_sent"] == 0
        assert proc.stats["bytes_received"] == 0
