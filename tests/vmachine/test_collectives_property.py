"""Property-based collective-operation tests (random sizes, roots, data)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import run_spmd


@given(size=st.integers(1, 9), root=st.data(), seed=st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_property_bcast_any_root(size, root, seed):
    r = root.draw(st.integers(0, size - 1))
    payload = np.random.default_rng(seed).random(5)

    def spmd(comm):
        got = comm.bcast(payload if comm.rank == r else None, root=r)
        return got.tolist()

    for vals in run_spmd(size, spmd).values:
        assert vals == payload.tolist()


@given(size=st.integers(1, 8), root=st.data())
@settings(max_examples=20, deadline=None)
def test_property_gather_scatter_inverse(size, root):
    r = root.draw(st.integers(0, size - 1))

    def spmd(comm):
        gathered = comm.gather(comm.rank * 3, root=r)
        back = comm.scatter(gathered, root=r)
        return back

    assert run_spmd(size, spmd).values == [3 * i for i in range(size)]


@given(size=st.integers(1, 8), seed=st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_property_allreduce_matches_numpy(size, seed):
    data = np.random.default_rng(seed).random(size)

    def spmd(comm):
        return comm.allreduce(float(data[comm.rank]), lambda a, b: a + b)

    for v in run_spmd(size, spmd).values:
        assert np.isclose(v, data.sum())


@given(size=st.integers(1, 9), root=st.data())
@settings(max_examples=20, deadline=None)
def test_property_reduce_non_commutative_fold_order(size, root):
    """The binomial tree must fold operands in virtual-rank order, so an
    associative but non-commutative op (tuple concat) matches the linear
    fold ``root, root+1, ..., wrap`` exactly."""
    r = root.draw(st.integers(0, size - 1))

    def spmd(comm):
        return comm.reduce((comm.rank,), lambda a, b: a + b, root=r)

    vals = run_spmd(size, spmd).values
    assert vals[r] == tuple((r + k) % size for k in range(size))
    assert all(vals[i] is None for i in range(size) if i != r)


@given(size=st.integers(1, 9), seed=st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_property_allreduce_non_commutative(size, seed):
    """allreduce (tree reduce at 0, then bcast) keeps the same ordering
    contract and delivers the identical fold to every rank."""
    words = [f"w{seed}-{i}." for i in range(size)]

    def spmd(comm):
        return comm.allreduce(words[comm.rank], lambda a, b: a + b)

    assert run_spmd(size, spmd).values == ["".join(words)] * size


@given(size=st.integers(1, 8), seed=st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_property_alltoall_is_transpose(size, seed):
    matrix = np.random.default_rng(seed).integers(0, 1000, (size, size))

    def spmd(comm):
        return comm.alltoall(list(matrix[comm.rank]))

    res = run_spmd(size, spmd).values
    for r, row in enumerate(res):
        assert row == list(matrix[:, r])


@given(size=st.integers(1, 8), seed=st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_property_scan_prefixes(size, seed):
    data = np.random.default_rng(seed).integers(0, 100, size)

    def spmd(comm):
        return comm.scan(int(data[comm.rank]), lambda a, b: a + b)

    assert run_spmd(size, spmd).values == list(np.cumsum(data))


@given(
    size=st.integers(2, 8),
    ncolors=st.integers(1, 3),
    seed=st.integers(0, 50),
)
@settings(max_examples=20, deadline=None)
def test_property_split_partitions(size, ncolors, seed):
    colors = np.random.default_rng(seed).integers(0, ncolors, size)

    def spmd(comm):
        sub = comm.split(int(colors[comm.rank]))
        members = sub.allgather(comm.rank)
        return (sub.size, members)

    res = run_spmd(size, spmd).values
    for r, (sub_size, members) in enumerate(res):
        same_color = [i for i in range(size) if colors[i] == colors[r]]
        assert sub_size == len(same_color)
        assert members == same_color
