"""Multi-program (coupled) execution tests."""

import pytest

from repro.vmachine import ProgramSpec, run_programs
from repro.vmachine.machine import SPMDError


class TestProgramLayout:
    def test_each_program_sees_its_own_local_ranks(self):
        def prog(ctx):
            return (ctx.program, ctx.rank, ctx.size)

        res = run_programs(
            [ProgramSpec("x", 2, prog), ProgramSpec("y", 3, prog)]
        )
        assert res["x"].values == [("x", 0, 2), ("x", 1, 2)]
        assert res["y"].values == [("y", 0, 3), ("y", 1, 3), ("y", 2, 3)]

    def test_intra_comm_isolated_between_programs(self):
        # Each program runs its own allgather; no cross-talk.
        def prog(ctx):
            return ctx.comm.allgather(f"{ctx.program}{ctx.rank}")

        res = run_programs(
            [ProgramSpec("x", 2, prog), ProgramSpec("y", 2, prog)]
        )
        assert res["x"].values[0] == ["x0", "x1"]
        assert res["y"].values[1] == ["y0", "y1"]

    def test_three_programs_pairwise_intercomms(self):
        def prog(ctx):
            peers = sorted(ctx.intercomms)
            for p in peers:
                ctx.peer(p).send(0, f"{ctx.program}->{p}") if ctx.rank == 0 else None
            got = {}
            if ctx.rank == 0:
                for p in peers:
                    got[p] = ctx.peer(p).recv(0)
            return got

        res = run_programs(
            [ProgramSpec(n, 1, prog) for n in ("a", "b", "c")]
        )
        assert res["a"].values[0] == {"b": "b->a", "c": "c->a"}
        assert res["b"].values[0] == {"a": "a->b", "c": "c->b"}

    def test_unknown_peer_raises(self):
        def prog(ctx):
            ctx.peer("nope")

        with pytest.raises(SPMDError, match="no peer"):
            run_programs([ProgramSpec("a", 1, prog), ProgramSpec("b", 1, lambda c: None)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_programs(
                [ProgramSpec("a", 1, lambda c: None), ProgramSpec("a", 1, lambda c: None)]
            )

    def test_empty_spec_list_rejected(self):
        with pytest.raises(ValueError):
            run_programs([])

    def test_args_forwarded(self):
        def prog(ctx, base, mul=1):
            return base * mul + ctx.rank

        res = run_programs(
            [ProgramSpec("a", 2, prog, args=(10,), kwargs={"mul": 2})]
        )
        assert res["a"].values == [20, 21]


class TestCoupledResult:
    def test_elapsed_is_max_over_programs(self):
        def slow(ctx):
            ctx.comm.process.charge(0.010)

        def fast(ctx):
            ctx.comm.process.charge(0.001)

        res = run_programs(
            [ProgramSpec("s", 1, slow), ProgramSpec("f", 1, fast)]
        )
        assert res.elapsed_ms == pytest.approx(10.0)
        assert res["f"].elapsed_ms == pytest.approx(1.0)

    def test_error_in_one_program_fails_run(self):
        def bad(ctx):
            raise ValueError("server crashed")

        def good(ctx):
            ctx.peer("bad").recv(0)  # would block forever

        with pytest.raises(SPMDError, match="server crashed"):
            run_programs(
                [ProgramSpec("bad", 1, bad), ProgramSpec("good", 1, good)]
            )
