"""Cartesian (HPF-style) distribution tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distrib.cartesian import (
    BLOCK,
    BLOCK_CYCLIC,
    COLLAPSED,
    CYCLIC,
    CartesianDist,
    DimDist,
    proc_grid,
)
from repro.distrib.section import Section


class TestProcGrid:
    def test_exact_square(self):
        assert proc_grid(16, 2) == (4, 4)

    def test_prime(self):
        assert proc_grid(7, 2) == (7, 1)

    def test_product_preserved(self):
        for n in range(1, 65):
            for d in (1, 2, 3):
                assert int(np.prod(proc_grid(n, d))) == n

    def test_descending(self):
        g = proc_grid(12, 3)
        assert list(g) == sorted(g, reverse=True)

    def test_invalid(self):
        with pytest.raises(ValueError):
            proc_grid(0, 2)


class TestDimDist:
    @pytest.mark.parametrize(
        "dim",
        [
            DimDist(BLOCK, 17, 4),
            DimDist(BLOCK, 16, 4),
            DimDist(CYCLIC, 17, 4),
            DimDist(BLOCK_CYCLIC, 23, 3, 4),
            DimDist(BLOCK_CYCLIC, 24, 3, 4),
            DimDist(COLLAPSED, 9, 1),
        ],
    )
    def test_map_unmap_roundtrip(self, dim):
        g = np.arange(dim.size)
        pc, lc = dim.map(g)
        back = dim.unmap(pc, lc)
        np.testing.assert_array_equal(back, g)

    @pytest.mark.parametrize(
        "dim",
        [
            DimDist(BLOCK, 17, 4),
            DimDist(CYCLIC, 17, 4),
            DimDist(BLOCK_CYCLIC, 23, 3, 4),
            DimDist(COLLAPSED, 9, 1),
        ],
    )
    def test_extent_matches_count(self, dim):
        g = np.arange(dim.size)
        pc, _ = dim.map(g)
        for p in range(dim.procs):
            assert dim.extent(p) == int((pc == p).sum())

    def test_block_bounds(self):
        d = DimDist(BLOCK, 10, 4)  # b = 3
        assert d.block_bounds(0) == (0, 3)
        assert d.block_bounds(3) == (9, 10)

    def test_block_bounds_empty_tail_proc(self):
        d = DimDist(BLOCK, 9, 5)  # b = 2, proc 4 gets [8,9)... proc 4: lo=8 hi=9
        lo, hi = d.block_bounds(4)
        assert hi - lo == d.extent(4)

    def test_cyclic_has_no_block_bounds(self):
        with pytest.raises(ValueError):
            DimDist(CYCLIC, 10, 2).block_bounds(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DimDist("weird", 10, 2)
        with pytest.raises(ValueError):
            DimDist(COLLAPSED, 10, 2)
        with pytest.raises(ValueError):
            DimDist(BLOCK_CYCLIC, 10, 2, 0)


DISTS = [
    CartesianDist.block_nd((13, 9), 6),
    CartesianDist.block_nd((8, 8), 4),
    CartesianDist.block_1d((10, 3), 4, axis=0),
    CartesianDist((DimDist(CYCLIC, 11, 3), DimDist(BLOCK, 7, 2))),
    CartesianDist((DimDist(BLOCK_CYCLIC, 20, 2, 3), DimDist(CYCLIC, 5, 2))),
    CartesianDist((DimDist(COLLAPSED, 6, 1), DimDist(BLOCK, 10, 5))),
    CartesianDist((DimDist(BLOCK, 15, 1),)),
]


@pytest.mark.parametrize("dist", DISTS, ids=lambda d: repr(d))
class TestCartesianDist:
    def test_partition_valid(self, dist):
        dist.check_valid()

    def test_local_sizes_sum_to_total(self, dist):
        assert sum(dist.local_size(r) for r in range(dist.nprocs)) == dist.size

    def test_local_to_global_roundtrip(self, dist):
        for r in range(dist.nprocs):
            n = dist.local_size(r)
            g = dist.local_to_global(r, np.arange(n))
            ranks, offsets = dist.owner_of_flat(g)
            assert (ranks == r).all()
            np.testing.assert_array_equal(offsets, np.arange(n))

    def test_descriptor_roundtrip(self, dist):
        d2 = dist.descriptor().materialize()
        assert d2 == dist
        g = np.arange(dist.size)
        np.testing.assert_array_equal(
            d2.owner_of_flat(g)[0], dist.owner_of_flat(g)[0]
        )

    def test_descriptor_compact(self, dist):
        # Regular descriptors are O(ndims), never data-sized.
        assert dist.descriptor().nbytes < 200

    def test_section_map_matches_owner_of_flat(self, dist):
        shape = dist.global_shape
        slices = tuple(slice(n // 4, n, 2) for n in shape)
        sec = Section.from_slices(slices, shape)
        if sec.size == 0:
            pytest.skip("empty section for this shape")
        ranks, offsets = dist.section_map(sec)
        r2, o2 = dist.owner_of_flat(sec.global_flat(shape))
        np.testing.assert_array_equal(ranks, r2)
        np.testing.assert_array_equal(offsets, o2)


class TestErrors:
    def test_grid_mismatch(self):
        d = CartesianDist.block_nd((8, 8), 4)
        sec = Section((0,), (8,), (1,))
        with pytest.raises(ValueError, match="rank mismatch"):
            d.section_map(sec)

    def test_section_out_of_bounds(self):
        d = CartesianDist.block_nd((8, 8), 4)
        sec = Section((0, 0), (9, 8), (1, 1))
        with pytest.raises(IndexError):
            d.section_map(sec)

    def test_block_1d_other_axes_collapsed(self):
        d = CartesianDist.block_1d((10, 4), 3, axis=0)
        assert d.grid == (3, 1)


@given(
    n0=st.integers(1, 20),
    n1=st.integers(1, 20),
    nprocs=st.integers(1, 8),
)
def test_property_block_nd_is_partition(n0, n1, nprocs):
    dist = CartesianDist.block_nd((n0, n1), nprocs)
    dist.check_valid()


@given(
    size=st.integers(1, 60),
    procs=st.integers(1, 6),
    kind=st.sampled_from([BLOCK, CYCLIC]),
)
def test_property_dim_map_is_partition(size, procs, kind):
    dim = DimDist(kind, size, procs)
    g = np.arange(size)
    pc, lc = dim.map(g)
    assert pc.min() >= 0 and pc.max() < procs
    for p in range(procs):
        mine = lc[pc == p]
        np.testing.assert_array_equal(np.sort(mine), np.arange(len(mine)))
        assert len(mine) == dim.extent(p)


@given(
    size=st.integers(1, 60),
    procs=st.integers(1, 5),
    k=st.integers(1, 7),
)
def test_property_block_cyclic_roundtrip(size, procs, k):
    dim = DimDist(BLOCK_CYCLIC, size, procs, k)
    g = np.arange(size)
    pc, lc = dim.map(g)
    np.testing.assert_array_equal(dim.unmap(pc, lc), g)
    for p in range(procs):
        assert dim.extent(p) == int((pc == p).sum())
