"""Regular array-section tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distrib.section import Section


class TestConstruction:
    def test_counts_and_size(self):
        s = Section((2, 3), (18, 29), (3, 2))
        assert s.counts == (6, 13)
        assert s.size == 78

    def test_empty_section(self):
        s = Section((5,), (5,), (1,))
        assert s.size == 0
        assert len(s.global_flat((10,))) == 0

    def test_from_slices(self):
        s = Section.from_slices((slice(1, None, 2), slice(None)), (9, 4))
        assert s.starts == (1, 0)
        assert s.stops == (9, 4)
        assert s.steps == (2, 1)

    def test_full(self):
        s = Section.full((4, 5))
        assert s.size == 20

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            Section((0,), (5,), (-1,))
        with pytest.raises(ValueError):
            Section.from_slices((slice(None, None, -1),), (5,))

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            Section((5,), (2,), (1,))
        with pytest.raises(ValueError):
            Section((-1,), (2,), (1,))

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Section((0, 0), (2,), (1, 1))


class TestLinearization:
    def test_global_flat_row_major(self):
        s = Section((0, 0), (2, 3), (1, 1))
        np.testing.assert_array_equal(
            s.global_flat((4, 4)), [0, 1, 2, 4, 5, 6]
        )

    def test_global_flat_matches_numpy_slicing(self):
        shape = (7, 9)
        g = np.arange(63).reshape(shape)
        s = Section.from_slices((slice(1, 7, 2), slice(0, 9, 3)), shape)
        np.testing.assert_array_equal(
            g.reshape(-1)[s.global_flat(shape)], g[1:7:2, 0:9:3].ravel()
        )

    def test_lin_to_multi_roundtrip(self):
        s = Section((2, 1), (10, 8), (2, 3))
        lin = np.arange(s.size)
        coords = s.lin_to_multi(lin)
        flat = np.ravel_multi_index(coords, (12, 9))
        np.testing.assert_array_equal(flat, s.global_flat((12, 9)))

    def test_1d(self):
        s = Section((3,), (12,), (4,))
        np.testing.assert_array_equal(s.dim_indices(0), [3, 7, 11])


class TestIntersectBlock:
    def test_full_overlap(self):
        s = Section((0,), (10,), (1,))
        sub = s.intersect_block((0,), (10,))
        assert sub == s

    def test_no_overlap_returns_none(self):
        s = Section((0,), (5,), (1,))
        assert s.intersect_block((5,), (10,)) is None

    def test_stride_alignment(self):
        s = Section((1,), (20,), (3,))  # 1,4,7,10,13,16,19
        sub = s.intersect_block((5,), (15,))
        np.testing.assert_array_equal(sub.dim_indices(0), [7, 10, 13])

    def test_2d(self):
        s = Section((0, 0), (8, 8), (2, 2))
        sub = s.intersect_block((3, 0), (8, 5))
        np.testing.assert_array_equal(sub.dim_indices(0), [4, 6])
        np.testing.assert_array_equal(sub.dim_indices(1), [0, 2, 4])

    def test_lin_offset_of_positions(self):
        shape = (10, 10)
        s = Section((0, 0), (10, 10), (2, 3))
        sub = s.intersect_block((4, 3), (10, 10))
        pos = s.lin_offset_of(sub)
        gf = s.global_flat(shape)
        np.testing.assert_array_equal(gf[pos], sub.global_flat(shape))

    def test_lin_offset_of_foreign_section(self):
        s = Section((0,), (10,), (2,))
        other = Section((1,), (5,), (2,))  # not on s's lattice
        assert s.lin_offset_of(other) is None


@given(
    start=st.integers(0, 5),
    count=st.integers(1, 10),
    step=st.integers(1, 4),
    blo=st.integers(0, 30),
    bwidth=st.integers(1, 30),
)
def test_property_intersection_equals_set_intersection(start, count, step, blo, bwidth):
    stop = start + count * step
    s = Section((start,), (stop,), (step,))
    sub = s.intersect_block((blo,), (blo + bwidth,))
    expected = [i for i in range(start, stop, step) if blo <= i < blo + bwidth]
    if sub is None:
        assert expected == []
    else:
        np.testing.assert_array_equal(sub.dim_indices(0), expected)


@given(
    data=st.data(),
    shape=st.tuples(st.integers(2, 12), st.integers(2, 12)),
)
def test_property_global_flat_equals_numpy(data, shape):
    slices = []
    for n in shape:
        lo = data.draw(st.integers(0, n - 1))
        hi = data.draw(st.integers(lo + 1, n))
        step = data.draw(st.integers(1, 3))
        slices.append(slice(lo, hi, step))
    s = Section.from_slices(tuple(slices), shape)
    g = np.arange(np.prod(shape)).reshape(shape)
    np.testing.assert_array_equal(
        g.reshape(-1)[s.global_flat(shape)], g[tuple(slices)].ravel()
    )
