"""Distribution base-protocol and descriptor-registry tests."""

import numpy as np
import pytest

from repro.distrib.base import DistDescriptor, Distribution, register_descriptor_kind
from repro.distrib.cartesian import CartesianDist
from repro.distrib.irregular import IrregularDist


class BrokenDist(Distribution):
    """Deliberately inconsistent distribution for check_valid tests."""

    def __init__(self, flavor: str):
        self.nprocs = 2
        self.size = 4
        self.flavor = flavor

    def owner_of_flat(self, gidx):
        gidx = np.asarray(gidx)
        if self.flavor == "bad-rank":
            return np.full_like(gidx, 5), np.zeros_like(gidx)
        if self.flavor == "bad-offsets":
            # two elements share offset 0 on rank 0
            return gidx % 2, np.zeros_like(gidx)
        # inconsistent local_to_global
        return gidx % 2, gidx // 2

    def local_size(self, rank):
        return 2

    def local_to_global(self, rank, offsets):
        if self.flavor == "bad-roundtrip":
            return np.zeros_like(np.asarray(offsets))
        return np.asarray(offsets) * 2 + rank

    def descriptor(self):  # pragma: no cover - unused
        raise NotImplementedError


class TestCheckValid:
    def test_detects_out_of_range_rank(self):
        with pytest.raises(AssertionError, match="rank out of range"):
            BrokenDist("bad-rank").check_valid()

    def test_detects_offset_collisions(self):
        with pytest.raises(AssertionError):
            BrokenDist("bad-offsets").check_valid()

    def test_detects_roundtrip_mismatch(self):
        with pytest.raises(AssertionError, match="local_to_global"):
            BrokenDist("bad-roundtrip").check_valid()

    def test_consistent_dist_passes(self):
        CartesianDist.block_nd((4, 4), 4).check_valid()


class TestDescriptorRegistry:
    def test_builtin_kinds_materialize(self):
        c = CartesianDist.block_nd((6, 6), 4)
        assert c.descriptor().materialize() == c
        i = IrregularDist(np.arange(8) % 3, 3)
        assert i.descriptor().materialize() == i

    def test_unknown_kind_lists_known(self):
        d = DistDescriptor(kind="quantum", payload=None, nbytes=0)
        with pytest.raises(ValueError, match="unknown descriptor kind"):
            d.materialize()

    def test_custom_kind_registration(self):
        calls = []

        def factory(payload):
            calls.append(payload)
            return CartesianDist.block_nd((2, 2), 1)

        register_descriptor_kind("custom-test-kind", factory)
        d = DistDescriptor(kind="custom-test-kind", payload="p", nbytes=8)
        out = d.materialize()
        assert calls == ["p"]
        assert isinstance(out, CartesianDist)

    def test_aligned_kind_registered_by_hpf_import(self):
        import repro.hpf  # noqa: F401
        from repro.hpf import AlignedDist, Template

        t = Template((10,), ("block",), 2)
        d = AlignedDist(t.dist, (10,), (0,), (0,), (1,))
        assert d.descriptor().materialize() == d

    def test_owned_global_helper(self):
        d = CartesianDist.block_nd((6,), 3)
        np.testing.assert_array_equal(d.owned_global(1), [2, 3])
