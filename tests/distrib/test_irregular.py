"""Irregular (owner-map) distribution tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distrib.irregular import IrregularDist


class TestConstruction:
    def test_simple(self):
        d = IrregularDist(np.array([0, 1, 0, 1, 2]), 3)
        assert d.local_size(0) == 2
        assert d.local_size(1) == 2
        assert d.local_size(2) == 1
        d.check_valid()

    def test_offsets_follow_global_order(self):
        d = IrregularDist(np.array([1, 0, 1, 0]), 2)
        # rank 0 owns globals 1, 3 -> offsets 0, 1
        ranks, offsets = d.owner_of_flat(np.array([1, 3]))
        np.testing.assert_array_equal(offsets, [0, 1])

    def test_owner_out_of_range(self):
        with pytest.raises(ValueError):
            IrregularDist(np.array([0, 5]), 2)
        with pytest.raises(ValueError):
            IrregularDist(np.array([-1]), 2)

    def test_2d_owner_map_rejected(self):
        with pytest.raises(ValueError):
            IrregularDist(np.zeros((2, 2), dtype=int), 2)

    def test_empty(self):
        d = IrregularDist(np.zeros(0, dtype=int), 2)
        assert d.size == 0
        assert d.local_size(0) == 0

    def test_from_local_lists(self):
        d = IrregularDist.from_local_lists(
            [np.array([3, 0]), np.array([1, 2])], size=4
        )
        ranks, _ = d.owner_of_flat(np.arange(4))
        np.testing.assert_array_equal(ranks, [0, 1, 1, 0])

    def test_from_local_lists_duplicate(self):
        with pytest.raises(ValueError, match="two owners"):
            IrregularDist.from_local_lists([np.array([0]), np.array([0])], size=1)

    def test_from_local_lists_missing(self):
        with pytest.raises(ValueError, match="no owner"):
            IrregularDist.from_local_lists([np.array([0])], size=2)


class TestLookups:
    @pytest.fixture
    def dist(self):
        rng = np.random.default_rng(11)
        return IrregularDist(rng.integers(0, 4, 50), 4)

    def test_local_to_global_roundtrip(self, dist):
        for r in range(dist.nprocs):
            g = dist.local_to_global(r, np.arange(dist.local_size(r)))
            ranks, offs = dist.owner_of_flat(g)
            assert (ranks == r).all()
            np.testing.assert_array_equal(offs, np.arange(dist.local_size(r)))

    def test_offset_within_owner(self, dist):
        g = np.arange(dist.size)
        _, offs = dist.owner_of_flat(g)
        np.testing.assert_array_equal(dist.offset_within_owner(g), offs)

    def test_owned_global_ascending(self, dist):
        for r in range(dist.nprocs):
            g = dist.owned_global(r)
            assert (np.diff(g) > 0).all()

    def test_descriptor_roundtrip(self, dist):
        d2 = dist.descriptor().materialize()
        assert d2 == dist

    def test_descriptor_is_data_sized(self, dist):
        # The paper's duplication-method caveat: the descriptor is as big
        # as the data itself.
        assert dist.descriptor().nbytes == dist.size * 8

    def test_equality(self, dist):
        same = IrregularDist(dist.owners.copy(), dist.nprocs)
        assert same == dist
        other = IrregularDist((dist.owners + 1) % dist.nprocs, dist.nprocs)
        assert other != dist


@given(
    owners=st.lists(st.integers(0, 3), min_size=1, max_size=80),
)
def test_property_irregular_is_partition(owners):
    d = IrregularDist(np.array(owners, dtype=np.int64), 4)
    d.check_valid()


@given(owners=st.lists(st.integers(0, 2), min_size=1, max_size=50))
def test_property_descriptor_roundtrip(owners):
    d = IrregularDist(np.array(owners, dtype=np.int64), 3)
    assert d.descriptor().materialize() == d
