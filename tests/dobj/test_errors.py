"""Error-path coverage for the distributed-object protocol.

The invariant under test throughout: *every* failure mode leaves the
control channel synchronized — after any error, the next request/reply
pairing still lines up, no rank hangs, and binding slots stay consistent
on both programs.
"""

import numpy as np
import pytest

from repro.blockparti import BlockPartiArray
from repro.core import SectionRegion, mc_new_set_of_regions
from repro.distrib.section import Section
from repro.dobj import ParallelObject, RemoteError, connect, serve_objects
from repro.hpf import HPFArray, hpf_sum
from repro.vmachine import ProgramSpec, run_programs

N = 24


class VectorService(ParallelObject):
    def __init__(self, comm):
        self.comm = comm
        self.v = HPFArray.distribute(comm, (N,), ("block",))

    def export_array(self, attr):
        if attr == "broken":
            raise RuntimeError("export failed on purpose")
        if attr != "v":
            raise KeyError(attr)
        return (
            "hpf", self.v,
            mc_new_set_of_regions(SectionRegion(Section.full((N,)))),
        )

    def total(self):
        return hpf_sum(self.v)

    def explode(self):
        raise RuntimeError("deliberate failure")


def run_scenario(client_fn, nclient=2, nserver=3):
    def server(ctx):
        return serve_objects(ctx, "client", {"vec": VectorService(ctx.comm)})

    return run_programs(
        [ProgramSpec("client", nclient, client_fn),
         ProgramSpec("server", nserver, server)]
    )


def full_sor():
    return mc_new_set_of_regions(SectionRegion(Section.full((N,))))


class TestOnewayErrors:
    def test_failed_oneway_lookup_does_not_desynchronize(self):
        """A oneway to a missing object/method must produce *no* reply —
        the next call's reply must pair with the next request."""

        def client(ctx):
            broker = connect(ctx, "server")
            vec = broker.object("vec")
            ghost = broker.object("ghost")
            ghost.call_oneway("total")        # unknown object: lookup fails
            vec.call_oneway("no_such")        # unknown method: dropped
            vec.call_oneway("explode")        # raising method: silenced
            t = vec.call("total")             # must still pair correctly
            broker.shutdown()
            return t

        res = run_scenario(client)
        assert all(v == 0.0 for v in res["client"].values)
        # Failures were counted (on every server rank — the request is
        # broadcast and each rank executes it), never replied.
        assert all(
            s.get("dobj_oneway_errors") == 2 for s in res["server"].stats
        )

    def test_oneway_success_not_counted_as_error(self):
        def client(ctx):
            broker = connect(ctx, "server")
            broker.object("vec").call_oneway("total")
            t = broker.object("vec").call("total")
            broker.shutdown()
            return t

        res = run_scenario(client)
        assert res["server"].total_stat("dobj_oneway_errors") == 0.0


class TestReplyOrdering:
    def test_reply_after_error_still_pairs(self):
        """Failed call -> error reply; the following requests must see
        their own replies, not a stale one."""

        def client(ctx):
            broker = connect(ctx, "server")
            vec = broker.object("vec")
            errors = []
            try:
                vec.call("no_such_method")
            except RemoteError as exc:
                errors.append(str(exc))
            try:
                broker.object("ghost").call("total")
            except RemoteError as exc:
                errors.append(str(exc))
            t = vec.call("total")
            broker.shutdown()
            return (tuple(errors), t)

        res = run_scenario(client)
        for errors, t in res["client"].values:
            assert len(errors) == 2
            assert "no remote method" in errors[0]
            assert "no object" in errors[1]
            assert t == 0.0

    def test_failing_method_then_success(self):
        def client(ctx):
            broker = connect(ctx, "server")
            vec = broker.object("vec")
            with pytest.raises(RemoteError, match="deliberate failure"):
                vec.call("explode")
            t = vec.call("total")
            broker.shutdown()
            return t

        res = run_scenario(client)
        assert all(v == 0.0 for v in res["client"].values)


class TestBindErrors:
    def test_failing_export_does_not_hang(self):
        """A bind whose export_array raises must refuse *before* either
        side enters the collective schedule build."""

        def client(ctx):
            broker = connect(ctx, "server")
            vec = broker.object("vec")
            local = BlockPartiArray.from_global(ctx.comm, np.zeros(N))
            outcomes = []
            for attr in ("broken", "missing"):
                try:
                    vec.bind(attr, "blockparti", local, full_sor())
                    outcomes.append("bound")
                except RemoteError as exc:
                    outcomes.append(type(exc).__name__)
            # The channel survived two refused binds; a real bind and a
            # transfer still work.
            b = vec.bind("v", "blockparti", local, full_sor())
            vec.push(b, local)
            t = vec.call("total")
            broker.shutdown()
            return (tuple(outcomes), t)

        res = run_scenario(client)
        for outcomes, t in res["client"].values:
            assert outcomes == ("RemoteError", "RemoteError")
            assert t == 0.0


class TestUnbindAndSlotReuse:
    def test_unbind_then_transfer_raises_locally(self):
        def client(ctx):
            broker = connect(ctx, "server")
            vec = broker.object("vec")
            local = BlockPartiArray.from_global(ctx.comm, np.zeros(N))
            b = vec.bind("v", "blockparti", local, full_sor())
            b.close()
            try:
                vec.push(b, local)
                outcome = "pushed"
            except RuntimeError as exc:
                outcome = "closed" if "closed binding" in str(exc) else "other"
            broker.shutdown()
            return outcome

        res = run_scenario(client)
        assert all(v == "closed" for v in res["client"].values)

    def test_slots_are_reused_lowest_first(self):
        def client(ctx):
            broker = connect(ctx, "server")
            vec = broker.object("vec")
            local = BlockPartiArray.from_global(ctx.comm, np.zeros(N))
            b0 = vec.bind("v", "blockparti", local, full_sor())
            b1 = vec.bind("v", "blockparti", local, full_sor())
            b2 = vec.bind("v", "blockparti", local, full_sor())
            ids = (b0.binding_id, b1.binding_id, b2.binding_id)
            broker.unbind(b1)
            b3 = vec.bind("v", "blockparti", local, full_sor())
            reused = b3.binding_id
            # The re-bound slot still moves data.
            vec.push(b3, local)
            broker.shutdown()
            return (ids, reused)

        res = run_scenario(client)
        for ids, reused in res["client"].values:
            assert ids == (0, 1, 2)
            assert reused == 1  # lowest freed slot, not a fresh one

    def test_double_close_is_idempotent(self):
        def client(ctx):
            broker = connect(ctx, "server")
            vec = broker.object("vec")
            local = BlockPartiArray.from_global(ctx.comm, np.zeros(N))
            b = vec.bind("v", "blockparti", local, full_sor())
            b.close()
            b.close()  # no second unbind request, no error
            broker.shutdown()
            return True

        res = run_scenario(client)
        assert all(res["client"].values)

    def test_unbind_unknown_slot_reports_error(self):
        def client(ctx):
            from repro.dobj.protocol import Request

            broker = connect(ctx, "server")
            try:
                broker._transact(Request(kind="unbind", binding=7))
                outcome = "ok"
            except RemoteError as exc:
                outcome = "error" if "not live" in str(exc) else "other"
            broker.shutdown()
            return outcome

        res = run_scenario(client)
        assert all(v == "error" for v in res["client"].values)
