"""Wire-protocol record tests for the distributed-object layer."""

import pytest

from repro.dobj.protocol import BoundArray, Reply, Request


class TestRequest:
    def test_defaults(self):
        r = Request(kind="shutdown")
        assert r.obj == "" and r.method == "" and r.args == ()
        assert r.binding == -1

    def test_nbytes_small_and_scales_with_args(self):
        import pickle

        base = Request(kind="call", obj="o", method="m")
        with_args = Request(kind="call", obj="o", method="m", args=(1, 2, 3))
        assert base.nbytes < 200
        # Real pickled argument size, not a per-arg flat rate.
        assert with_args.nbytes == base.nbytes + len(
            pickle.dumps((1, 2, 3), protocol=4)
        )
        big = Request(kind="call", obj="o", method="m", args=("x" * 4096,))
        assert big.nbytes > 4096
        # Cached: repeated reads return the same object-level answer.
        assert big.nbytes == big.nbytes

    def test_frozen(self):
        r = Request(kind="call")
        with pytest.raises(Exception):
            r.kind = "bind"  # type: ignore[misc]


class TestReply:
    def test_defaults(self):
        r = Reply(ok=True)
        assert r.value is None and r.error == "" and r.binding == -1

    def test_nbytes_constant(self):
        assert Reply(ok=True).nbytes == Reply(ok=False, error="x" * 100).nbytes

    def test_error_carrier(self):
        r = Reply(ok=False, error="KeyError: nope")
        assert not r.ok and "KeyError" in r.error


class TestBoundArray:
    def test_fields(self):
        b = BoundArray(binding_id=3, obj="vec", attr="v", exchange=None)
        assert b.binding_id == 3
        assert b.local_array is None
