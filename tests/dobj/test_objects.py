"""Distributed data parallel object layer tests (the paper's future work)."""

import numpy as np
import pytest

from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import IndexRegion, SectionRegion, mc_new_set_of_regions
from repro.distrib.section import Section
from repro.dobj import ParallelObject, RemoteError, connect, serve_objects
from repro.hpf import HPFArray, hpf_sum
from repro.vmachine import ProgramSpec, run_programs
from repro.vmachine.machine import SPMDError

N = 24
VALUES = np.random.default_rng(60).random(N)


class VectorService(ParallelObject):
    """Test object: an HPF vector with a few SPMD methods."""

    def __init__(self, comm):
        self.comm = comm
        self.v = HPFArray.distribute(comm, (N,), ("block",))

    def export_array(self, attr):
        if attr != "v":
            raise KeyError(attr)
        return (
            "hpf", self.v,
            mc_new_set_of_regions(SectionRegion(Section.full((N,)))),
        )

    def total(self):
        return hpf_sum(self.v)

    def scale(self, k):
        self.v.local *= k
        return k

    def explode(self):
        raise RuntimeError("deliberate server-side failure")

    def _private(self):  # pragma: no cover - never remotely callable
        return "secret"


def run_scenario(client_fn, nclient=2, nserver=3):
    def server(ctx):
        return serve_objects(ctx, "client", {"vec": VectorService(ctx.comm)})

    return run_programs(
        [ProgramSpec("client", nclient, client_fn),
         ProgramSpec("server", nserver, server)]
    )


def full_sor():
    return mc_new_set_of_regions(SectionRegion(Section.full((N,))))


class TestCalls:
    def test_call_returns_replicated_value(self):
        def client(ctx):
            broker = connect(ctx, "server")
            vec = broker.object("vec")
            t = vec.call("total")
            broker.shutdown()
            return t

        res = run_scenario(client)
        assert all(v == 0.0 for v in res["client"].values)

    def test_call_with_args(self):
        def client(ctx):
            broker = connect(ctx, "server")
            vec = broker.object("vec")
            got = vec.call("scale", 3.5)
            broker.shutdown()
            return got

        res = run_scenario(client)
        assert res["client"].values == [3.5, 3.5]

    def test_unknown_object(self):
        def client(ctx):
            broker = connect(ctx, "server")
            with pytest.raises(RemoteError, match="no object"):
                broker.object("nope").call("total")
            broker.shutdown()
            return True

        assert all(run_scenario(client)["client"].values)

    def test_unknown_method(self):
        def client(ctx):
            broker = connect(ctx, "server")
            with pytest.raises(RemoteError, match="no remote method"):
                broker.object("vec").call("missing")
            broker.shutdown()
            return True

        assert all(run_scenario(client)["client"].values)

    def test_private_methods_hidden(self):
        def client(ctx):
            broker = connect(ctx, "server")
            with pytest.raises(RemoteError, match="no remote method"):
                broker.object("vec").call("_private")
            broker.shutdown()
            return True

        assert all(run_scenario(client)["client"].values)

    def test_server_side_exception_propagates(self):
        def client(ctx):
            broker = connect(ctx, "server")
            with pytest.raises(RemoteError, match="deliberate"):
                broker.object("vec").call("explode")
            # The server loop survives the failed call.
            assert broker.object("vec").call("total") == 0.0
            broker.shutdown()
            return True

        assert all(run_scenario(client)["client"].values)


class TestBulkData:
    def test_push_call_pull_roundtrip(self):
        def client(ctx):
            comm = ctx.comm
            broker = connect(ctx, "server")
            vec = broker.object("vec")
            local = BlockPartiArray.from_global(comm, VALUES)
            binding = vec.bind("v", "blockparti", local, full_sor())
            vec.push(binding)
            total = vec.call("total")
            vec.call("scale", 2.0)
            out = BlockPartiArray.zeros(comm, (N,))
            vec.pull(binding, out)
            got = out.gather_global()
            broker.shutdown()
            if comm.rank == 0:
                assert np.isclose(total, VALUES.sum())
                np.testing.assert_allclose(got, 2.0 * VALUES)
            return True

        assert all(run_scenario(client)["client"].values)

    def test_bind_from_chaos_client(self):
        """The client's library need not match the server's."""
        owners = np.random.default_rng(61).integers(0, 2, N)

        def client(ctx):
            comm = ctx.comm
            broker = connect(ctx, "server")
            vec = broker.object("vec")
            local = ChaosArray.from_global(comm, VALUES, owners % comm.size)
            binding = vec.bind(
                "v", "chaos", local,
                mc_new_set_of_regions(IndexRegion(np.arange(N))),
            )
            vec.push(binding)
            total = vec.call("total")
            broker.shutdown()
            if comm.rank == 0:
                assert np.isclose(total, VALUES.sum())
            return True

        assert all(run_scenario(client)["client"].values)

    def test_bind_unknown_attr_fails_fast(self):
        """A refused bind raises cleanly on the client — neither side
        enters the collective schedule build (no hang, server survives)."""

        def client(ctx):
            broker = connect(ctx, "server")
            vec = broker.object("vec")
            local = BlockPartiArray.zeros(ctx.comm, (N,))
            with pytest.raises(RemoteError, match="KeyError"):
                vec.bind("w", "blockparti", local, full_sor())
            assert vec.call("total") == 0.0  # server still responsive
            broker.shutdown()
            return True

        assert all(run_scenario(client)["client"].values)

    def test_multiple_bindings(self):
        def client(ctx):
            comm = ctx.comm
            broker = connect(ctx, "server")
            vec = broker.object("vec")
            a = BlockPartiArray.from_global(comm, VALUES)
            b = BlockPartiArray.zeros(comm, (N,))
            bind_a = vec.bind("v", "blockparti", a, full_sor())
            bind_b = vec.bind("v", "blockparti", b, full_sor())
            vec.push(bind_a)
            vec.pull(bind_b)
            got = b.gather_global()
            broker.shutdown()
            if comm.rank == 0:
                np.testing.assert_allclose(got, VALUES)
            return True

        assert all(run_scenario(client)["client"].values)

    def test_served_request_count(self):
        def client(ctx):
            broker = connect(ctx, "server")
            vec = broker.object("vec")
            vec.call("total")
            vec.call("total")
            broker.shutdown()
            return True

        res = run_scenario(client)
        # 2 calls; the terminating shutdown is not served work
        assert res["server"].values[0] == 2


class TestOneway:
    def test_oneway_executes_without_reply(self):
        def client(ctx):
            broker = connect(ctx, "server")
            vec = broker.object("vec")
            vec.call_oneway("scale", 2.0)
            vec.call_oneway("scale", 3.0)
            # A synchronous call afterwards observes both effects (the
            # control channel is FIFO).
            local = BlockPartiArray.from_global(ctx.comm, VALUES)
            binding = vec.bind("v", "blockparti", local, full_sor())
            vec.push(binding)
            vec.call_oneway("scale", 10.0)
            total = vec.call("total")
            broker.shutdown()
            if ctx.comm.rank == 0:
                assert np.isclose(total, 10.0 * VALUES.sum())
            return True

        assert all(run_scenario(client)["client"].values)

    def test_oneway_unknown_method_is_dropped(self):
        def client(ctx):
            broker = connect(ctx, "server")
            vec = broker.object("vec")
            vec.call_oneway("nonexistent")  # silently ignored
            assert vec.call("total") == 0.0  # server alive
            broker.shutdown()
            return True

        assert all(run_scenario(client)["client"].values)

    def test_oneway_is_cheap(self):
        def client(ctx):
            broker = connect(ctx, "server")
            vec = broker.object("vec")
            t0 = ctx.comm.process.clock
            vec.call_oneway("scale", 1.0)
            oneway_cost = ctx.comm.process.clock - t0
            t0 = ctx.comm.process.clock
            vec.call("scale", 1.0)
            twoway_cost = ctx.comm.process.clock - t0
            broker.shutdown()
            return oneway_cost < twoway_cost / 2

        assert all(run_scenario(client, nclient=1)["client"].values)


class ChaosService(ParallelObject):
    """Server object whose exported array is irregularly distributed."""

    def __init__(self, comm):
        self.comm = comm
        owners = (np.arange(N) * 7) % comm.size
        self.field = ChaosArray.zeros(comm, owners)

    def export_array(self, attr):
        if attr != "field":
            raise KeyError(attr)
        return (
            "chaos", self.field,
            mc_new_set_of_regions(IndexRegion(np.arange(N))),
        )

    def norm(self):
        local = float(np.abs(self.field.local).sum())
        return self.comm.allreduce(local, lambda a, b: a + b)


class TestIrregularServerExport:
    def test_bind_to_chaos_export(self):
        """The server's side of the binding dereferences a translation
        table; the client never learns the distribution is irregular."""

        def server(ctx):
            return serve_objects(
                ctx, "client", {"sim": ChaosService(ctx.comm)}
            )

        def client(ctx):
            comm = ctx.comm
            broker = connect(ctx, "server")
            sim = broker.object("sim")
            local = BlockPartiArray.from_global(comm, VALUES)
            binding = sim.bind("field", "blockparti", local, full_sor())
            sim.push(binding)
            total = sim.call("norm")
            out = BlockPartiArray.zeros(comm, (N,))
            sim.pull(binding, out)
            got = out.gather_global()
            broker.shutdown()
            if comm.rank == 0:
                assert np.isclose(total, np.abs(VALUES).sum())
                np.testing.assert_allclose(got, VALUES)
            return True

        res = run_programs(
            [ProgramSpec("client", 2, client), ProgramSpec("server", 3, server)]
        )
        assert all(res["client"].values)
