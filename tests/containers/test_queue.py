"""Distributed FIFO queue: reservation/fill pushes, drains, overflow,
determinism, and fault-tolerant operation."""

import numpy as np
import pytest

from repro.containers import DistQueue
from repro.containers.queue import QueueOverflow
from repro.vmachine import VirtualMachine
from repro.vmachine.faults import FaultPlan, FaultRates
from repro.vmachine.machine import SPMDError


def run(nprocs, fn, *, faults=None, recv_timeout_s=30.0, **kwargs):
    vm = VirtualMachine(nprocs, faults=faults, recv_timeout_s=recv_timeout_s)
    return vm.run(fn, **kwargs)


class TestPushPop:
    def test_all_to_one_push_then_drain(self):
        def spmd(comm):
            q = DistQueue(comm, capacity=32, record_width=2)
            q.push_all([(0, [float(comm.rank), float(i)])
                        for i in range(3)])
            return [tuple(r) for r in q.pop_all()]

        res = run(4, spmd)
        got = res.values[0]
        assert len(got) == 12
        assert sorted(got) == sorted(
            (float(r), float(i)) for r in range(4) for i in range(3))
        # One producer's records stay in push order relative to each other.
        for r in range(4):
            mine = [rec for rec in got if rec[0] == float(r)]
            assert mine == [(float(r), float(i)) for i in range(3)]
        for other in res.values[1:]:
            assert other == []

    def test_all_to_all_scatter(self):
        def spmd(comm):
            q = DistQueue(comm, capacity=16)
            q.push_all([(host, [float(comm.rank * 10 + host)])
                        for host in range(comm.size)])
            return sorted(float(r[0]) for r in q.pop_all())

        res = run(4, spmd)
        for host, got in enumerate(res.values):
            assert got == sorted(float(r * 10 + host) for r in range(4))

    def test_drain_resets_queue(self):
        def spmd(comm):
            q = DistQueue(comm, capacity=4)
            q.push_all([(0, [1.0])] if comm.rank == 1 else [])
            first = q.pop_all()
            q.push_all([(0, [2.0])] if comm.rank == 1 else [])
            second = q.pop_all()
            return len(first), len(second), q.local_depth()

        res = run(2, spmd)
        assert res.values[0] == (1, 1, 0)
        assert res.values[1] == (0, 0, 0)

    def test_empty_collective_push_pop(self):
        def spmd(comm):
            q = DistQueue(comm, capacity=4)
            q.push_all([])
            return q.pop_all()

        res = run(3, spmd)
        assert all(v == [] for v in res.values)


class TestLimits:
    def test_overflow_raises(self):
        def spmd(comm):
            q = DistQueue(comm, capacity=3)
            # 2 ranks * 2 records = 4 > 3 at host 0.
            q.push_all([(0, [1.0]), (0, [2.0])])

        with pytest.raises(SPMDError):
            run(2, spmd)

    def test_capacity_validation(self):
        def spmd(comm):
            with pytest.raises(ValueError):
                DistQueue(comm, capacity=0)
            return True

        # Window construction is collective and the ValueError fires
        # before it, so every rank raises symmetrically.
        assert all(run(2, spmd).values)


class TestDeterminismAndFaults:
    def test_reservation_order_is_deterministic(self):
        def spmd(comm):
            q = DistQueue(comm, capacity=64)
            q.push_all([(0, [float(comm.rank * 100 + i)])
                        for i in range(4)])
            drained = q.pop_all()
            return [float(r[0]) for r in drained], comm.process.clock

        a = run(4, spmd)
        b = run(4, spmd)
        assert a.values == b.values
        assert a.clocks == b.clocks

    def test_reliable_queue_survives_rma_chaos(self):
        plan = FaultPlan(
            seed=31,
            rates=FaultRates(drop=0.2, dup=0.2, reorder=0.2),
            classes=("rma",),
        )

        def spmd(comm):
            q = DistQueue(comm, capacity=32, reliable=True)
            q.push_all([((comm.rank + 1) % comm.size, [float(comm.rank)])
                        for _ in range(3)])
            got = sorted(float(r[0]) for r in q.pop_all())
            return got, dict(comm.process.stats)

        res = run(4, spmd, faults=plan)
        dropped = 0
        for host, (got, stats) in enumerate(res.values):
            src = (host - 1) % 4
            assert got == [float(src)] * 3
            dropped += stats.get("faults_drop", 0)
        assert dropped > 0
