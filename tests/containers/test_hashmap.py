"""Distributed hash map: insert/accumulate/find semantics, duplicate
combining, probing under collisions, determinism, and fault tolerance."""

import numpy as np
import pytest

from repro.containers import DistHashMap
from repro.vmachine import VirtualMachine
from repro.vmachine.faults import FaultPlan, FaultRates
from repro.vmachine.machine import SPMDError


def run(nprocs, fn, *, faults=None, recv_timeout_s=30.0, **kwargs):
    vm = VirtualMachine(nprocs, faults=faults, recv_timeout_s=recv_timeout_s)
    return vm.run(fn, **kwargs)


class TestInsertFind:
    def test_insert_then_find_roundtrip(self):
        def spmd(comm):
            m = DistHashMap(comm, capacity_per_rank=16, value_width=2)
            mine = [(comm.rank * 10 + i, [float(comm.rank), float(i)])
                    for i in range(4)]
            m.insert_all(mine)
            # Every rank looks up every key anyone inserted.
            all_keys = [r * 10 + i for r in range(comm.size)
                        for i in range(4)]
            found = m.find_all(all_keys)
            return found

        res = run(4, spmd)
        for found in res.values:
            for r in range(4):
                for i in range(4):
                    np.testing.assert_array_equal(
                        found[r * 10 + i], [float(r), float(i)])

    def test_find_missing_returns_none(self):
        def spmd(comm):
            m = DistHashMap(comm, capacity_per_rank=8)
            m.insert_all([(comm.rank, [1.0])])
            found = m.find_all([comm.rank, 999 + comm.rank])
            return found

        res = run(2, spmd)
        for r, found in enumerate(res.values):
            assert found[999 + r] is None
            np.testing.assert_array_equal(found[r], [1.0])

    def test_insert_overwrites(self):
        def spmd(comm):
            m = DistHashMap(comm, capacity_per_rank=8)
            m.insert_all([(5, [float(comm.rank + 1)])])
            m.insert_all([] if comm.rank else [(5, [42.0])])
            return m.find_all([5])[5]

        res = run(2, spmd)
        for v in res.values:
            np.testing.assert_array_equal(v, [42.0])

    def test_global_size(self):
        def spmd(comm):
            m = DistHashMap(comm, capacity_per_rank=16)
            m.insert_all([(comm.rank * 2, [0.0]), (comm.rank * 2 + 1, [0.0])])
            return m.size(), m.local_size()

        res = run(4, spmd)
        assert all(v[0] == 8 for v in res.values)
        assert sum(v[1] for v in res.values) == 8

    def test_rejects_negative_keys_and_bad_shapes(self):
        def spmd(comm):
            m = DistHashMap(comm, capacity_per_rank=4, value_width=2)
            with pytest.raises(ValueError):
                m._write_all([(-1, [0.0, 0.0])], op="sum")
            with pytest.raises(ValueError):
                np.asarray([1.0], dtype=np.float64).reshape(2)
            return True

        assert all(run(2, spmd).values)


class TestAccumulate:
    def test_duplicates_within_and_across_ranks_sum(self):
        def spmd(comm):
            m = DistHashMap(comm, capacity_per_rank=16)
            # Same key from every rank, twice per rank.
            m.accumulate_all([(7, [1.0]), (7, [2.0]),
                              (comm.rank + 100, [0.5])])
            return m.find_all([7])[7]

        res = run(4, spmd)
        for v in res.values:
            np.testing.assert_array_equal(v, [12.0])  # 4 ranks * (1+2)

    def test_accumulate_into_existing_key(self):
        def spmd(comm):
            m = DistHashMap(comm, capacity_per_rank=8, value_width=3)
            m.insert_all([(3, [1.0, 1.0, 1.0])] if comm.rank == 0 else [])
            m.accumulate_all([(3, [0.0, 1.0, 2.0])])
            return m.find_all([3])[3]

        res = run(2, spmd)
        np.testing.assert_array_equal(res.values[0], [1.0, 3.0, 5.0])

    def test_local_items_partition_entries(self):
        def spmd(comm):
            m = DistHashMap(comm, capacity_per_rank=16)
            if comm.rank == 0:
                m.accumulate_all([(k, [float(k)]) for k in range(10)])
            else:
                m.accumulate_all([])
            return m.local_items()

        res = run(4, spmd)
        merged = {}
        for items in res.values:
            for key, vec in items:
                assert key not in merged  # ownership is disjoint
                merged[key] = vec
        assert sorted(merged) == list(range(10))
        for k, v in merged.items():
            np.testing.assert_array_equal(v, [float(k)])


class TestCollisionsAndLimits:
    def test_probing_resolves_collisions_in_tiny_table(self):
        # Capacity 8 with 8 keys: every slot fills, probing must resolve.
        def spmd(comm):
            m = DistHashMap(comm, capacity_per_rank=4)
            keys = list(range(8))
            m.insert_all([(k, [float(k * k)]) for k in keys]
                         if comm.rank == 0 else [])
            return m.find_all(keys)

        res = run(2, spmd)
        for found in res.values:
            for k in range(8):
                np.testing.assert_array_equal(found[k], [float(k * k)])

    def test_overfull_table_raises(self):
        def spmd(comm):
            m = DistHashMap(comm, capacity_per_rank=2)
            m.insert_all([(k, [0.0]) for k in range(5)]
                         if comm.rank == 0 else [])

        with pytest.raises(SPMDError):
            run(2, spmd)


class TestDeterminismAndFaults:
    def test_same_seed_same_clocks_and_content(self):
        def spmd(comm):
            rng = np.random.default_rng(comm.rank)
            m = DistHashMap(comm, capacity_per_rank=32)
            m.accumulate_all([(int(k), [rng.standard_normal()])
                              for k in rng.integers(0, 50, size=12)])
            items = sorted((k, v.tobytes()) for k, v in m.local_items())
            return items, comm.process.clock

        a = run(4, spmd)
        b = run(4, spmd)
        assert a.values == b.values
        assert a.clocks == b.clocks

    def test_reliable_map_survives_rma_chaos(self):
        plan = FaultPlan(
            seed=23,
            rates=FaultRates(drop=0.15, dup=0.15, reorder=0.15),
            classes=("rma",),
        )

        def spmd(comm):
            m = DistHashMap(comm, capacity_per_rank=16, reliable=True)
            m.accumulate_all([(k, [1.0]) for k in range(comm.rank,
                                                        comm.rank + 4)])
            found = m.find_all(list(range(8)))
            return found, dict(comm.process.stats)

        res = run(4, spmd, faults=plan)
        # keys 0..6 overlap across ranks; expected multiplicity:
        expect = {k: sum(1 for r in range(4) if r <= k <= r + 3)
                  for k in range(8)}
        dropped = 0
        for found, stats in res.values:
            for k, n in expect.items():
                if n == 0:
                    assert found[k] is None
                else:
                    np.testing.assert_array_equal(found[k], [float(n)])
            dropped += stats.get("faults_drop", 0)
        assert dropped > 0
