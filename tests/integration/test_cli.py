"""Command-line interface tests (python -m repro ...)."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "blockparti" in out and "chaos" in out
        assert "IBM-SP2" in out

    def test_demo(self, capsys):
        assert main(["demo", "--procs", "2", "--size", "8"]) == 0
        out = capsys.readouterr().out
        assert "verified element-exact" in out
        assert "modelled elapsed" in out

    def test_matvec(self, capsys):
        assert main([
            "matvec", "--client", "1", "--server", "2",
            "--vectors", "1", "--size", "32",
        ]) == 0
        out = capsys.readouterr().out
        assert "send matrix" in out
        assert "speedup" in out

    def test_coupled(self, capsys):
        assert main([
            "coupled", "--procs", "2", "--size", "12", "--steps", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "inspector" in out and "remap schedule" in out

    def test_coupled_rejects_bad_backend(self):
        with pytest.raises(SystemExit):
            main(["coupled", "--remap", "mpi"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
