"""Benchmark results recording and report rendering."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPORT = Path(__file__).resolve().parents[2] / "benchmarks" / "report.py"


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "series.json").write_text(json.dumps({
        "experiment": "series",
        "title": "Series-style record",
        "data": {
            "procs": [2, 4, 8],
            "sched_ms": [100.0, 50.0, 25.0],
            "nested": {"copy_ms": [10.0, 5.0, 2.5]},
        },
    }))
    (tmp_path / "grid.json").write_text(json.dumps({
        "experiment": "grid",
        "title": "Grid-style record",
        "data": {
            "grid": [2, 4],
            "sched_ms": {"2": {"2": 1.0, "4": 2.0}, "4": {"2": 3.0, "4": 4.0}},
        },
    }))
    return tmp_path


def run_report(results_dir, *args):
    return subprocess.run(
        [sys.executable, str(REPORT), "--dir", str(results_dir), *args],
        capture_output=True, text=True, timeout=60,
    )


class TestReport:
    def test_series_table(self, results_dir):
        out = run_report(results_dir, "series")
        assert out.returncode == 0
        assert "| series | 2 | 4 | 8 |" in out.stdout
        assert "| sched_ms | 100 | 50 | 25 |" in out.stdout
        assert "| nested.copy_ms |" in out.stdout

    def test_grid_table(self, results_dir):
        out = run_report(results_dir, "grid")
        assert out.returncode == 0
        assert "Grid-style record" in out.stdout
        assert "| 2 | 1.00 | 2.00 |" in out.stdout

    def test_all_records(self, results_dir):
        out = run_report(results_dir)
        assert out.returncode == 0
        assert "Series-style" in out.stdout and "Grid-style" in out.stdout

    def test_missing_record_reported(self, results_dir):
        out = run_report(results_dir, "nope")
        assert out.returncode == 1
        assert "missing" in out.stdout

    def test_empty_dir(self, tmp_path):
        out = run_report(tmp_path / "absent")
        assert out.returncode == 1
        assert "no results yet" in out.stdout


class TestRecordedResultsInRepo:
    """The repo ships with recorded results from the last bench run."""

    RESULTS = REPORT.parent / "results"

    def test_every_experiment_recorded(self):
        if not self.RESULTS.exists():
            pytest.skip("benchmarks not yet run in this checkout")
        stems = {p.stem for p in self.RESULTS.glob("*.json")}
        for required in ("table1", "table2", "table3", "table4", "table5",
                         "fig13", "fig14", "fig15"):
            assert required in stems

    def test_records_well_formed(self):
        if not self.RESULTS.exists():
            pytest.skip("benchmarks not yet run in this checkout")
        for path in self.RESULTS.glob("*.json"):
            record = json.loads(path.read_text())
            assert "experiment" in record and "data" in record
