"""Wire-size accounting during schedule construction.

The paper's §5.1 practicality arguments are byte-count arguments: regular
schedule pieces are tiny on the wire (strided-block descriptors), while
irregular ones are data-sized (pointwise lists), and the duplication
method's descriptor exchange ships a whole translation table.  These tests
pin those properties on the actual transport counters.
"""

import numpy as np
import pytest

from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import (
    IndexRegion,
    ScheduleMethod,
    SectionRegion,
    mc_compute_schedule,
    mc_new_set_of_regions,
)
from repro.distrib.section import Section
from repro.hpf import HPFArray
from repro.vmachine import ProgramSpec, run_programs

from helpers import run_spmd

N = 64  # 4096 elements


def _build_bytes(comm, dst_kind, method=ScheduleMethod.COOPERATION):
    A = BlockPartiArray.zeros(comm, (N, N))
    src = mc_new_set_of_regions(SectionRegion(Section.full((N, N))))
    if dst_kind == "regular":
        B = HPFArray.distribute(comm, (N, N), ("block", "block"))
        dst = mc_new_set_of_regions(SectionRegion(Section.full((N, N))))
        lib = "hpf"
    else:
        B = ChaosArray.zeros(
            comm, np.random.default_rng(0).permutation(N * N) % comm.size
        )
        dst = mc_new_set_of_regions(
            IndexRegion(np.random.default_rng(1).permutation(N * N))
        )
        lib = "chaos"
    comm.barrier()
    b0 = comm.process.stats["bytes_sent"]
    mc_compute_schedule(comm, "blockparti", A, src, lib, B, dst, method)
    return comm.process.stats["bytes_sent"] - b0


class TestScheduleWireSizes:
    def test_regular_regular_build_ships_descriptors_not_elements(self):
        def spmd(comm):
            return _build_bytes(comm, "regular")

        total = sum(run_spmd(4, spmd).values)
        # 4096 elements x 8 B = 32 KB of raw offsets; run-encoding keeps
        # the whole build's traffic well under that.
        assert total < 16_000

    def test_irregular_build_is_data_sized(self):
        def spmd(comm):
            return _build_bytes(comm, "irregular")

        total = sum(run_spmd(4, spmd).values)
        # Pointwise offsets barely compress: the exchange carries element
        # lists comparable to the data itself.
        assert total > 4096 * 8

    def test_duplication_ships_nothing_in_one_program(self):
        """Table 5's discussion: in-program duplication needs no
        communication at all (beyond the conformance check)."""

        def spmd(comm):
            return _build_bytes(comm, "regular", ScheduleMethod.DUPLICATION)

        total = sum(run_spmd(4, spmd).values)
        assert total == 0

    def test_cross_program_duplication_ships_the_table(self):
        """§5.2: duplication across programs would transfer a Chaos
        translation table — the transport really pays those bytes."""
        owners = np.random.default_rng(2).integers(0, 2, 4096)
        perm = np.random.default_rng(3).permutation(4096)

        def src_prog(ctx):
            comm = ctx.comm
            A = BlockPartiArray.zeros(comm, (N, N))
            from repro.core.coupling import coupled_universe

            uni = coupled_universe(ctx, "irr", "src")
            b0 = comm.process.stats["bytes_received"]
            mc_compute_schedule(
                uni,
                "blockparti", A,
                mc_new_set_of_regions(SectionRegion(Section.full((N, N)))),
                "chaos", None, mc_new_set_of_regions(IndexRegion(perm)),
                ScheduleMethod.DUPLICATION,
            )
            return comm.process.stats["bytes_received"] - b0

        def dst_prog(ctx):
            comm = ctx.comm
            B = ChaosArray.zeros(comm, owners % comm.size)
            from repro.core.coupling import coupled_universe

            uni = coupled_universe(ctx, "reg", "dst")
            mc_compute_schedule(
                uni,
                "blockparti", None,
                mc_new_set_of_regions(SectionRegion(Section.full((N, N)))),
                "chaos", B, mc_new_set_of_regions(IndexRegion(perm)),
                ScheduleMethod.DUPLICATION,
            )
            return None

        res = run_programs(
            [ProgramSpec("reg", 2, src_prog), ProgramSpec("irr", 2, dst_prog)]
        )
        received = sum(res["reg"].values)
        # The regular side must have received the 4096-entry owner map
        # (~32 KB) to dereference the destination locally.
        assert received > 4096 * 8
