"""Every example script must run clean end-to-end (anti-rot smoke tests).

Each example self-verifies its numerics (asserting against oracles), so a
zero exit status is a meaningful check, not just "didn't crash".
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", "quickstart OK"),
    ("coupled_mesh.py", "coupled mesh example OK"),
    ("two_program_coupling.py", "two-program coupling OK"),
    ("client_server_matvec.py", "client/server matvec example OK"),
    ("pcxx_exchange.py", "pcxx exchange example OK"),
    ("image_server.py", "image server example OK"),
    ("shipboard_fire.py", "shipboard fire example OK"),
    ("adaptive_remesh.py", "adaptive remesh example OK"),
    ("multiblock_cfd.py", "multiblock CFD example OK"),
]


@pytest.mark.parametrize("script,marker", CASES, ids=[c[0] for c in CASES])
def test_example_runs_and_verifies(script, marker):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n--- stdout ---\n{result.stdout[-2000:]}\n"
        f"--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert marker in result.stdout, (
        f"{script} did not print its success marker {marker!r}; got:\n"
        f"{result.stdout[-1000:]}"
    )
