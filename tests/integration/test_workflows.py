"""End-to-end workflow stress tests combining many features at once."""

import numpy as np
import pytest

from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray, remap, rcb_owners
from repro.core import (
    IndexRegion,
    MaskRegion,
    ScheduleCache,
    SectionRegion,
    mc_copy,
    mc_new_set_of_regions,
    schedule_stats,
    validate_schedule,
)
from repro.distrib.section import Section
from repro.hpf import HPFArray, cshift, hpf_sum
from repro.pcxx import DistributedCollection
from repro.util import gather_canonical
from repro.vmachine import VirtualMachine

from helpers import run_spmd

N = 64


def test_four_library_pipeline_with_cache_and_validation():
    """Data flows parti -> hpf -> chaos -> pcxx and back to a canonical
    buffer; every schedule validated; all via one cache."""
    values = np.random.default_rng(100).random((8, 8))
    perm = np.random.default_rng(101).permutation(N)

    def spmd(comm):
        cache = ScheduleCache(comm)
        parti = BlockPartiArray.from_global(comm, values)
        hpf = HPFArray.distribute(comm, (8, 8), ("cyclic", "block"))
        chaos = ChaosArray.zeros(comm, perm % comm.size)
        coll = DistributedCollection.create(comm, N)

        full2d = mc_new_set_of_regions(SectionRegion(Section.full((8, 8))))
        ident = mc_new_set_of_regions(IndexRegion(np.arange(N)))
        permuted = mc_new_set_of_regions(IndexRegion(perm))

        s1 = cache.get_or_build("blockparti", parti, full2d, "hpf", hpf, full2d)
        validate_schedule(comm, s1, parti, hpf)
        mc_copy(comm, s1, parti, hpf)

        s2 = cache.get_or_build("hpf", hpf, full2d, "chaos", chaos, permuted)
        validate_schedule(comm, s2, hpf, chaos)
        mc_copy(comm, s2, hpf, chaos)

        s3 = cache.get_or_build("chaos", chaos, permuted, "pcxx", coll, ident)
        validate_schedule(comm, s3, chaos, coll)
        mc_copy(comm, s3, chaos, coll)

        # Round 2 through the same pipeline must be all cache hits.
        for a, sa, b, sb, la, lb in (
            (parti, full2d, hpf, full2d, "blockparti", "hpf"),
            (hpf, full2d, chaos, permuted, "hpf", "chaos"),
            (chaos, permuted, coll, ident, "chaos", "pcxx"),
        ):
            sched = cache.get_or_build(la, a, sa, lb, b, sb)
            mc_copy(comm, sched, a, b)
        assert cache.hits == 3 and cache.misses == 3

        buf = gather_canonical(comm, "pcxx", coll, ident)
        stats = schedule_stats(comm, s2)
        assert stats.n_elements == N
        return buf

    got = run_spmd(4, spmd).values[0]
    np.testing.assert_allclose(got, values.ravel())


def test_mixed_region_types_one_schedule():
    """A SetOfRegions mixing sections, masks and index lists on the source
    against an index destination — linearization concatenation across
    heterogeneous region types."""
    values = np.random.default_rng(102).random((8, 8))
    mask = values > 0.7

    def spmd(comm):
        from repro.core import SetOfRegions

        A = BlockPartiArray.from_global(comm, values)
        src = SetOfRegions(
            [
                SectionRegion(Section((0, 0), (2, 8), (1, 1))),  # 16 elems
                MaskRegion(mask),
                IndexRegion(np.array([63, 62, 61])),
            ]
        )
        n = src.size
        B = ChaosArray.zeros(comm, np.arange(n) % comm.size)
        from repro.core import mc_compute_schedule

        sched = mc_compute_schedule(
            comm, "blockparti", A, src,
            "chaos", B, mc_new_set_of_regions(IndexRegion(np.arange(n))),
        )
        validate_schedule(comm, sched, A, B)
        mc_copy(comm, sched, A, B)
        return B.gather_global()

    got = run_spmd(3, spmd).values[0]
    expected = np.concatenate(
        [values[0:2].ravel(), values[mask], values.ravel()[[63, 62, 61]]]
    )
    np.testing.assert_allclose(got, expected)


def test_adaptive_pipeline_remap_then_interop():
    """Redistribute an irregular array, then copy out of the *new*
    distribution — schedules must track the remapped translation table."""
    coords = np.random.default_rng(103).random((N, 2))
    values = np.random.default_rng(104).random(N)

    def spmd(comm):
        a = ChaosArray.from_global(comm, values, np.arange(N) % comm.size)
        a2 = remap(a, rcb_owners(coords, comm.size))
        out = BlockPartiArray.zeros(comm, (8, 8))
        from repro.core import mc_compute_schedule

        sched = mc_compute_schedule(
            comm,
            "chaos", a2, mc_new_set_of_regions(IndexRegion(np.arange(N))),
            "blockparti", out,
            mc_new_set_of_regions(SectionRegion(Section.full((8, 8)))),
        )
        mc_copy(comm, sched, a2, out)
        return out.gather_global()

    got = run_spmd(4, spmd).values[0]
    np.testing.assert_allclose(got, values.reshape(8, 8))


def test_hpf_compute_then_export():
    """HPF-native computation (cshift + reduction) interleaved with
    Meta-Chaos export of the intermediate state."""
    values = np.random.default_rng(105).random(N)

    def spmd(comm):
        x = HPFArray.from_global(comm, values, ("block",))
        shifted = cshift(x, 3)
        total = hpf_sum(shifted)
        buf = gather_canonical(
            comm, "hpf", shifted,
            mc_new_set_of_regions(SectionRegion(Section.full((N,)))),
        )
        return total, buf

    total, buf = run_spmd(4, spmd).values[0]
    assert np.isclose(total, values.sum())
    np.testing.assert_allclose(buf, np.roll(values, -3))
