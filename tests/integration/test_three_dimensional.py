"""Three-dimensional arrays through the whole stack.

The evaluation workloads are 1-D/2-D, but nothing in the design is
dimension-bound; these tests keep the n-D paths honest.
"""

import numpy as np
import pytest

from repro.blockparti import BlockPartiArray, build_copy_schedule, parti_region
from repro.chaos import ChaosArray
from repro.core import (
    IndexRegion,
    ScheduleMethod,
    SectionRegion,
    mc_compute_schedule,
    mc_copy,
    mc_new_set_of_regions,
)
from repro.distrib.cartesian import CartesianDist
from repro.distrib.section import Section
from repro.hpf import HPFArray
from repro.util import gather_canonical

from helpers import both_methods, run_spmd

SHAPE = (6, 5, 4)
G = np.random.default_rng(120).random(SHAPE)


class TestDistributions3D:
    def test_block_nd_partition(self):
        for p in (1, 2, 4, 8, 12):
            CartesianDist.block_nd(SHAPE, p).check_valid()

    def test_mixed_kinds(self):
        from repro.distrib.cartesian import BLOCK, CYCLIC, COLLAPSED, DimDist

        d = CartesianDist(
            (DimDist(BLOCK, 6, 2), DimDist(CYCLIC, 5, 3), DimDist(COLLAPSED, 4, 1))
        )
        d.check_valid()

    def test_section_map_3d(self):
        d = CartesianDist.block_nd(SHAPE, 4)
        sec = Section((1, 0, 1), (6, 5, 4), (2, 2, 1))
        ranks, offs = d.section_map(sec)
        r2, o2 = d.owner_of_flat(sec.global_flat(SHAPE))
        np.testing.assert_array_equal(ranks, r2)
        np.testing.assert_array_equal(offs, o2)


class TestArrays3D:
    @pytest.mark.parametrize("nprocs", [1, 2, 4, 8])
    def test_parti_gather_roundtrip(self, nprocs):
        def spmd(comm):
            a = BlockPartiArray.from_global(comm, G)
            return a.gather_global()

        np.testing.assert_allclose(run_spmd(nprocs, spmd).values[0], G)

    def test_hpf_3d_specs(self):
        def spmd(comm):
            a = HPFArray.from_global(comm, G, ("block", "cyclic", "*"))
            return a.gather_global()

        np.testing.assert_allclose(run_spmd(4, spmd).values[0], G)

    def test_parti_native_3d_section_copy(self):
        def spmd(comm):
            a = BlockPartiArray.from_global(comm, G)
            b = BlockPartiArray.zeros(comm, (8, 8, 8))
            sched = build_copy_schedule(
                a, parti_region((0, 0, 0), (5, 4, 3)),
                b, parti_region((1, 2, 3), (6, 6, 6)),
            )
            sched.execute(a, b)
            return b.gather_global()

        got = run_spmd(4, spmd).values[0]
        expected = np.zeros((8, 8, 8))
        expected[1:7, 2:7, 3:7] = G
        np.testing.assert_allclose(got, expected)


class TestMetaChaos3D:
    @pytest.mark.parametrize("method", both_methods())
    def test_3d_section_to_irregular(self, method):
        sec = Section((0, 1, 0), (6, 5, 4), (1, 2, 1))
        n = sec.size
        perm = np.random.default_rng(121).permutation(n)

        def spmd(comm):
            a = BlockPartiArray.from_global(comm, G)
            z = ChaosArray.zeros(comm, perm % comm.size)
            sched = mc_compute_schedule(
                comm,
                "blockparti", a, mc_new_set_of_regions(SectionRegion(sec)),
                "chaos", z, mc_new_set_of_regions(IndexRegion(perm)),
                method,
            )
            mc_copy(comm, sched, a, z)
            return z.gather_global()

        got = run_spmd(4, spmd).values[0]
        expected = np.zeros(n)
        expected[perm] = G[:, 1::2, :].ravel()
        np.testing.assert_allclose(got, expected)

    def test_3d_f_order_canonical(self):
        def spmd(comm):
            a = HPFArray.from_global(comm, G, ("block", "block", "*"))
            sor = mc_new_set_of_regions(
                SectionRegion(Section.full(SHAPE), order="F")
            )
            return gather_canonical(comm, "hpf", a, sor)

        got = run_spmd(4, spmd).values[0]
        np.testing.assert_allclose(got, G.ravel(order="F"))

    def test_3d_to_2d_reshape_copy(self):
        """Linearization is shape-free: a 3-D section maps onto a 2-D one."""

        def spmd(comm):
            a = BlockPartiArray.from_global(comm, G)
            b = HPFArray.distribute(comm, (10, 12), ("block", "cyclic"))
            sched = mc_compute_schedule(
                comm,
                "blockparti", a,
                mc_new_set_of_regions(SectionRegion(Section.full(SHAPE))),
                "hpf", b,
                mc_new_set_of_regions(SectionRegion(Section.full((10, 12)))),
            )
            mc_copy(comm, sched, a, b)
            return b.gather_global()

        got = run_spmd(3, spmd).values[0]
        np.testing.assert_allclose(got, G.reshape(10, 12))
