"""The README's quickstart code block must actually run (anti-rot)."""

import re
from pathlib import Path

README = Path(__file__).resolve().parents[2] / "README.md"


def test_readme_python_snippet_executes():
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README lost its python example"
    # Execute the quickstart block in a fresh namespace.
    namespace = {}
    exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)


def test_readme_references_existing_files():
    text = README.read_text()
    root = README.parent
    for rel in re.findall(r"\]\((\S+?\.md)\)", text):
        assert (root / rel).exists(), f"README links to missing {rel}"
    for rel in re.findall(r"examples/\w+\.py", text):
        assert (root / rel).exists(), f"README names missing {rel}"
