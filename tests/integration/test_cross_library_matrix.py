"""The full interoperability matrix: every library pair, both methods.

The paper's central claim is that any registered library can exchange
data with any other through the same mechanism.  These tests copy between
all 4x4 (source library, destination library) pairs, under both schedule
methods, verifying element-exact agreement with the sequential oracle and
the paper's schedule-symmetry property.
"""

import numpy as np
import pytest

import repro.blockparti  # noqa: F401
import repro.chaos  # noqa: F401
import repro.hpf  # noqa: F401
import repro.pcxx  # noqa: F401
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import (
    IndexRegion,
    ScheduleMethod,
    SectionRegion,
    SetOfRegions,
    mc_compute_schedule,
    mc_copy,
)
from repro.distrib.section import Section
from repro.hpf import HPFArray
from repro.pcxx import DistributedCollection

from helpers import oracle_copy, run_spmd

N = 48  # every structure exposes 48 elements
SHAPE_2D = (8, 6)
LIBS = ("blockparti", "chaos", "hpf", "pcxx")
SRC_VALUES = np.random.default_rng(30).random(N)
PERM = np.random.default_rng(31).permutation(N)
OWNERS = np.random.default_rng(32).integers(0, 8, N)


def _make_array(lib, comm, values=None):
    """A 48-element structure of the given library, optionally filled."""
    if lib == "blockparti":
        data = (values if values is not None else np.zeros(N)).reshape(SHAPE_2D)
        return BlockPartiArray.from_global(comm, data.astype(float))
    if lib == "chaos":
        arr = ChaosArray.zeros(comm, OWNERS % comm.size)
        if values is not None:
            arr.local[:] = values[arr.my_globals()]
        return arr
    if lib == "hpf":
        data = (values if values is not None else np.zeros(N)).reshape(SHAPE_2D)
        return HPFArray.from_global(comm, data.astype(float), ("block", "cyclic"))
    if lib == "pcxx":
        coll = DistributedCollection.create(comm, N)
        if values is not None:
            coll.local[:] = values[coll.my_globals()]
        return coll
    raise ValueError(lib)


def _make_sor(lib, which):
    """Library-appropriate SetOfRegions covering all 48 elements."""
    if lib in ("blockparti", "hpf"):
        # Regular libraries naturally use sections; split into two to
        # exercise multi-region sets on one side.
        if which == "src":
            return SetOfRegions(
                [
                    SectionRegion(Section((0, 0), (4, 6), (1, 1))),
                    SectionRegion(Section((4, 0), (8, 6), (1, 1))),
                ]
            )
        return SetOfRegions([SectionRegion(Section.full(SHAPE_2D))])
    if which == "src":
        return SetOfRegions([IndexRegion(np.arange(N))])
    return SetOfRegions([IndexRegion(PERM)])


def _gather(arr):
    return arr.gather_global()


@pytest.mark.parametrize("src_lib", LIBS)
@pytest.mark.parametrize("dst_lib", LIBS)
@pytest.mark.parametrize("method", list(ScheduleMethod))
def test_pairwise_copy_matches_oracle(src_lib, dst_lib, method):
    def spmd(comm):
        A = _make_array(src_lib, comm, SRC_VALUES)
        B = _make_array(dst_lib, comm)
        sched = mc_compute_schedule(
            comm,
            src_lib, A, _make_sor(src_lib, "src"),
            dst_lib, B, _make_sor(dst_lib, "dst"),
            method,
        )
        mc_copy(comm, sched, A, B)
        return _gather(B)

    got = np.asarray(run_spmd(4, spmd).values[0]).reshape(-1)
    expected = oracle_copy(
        SRC_VALUES.reshape(SHAPE_2D if src_lib in ("blockparti", "hpf") else (N,)),
        _make_sor(src_lib, "src"),
        np.zeros(N if dst_lib in ("chaos", "pcxx") else SHAPE_2D).reshape(
            (N,) if dst_lib in ("chaos", "pcxx") else SHAPE_2D
        ),
        _make_sor(dst_lib, "dst"),
    ).reshape(-1)
    np.testing.assert_allclose(got, expected)


@pytest.mark.parametrize("src_lib", LIBS)
@pytest.mark.parametrize("dst_lib", LIBS)
def test_pairwise_roundtrip_restores(src_lib, dst_lib):
    def spmd(comm):
        A = _make_array(src_lib, comm, SRC_VALUES)
        B = _make_array(dst_lib, comm)
        sched = mc_compute_schedule(
            comm,
            src_lib, A, _make_sor(src_lib, "src"),
            dst_lib, B, _make_sor(dst_lib, "dst"),
        )
        mc_copy(comm, sched, A, B)
        A2 = _make_array(src_lib, comm)
        mc_copy(comm, sched.reverse(), B, A2)
        return _gather(A2)

    got = np.asarray(run_spmd(3, spmd).values[0]).reshape(-1)
    np.testing.assert_allclose(got, SRC_VALUES)


@pytest.mark.parametrize("nprocs", [1, 2, 5, 8])
def test_processor_count_invariance(nprocs):
    """The copy result is identical for any processor count."""

    def spmd(comm):
        A = _make_array("hpf", comm, SRC_VALUES)
        B = _make_array("chaos", comm)
        sched = mc_compute_schedule(
            comm,
            "hpf", A, _make_sor("hpf", "src"),
            "chaos", B, _make_sor("chaos", "dst"),
        )
        mc_copy(comm, sched, A, B)
        return _gather(B)

    got = run_spmd(nprocs, spmd).values[0]
    expected = np.zeros(N)
    expected[PERM] = SRC_VALUES
    np.testing.assert_allclose(got, expected)
