"""Property tests of the compiled data plane.

Two layers of the same contract:

1. **Program level** — for random offset structures (blocks, strided
   runs, uniform and piecewise grids, permutations, sparse picks), any
   dtype and any storage layout, ``MoveProgram.gather``/``scatter``/
   ``copy_compiled`` must equal the naive dense-index reference.
2. **End to end** — random copies driven through the full schedule +
   executor pipeline across ScheduleMethod x ExecutorPolicy must land
   the oracle bytes regardless of how the local storage is strided, and
   the logical clocks must be byte-identical across layouts and with
   observability on or off: the compiled plane is invisible to the
   model.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.blockparti  # noqa: F401
import repro.chaos  # noqa: F401
import repro.hpf  # noqa: F401
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import (
    ExecutorPolicy,
    ScheduleMethod,
    mc_compute_schedule,
    mc_copy,
)
from repro.core.dataplane import compile_offsets, copy_compiled, read_flat
from repro.core.runs import RunList
from repro.vmachine import IBM_SP2, VirtualMachine

from helpers import index_sor, layouts_of, run_spmd, strided_local

DTYPES = [np.float64, np.float32, np.int64]

LAYOUTS = [
    "contiguous",
    "reversed-view",
    "strided-view",
    "c-contig-2d",
    "transposed-2d",
    "sliced-2d",
]


@st.composite
def offset_structure(draw):
    """Random offsets of every structural family the compiler lowers."""
    kind = draw(
        st.sampled_from(["block", "strided", "grid", "permutation", "sparse"])
    )
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    if kind == "block":
        start = draw(st.integers(0, 20))
        count = draw(st.integers(1, 60))
        idx = np.arange(start, start + count)
    elif kind == "strided":
        start = draw(st.integers(0, 10))
        step = draw(st.integers(2, 5))
        count = draw(st.integers(1, 40))
        idx = np.arange(start, start + step * count, step)
    elif kind == "grid":
        nrows = draw(st.integers(2, 8))
        count = draw(st.integers(2, 8))
        step = draw(st.integers(1, 3))
        pitch = draw(st.integers(count * step, count * step + 10))
        start = draw(st.integers(0, 8))
        idx = (
            start
            + pitch * np.arange(nrows)[:, None]
            + step * np.arange(count)[None, :]
        ).ravel()
    elif kind == "permutation":
        n = draw(st.integers(2, 80))
        idx = rng.permutation(n)
    else:  # sparse random subset, sorted (valid scatter target)
        space = draw(st.integers(10, 120))
        k = draw(st.integers(1, min(space, 30)))
        idx = np.sort(rng.choice(space, size=k, replace=False))
    return kind, idx.astype(np.int64)


@given(
    case=offset_structure(),
    dtype=st.sampled_from(DTYPES),
    layout=st.sampled_from(LAYOUTS),
    seed=st.integers(0, 1000),
)
@settings(max_examples=120, deadline=None)
def test_gather_scatter_equal_dense_reference(case, dtype, layout, seed):
    kind, idx = case
    n = int(idx.max()) + 1 + (seed % 5)
    rng = np.random.default_rng(seed)
    vals = (rng.random(n) * 100).astype(dtype)

    prog = compile_offsets(RunList.from_dense(idx))
    data = strided_local(vals, layout)
    np.testing.assert_array_equal(prog.gather(data), vals[idx])

    # Scatter of fresh values; reference via plain fancy assignment.
    fresh = (rng.random(len(idx)) * 100).astype(dtype)
    ref = vals.copy()
    ref[idx] = fresh
    prog.scatter(data, fresh)
    np.testing.assert_array_equal(read_flat(data), ref)


@given(
    src_case=offset_structure(),
    dtype=st.sampled_from(DTYPES),
    src_layout=st.sampled_from(LAYOUTS),
    dst_layout=st.sampled_from(LAYOUTS),
    seed=st.integers(0, 1000),
)
@settings(max_examples=60, deadline=None)
def test_copy_compiled_equals_gather_then_scatter(
    src_case, dtype, src_layout, dst_layout, seed
):
    _, src_idx = src_case
    m = len(src_idx)
    rng = np.random.default_rng(seed)
    dst_idx = rng.permutation(m + (seed % 7))[:m].astype(np.int64)

    src_n = int(src_idx.max()) + 1
    dst_n = int(dst_idx.max()) + 1
    src_vals = (rng.random(src_n) * 100).astype(dtype)
    dst_vals = (rng.random(dst_n) * 100).astype(dtype)

    ref = dst_vals.copy()
    ref[dst_idx] = src_vals[src_idx]

    src = strided_local(src_vals, src_layout)
    dst = strided_local(dst_vals, dst_layout)
    copy_compiled(
        compile_offsets(RunList.from_dense(src_idx)), src,
        compile_offsets(RunList.from_dense(dst_idx)), dst,
    )
    np.testing.assert_array_equal(read_flat(dst), ref)


# ---------------------------------------------------------------------------
# End to end: oracle bytes and byte-identical clocks across
# ScheduleMethod x ExecutorPolicy x layout x observe.
# ---------------------------------------------------------------------------

N = 24


def _copy_spmd(comm, full, perm, src_layout, dst_layout, method, policy):
    src_proto = BlockPartiArray.from_global(comm, full)
    src = BlockPartiArray(
        comm, src_proto.dist,
        strided_local(np.asarray(read_flat(src_proto.local)), src_layout),
    )
    dst_proto = ChaosArray.zeros(comm, perm % comm.size)
    dst = ChaosArray(
        comm, dst_proto.table,
        strided_local(np.zeros(dst_proto.local.size), dst_layout),
    )
    sched = mc_compute_schedule(
        comm,
        "blockparti", src, index_sor(np.arange(N)),
        "chaos", dst, index_sor(perm),
        method, policy=policy,
    )
    mc_copy(comm, sched, src, dst, policy=policy)
    return dst.gather_global(), comm.process.clock


@given(
    seed=st.integers(0, 500),
    nprocs=st.sampled_from([1, 2, 3]),
    method=st.sampled_from(list(ScheduleMethod)),
    policy=st.sampled_from(list(ExecutorPolicy)),
    src_layout=st.sampled_from(LAYOUTS),
    dst_layout=st.sampled_from(LAYOUTS),
)
@settings(max_examples=25, deadline=None)
def test_end_to_end_oracle_and_clock_identity(
    seed, nprocs, method, policy, src_layout, dst_layout
):
    rng = np.random.default_rng(seed)
    full = rng.random(N)
    perm = rng.permutation(N)

    res = run_spmd(
        nprocs, _copy_spmd, full, perm, src_layout, dst_layout, method, policy
    )
    got = res.values[0][0]
    expected = np.zeros(N)
    expected[perm] = full
    np.testing.assert_allclose(got, expected)

    # Layout must be invisible to the clocks: re-run contiguous.
    base = run_spmd(
        nprocs, _copy_spmd, full, perm, "contiguous", "contiguous",
        method, policy,
    )
    np.testing.assert_allclose(base.values[0][0], expected)
    assert res.clocks == base.clocks, "layout leaked into the logical clocks"


@given(
    seed=st.integers(0, 500),
    nprocs=st.sampled_from([2, 3]),
    policy=st.sampled_from(list(ExecutorPolicy)),
    layout=st.sampled_from(["contiguous", "sliced-2d"]),
)
@settings(max_examples=10, deadline=None)
def test_observe_on_off_clock_identity(seed, nprocs, policy, layout):
    """Observability must stay invisible to the compiled plane's clocks."""
    rng = np.random.default_rng(seed)
    full = rng.random(N)
    perm = rng.permutation(N)
    args = (full, perm, layout, layout, ScheduleMethod.COOPERATION, policy)

    plain = VirtualMachine(nprocs, IBM_SP2, observe=False).run(_copy_spmd, *args)
    observed = VirtualMachine(nprocs, IBM_SP2, observe=True).run(_copy_spmd, *args)
    assert plain.clocks == observed.clocks
    np.testing.assert_allclose(
        plain.values[0][0], observed.values[0][0]
    )
