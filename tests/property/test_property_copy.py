"""Property-based tests of the end-to-end copy engine.

Hypothesis drives random distributions, random region sets and random
processor counts through the full schedule-build + data-move pipeline and
checks the result against the sequential oracle.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.blockparti  # noqa: F401
import repro.chaos  # noqa: F401
import repro.hpf  # noqa: F401
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import (
    IndexRegion,
    ScheduleMethod,
    SectionRegion,
    SetOfRegions,
    mc_compute_schedule,
    mc_copy,
)
from repro.distrib.section import Section
from repro.hpf import HPFArray

from helpers import oracle_copy, run_spmd


@st.composite
def copy_case(draw):
    """A random conformant (source section set, dest index set) pair."""
    n0 = draw(st.integers(4, 10))
    n1 = draw(st.integers(4, 10))
    shape = (n0, n1)
    nregions = draw(st.integers(1, 3))
    regions = []
    total = 0
    for _ in range(nregions):
        lo0 = draw(st.integers(0, n0 - 1))
        hi0 = draw(st.integers(lo0 + 1, n0))
        lo1 = draw(st.integers(0, n1 - 1))
        hi1 = draw(st.integers(lo1 + 1, n1))
        s0 = draw(st.integers(1, 2))
        s1 = draw(st.integers(1, 2))
        sec = Section((lo0, lo1), (hi0, hi1), (s0, s1))
        regions.append(SectionRegion(sec))
        total += sec.size
    dst_size = draw(st.integers(total, total + 20))
    dst_idx = draw(
        st.permutations(list(range(dst_size))).map(lambda p: np.array(p[:total]))
    )
    owners_seed = draw(st.integers(0, 100))
    nprocs = draw(st.sampled_from([1, 2, 3, 4]))
    method = draw(st.sampled_from(list(ScheduleMethod)))
    return shape, regions, dst_size, dst_idx, owners_seed, nprocs, method


@given(case=copy_case())
@settings(max_examples=20, deadline=None)
def test_parti_to_chaos_random_cases(case):
    shape, regions, dst_size, dst_idx, owners_seed, nprocs, method = case
    values = np.random.default_rng(owners_seed).random(shape)
    owners = np.random.default_rng(owners_seed + 1).integers(0, nprocs, dst_size)
    src_sor = SetOfRegions(regions)
    dst_sor = SetOfRegions([IndexRegion(dst_idx)])

    def spmd(comm):
        A = BlockPartiArray.from_global(comm, values)
        B = ChaosArray.zeros(comm, owners)
        sched = mc_compute_schedule(
            comm, "blockparti", A, src_sor, "chaos", B, dst_sor, method
        )
        mc_copy(comm, sched, A, B)
        return B.gather_global()

    got = run_spmd(nprocs, spmd).values[0]
    expected = oracle_copy(values, src_sor, np.zeros(dst_size), dst_sor)
    np.testing.assert_allclose(got, expected)


@st.composite
def hpf_case(draw):
    n = draw(st.integers(6, 40))
    spec = draw(st.sampled_from(["block", "cyclic", "cyclic(3)"]))
    nprocs = draw(st.sampled_from([1, 2, 3]))
    lo = draw(st.integers(0, n - 2))
    hi = draw(st.integers(lo + 1, n))
    step = draw(st.integers(1, 3))
    return n, spec, nprocs, lo, hi, step


@given(case=hpf_case())
@settings(max_examples=20, deadline=None)
def test_hpf_section_to_chaos_random_distributions(case):
    n, spec, nprocs, lo, hi, step = case
    sec = Section((lo,), (hi,), (step,))
    m = sec.size
    values = np.random.default_rng(n).random(n)
    src_sor = SetOfRegions([SectionRegion(sec)])
    dst_sor = SetOfRegions([IndexRegion(np.arange(m)[::-1])])

    def spmd(comm):
        A = HPFArray.from_global(comm, values, (spec,))
        B = ChaosArray.zeros(comm, np.arange(m) % comm.size)
        sched = mc_compute_schedule(
            comm, "hpf", A, src_sor, "chaos", B, dst_sor
        )
        mc_copy(comm, sched, A, B)
        return B.gather_global()

    got = run_spmd(nprocs, spmd).values[0]
    np.testing.assert_allclose(got, values[lo:hi:step][::-1])


@given(
    n=st.integers(4, 60),
    nprocs=st.sampled_from([1, 2, 4]),
    seed=st.integers(0, 50),
)
@settings(max_examples=20, deadline=None)
def test_permutation_roundtrip_is_identity(n, nprocs, seed):
    """copy(A->B, perm) then copy(B->A, reverse) restores A exactly."""
    rng = np.random.default_rng(seed)
    values = rng.random(n)
    perm = rng.permutation(n)
    owners_a = rng.integers(0, nprocs, n)
    owners_b = rng.integers(0, nprocs, n)

    def spmd(comm):
        A = ChaosArray.from_global(comm, values, owners_a % comm.size)
        B = ChaosArray.zeros(comm, owners_b % comm.size)
        sched = mc_compute_schedule(
            comm,
            "chaos", A, SetOfRegions([IndexRegion(np.arange(n))]),
            "chaos", B, SetOfRegions([IndexRegion(perm)]),
        )
        mc_copy(comm, sched, A, B)
        A.local[:] = 0.0
        mc_copy(comm, sched.reverse(), B, A)
        return A.gather_global()

    got = run_spmd(nprocs, spmd).values[0]
    np.testing.assert_allclose(got, values)
