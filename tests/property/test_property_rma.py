"""Property tests of the one-sided window layer.

Three contracts over randomized operation mixes:

1. **Two-sided oracle identity under chaos** — a random batch of window
   ``put``/``accumulate``/``get``/``fetch_add`` operations, executed with
   the reliability protocol under a seeded fault plan (up to 20% each of
   drop/duplicate/reorder/delay on the ``"rma"`` class), must land
   exactly the state and read exactly the values that a sequential
   oracle computes by replaying the same operations in the window
   layer's documented ``(origin, issue order)`` total order.
2. **Observability is free** — the same run with ``observe=True`` must
   produce byte-identical logical clocks: spans and counters never touch
   the cost model.
3. **Determinism** — same seed, same everything: clocks, window
   contents, resolved handles.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vmachine import VirtualMachine, Window
from repro.vmachine.faults import FaultPlan, FaultRates

P = 4
WIN = 16  # elements exposed per rank


def _random_ops(seed: int):
    """Per-rank operation scripts: (kind, target, start, payload-seed)."""
    rng = np.random.default_rng(seed)
    scripts = []
    for rank in range(P):
        ops = []
        for _ in range(int(rng.integers(2, 9))):
            kind = rng.choice(["put", "acc", "get", "fadd"])
            target = int(rng.integers(0, P))
            if kind in ("put", "acc"):
                count = int(rng.integers(1, WIN + 1))
                start = int(rng.integers(0, WIN - count + 1))
                data = np.round(rng.standard_normal(count), 3)
                ops.append((kind, target, start, data))
            elif kind == "get":
                count = int(rng.integers(1, WIN + 1))
                start = int(rng.integers(0, WIN - count + 1))
                ops.append((kind, target, start, count))
            else:
                index = int(rng.integers(0, WIN))
                ops.append((kind, target, index,
                            float(np.round(rng.standard_normal(), 3))))
        scripts.append(ops)
    return scripts


def _issue(win, ops):
    handles = []
    for op in ops:
        kind = op[0]
        if kind == "put":
            win.put(op[1], op[3], start=op[2])
        elif kind == "acc":
            win.accumulate(op[1], op[3], start=op[2])
        elif kind == "get":
            handles.append(win.get(op[1], op[2], op[3]))
        else:
            handles.append(win.fetch_add(op[1], op[2], op[3]))
    return handles


def _oracle(scripts):
    """Sequential replay in (origin, issue order) — the documented total
    order — against plain NumPy state; gets read the post-epoch state."""
    state = [np.zeros(WIN) for _ in range(P)]
    fetches = {}  # (origin, seq-within-origin-handle-list) -> old value
    gets = []
    for origin in range(P):
        h = 0
        for op in scripts[origin]:
            kind, target = op[0], op[1]
            if kind == "put":
                state[target][op[2]:op[2] + len(op[3])] = op[3]
            elif kind == "acc":
                state[target][op[2]:op[2] + len(op[3])] += op[3]
            elif kind == "fadd":
                fetches[(origin, h)] = state[target][op[2]]
                state[target][op[2]] += op[3]
                h += 1
            else:
                gets.append((origin, h, target, op[2], op[3]))
                h += 1
    resolved = dict(fetches)
    for origin, h, target, start, count in gets:
        resolved[(origin, h)] = state[target][start:start + count].copy()
    return state, resolved


def _spmd(scripts, reliable):
    def spmd(comm):
        win = Window(comm, np.zeros(WIN), reliable=reliable)
        handles = _issue(win, scripts[comm.rank])
        win.fence()
        return (win.local.copy(),
                [np.asarray(h.value).copy() for h in handles],
                comm.process.clock)

    return spmd


def _chaos_plan(seed, level):
    r = 0.05 * level  # level 0..4 -> 0..20% each
    return FaultPlan(
        seed=seed,
        rates=FaultRates(drop=r, dup=r, reorder=r, delay=r),
        classes=("rma",),
    )


class TestChaosOracleIdentity:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000), level=st.integers(0, 4))
    def test_reliable_window_matches_two_sided_oracle(self, seed, level):
        scripts = _random_ops(seed)
        state, resolved = _oracle(scripts)
        vm = VirtualMachine(P, faults=_chaos_plan(seed, level),
                            recv_timeout_s=60.0)
        res = vm.run(_spmd(scripts, True))
        for rank in range(P):
            local, values, _clock = res.values[rank]
            np.testing.assert_array_equal(local, state[rank])
            for h, v in enumerate(values):
                np.testing.assert_array_equal(
                    v, np.asarray(resolved[(rank, h)]))

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_clean_channel_needs_no_reliability(self, seed):
        scripts = _random_ops(seed)
        state, resolved = _oracle(scripts)
        res = VirtualMachine(P).run(_spmd(scripts, False))
        for rank in range(P):
            local, values, _clock = res.values[rank]
            np.testing.assert_array_equal(local, state[rank])
            for h, v in enumerate(values):
                np.testing.assert_array_equal(
                    v, np.asarray(resolved[(rank, h)]))


class TestHeldResponseRegression:
    def test_pinned_seed_1216_level_3_completes_and_matches_oracle(self):
        """Pinned falsifying example: this (seed, level) once deadlocked.

        Two ranks' epoch responses to each other were both held back by
        the fault plan (reorder/delay on the ``"rma"`` class) and nothing
        released them before the fence's response-collection receives —
        a circular wait that timed out.  The fence now flushes held
        response envelopes after serving them, before blocking on its
        own.
        """
        scripts = _random_ops(1216)
        state, resolved = _oracle(scripts)
        vm = VirtualMachine(P, faults=_chaos_plan(1216, 3),
                            recv_timeout_s=60.0)
        res = vm.run(_spmd(scripts, True))
        for rank in range(P):
            local, values, _clock = res.values[rank]
            np.testing.assert_array_equal(local, state[rank])
            for h, v in enumerate(values):
                np.testing.assert_array_equal(
                    v, np.asarray(resolved[(rank, h)]))


class TestObservabilityIsFree:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_clocks_byte_identical_observe_on_off(self, seed):
        scripts = _random_ops(seed)
        plain = VirtualMachine(P).run(_spmd(scripts, False))
        observed = VirtualMachine(P, observe=True).run(
            _spmd(scripts, False))
        assert plain.clocks == observed.clocks
        for rank in range(P):
            assert (plain.values[rank][0].tobytes()
                    == observed.values[rank][0].tobytes())
        # observe mode actually recorded the one-sided spans
        names = {s.name for spans in observed.spans for s in spans}
        assert "rma:fence" in names

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_trace_mode_keeps_clocks_identical_too(self, seed):
        scripts = _random_ops(seed)
        plain = VirtualMachine(P).run(_spmd(scripts, False))
        traced = VirtualMachine(P, trace=True).run(_spmd(scripts, False))
        assert plain.clocks == traced.clocks


class TestDeterminism:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000), level=st.integers(1, 4))
    def test_chaotic_runs_are_reproducible(self, seed, level):
        scripts = _random_ops(seed)

        def once():
            vm = VirtualMachine(P, faults=_chaos_plan(seed, level),
                                recv_timeout_s=60.0)
            return vm.run(_spmd(scripts, True))

        a, b = once(), once()
        assert a.clocks == b.clocks
        for rank in range(P):
            assert (a.values[rank][0].tobytes()
                    == b.values[rank][0].tobytes())
