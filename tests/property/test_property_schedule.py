"""Property-based tests of schedule-level invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.blockparti  # noqa: F401
import repro.chaos  # noqa: F401
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import (
    IndexRegion,
    ScheduleMethod,
    SectionRegion,
    SetOfRegions,
    mc_compute_schedule,
)
from repro.distrib.section import Section

from helpers import run_spmd


@st.composite
def schedule_case(draw):
    n0 = draw(st.integers(4, 9))
    n1 = draw(st.integers(4, 9))
    n = n0 * n1
    perm_seed = draw(st.integers(0, 99))
    nprocs = draw(st.sampled_from([1, 2, 3, 4]))
    return (n0, n1), n, perm_seed, nprocs


@given(case=schedule_case())
@settings(max_examples=15, deadline=None)
def test_invariants_hold_for_random_cases(case):
    shape, n, perm_seed, nprocs = case
    perm = np.random.default_rng(perm_seed).permutation(n)
    owners = np.random.default_rng(perm_seed + 1).integers(0, nprocs, n)

    def spmd(comm):
        A = BlockPartiArray.zeros(comm, shape)
        B = ChaosArray.zeros(comm, owners)
        schedules = {
            m: mc_compute_schedule(
                comm,
                "blockparti", A, SetOfRegions([SectionRegion(Section.full(shape))]),
                "chaos", B, SetOfRegions([IndexRegion(perm)]),
                m,
            )
            for m in ScheduleMethod
        }
        coop = schedules[ScheduleMethod.COOPERATION]
        dup = schedules[ScheduleMethod.DUPLICATION]

        # Invariant 1: both methods produce the identical schedule.
        assert set(coop.sends) == set(dup.sends)
        for d in coop.sends:
            np.testing.assert_array_equal(coop.sends[d], dup.sends[d])
        for s in coop.recvs:
            np.testing.assert_array_equal(coop.recvs[s], dup.recvs[s])

        # Invariant 2: send offsets are valid local addresses.
        for offs in coop.sends.values():
            assert len(offs) == 0 or (
                offs.min() >= 0 and offs.max() < A.local.size
            )
        for offs in coop.recvs.values():
            assert len(offs) == 0 or (
                offs.min() >= 0 and offs.max() < B.local.size
            )

        # Invariant 3: every local destination offset receives exactly once.
        all_recv = (
            np.concatenate(list(coop.recvs.values()))
            if coop.recvs
            else np.zeros(0, dtype=np.int64)
        )
        assert len(np.unique(all_recv)) == len(all_recv)

        # Invariant 4: message partner count bounded by universe size.
        assert len(coop.sends) <= coop.dst_size
        assert len(coop.recvs) <= coop.src_size

        return (coop.send_count, coop.recv_count)

    res = run_spmd(nprocs, spmd)
    # Invariant 5: counts partition the element set across ranks.
    assert sum(v[0] for v in res.values) == n
    assert sum(v[1] for v in res.values) == n


@given(
    n=st.integers(2, 50),
    nprocs=st.sampled_from([1, 2, 4]),
    seed=st.integers(0, 30),
)
@settings(max_examples=15, deadline=None)
def test_reverse_is_involution(n, nprocs, seed):
    perm = np.random.default_rng(seed).permutation(n)

    def spmd(comm):
        A = ChaosArray.zeros(comm, np.arange(n) % comm.size)
        B = ChaosArray.zeros(comm, perm % comm.size)
        sched = mc_compute_schedule(
            comm,
            "chaos", A, SetOfRegions([IndexRegion(np.arange(n))]),
            "chaos", B, SetOfRegions([IndexRegion(perm)]),
        )
        double = sched.reverse().reverse()
        assert double.src_lib == sched.src_lib
        assert set(double.sends) == set(sched.sends)
        for d in sched.sends:
            np.testing.assert_array_equal(double.sends[d], sched.sends[d])
        return True

    assert all(run_spmd(nprocs, spmd).values)
