"""Property-based tests of the multi-tenant coupling service.

The invariant: a fleet of concurrent tenant sessions multiplexed through
the batching gateway observes exactly what each tenant would observe
running *alone* against the same server — concurrency, round fusion and
the shared caches are pure optimizations.  Each tenant binds its own
server vector, so the serial oracle is well-defined (no deliberate
write-write races across tenants).

A second property drives the whole control+data stack through a lossy
transport (<=10% drop/dup/reorder/delay on data channels) with the
reliability layer enabled and requires bit-identical results.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.service_demo import DemoVectors
from repro.core.policy import ExecutorPolicy
from repro.service import (
    ArraySpec,
    ServiceConfig,
    TenantSpec,
    run_service_gateway,
    serve_service,
)
from repro.vmachine import ProgramSpec, run_programs
from repro.vmachine.faults import FaultPlan, FaultRates


def tenant_body(index, spec, iterations):
    """create -> bind v<index> -> (push, total, pull)* -> gather."""

    async def body(session):
        await session.create_array("x", spec)
        binding = await session.bind("vec", f"v{index}", "x")
        totals = []
        for _ in range(iterations):
            await session.push(binding)
            totals.append(await session.call("vec", "total", f"v{index}"))
            await session.pull(binding)
        final = await session.gather("x")
        await session.close()
        return tuple(totals), final

    return body


def run_fleet(specs, iterations, config, fault_plan=None,
              gateway_procs=2, server_procs=2):
    """Run one service topology; tenant *i* owns server vector ``v{i}``."""
    sizes = [s.n for s in specs]

    def gateway(ctx):
        fleet = [
            TenantSpec(f"t{i}", tenant_body(i, spec, iterations))
            for i, spec in enumerate(specs)
        ]
        return run_service_gateway(ctx, "server", fleet, config)

    def server(ctx):
        return serve_service(
            ctx, "gateway", {"vec": DemoVectors(ctx.comm, sizes)}, config
        )

    res = run_programs(
        [ProgramSpec("gateway", gateway_procs, gateway),
         ProgramSpec("server", server_procs, server)],
        faults=fault_plan,
    )
    return res["gateway"].values[0]


@st.composite
def fleet_case(draw):
    ntenants = draw(st.integers(2, 4))
    iterations = draw(st.integers(1, 2))
    policy = draw(st.sampled_from(["ordered", "overlap"]))
    specs = []
    for i in range(ntenants):
        lib = draw(st.sampled_from(["blockparti", "hpf", "chaos"]))
        n = draw(st.integers(6, 32))
        fill = draw(
            st.sampled_from([("value", float(i + 1)), ("arange",), ("rng", i)])
        )
        owners = draw(
            st.sampled_from([("stride", 1), ("stride", 3), ("rng", i + 7)])
        )
        specs.append(ArraySpec(lib, n, fill=fill, owners=owners))
    return specs, iterations, policy


@given(case=fleet_case())
@settings(max_examples=8, deadline=None)
def test_concurrent_fleet_matches_serial_oracle(case):
    """Multi-tenant ≡ serial: run the fleet concurrently, then each
    tenant alone (same server shape table), and compare per-tenant
    results exactly — under both executor policies."""
    specs, iterations, policy = case
    config = ServiceConfig(policy=policy)
    concurrent = run_fleet(specs, iterations, config)
    assert concurrent.ok
    # Oracle: each tenant runs in its own single-tenant service.  The
    # shape table (one vector per tenant index) is identical, so bind
    # signatures, schedules and transfers match the concurrent run's.
    for i, spec in enumerate(specs):
        def solo(ctx, i=i, spec=spec):
            fleet = [TenantSpec("solo", tenant_body(i, spec, iterations))]
            return run_service_gateway(ctx, "server", fleet, config)

        sizes = [s.n for s in specs]

        def server(ctx):
            return serve_service(
                ctx, "gateway", {"vec": DemoVectors(ctx.comm, sizes)}, config
            )

        res = run_programs(
            [ProgramSpec("gateway", 2, solo), ProgramSpec("server", 2, server)]
        )
        report = res["gateway"].values[0]
        assert report.ok
        want_totals, want_final = report.tenants[0].result
        got_totals, got_final = concurrent.tenants[i].result
        assert got_totals == want_totals
        np.testing.assert_array_equal(got_final, want_final)


@given(case=fleet_case())
@settings(max_examples=8, deadline=None)
def test_analytic_oracle_every_policy(case):
    """Cheap closed-form oracle: with per-tenant vectors, every observed
    total equals the tenant's own fill sum, and pull restores it."""
    specs, iterations, policy = case
    report = run_fleet(specs, iterations, ServiceConfig(policy=policy))
    assert report.ok
    for i, spec in enumerate(specs):
        values = spec.global_values()
        totals, final = report.tenants[i].result
        # Distributed summation order differs from numpy's pairwise sum
        # in the last ulp; the moved *elements* stay bit-exact.
        np.testing.assert_allclose(
            totals, [values.sum()] * iterations, rtol=1e-12
        )
        np.testing.assert_array_equal(final, values)
    assert isinstance(ExecutorPolicy.coerce(policy), ExecutorPolicy)


@given(
    seed=st.integers(0, 1000),
    rate=st.floats(0.02, 0.10),
    policy=st.sampled_from(["ordered", "overlap"]),
)
@settings(max_examples=6, deadline=None)
def test_chaotic_transport_with_reliability(seed, rate, policy):
    """<=10% drop/dup/reorder/delay on the data channels: the reliability
    layer must deliver bit-identical results for every tenant."""
    specs = [
        ArraySpec("blockparti", 16, fill=("value", 2.0)),
        ArraySpec("hpf", 20, fill=("arange",)),
        ArraySpec("chaos", 12, fill=("rng", seed), owners=("stride", 3)),
    ]
    config = ServiceConfig(policy=policy, reliability=True)
    plan = FaultPlan(
        seed=seed,
        rates=FaultRates(drop=rate, dup=rate, reorder=rate, delay=rate),
    )
    report = run_fleet(specs, 2, config, fault_plan=plan)
    assert report.ok
    for i, spec in enumerate(specs):
        values = spec.global_values()
        totals, final = report.tenants[i].result
        np.testing.assert_allclose(totals, [values.sum()] * 2, rtol=1e-12)
        np.testing.assert_array_equal(final, values)
