"""Property-based tests for the extension features (multiblock, remap,
cshift, Fortran-order and mask regions, canonical gather)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockparti import BlockPartiArray, MultiblockArray, fill_block
from repro.chaos import ChaosArray, remap
from repro.core import (
    MaskRegion,
    SectionRegion,
    mc_new_set_of_regions,
)
from repro.distrib.section import Section
from repro.hpf import HPFArray, cshift
from repro.util import gather_canonical

from helpers import run_spmd


@given(
    n=st.integers(4, 40),
    shift=st.integers(-50, 50),
    nprocs=st.sampled_from([1, 2, 3]),
    spec=st.sampled_from(["block", "cyclic"]),
)
@settings(max_examples=20, deadline=None)
def test_property_cshift_equals_numpy_roll(n, shift, nprocs, spec):
    values = np.random.default_rng(n).random(n)

    def spmd(comm):
        x = HPFArray.from_global(comm, values, (spec,))
        return cshift(x, shift).gather_global()

    got = run_spmd(nprocs, spmd).values[0]
    np.testing.assert_allclose(got, np.roll(values, -shift))


@given(
    n=st.integers(2, 50),
    seed=st.integers(0, 40),
    nprocs=st.sampled_from([1, 2, 4]),
    repeats=st.integers(1, 3),
)
@settings(max_examples=20, deadline=None)
def test_property_remap_chain_preserves_values(n, seed, nprocs, repeats):
    """Any chain of redistributions leaves the global values unchanged."""
    rng = np.random.default_rng(seed)
    values = rng.random(n)
    owner_maps = [rng.integers(0, nprocs, n) for _ in range(repeats + 1)]

    def spmd(comm):
        a = ChaosArray.from_global(comm, values, owner_maps[0] % comm.size)
        for owners in owner_maps[1:]:
            a = remap(a, owners % comm.size)
        return a.gather_global()

    got = run_spmd(nprocs, spmd).values[0]
    np.testing.assert_allclose(got, values)


@given(
    rows=st.integers(2, 8),
    cols=st.integers(2, 8),
    nprocs=st.sampled_from([1, 2, 4]),
    data=st.data(),
)
@settings(max_examples=20, deadline=None)
def test_property_multiblock_interface_equals_numpy(rows, cols, nprocs, data):
    """A random same-shape interface copy matches the NumPy assignment."""
    r0 = data.draw(st.integers(0, rows - 1))
    r1 = data.draw(st.integers(r0 + 1, rows))
    c0 = data.draw(st.integers(0, cols - 1))
    c1 = data.draw(st.integers(c0 + 1, cols))
    src_sl = (slice(r0, r1), slice(c0, c1))
    # destination block gets the same-size window anchored at the origin
    dst_sl = (slice(0, r1 - r0), slice(0, c1 - c0))
    values = np.random.default_rng(rows * 10 + cols).random((rows, cols))

    def spmd(comm):
        mb = MultiblockArray.zeros(comm, [(rows, cols), (rows, cols)])
        fill_block(mb.block(0), lambda i, j: values[i, j])
        mb.connect(0, src_sl, 1, dst_sl)
        mb.update_interfaces()
        return mb.gather_global()

    blocks = run_spmd(nprocs, spmd).values[0]
    expected = np.zeros((rows, cols))
    expected[dst_sl] = values[src_sl]
    np.testing.assert_allclose(blocks[1], expected)


@given(
    n0=st.integers(2, 8),
    n1=st.integers(2, 8),
    seed=st.integers(0, 30),
    order=st.sampled_from(["C", "F"]),
    nprocs=st.sampled_from([1, 2, 3]),
)
@settings(max_examples=20, deadline=None)
def test_property_canonical_gather_respects_order(n0, n1, seed, order, nprocs):
    values = np.random.default_rng(seed).random((n0, n1))

    def spmd(comm):
        A = BlockPartiArray.from_global(comm, values)
        sor = mc_new_set_of_regions(
            SectionRegion(Section.full((n0, n1)), order=order)
        )
        return gather_canonical(comm, "blockparti", A, sor)

    got = run_spmd(nprocs, spmd).values[0]
    np.testing.assert_allclose(got, values.ravel(order=order))


@given(
    n0=st.integers(2, 10),
    n1=st.integers(2, 10),
    seed=st.integers(0, 30),
    threshold=st.floats(0.0, 1.0),
)
@settings(max_examples=20, deadline=None)
def test_property_mask_region_selects_numpy_subset(n0, n1, seed, threshold):
    values = np.random.default_rng(seed).random((n0, n1))
    mask = values > threshold

    def spmd(comm):
        A = BlockPartiArray.from_global(comm, values)
        sor = mc_new_set_of_regions(MaskRegion(mask))
        return gather_canonical(comm, "blockparti", A, sor)

    got = run_spmd(2, spmd).values[0]
    if int(mask.sum()) == 0:
        assert got is None or len(got) == 0
    else:
        np.testing.assert_allclose(got, values[mask])
