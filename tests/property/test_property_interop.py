"""Property test over the whole interoperability surface.

Hypothesis draws the source library, destination library, schedule method,
processor count, distributions and a conformant region pair — one test
standing guard over every combination the framework promises to support.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.blockparti  # noqa: F401
import repro.chaos  # noqa: F401
import repro.hpf  # noqa: F401
import repro.pcxx  # noqa: F401
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import (
    IndexRegion,
    ScheduleMethod,
    SectionRegion,
    SetOfRegions,
    mc_compute_schedule,
    mc_copy,
)
from repro.distrib.section import Section
from repro.hpf import HPFArray
from repro.pcxx import DistributedCollection

from helpers import run_spmd

LIBS = ("blockparti", "chaos", "hpf", "pcxx")


def _make(lib, comm, n, values, seed):
    rng = np.random.default_rng(seed)
    if lib == "blockparti":
        arr = BlockPartiArray.zeros(comm, (n,))
    elif lib == "hpf":
        spec = rng.choice(["block", "cyclic"])
        arr = HPFArray.distribute(comm, (n,), (str(spec),))
    elif lib == "chaos":
        owners = rng.integers(0, comm.size, n)
        arr = ChaosArray.zeros(comm, owners)
    else:
        arr = DistributedCollection.create(comm, n)
    if values is not None:
        dist = arr.dist
        mine = dist.owned_global(comm.rank)
        arr.local[:] = values[mine]
    return arr


def _sor(lib, n, seed, side):
    rng = np.random.default_rng(seed)
    if lib in ("blockparti", "hpf") and side == "src":
        order = "C" if rng.integers(0, 2) == 0 else "F"
        return SetOfRegions([SectionRegion(Section.full((n,)), order=order)])
    return SetOfRegions([IndexRegion(rng.permutation(n))])


@given(
    src_lib=st.sampled_from(LIBS),
    dst_lib=st.sampled_from(LIBS),
    method=st.sampled_from(list(ScheduleMethod)),
    nprocs=st.sampled_from([1, 2, 3, 5]),
    n=st.integers(3, 60),
    seed=st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_any_pair_any_method_matches_oracle(src_lib, dst_lib, method, nprocs, n, seed):
    values = np.random.default_rng(seed).random(n)
    src_sor = _sor(src_lib, n, seed + 1, "src")
    dst_sor = _sor(dst_lib, n, seed + 2, "dst")

    def spmd(comm):
        A = _make(src_lib, comm, n, values, seed + 3)
        B = _make(dst_lib, comm, n, None, seed + 4)
        sched = mc_compute_schedule(
            comm, src_lib, A, src_sor, dst_lib, B, dst_sor, method
        )
        mc_copy(comm, sched, A, B)
        # And the reverse restores the source exactly.  The restore target
        # must carry the same distribution the schedule was built against
        # (same construction seed).
        A2 = _make(src_lib, comm, n, None, seed + 3)
        mc_copy(comm, sched.reverse(), B, A2)
        return B.gather_global(), A2.gather_global()

    got_b, got_a = run_spmd(nprocs, spmd).values[0]
    expected = np.zeros(n)
    src_idx = src_sor.global_flat((n,))
    dst_idx = dst_sor.global_flat((n,))
    expected[dst_idx] = values[src_idx]
    np.testing.assert_allclose(np.asarray(got_b), expected)
    np.testing.assert_allclose(np.asarray(got_a), values)
