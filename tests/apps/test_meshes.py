"""Mesh generation and interface mapping tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.meshes import (
    delaunay_mesh,
    full_remap_mapping,
    grid_mesh,
    interface_mapping,
)


class TestGridMesh:
    def test_structure(self):
        m = grid_mesh(4, 5)
        m.validate()
        assert m.npoints == 20
        # right + down + diagonal edges
        assert m.nedges == 4 * 4 + 3 * 5 + 3 * 4

    def test_no_self_edges(self):
        m = grid_mesh(6, 6)
        assert (m.ia != m.ib).all()

    def test_coords_in_unit_square(self):
        m = grid_mesh(5, 7)
        assert m.coords.min() >= 0.0 and m.coords.max() <= 1.0


class TestDelaunayMesh:
    def test_structure(self):
        m = delaunay_mesh(300, seed=1)
        m.validate()
        assert m.npoints == 300
        # Planar triangulations: ~3n edges.
        assert 2 * 300 < m.nedges < 3 * 300

    def test_edges_unique_undirected(self):
        m = delaunay_mesh(100, seed=2)
        pairs = set(zip(m.ia.tolist(), m.ib.tolist()))
        assert len(pairs) == m.nedges
        assert (m.ia < m.ib).all()

    def test_deterministic_by_seed(self):
        a = delaunay_mesh(50, seed=3)
        b = delaunay_mesh(50, seed=3)
        np.testing.assert_array_equal(a.ia, b.ia)

    def test_connected_degrees(self):
        m = delaunay_mesh(200, seed=4)
        deg = np.bincount(m.ia, minlength=200) + np.bincount(m.ib, minlength=200)
        assert deg.min() >= 2  # every point participates


class TestFullRemapMapping:
    def test_identity(self):
        irreg, r1, r2 = full_remap_mapping((3, 4), 12)
        np.testing.assert_array_equal(irreg, np.arange(12))
        np.testing.assert_array_equal(r1 * 4 + r2, np.arange(12))

    def test_permuted(self):
        irreg, r1, r2 = full_remap_mapping((3, 4), 12, seed=7)
        assert sorted(irreg.tolist()) == list(range(12))
        assert not np.array_equal(irreg, np.arange(12))

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            full_remap_mapping((3, 4), 13)


class TestInterfaceMapping:
    def test_only_strip_cells(self):
        irreg, r1, r2 = interface_mapping((10, 8), 200, strip=2)
        inside = (r1 >= 2) & (r1 < 8) & (r2 >= 2) & (r2 < 6)
        assert not inside.any()

    def test_distinct_nodes(self):
        irreg, _, _ = interface_mapping((6, 6), 100, strip=1)
        assert len(np.unique(irreg)) == len(irreg)

    def test_too_small_mesh_rejected(self):
        with pytest.raises(ValueError, match="larger"):
            interface_mapping((10, 10), 5, strip=2)

    @given(
        n0=st.integers(3, 12),
        n1=st.integers(3, 12),
        strip=st.integers(1, 2),
    )
    def test_property_strip_count(self, n0, n1, strip):
        irreg, r1, r2 = interface_mapping((n0, n1), n0 * n1 * 2, strip=strip)
        inner0 = max(0, n0 - 2 * strip)
        inner1 = max(0, n1 - 2 * strip)
        assert len(r1) == n0 * n1 - inner0 * inner1
