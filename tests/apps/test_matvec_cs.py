"""Client/server matvec application tests (§5.4 machinery)."""

import pytest

from repro.apps.matvec_cs import run_client_server_matvec
from repro.vmachine import ALPHA_FARM_ATM, IBM_SP2


class TestScenario:
    def test_phases_reported(self):
        t = run_client_server_matvec(1, 4, n=64, nvectors=2)
        assert t.sched_ms > 0
        assert t.matrix_ms > 0
        assert t.server_ms > 0
        assert t.vector_ms >= 0
        assert t.nvectors == 2
        assert t.total_ms == pytest.approx(
            t.sched_ms + t.matrix_ms + t.server_ms + t.vector_ms
        )

    def test_setup_amortized_over_vectors(self):
        """Paper Figure 14: schedule+matrix fixed, vector+compute linear."""
        t1 = run_client_server_matvec(1, 4, n=64, nvectors=1)
        t5 = run_client_server_matvec(1, 4, n=64, nvectors=5)
        assert t5.sched_ms == pytest.approx(t1.sched_ms, rel=0.05)
        assert t5.matrix_ms == pytest.approx(t1.matrix_ms, rel=0.05)
        assert t5.server_ms > 3 * t1.server_ms

    def test_server_compute_shrinks_with_processes_then_comm_grows(self):
        """Paper Figures 10-12: compute scales down with server processes,
        but schedule time rises again past ~4 processes (all-to-all message
        count plus ATM link contention)."""
        t2 = run_client_server_matvec(1, 2, n=256, nvectors=1)
        t4 = run_client_server_matvec(1, 4, n=256, nvectors=1)
        t16 = run_client_server_matvec(1, 16, n=256, nvectors=1)
        assert t16.server_ms < t2.server_ms
        assert t16.sched_ms > t4.sched_ms

    def test_parallel_client(self):
        t = run_client_server_matvec(4, 4, n=64, nvectors=1)
        assert t.total_ms > 0

    def test_local_alternative_scales_with_vectors_and_client(self):
        t1 = run_client_server_matvec(1, 4, n=128, nvectors=2)
        t2 = run_client_server_matvec(2, 4, n=128, nvectors=2)
        assert t1.local_alternative_ms == pytest.approx(
            2 * t2.local_alternative_ms
        )

    def test_speedup_emerges_with_enough_vectors(self):
        """Paper Figure 15: with enough multiplies by the same matrix, the
        server path beats the sequential client."""
        few = run_client_server_matvec(1, 8, n=512, nvectors=1,
                                       profile=ALPHA_FARM_ATM)
        many = run_client_server_matvec(1, 8, n=512, nvectors=20,
                                        profile=ALPHA_FARM_ATM)
        assert many.speedup_vs_local > few.speedup_vs_local
        assert many.speedup_vs_local > 1.0

    def test_profile_selectable(self):
        a = run_client_server_matvec(1, 2, n=64, nvectors=1, profile=IBM_SP2)
        b = run_client_server_matvec(1, 2, n=64, nvectors=1,
                                     profile=ALPHA_FARM_ATM)
        assert a.total_ms != b.total_ms
