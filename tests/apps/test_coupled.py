"""Coupled-mesh application tests (§5.1-5.2 machinery)."""

import numpy as np
import pytest

from repro.apps.coupled import (
    run_coupled_single_program,
    run_coupled_two_programs,
)
from repro.apps.meshes import full_remap_mapping, grid_mesh

SHAPE = (12, 12)
MESH = grid_mesh(12, 12)
MAPPING = full_remap_mapping(SHAPE, 144, seed=5)


class TestSingleProgram:
    @pytest.mark.parametrize("remap", ["mc-coop", "mc-dup", "chaos"])
    def test_runs_and_reports_phases(self, remap):
        t = run_coupled_single_program(
            4, SHAPE, MESH, MAPPING, timesteps=2, remap=remap
        )
        assert t.inspector_ms > 0
        assert t.executor_per_iter_ms > 0
        assert t.sched_ms > 0
        assert t.copy_per_iter_ms > 0
        assert t.timesteps == 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="remap"):
            run_coupled_single_program(2, SHAPE, MESH, MAPPING, remap="pvm")

    def test_duplication_costs_more_than_cooperation(self):
        coop = run_coupled_single_program(4, SHAPE, MESH, MAPPING, remap="mc-coop")
        dup = run_coupled_single_program(4, SHAPE, MESH, MAPPING, remap="mc-dup")
        assert dup.sched_ms > coop.sched_ms

    def test_sched_time_decreases_with_procs(self):
        t2 = run_coupled_single_program(2, SHAPE, MESH, MAPPING, remap="mc-coop")
        t8 = run_coupled_single_program(8, SHAPE, MESH, MAPPING, remap="mc-coop")
        assert t8.sched_ms < t2.sched_ms

    def test_block_partition_variant(self):
        t = run_coupled_single_program(
            2, SHAPE, MESH, MAPPING, remap="mc-coop", partition="block"
        )
        assert t.sched_ms > 0


class TestTwoPrograms:
    def test_runs_and_reports(self):
        t = run_coupled_two_programs(2, 2, SHAPE, MESH, MAPPING, timesteps=2)
        assert t.sched_ms > 0
        assert t.copy_per_iter_ms > 0

    def test_schedule_time_tracks_irregular_side(self):
        """Paper Table 3: 'most of the work is performed in Pirreg' —
        the build speeds up with more irregular-side processors, not with
        more regular-side processors."""
        base = run_coupled_two_programs(2, 2, SHAPE, MESH, MAPPING).sched_ms
        more_reg = run_coupled_two_programs(8, 2, SHAPE, MESH, MAPPING).sched_ms
        more_irr = run_coupled_two_programs(2, 8, SHAPE, MESH, MAPPING).sched_ms
        assert more_irr < 0.7 * base
        assert abs(more_reg - base) < 0.5 * base

    def test_copy_roughly_symmetric_in_program_sizes(self):
        """Paper Table 4: copy time is symmetric (both programs are source
        and destination once per step)."""
        a = run_coupled_two_programs(2, 4, SHAPE, MESH, MAPPING).copy_per_iter_ms
        b = run_coupled_two_programs(4, 2, SHAPE, MESH, MAPPING).copy_per_iter_ms
        assert abs(a - b) < 0.6 * max(a, b)


class TestNumericalEquivalence:
    """The three remap backends implement the same physics, and the
    results are processor-count invariant."""

    def test_backends_agree(self):
        sums = {
            remap: run_coupled_single_program(
                4, SHAPE, MESH, MAPPING, timesteps=3, remap=remap
            ).checksum
            for remap in ("mc-coop", "mc-dup", "chaos")
        }
        assert np.isclose(sums["mc-coop"], sums["mc-dup"])
        assert np.isclose(sums["mc-coop"], sums["chaos"])

    def test_processor_count_invariance(self):
        base = run_coupled_single_program(
            1, SHAPE, MESH, MAPPING, timesteps=2
        ).checksum
        for p in (2, 3, 8):
            got = run_coupled_single_program(
                p, SHAPE, MESH, MAPPING, timesteps=2
            ).checksum
            assert np.isclose(got, base), f"P={p}: {got} != {base}"

    def test_partition_invariance(self):
        rcb = run_coupled_single_program(
            4, SHAPE, MESH, MAPPING, timesteps=2, partition="rcb"
        ).checksum
        blk = run_coupled_single_program(
            4, SHAPE, MESH, MAPPING, timesteps=2, partition="block"
        ).checksum
        assert np.isclose(rcb, blk)

    def test_two_programs_match_single_program(self):
        single = run_coupled_single_program(
            4, SHAPE, MESH, MAPPING, timesteps=2
        ).checksum
        double = run_coupled_two_programs(
            2, 2, SHAPE, MESH, MAPPING, timesteps=2
        ).checksum
        assert np.isclose(single, double)
