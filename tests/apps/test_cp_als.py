"""Sparse CP-ALS over one-sided containers vs the serial NumPy oracle."""

import numpy as np
import pytest

from repro.apps.cp_als import cp_als_serial, cp_als_spmd, sparse_entries
from repro.vmachine import VirtualMachine

SHAPE = (12, 11, 10)
R = 3
NNZ = 200
ITERS = 3
SEED = 7


def run(nprocs, **kwargs):
    def spmd(comm):
        return cp_als_spmd(comm, shape=SHAPE, R=R, nnz=NNZ, iters=ITERS,
                           seed=SEED, **kwargs)

    return VirtualMachine(nprocs, recv_timeout_s=60.0).run(spmd)


@pytest.fixture(scope="module")
def oracle():
    return cp_als_serial(SHAPE, R, NNZ, ITERS, SEED)


class TestOracleMatch:
    @pytest.mark.parametrize("nprocs", [4, 8, 16])
    def test_accumulate_variant_matches(self, oracle, nprocs):
        res = run(nprocs)
        for r in range(nprocs):
            out = res.values[r]
            assert len(out.factors) == 3
            for mode in range(3):
                np.testing.assert_allclose(
                    out.factors[mode], oracle[mode], rtol=1e-10, atol=1e-12)

    def test_queue_variant_matches(self, oracle):
        res = run(4, use_queue=True)
        for mode in range(3):
            np.testing.assert_allclose(
                res.values[0].factors[mode], oracle[mode],
                rtol=1e-10, atol=1e-12)

    def test_assembly_partitions_all_nonzeros(self):
        res = run(4)
        coords, _ = sparse_entries(SHAPE, NNZ, SEED)
        keys = set(
            (int(c[0]) * SHAPE[1] + int(c[1])) * SHAPE[2] + int(c[2])
            for c in coords)
        assert sum(v.local_nnz for v in res.values) == len(keys)

    def test_one_sided_traffic_is_accounted(self):
        res = run(4)
        stats = res.values[0].stats
        total = lambda k: sum(v.stats.get(k, 0) for v in res.values)
        assert total("rma_gets") > 0
        assert total("rma_accs") > 0
        assert total("rma_bytes_got") > 0
        assert total("hashmap_writes") > 0
        assert stats["rma_fences"] > 0

    def test_deterministic_across_runs(self):
        a = run(4)
        b = run(4)
        for mode in range(3):
            assert (a.values[0].factors[mode].tobytes()
                    == b.values[0].factors[mode].tobytes())
        assert a.clocks == b.clocks

    def test_queue_and_accumulate_agree_closely(self):
        acc = run(4)
        que = run(4, use_queue=True)
        for mode in range(3):
            np.testing.assert_allclose(
                acc.values[0].factors[mode], que.values[0].factors[mode],
                rtol=1e-10, atol=1e-12)
