"""Unit tests of the service's admission control (pure, no VM)."""

import pytest

from repro.service import AdmissionControl, ServiceBusyError


class TestLimits:
    def test_rejects_nonpositive_limits(self):
        with pytest.raises(ValueError):
            AdmissionControl(0, 1)
        with pytest.raises(ValueError):
            AdmissionControl(1, 0)

    def test_tenant_cap_checked_before_watermark(self):
        ac = AdmissionControl(max_queue_depth=100, max_inflight_per_tenant=2)
        assert ac.try_admit(0).admitted
        assert ac.try_admit(1).admitted
        d = ac.try_admit(2)
        assert not d.admitted and "in-flight cap" in d.reason
        assert ac.shed_tenant_cap == 1 and ac.shed_queue_full == 0

    def test_watermark_sheds(self):
        ac = AdmissionControl(max_queue_depth=3, max_inflight_per_tenant=100)
        for _ in range(3):
            assert ac.try_admit(0).admitted
        d = ac.try_admit(0)
        assert not d.admitted and "watermark" in d.reason
        assert ac.shed_queue_full == 1
        assert ac.queue_high_water == 3  # never exceeds the watermark

    def test_dispatch_returns_credit(self):
        ac = AdmissionControl(max_queue_depth=2, max_inflight_per_tenant=10)
        ac.try_admit(0)
        ac.try_admit(0)
        assert not ac.try_admit(0).admitted
        ac.dispatched(2)
        assert ac.try_admit(0).admitted
        assert ac.queued == 1

    def test_dispatch_overdraw_raises(self):
        ac = AdmissionControl(2, 2)
        ac.try_admit(0)
        with pytest.raises(ValueError):
            ac.dispatched(2)

    def test_system_ops_bypass_limits(self):
        ac = AdmissionControl(max_queue_depth=1, max_inflight_per_tenant=1)
        assert ac.try_admit(0).admitted
        assert not ac.try_admit(0).admitted
        ac.enqueue_system()  # never refused
        assert ac.queued == 2
        assert ac.queue_high_water == 2

    def test_snapshot(self):
        ac = AdmissionControl(4, 2)
        ac.try_admit(0)
        ac.try_admit(2)  # shed: tenant cap
        snap = ac.snapshot()
        assert snap == {
            "admitted": 1,
            "shed_queue_full": 0,
            "shed_tenant_cap": 1,
            "queue_high_water": 1,
            "queued": 1,
        }


class _Metrics:
    def __init__(self):
        self.counts = {}

    def incr(self, name, amount=1):
        self.counts[name] = self.counts.get(name, 0) + amount


class TestMetricsMirror:
    def test_counters_mirrored(self):
        m = _Metrics()
        ac = AdmissionControl(1, 1, metrics=m)
        ac.try_admit(0)
        ac.try_admit(1)   # tenant cap
        ac.try_admit(0)   # queue full
        assert m.counts["svc_admitted"] == 1
        assert m.counts["svc_shed_tenant_cap"] == 1
        assert m.counts["svc_shed_queue_full"] == 1


class TestBusyError:
    def test_reason_carried(self):
        exc = ServiceBusyError("queue-depth watermark (8) reached")
        assert "busy" in str(exc)
        assert exc.reason.startswith("queue-depth")
