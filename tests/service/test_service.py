"""End-to-end tests of the multi-tenant coupling service.

Each test runs a two-program topology (gateway + server) under the
simulated VM: tenants are asyncio tasks on the gateway's rank 0, arrays
are distributed over the gateway ranks, and the server serves
:class:`~repro.dobj.server.ParallelObject` exports through batched
rounds with shared caches.
"""

import numpy as np
import pytest

from repro.apps.service_demo import DemoVectors, run_service_demo
from repro.service import (
    ArraySpec,
    RemoteServiceError,
    ServiceBusyError,
    ServiceConfig,
    TenantSpec,
    run_service_gateway,
    serve_service,
)
from repro.vmachine import ProgramSpec, run_programs

N = 24


def run_fleet(tenants, config=None, sizes=(N,), gateway_procs=2,
              server_procs=3):
    """Run a custom tenant fleet against a DemoVectors server; returns
    (ServiceReport, server summary, CoupledResult)."""
    config = config or ServiceConfig()

    def gateway(ctx):
        return run_service_gateway(ctx, "server", tenants, config)

    def server(ctx):
        return serve_service(
            ctx, "gateway", {"vec": DemoVectors(ctx.comm, list(sizes))},
            config,
        )

    res = run_programs(
        [ProgramSpec("gateway", gateway_procs, gateway),
         ProgramSpec("server", server_procs, server)]
    )
    return res["gateway"].values[0], res["server"].values[0], res


class TestRoundtrips:
    @pytest.mark.parametrize("policy", ["ordered", "overlap"])
    def test_independent_tenants_roundtrip(self, policy):
        """Each tenant owns a distinct server vector: push, server-side
        compute, pull, gather — all values exact."""
        report, summary = run_service_demo(
            tenants=4, shapes=4, iterations=2, policy=policy, size=N,
        )[0:2]
        assert report.ok
        for i, t in enumerate(report.tenants):
            size = N + 8 * (i % 4)
            fill = float(i % 7 + 1)
            assert t.result == pytest.approx(size * fill)
        assert summary["ops_served"] > 0

    def test_push_scale_pull_gather(self):
        """Bulk data is element-exact through push -> scale -> pull."""

        async def body(session):
            await session.create_array(
                "x", ArraySpec("blockparti", N, fill=("arange",))
            )
            b = await session.bind("vec", "v0", "x")
            await session.push(b)
            await session.call("vec", "scale", "v0", 3.0)
            await session.pull(b)
            g = await session.gather("x")
            await session.close()
            return g

        report, _, _ = run_fleet([TenantSpec("t0", body)])
        assert report.ok
        np.testing.assert_allclose(
            report.tenants[0].result, np.arange(N, dtype=float) * 3.0
        )

    def test_reliability_roundtrip(self):
        report, _ = run_service_demo(
            tenants=3, shapes=3, iterations=1, reliability=True, size=N,
        )[0:2]
        assert report.ok


class TestSharedCaches:
    def test_one_build_serves_every_tenant(self):
        """Tenants with identical array signatures share one collective
        schedule build — the tentpole's economics."""
        report, summary = run_service_demo(
            tenants=8, shapes=1, iterations=1, size=N,
        )[0:2]
        assert report.ok
        assert report.cache["schedule_misses"] == 1
        assert report.cache["schedule_hits"] == 7
        # The server's mirror cache agrees (negotiated coherently).
        assert summary["schedule_misses"] == 1
        assert summary["schedule_hits"] == 7

    def test_distinct_signatures_build_separately(self):
        report, _ = run_service_demo(
            tenants=8, shapes=4, iterations=1, size=N,
        )[0:2]
        assert report.ok
        assert report.cache["schedule_misses"] == 4
        assert report.cache["schedule_hits"] == 4

    def test_fused_plans_cached_across_rounds(self):
        """Iterating tenants reuse the fused per-round plan."""
        report, _ = run_service_demo(
            tenants=4, shapes=1, iterations=3, size=N,
        )[0:2]
        assert report.ok
        assert report.cache["plan_hits"] > 0
        # Lowered move programs are shared through the cached schedule.
        assert report.cache["halves_lowered"] <= report.cache["halves"]

    def test_bounded_cache_evicts_and_still_correct(self):
        report, _ = run_service_demo(
            tenants=6, shapes=3, iterations=2, size=N,
            schedule_cache_size=2, plan_cache_size=2,
        )[0:2]
        assert report.ok
        assert report.cache["schedule_evictions"] > 0


class TestBackpressure:
    def test_inflight_cap_sheds_and_tenant_survives(self):
        shed_seen = []

        def make(name):
            async def body(session):
                import asyncio

                async def one(i):
                    try:
                        return await session.call("vec", "total", "v0")
                    except ServiceBusyError:
                        shed_seen.append(name)
                        return None
                results = await asyncio.gather(*(one(i) for i in range(6)))
                await session.close()
                return sum(1 for r in results if r is not None)

            return TenantSpec(name, body)

        config = ServiceConfig(max_inflight_per_tenant=2)
        report, _, _ = run_fleet([make("t0"), make("t1")], config)
        assert report.ok
        total_shed = sum(t.ops_shed for t in report.tenants)
        assert total_shed > 0
        assert total_shed == len(shed_seen)
        # Every admitted op resolved: nothing wedged, nothing lost.
        for t in report.tenants:
            assert t.ops_ok == 6 - t.ops_shed

    def test_queue_watermark_bounds_depth(self):
        async def body(session):
            t = await session.call("vec", "total", "v0")
            await session.close()
            return t

        config = ServiceConfig(max_queue_depth=2)
        tenants = [TenantSpec(f"t{i}", body) for i in range(6)]
        report, _, _ = run_fleet(tenants, config)
        # Sheds raise in tenants that never retried -> those fail; the
        # watermark itself must never be exceeded.
        assert report.admission["queue_high_water"] <= 2
        shed = report.admission["shed_queue_full"]
        failed = [t for t in report.tenants if not t.ok]
        assert all("busy" in t.error for t in failed)
        assert (shed > 0) == bool(failed)
        # No tenant wedged: every task finished, every future resolved.
        assert len(report.tenants) == 6

    def test_all_admitted_when_under_limits(self):
        report, _ = run_service_demo(tenants=4, shapes=1, size=N)[0:2]
        assert report.ok
        assert report.admission["shed_queue_full"] == 0
        assert report.admission["shed_tenant_cap"] == 0


class TestLifecycle:
    def test_failing_tenant_evicted_others_unaffected(self):
        async def good(session):
            await session.create_array(
                "x", ArraySpec("blockparti", N, fill=("value", 2.0))
            )
            b = await session.bind("vec", "v0", "x")
            await session.push(b)
            t = await session.call("vec", "total", "v0")
            await session.close()
            return t

        async def bad(session):
            await session.create_array(
                "x", ArraySpec("blockparti", N, fill=("value", 9.0))
            )
            await session.bind("vec", "v0", "x")
            raise RuntimeError("tenant blew up")

        report, summary, res = run_fleet(
            [TenantSpec("good", good), TenantSpec("bad", bad)]
        )
        assert not report.ok
        assert report.tenant("good").ok
        assert report.tenant("good").result == pytest.approx(2.0 * N)
        assert "tenant blew up" in report.tenant("bad").error
        # The dead tenant's binding slot was reclaimed on the server.
        assert summary["bindings_live"] == 0
        assert res["gateway"].total_stat("svc_tenants_evicted") == 1

    def test_unbind_frees_slots_for_reuse(self):
        async def body(session):
            await session.create_array(
                "x", ArraySpec("blockparti", N)
            )
            slots = []
            for _ in range(4):
                b = await session.bind("vec", "v0", "x")
                slots.append(b.slot)
                await session.unbind(b)
            await session.close()
            return tuple(slots)

        report, summary, _ = run_fleet([TenantSpec("t0", body)])
        assert report.ok
        # Sequential bind/unbind cycles reuse one slot.
        assert report.tenants[0].result == (0, 0, 0, 0)
        assert summary["slot_high_water"] == 1

    def test_close_without_unbind_reclaims(self):
        async def body(session):
            await session.create_array("x", ArraySpec("blockparti", N))
            await session.bind("vec", "v0", "x")
            await session.close()  # disconnect releases the slot
            return True

        report, summary, _ = run_fleet([TenantSpec("t0", body)])
        assert report.ok
        assert summary["bindings_live"] == 0

    def test_forgotten_close_auto_reclaims(self):
        async def body(session):
            await session.create_array("x", ArraySpec("blockparti", N))
            await session.bind("vec", "v0", "x")
            return True  # no close(): the dispatcher cleans up

        report, summary, _ = run_fleet([TenantSpec("t0", body)])
        assert report.ok
        assert summary["bindings_live"] == 0

    def test_ops_after_close_raise(self):
        async def body(session):
            await session.close()
            try:
                await session.call("vec", "total", "v0")
            except Exception as exc:
                return type(exc).__name__
            return "no error"

        report, _, _ = run_fleet([TenantSpec("t0", body)])
        assert report.tenants[0].result == "SessionClosedError"


class TestErrors:
    def test_bind_unknown_attr_fails_cleanly(self):
        async def body(session):
            await session.create_array("x", ArraySpec("blockparti", N))
            try:
                await session.bind("vec", "nope", "x")
            except RemoteServiceError as exc:
                err = str(exc)
            else:
                err = "bound?!"
            # The session (and the negotiation channel) survive: a real
            # bind plus a transfer still work afterwards.
            b = await session.bind("vec", "v0", "x")
            await session.push(b)
            t = await session.call("vec", "total", "v0")
            await session.close()
            return (err, t)

        report, _, _ = run_fleet([TenantSpec("t0", body)])
        assert report.ok
        err, t = report.tenants[0].result
        assert "KeyError" in err
        assert t == pytest.approx(0.0)

    def test_call_error_propagates_oneway_does_not(self):
        async def body(session):
            try:
                await session.call("vec", "no_such_method")
            except RemoteServiceError as exc:
                err = str(exc)
            await session.call_oneway("vec", "no_such_method")  # silent
            t = await session.call("vec", "total", "v0")
            await session.close()
            return (err, t)

        report, _, res = run_fleet([TenantSpec("t0", body)])
        assert report.ok
        err, t = report.tenants[0].result
        assert "no remote method" in err
        assert t == 0.0
        assert res["server"].total_stat("svc_oneway_errors") > 0

    def test_unknown_object_reported(self):
        async def body(session):
            try:
                await session.call("ghost", "total")
            except RemoteServiceError as exc:
                return str(exc)
            finally:
                await session.close()

        report, _, _ = run_fleet([TenantSpec("t0", body)])
        assert "no object" in report.tenants[0].result


class TestBatching:
    def test_concurrent_tenants_batch_into_few_rounds(self):
        """8 tenants' identical op streams coalesce: far fewer rounds
        than total ops, and fused moves on the wire."""
        from repro.apps.service_demo import demo_tenant

        fleet = [
            TenantSpec(f"t{i}", demo_tenant("v0", N, 1, float(i + 1)))
            for i in range(8)
        ]
        report, _, res = run_fleet(fleet)
        assert report.ok
        total_ops = sum(t.ops_ok for t in report.tenants)
        assert report.rounds < total_ops / 2
        assert res["gateway"].total_stat("plan_fused_messages") > 0

    def test_small_cache_with_duplicate_binds_in_one_round(self):
        """Regression: a within-round dedup'd bind whose schedule was
        evicted by a later store in the same round must trigger the
        symmetric fallback rebuild, not a protocol error."""
        report, summary = run_service_demo(
            tenants=6, shapes=3, iterations=1, size=N,
            schedule_cache_size=2,
        )[0:2]
        assert report.ok
        assert summary["bindings_live"] == 0
