"""Unit and in-VM tests of the shared cross-tenant cache hierarchy."""

import numpy as np
import pytest

import repro.blockparti  # noqa: F401 - registers the adapter
import repro.hpf  # noqa: F401
from repro.blockparti import BlockPartiArray
from repro.core import (
    ScheduleMethod,
    SectionRegion,
    mc_compute_schedule,
    mc_new_set_of_regions,
)
from repro.distrib.section import Section
from repro.dobj.protocol import SlotTable
from repro.service import ServiceCache, array_signature, bind_key
from repro.vmachine import VirtualMachine


def key(i):
    return ("bind", "obj", "attr", ("lib", f"sig{i}"))


class TestScheduleLayer:
    def test_miss_then_hit(self):
        c = ServiceCache()
        assert c.lookup_schedule(key(0)) is None
        c.store_schedule(key(0), "sched0")
        assert c.lookup_schedule(key(0)) == "sched0"
        assert c.counters["schedule_misses"] == 1
        assert c.counters["schedule_hits"] == 1

    def test_peek_moves_no_counters(self):
        c = ServiceCache()
        assert not c.peek_schedule(key(0))
        c.store_schedule(key(0), "s")
        assert c.peek_schedule(key(0))
        assert c.counters["schedule_hits"] == 0
        assert c.counters["schedule_misses"] == 0

    def test_lru_eviction_order(self):
        c = ServiceCache(schedule_maxsize=2)
        c.store_schedule(key(0), "a")
        c.store_schedule(key(1), "b")
        c.lookup_schedule(key(0))          # refresh key 0
        c.store_schedule(key(2), "c")      # evicts key 1, not key 0
        assert c.peek_schedule(key(0))
        assert not c.peek_schedule(key(1))
        assert c.counters["schedule_evictions"] == 1

    def test_note_build_counts_forced_rebuild(self):
        c = ServiceCache()
        c.note_build(key(0))               # plain cold miss
        assert c.counters["schedule_forced_rebuilds"] == 0
        c.store_schedule(key(0), "s")
        c.note_build(key(0))               # held it, peer missed: forced
        assert c.counters["schedule_forced_rebuilds"] == 1
        assert c.counters["schedule_misses"] == 2

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            ServiceCache(schedule_maxsize=0)
        with pytest.raises(ValueError):
            ServiceCache(plan_maxsize=-1)

    def test_eviction_invalidates_plans_over_member(self):
        c = ServiceCache(schedule_maxsize=1)
        c.store_schedule(key(0), "a")
        # Plant a fake plan entry keyed over member key(0).
        c._plans[("push", (key(0),))] = "plan"
        c.store_schedule(key(1), "b")      # evicts key(0)
        assert ("push", (key(0),)) not in c._plans
        assert c.counters["plan_invalidations"] == 1


class TestMetricsMirror:
    def test_counters_land_in_registry(self):
        class Reg:
            def __init__(self):
                self.counts = {}

            def incr(self, name, amount=1):
                self.counts[name] = self.counts.get(name, 0) + amount

        reg = Reg()
        c = ServiceCache(metrics=reg)
        c.lookup_schedule(key(0))
        c.store_schedule(key(0), "s")
        c.lookup_schedule(key(0))
        assert reg.counts["cache_svc_schedule_misses"] == 1
        assert reg.counts["cache_svc_schedule_hits"] == 1


def _schedules_in_vm(nprocs=2, n=12):
    """Build two real same-universe schedules (full and strided copies)."""

    def spmd(comm):
        src = BlockPartiArray.from_global(comm, np.arange(n, dtype=float))
        dst = BlockPartiArray.from_global(comm, np.zeros(n))
        full = mc_new_set_of_regions(SectionRegion(Section.full((n,))))
        half = mc_new_set_of_regions(
            SectionRegion(Section((0,), (n,), (2,)))
        )
        s1 = mc_compute_schedule(
            comm, "blockparti", src, full, "blockparti", dst, full,
            ScheduleMethod.COOPERATION,
        )
        s2 = mc_compute_schedule(
            comm, "blockparti", src, half, "blockparti", dst, half,
            ScheduleMethod.COOPERATION,
        )
        return src, s1, s2

    return spmd


class TestPlanLayer:
    def test_plan_for_compiles_once_per_key(self):
        calls = []

        def run(comm):
            src, s1, s2 = _schedules_in_vm()(comm)
            c = ServiceCache()
            c.store_schedule(key(1), s1)
            c.store_schedule(key(2), s2)

            def lazy():
                calls.append(1)
                return [s1, s2]

            p1 = c.plan_for("push", [key(1), key(2)], lazy)
            p2 = c.plan_for("push", [key(1), key(2)], lazy)
            assert p1 is p2
            # Different direction or member order is a different plan.
            p3 = c.plan_for("pull", [key(1), key(2)], [s1, s2])
            p4 = c.plan_for("push", [key(2), key(1)], [s2, s1])
            assert p3 is not p1 and p4 is not p1
            return (
                c.counters["plan_hits"],
                c.counters["plan_misses"],
                c.plan_count,
            )

        res = VirtualMachine(2).run(run)
        hits, misses, entries = res.values[0]
        assert (hits, misses, entries) == (1, 3, 3)
        # The lazy schedule thunk ran only on the miss.
        assert len(calls) == 2  # one per rank, not one per lookup

    def test_plan_maxsize_evicts(self):
        def run(comm):
            _, s1, s2 = _schedules_in_vm()(comm)
            c = ServiceCache(plan_maxsize=1)
            c.store_schedule(key(1), s1)
            c.store_schedule(key(2), s2)
            c.plan_for("push", [key(1)], [s1])
            c.plan_for("push", [key(2)], [s2])
            return c.counters["plan_evictions"], c.plan_count

        res = VirtualMachine(2).run(run)
        assert res.values[0] == (1, 1)

    def test_program_stats_tracks_lowered_halves(self):
        from repro.core import mc_copy

        def run(comm):
            src, s1, _ = _schedules_in_vm()(comm)
            dst = BlockPartiArray.from_global(
                comm, np.zeros(src.global_shape)
            )
            c = ServiceCache()
            c.store_schedule(key(1), s1)
            before = c.program_stats()
            mc_copy(comm, s1, src, dst)  # lowers the halves it executes
            after = c.program_stats()
            return before, after

        res = VirtualMachine(2).run(run)
        before, after = res.values[0]
        assert before["halves_lowered"] == 0
        assert after["halves_lowered"] > 0
        assert after["halves_lowered"] <= after["halves"]


class TestArraySignature:
    def test_signature_content_keyed(self):
        def run(comm):
            a = BlockPartiArray.from_global(comm, np.zeros(16))
            b = BlockPartiArray.from_global(comm, np.ones(16))
            c = BlockPartiArray.from_global(comm, np.zeros(20))
            full16 = mc_new_set_of_regions(
                SectionRegion(Section.full((16,)))
            )
            full16b = mc_new_set_of_regions(
                SectionRegion(Section.full((16,)))
            )
            full20 = mc_new_set_of_regions(
                SectionRegion(Section.full((20,)))
            )
            sa = array_signature("blockparti", a, full16)
            sb = array_signature("blockparti", b, full16b)
            sc = array_signature("blockparti", c, full20)
            return sa == sb, sa == sc, sa

        res = VirtualMachine(2).run(run)
        same, different, sig = res.values[0]
        assert same            # values don't matter, layout does
        assert not different   # size does
        # Every rank computes the identical signature.
        assert all(v[2] == sig for v in res.values)

    def test_bind_key_embeds_signature(self):
        k = bind_key("vec", "v", ("blockparti", "d", "s", "<f8"))
        assert k[0] == "bind" and k[1] == "vec" and k[2] == "v"


class TestSlotPreview:
    def test_preview_matches_acquire_sequence(self):
        t = SlotTable()
        for _ in range(4):
            t.acquire()
        t.release(1)
        t.release(3)
        assert t.preview(3) == [1, 3, 4]
        assert [t.acquire() for _ in range(3)] == [1, 3, 4]

    def test_preview_does_not_mutate(self):
        t = SlotTable()
        assert t.preview(2) == [0, 1]
        assert t.preview(2) == [0, 1]
        assert t.capacity == 0
