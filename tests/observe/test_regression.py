"""Benchmark-regression detector tests (observe.regression +
benchmarks/check_regression.py CLI)."""

import copy
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.observe import compare_benchmarks, iter_ms_fields

REPO = Path(__file__).resolve().parent.parent.parent
CHECKER = REPO / "benchmarks" / "check_regression.py"

BASELINE = {
    "benchmark": "overlap",
    "workload": "remap",
    "results": {
        "P4": {
            "nprocs": 4,
            "ordered_ms": 10.0,
            "overlap_ms": 8.0,
            "improvement_pct": 20.0,
            "identical_destination": True,
            "messages": {"ordered": 48, "overlap": 48},
            "nested": {"fence_ms": 1.0},
        },
        "P8": {"nprocs": 8, "ordered_ms": 20.0, "overlap_ms": 15.0},
    },
}


class TestIterMsFields:
    def test_finds_nested_ms_leaves(self):
        fields = dict(iter_ms_fields(BASELINE["results"]["P4"]))
        assert fields == {
            "ordered_ms": 10.0,
            "overlap_ms": 8.0,
            "nested.fence_ms": 1.0,
        }

    def test_skips_bools_and_non_ms(self):
        fields = dict(iter_ms_fields({"x_ms": True, "y": 3, "z_pct": 1.0}))
        assert fields == {}


class TestCompare:
    def test_identical_is_clean(self):
        regs, drifts = compare_benchmarks(BASELINE, BASELINE)
        assert regs == [] and drifts == []

    def test_ten_percent_regression_flagged(self):
        cur = copy.deepcopy(BASELINE)
        cur["results"]["P4"]["ordered_ms"] *= 1.10
        regs, _ = compare_benchmarks(BASELINE, cur, threshold_pct=5.0)
        (r,) = regs
        assert r.config == "P4" and r.field == "ordered_ms"
        assert r.pct == pytest.approx(10.0)
        assert "ordered_ms" in str(r)

    def test_within_threshold_passes(self):
        cur = copy.deepcopy(BASELINE)
        cur["results"]["P4"]["ordered_ms"] *= 1.04
        regs, _ = compare_benchmarks(BASELINE, cur, threshold_pct=5.0)
        assert regs == []

    def test_improvement_never_flags(self):
        cur = copy.deepcopy(BASELINE)
        cur["results"]["P4"]["ordered_ms"] *= 0.5
        regs, _ = compare_benchmarks(BASELINE, cur, threshold_pct=5.0)
        assert regs == []

    def test_non_timing_change_is_drift(self):
        cur = copy.deepcopy(BASELINE)
        cur["results"]["P4"]["messages"]["ordered"] = 50
        cur["results"]["P4"]["identical_destination"] = False
        regs, drifts = compare_benchmarks(BASELINE, cur)
        assert regs == []
        assert {(d.config, d.field) for d in drifts} == {
            ("P4", "messages.ordered"),
            ("P4", "identical_destination"),
        }

    def test_missing_and_new_configs_are_drift(self):
        cur = copy.deepcopy(BASELINE)
        del cur["results"]["P8"]
        cur["results"]["P16"] = {"ordered_ms": 1.0}
        regs, drifts = compare_benchmarks(BASELINE, cur)
        assert regs == []
        assert {d.config for d in drifts} == {"P8", "P16"}

    def test_removed_ms_leaf_is_a_regression(self):
        # A regenerated trajectory that silently drops a timing leaf must
        # fail the guard, not pass as "OK with drift".
        cur = copy.deepcopy(BASELINE)
        del cur["results"]["P4"]["overlap_ms"]
        regs, drifts = compare_benchmarks(BASELINE, cur)
        (r,) = regs
        assert (r.config, r.field) == ("P4", "overlap_ms")
        assert r.baseline == 8.0 and r.current is None
        assert r.pct == float("inf")
        assert "MISSING" in str(r) and "removed" in str(r)
        assert not any(d.field == "overlap_ms" for d in drifts)

    def test_removed_nested_ms_leaf_is_a_regression(self):
        cur = copy.deepcopy(BASELINE)
        del cur["results"]["P4"]["nested"]["fence_ms"]
        regs, _ = compare_benchmarks(BASELINE, cur)
        assert [(r.config, r.field) for r in regs] == [("P4", "nested.fence_ms")]

    def test_added_ms_leaf_is_drift_not_regression(self):
        # A *new* timing leaf is an intentional baseline extension: report
        # it, but do not fail.
        cur = copy.deepcopy(BASELINE)
        cur["results"]["P4"]["extra_ms"] = 2.5
        regs, drifts = compare_benchmarks(BASELINE, cur)
        assert regs == []
        (d,) = [d for d in drifts if d.field == "extra_ms"]
        assert d.baseline == "missing" and d.current == 2.5


class TestCheckerCLI:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, str(CHECKER), *argv],
            capture_output=True, text=True, cwd=REPO,
        )

    def test_explicit_pair_detects_regression(self, tmp_path):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(BASELINE))
        inflated = copy.deepcopy(BASELINE)
        inflated["results"]["P8"]["overlap_ms"] *= 1.10
        cur.write_text(json.dumps(inflated))
        r = self._run("--baseline", str(base), "--current", str(cur))
        assert r.returncode == 1
        assert "REGRESSION" in r.stdout and "overlap_ms" in r.stdout

    def test_removed_leaf_fails_cli(self, tmp_path):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(BASELINE))
        shrunk = copy.deepcopy(BASELINE)
        del shrunk["results"]["P8"]["overlap_ms"]
        cur.write_text(json.dumps(shrunk))
        r = self._run("--baseline", str(base), "--current", str(cur))
        assert r.returncode == 1
        assert "REGRESSION" in r.stdout and "MISSING" in r.stdout

    def test_added_leaf_passes_cli_with_drift_note(self, tmp_path):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(BASELINE))
        grown = copy.deepcopy(BASELINE)
        grown["results"]["P8"]["extra_ms"] = 1.0
        cur.write_text(json.dumps(grown))
        r = self._run("--baseline", str(base), "--current", str(cur))
        assert r.returncode == 0, r.stdout + r.stderr
        assert "drift" in r.stdout and "extra_ms" in r.stdout

    def test_explicit_pair_clean(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(BASELINE))
        r = self._run("--baseline", str(base), "--current", str(base))
        assert r.returncode == 0, r.stdout + r.stderr
        assert "OK" in r.stdout

    def test_self_test_mode(self):
        r = self._run("--self-test", "BENCH_overlap.json")
        assert r.returncode == 0, r.stdout + r.stderr
        assert "self-test OK" in r.stdout

    def test_committed_baselines_pass(self):
        r = self._run("BENCH_overlap.json", "BENCH_fusion.json",
                      "BENCH_reliability.json")
        assert r.returncode == 0, r.stdout + r.stderr


class TestCheckerErrorHandling:
    """Missing/malformed inputs fail with a message, not a traceback."""

    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, str(CHECKER), *argv],
            capture_output=True, text=True, cwd=REPO,
        )

    def test_missing_file_is_clear_error(self, tmp_path):
        r = self._run("--baseline", str(tmp_path / "gone.json"),
                      "--current", str(tmp_path / "gone.json"))
        assert r.returncode == 2
        assert "no such benchmark file" in r.stderr
        assert "bench_" in r.stderr  # tells the user how to regenerate
        assert "Traceback" not in r.stderr

    def test_malformed_json_is_clear_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        r = self._run("--baseline", str(bad), "--current", str(bad))
        assert r.returncode == 2
        assert "malformed benchmark JSON" in r.stderr
        assert "Traceback" not in r.stderr

    def test_non_object_json_is_clear_error(self, tmp_path):
        bad = tmp_path / "list.json"
        bad.write_text("[1, 2, 3]")
        r = self._run("--baseline", str(bad), "--current", str(bad))
        assert r.returncode == 2
        assert "expected a JSON object" in r.stderr

    def test_missing_self_test_file_is_clear_error(self, tmp_path):
        r = self._run("--self-test", str(tmp_path / "gone.json"))
        assert r.returncode == 2
        assert "no such benchmark file" in r.stderr
        assert "Traceback" not in r.stderr

    def test_new_trajectory_passes_with_note(self):
        # A file with no committed ancestor must live inside the repo for
        # the HEAD lookup; clean it up afterwards.
        fresh = REPO / "BENCH_test_new_trajectory.json"
        fresh.write_text(json.dumps(BASELINE))
        try:
            r = self._run(fresh.name)
            assert r.returncode == 0, r.stdout + r.stderr
            assert "new trajectory" in r.stdout
            assert "OK" in r.stdout
        finally:
            fresh.unlink()
