"""Observability must not perturb the model: enabling it leaves logical
clocks and destination arrays byte-identical, and per-rank cost-term
totals reproduce each rank's clock (the ISSUE's 1e-9 acceptance bound).
"""

import numpy as np
import pytest

from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import (
    ExecutorPolicy,
    IndexRegion,
    ScheduleMethod,
    SectionRegion,
    mc_compute_plan,
    mc_compute_schedule,
    mc_copy,
    mc_copy_many,
    mc_new_set_of_regions,
)
from repro.distrib.section import Section
from repro.vmachine import VirtualMachine

N = 8
PROCS = 4


def make_spmd(method: ScheduleMethod, policy: ExecutorPolicy):
    perm = np.random.default_rng(7).permutation(N * N)

    def spmd(comm):
        A = BlockPartiArray.from_function(
            comm, (N, N), lambda i, j: 1.0 * i * N + j
        )
        B = ChaosArray.zeros(comm, perm % comm.size)
        sched = mc_compute_schedule(
            comm, "blockparti", A,
            mc_new_set_of_regions(SectionRegion(Section.full((N, N)))),
            "chaos", B, mc_new_set_of_regions(IndexRegion(perm)),
            method, policy=policy,
        )
        mc_copy(comm, sched, A, B, policy=policy)
        plan = mc_compute_plan([sched])
        mc_copy_many(comm, plan, [A], [B], policy=policy)
        return B.local.tobytes()

    return spmd


CASES = [
    (m, p)
    for m in (ScheduleMethod.COOPERATION, ScheduleMethod.DUPLICATION)
    for p in (ExecutorPolicy.ORDERED, ExecutorPolicy.OVERLAP)
]


@pytest.mark.parametrize(
    "method,policy", CASES,
    ids=[f"{m.value}-{p.value}" for m, p in CASES],
)
class TestByteIdentity:
    def test_observe_is_invisible_to_the_model(self, method, policy):
        spmd = make_spmd(method, policy)
        plain = VirtualMachine(PROCS, observe=False).run(spmd)
        observed = VirtualMachine(PROCS, observe=True).run(spmd)
        # Logical clocks: byte-for-byte (no tolerance).
        assert observed.clocks == plain.clocks
        # Destination arrays: byte-for-byte.
        assert observed.values == plain.values

    def test_term_totals_reproduce_the_clock(self, method, policy):
        spmd = make_spmd(method, policy)
        res = VirtualMachine(PROCS, observe=True).run(spmd)
        for metrics, clock in zip(res.metrics, res.clocks):
            assert abs(metrics.attributed_seconds() - clock) < 1e-9
            # Every attributed second carries a known term name.
            from repro.observe import COST_TERMS
            assert set(metrics.term_totals()) <= set(COST_TERMS)


class TestCoupledObserve:
    SHAPE = (6, 8)
    G = np.random.default_rng(9).random(SHAPE)
    PERM = np.random.default_rng(10).permutation(48)

    @classmethod
    def _specs(cls):
        from repro.core import mc_data_move_recv, mc_data_move_send
        from repro.core.coupling import coupled_universe
        from repro.vmachine import ProgramSpec

        from helpers import index_sor, section_sor

        def src_prog(ctx):
            A = BlockPartiArray.from_global(ctx.comm, cls.G)
            uni = coupled_universe(ctx, "dstp", "src")
            sched = mc_compute_schedule(
                uni, "blockparti", A,
                section_sor((slice(0, 6), slice(0, 8)), cls.SHAPE),
                "chaos", None, None,
            )
            mc_data_move_send(uni, sched, A)
            return None

        def dst_prog(ctx):
            B = ChaosArray.zeros(ctx.comm, cls.PERM % ctx.comm.size)
            uni = coupled_universe(ctx, "srcp", "dst")
            sched = mc_compute_schedule(
                uni, "blockparti", None, None,
                "chaos", B, index_sor(cls.PERM),
            )
            mc_data_move_recv(uni, sched, B)
            return B.local.tobytes()

        return [
            ProgramSpec("srcp", 2, src_prog),
            ProgramSpec("dstp", 2, dst_prog),
        ]

    def test_run_programs_identity_and_attribution(self):
        from repro.vmachine import run_programs

        plain = run_programs(self._specs(), observe=False)
        observed = run_programs(self._specs(), observe=True)
        for name in ("srcp", "dstp"):
            assert observed[name].clocks == plain[name].clocks
            assert observed[name].values == plain[name].values
            for metrics, clock in zip(
                observed[name].metrics, observed[name].clocks
            ):
                assert abs(metrics.attributed_seconds() - clock) < 1e-9
                assert len(observed[name].spans) == 2
