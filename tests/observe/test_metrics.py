"""MetricsRegistry / MetricsSnapshot unit tests."""

from repro.observe import COST_TERMS, MetricsRegistry, MetricsSnapshot


class TestCounters:
    def test_base_counters_present(self):
        m = MetricsRegistry()
        for name in MetricsRegistry.BASE_COUNTERS:
            assert m.get(name) == 0

    def test_incr_creates_and_accumulates(self):
        m = MetricsRegistry()
        m.incr("faults_drop")
        m.incr("faults_drop")
        m.incr("bytes_sent", 128)
        assert m.get("faults_drop") == 2
        assert m.get("bytes_sent") == 128
        assert m.get("unknown", default=7) == 7

    def test_counters_dict_is_stats_compatible(self):
        # Historical code does `proc.stats["x"] = proc.stats.get("x", 0) + 1`
        m = MetricsRegistry()
        m.counters["arena_hits"] = m.counters.get("arena_hits", 0) + 1
        assert m.get("arena_hits") == 1


class TestTerms:
    def test_add_term_buckets_by_phase_and_term(self):
        m = MetricsRegistry(attributing=True)
        m.add_term("wire", "beta", 1.0)
        m.add_term("wire", "beta", 0.5)
        m.add_term("wire", "occupancy", 2.0)
        m.add_term("pack", "per_element", 4.0)
        assert m.terms[("wire", "beta")] == 1.5
        assert m.term_totals() == {
            "beta": 1.5, "occupancy": 2.0, "per_element": 4.0
        }
        assert m.phase_totals() == {"wire": 3.5, "pack": 4.0}
        assert m.attributed_seconds() == 7.5

    def test_cost_terms_taxonomy(self):
        assert COST_TERMS == (
            "alpha", "beta", "occupancy", "per_element", "rto", "other"
        )


class TestSnapshotDiff:
    def test_snapshot_is_immutable_copy(self):
        m = MetricsRegistry(attributing=True)
        m.incr("messages_sent")
        m.add_term("wire", "beta", 1.0)
        snap = m.snapshot()
        m.incr("messages_sent")
        m.add_term("wire", "beta", 1.0)
        assert snap.counters["messages_sent"] == 1
        assert snap.terms[("wire", "beta")] == 1.0
        assert isinstance(snap, MetricsSnapshot)

    def test_diff_drops_unchanged_keys(self):
        m = MetricsRegistry(attributing=True)
        m.incr("messages_sent", 3)
        m.add_term("wire", "beta", 1.0)
        before = m.snapshot()
        m.incr("bytes_sent", 64)
        m.add_term("wire", "alpha", 0.25)
        delta = m.snapshot().diff(before)
        assert delta.counters == {"bytes_sent": 64}
        assert delta.terms == {("wire", "alpha"): 0.25}
        assert delta.attributed_seconds() == 0.25
