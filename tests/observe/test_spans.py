"""Span-stack semantics on a real virtual processor."""

import pytest

from repro.vmachine import VirtualMachine
from repro.vmachine.cost_model import CostModel, IBM_SP2
from repro.vmachine.process import Process


def make_proc(observe: bool = True) -> Process:
    p = Process(0, 1, CostModel(IBM_SP2))
    if observe:
        p.enable_observability()
    return p


class TestSpanStack:
    def test_phase_tracks_innermost(self):
        p = make_proc()
        assert p.phase == "" and p.phase_path == ""
        with p.span("outer"):
            assert p.phase == "outer"
            with p.span("inner"):
                assert p.phase == "inner"
                assert p.phase_path == "outer/inner"
            assert p.phase == "outer"
        assert p.phase == ""

    def test_span_never_charges_clock(self):
        p = make_proc()
        before = p.clock
        with p.span("pack"):
            with p.span("nested"):
                pass
        assert p.clock == before

    def test_records_only_when_observing(self):
        p = make_proc(observe=False)
        with p.span("pack"):
            pass
        assert p.spans is None  # stack maintained, log not kept
        p2 = make_proc(observe=True)
        with p2.span("pack"):
            pass
        (rec,) = p2.spans
        assert rec.name == "pack" and rec.depth == 0 and rec.path == "pack"

    def test_record_fields(self):
        p = make_proc()
        with p.span("outer"):
            p.charge(1.0)
            with p.span("inner"):
                p.charge(0.5)
        inner, outer = p.spans  # closed in LIFO order
        assert (inner.name, inner.depth, inner.path) == ("inner", 1, "outer/inner")
        assert (outer.name, outer.depth, outer.path) == ("outer", 0, "outer")
        assert inner.duration == pytest.approx(0.5)
        assert outer.duration == pytest.approx(1.5)
        assert outer.start <= inner.start <= inner.end <= outer.end

    def test_exception_unwinds_stack(self):
        p = make_proc()
        with pytest.raises(ValueError):
            with p.span("outer"):
                with p.span("inner"):
                    raise ValueError("boom")
        assert p.phase == ""
        assert [s.name for s in p.spans] == ["inner", "outer"]


class TestAttribution:
    def test_charges_bucketed_by_phase_and_term(self):
        p = make_proc()
        with p.span("wire"):
            p.charge(2.0, term="occupancy")
        p.charge(1.0)  # untagged, outside any span
        assert p.metrics.terms[("wire", "occupancy")] == pytest.approx(2.0)
        assert p.metrics.terms[("", "other")] == pytest.approx(1.0)
        assert p.metrics.attributed_seconds() == pytest.approx(p.clock)

    def test_advance_to_is_alpha(self):
        p = make_proc()
        with p.span("wire"):
            p.advance_to(3.0)
        assert p.metrics.terms[("wire", "alpha")] == pytest.approx(3.0)
        assert p.clock == 3.0

    def test_attribution_off_by_default(self):
        p = make_proc(observe=False)
        p.charge(1.0)
        assert p.metrics.terms == {}

    def test_stats_property_aliases_counters(self):
        p = make_proc(observe=False)
        p.stats["custom"] = p.stats.get("custom", 0) + 2
        assert p.metrics.get("custom") == 2


class TestResultPlumbing:
    def test_vm_observe_collects_spans_and_metrics(self):
        def spmd(comm):
            with comm.process.span("work"):
                comm.barrier()
            return comm.rank

        res = VirtualMachine(2, observe=True).run(spmd)
        assert len(res.spans) == 2 and len(res.metrics) == 2
        for rank, (spans, metrics, clock) in enumerate(
            zip(res.spans, res.metrics, res.clocks)
        ):
            assert any(s.name == "work" for s in spans)
            assert metrics.attributed_seconds() == pytest.approx(
                clock, abs=1e-9
            )
        # observe implies tracing
        assert all(len(t) > 0 for t in res.traces)

    def test_vm_default_has_empty_observability(self):
        res = VirtualMachine(2).run(lambda comm: comm.barrier())
        assert all(s == [] for s in res.spans)
        assert all(m.terms == {} for m in res.metrics)
