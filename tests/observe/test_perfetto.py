"""Structural checks on the Chrome/Perfetto trace export."""

import json

import numpy as np
import pytest

from repro.core import (
    IndexRegion,
    SectionRegion,
    mc_compute_schedule,
    mc_copy,
    mc_new_set_of_regions,
)
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.distrib.section import Section
from repro.observe import chrome_trace, export_chrome_trace, write_chrome_trace
from repro.vmachine import VirtualMachine
from repro.vmachine.trace import TraceEvent

N = 8
PROCS = 4


@pytest.fixture(scope="module")
def observed_result():
    perm = np.random.default_rng(3).permutation(N * N)

    def spmd(comm):
        A = BlockPartiArray.from_function(comm, (N, N), lambda i, j: i * N + j)
        B = ChaosArray.zeros(comm, perm % comm.size)
        sched = mc_compute_schedule(
            comm, "blockparti", A,
            mc_new_set_of_regions(SectionRegion(Section.full((N, N)))),
            "chaos", B, mc_new_set_of_regions(IndexRegion(perm)),
        )
        mc_copy(comm, sched, A, B)
        return None

    return VirtualMachine(PROCS, observe=True).run(spmd)


class TestStructure:
    def test_document_shape(self, observed_result):
        doc = export_chrome_trace(observed_result)
        assert set(doc) >= {"traceEvents", "displayTimeUnit"}
        assert isinstance(doc["traceEvents"], list)
        # JSON-serializable as-is (what Perfetto actually loads)
        json.loads(json.dumps(doc))

    def test_rank_tracks(self, observed_result):
        doc = export_chrome_trace(observed_result)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        assert names == {f"rank {r}" for r in range(PROCS)}

    def test_spans_become_complete_events(self, observed_result):
        doc = export_chrome_trace(observed_result)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        nspans = sum(len(s) for s in observed_result.spans)
        assert len(xs) == nspans > 0
        for e in xs:
            assert e["dur"] >= 0 and e["ts"] >= 0
            assert 0 <= e["pid"] < PROCS
            assert "path" in e["args"]
        assert {"schedule:build", "wire", "copy:execute"} <= {
            e["name"] for e in xs
        }

    def test_flow_arrows_match_pairwise(self, observed_result):
        doc = export_chrome_trace(observed_result)
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        nsends = sum(
            1 for t in observed_result.traces for e in t if e.kind == "send"
        )
        nrecvs = sum(
            1 for t in observed_result.traces for e in t if e.kind == "recv"
        )
        assert len(starts) == nsends
        # buffered sends may outnumber completed receives, never vice versa
        assert len(finishes) == nrecvs
        start_ids = {e["id"] for e in starts}
        assert len(start_ids) == len(starts)  # unique flow ids
        assert {e["id"] for e in finishes} <= start_ids
        for e in finishes:
            assert e["bp"] == "e"


class TestDegradation:
    def test_unmatched_recv_becomes_instant(self):
        traces = [
            [],
            [TraceEvent("recv", 1.0, 1, 0, 5, 64, wait=0.5)],
        ]
        doc = chrome_trace(traces)
        kinds = {e["ph"] for e in doc["traceEvents"]}
        assert "f" not in kinds and "s" not in kinds
        (inst,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert inst["name"] == "recv" and inst["args"]["wait_us"] == 0.5e6

    def test_annotation_kinds_become_instants(self):
        traces = [[TraceEvent("fault:drop", 0.5, 0, 1, 9, 32,
                              phase="wire/fault:drop")]]
        doc = chrome_trace(traces)
        (inst,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert inst["name"] == "fault:drop"
        assert inst["args"]["phase"] == "wire/fault:drop"

    def test_trace_only_export_without_spans(self, observed_result):
        doc = chrome_trace(observed_result.traces)  # spans omitted
        assert not any(e["ph"] == "X" for e in doc["traceEvents"])
        assert any(e["ph"] == "s" for e in doc["traceEvents"])


class TestWriter:
    def test_write_round_trips(self, observed_result, tmp_path):
        path = tmp_path / "trace.json"
        doc = write_chrome_trace(str(path), observed_result)
        on_disk = json.loads(path.read_text())
        assert len(on_disk["traceEvents"]) == len(doc["traceEvents"])
