"""pC++ distributed-collection tests."""

import numpy as np
import pytest

from repro.pcxx import DistributedCollection
from repro.vmachine.machine import SPMDError

from helpers import run_spmd

N = 40
G = np.random.default_rng(26).random(N)


class TestLayouts:
    @pytest.mark.parametrize("layout", ["cyclic", "block"])
    def test_gather_roundtrip(self, layout):
        def spmd(comm):
            c = DistributedCollection.from_global(comm, G, layout)
            return c.gather_global()

        for p in (1, 2, 4):
            np.testing.assert_allclose(run_spmd(p, spmd).values[0], G)

    def test_explicit_layout(self):
        owners = np.random.default_rng(27).integers(0, 4, N)

        def spmd(comm):
            c = DistributedCollection.from_global(
                comm, G, "explicit", owners=owners % comm.size
            )
            return c.gather_global()

        np.testing.assert_allclose(run_spmd(4, spmd).values[0], G)

    def test_explicit_needs_owners(self):
        def spmd(comm):
            DistributedCollection.create(comm, N, "explicit")

        with pytest.raises(SPMDError, match="owners"):
            run_spmd(2, spmd)

    def test_unknown_layout(self):
        def spmd(comm):
            DistributedCollection.create(comm, N, "diagonal")

        with pytest.raises(SPMDError, match="unknown layout"):
            run_spmd(2, spmd)

    def test_cyclic_balance(self):
        def spmd(comm):
            c = DistributedCollection.create(comm, N)
            return c.local.size

        sizes = run_spmd(3, spmd).values
        assert sum(sizes) == N
        assert max(sizes) - min(sizes) <= 1


class TestElementParallel:
    def test_apply_uses_global_indices(self):
        def spmd(comm):
            c = DistributedCollection.create(comm, N)
            c.apply(lambda g, e: g * 2.0)
            return c.gather_global()

        np.testing.assert_allclose(
            run_spmd(4, spmd).values[0], 2.0 * np.arange(N)
        )

    def test_apply_composes(self):
        def spmd(comm):
            c = DistributedCollection.from_global(comm, G)
            c.apply(lambda g, e: e + 1.0)
            c.apply(lambda g, e: e * 3.0)
            return c.gather_global()

        np.testing.assert_allclose(run_spmd(2, spmd).values[0], 3.0 * (G + 1.0))

    def test_reduce(self):
        def spmd(comm):
            c = DistributedCollection.from_global(comm, G)
            return c.reduce(lambda a, b: a + b)

        vals = run_spmd(4, spmd).values
        for v in vals:
            assert v == pytest.approx(G.sum())

    def test_reduce_max(self):
        def spmd(comm):
            c = DistributedCollection.from_global(comm, G)
            return c.reduce(max, initial=-np.inf)

        assert run_spmd(3, spmd).values[0] == pytest.approx(G.max())
