"""Run-length wire-encoding tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.wire import RunEncoded, count_runs


class TestCountRuns:
    def test_empty(self):
        assert count_runs(np.array([])) == 0

    def test_singleton(self):
        assert count_runs(np.array([5])) == 1

    def test_pair_always_one_run(self):
        assert count_runs(np.array([5, 100])) == 1

    def test_arithmetic_progression(self):
        assert count_runs(np.arange(0, 1000, 7)) == 1

    def test_constant(self):
        assert count_runs(np.zeros(50, dtype=int)) == 1

    def test_two_blocks(self):
        arr = np.concatenate([np.arange(10), np.arange(100, 105)])
        assert count_runs(arr) <= 3  # greedy may add one singleton

    def test_random_is_many_runs(self):
        rng = np.random.default_rng(0)
        arr = rng.permutation(1000)
        assert count_runs(arr) > 300


class TestRunEncoded:
    def test_regular_offsets_compress(self):
        enc = RunEncoded(np.arange(0, 100_000, 3))
        assert enc.nbytes < 100  # vs 800 KB raw

    def test_irregular_offsets_stay_data_sized(self):
        rng = np.random.default_rng(1)
        enc = RunEncoded(rng.permutation(10_000))
        assert enc.nbytes > 10_000  # comparable to the raw data

    def test_array_is_copied(self):
        src = np.arange(10)
        enc = RunEncoded(src)
        src[0] = 99
        assert enc.array[0] == 0

    def test_len(self):
        assert len(RunEncoded(np.arange(7))) == 7

    def test_blockwise_structure(self):
        # 100 rows of 50 contiguous offsets each, row stride 1000: the
        # optimal encoding is 100 runs; the greedy splitter may emit one
        # extra singleton per row jump (its documented 2x bound).
        rows = [np.arange(r * 1000, r * 1000 + 50) for r in range(100)]
        enc = RunEncoded(np.concatenate(rows))
        assert 100 <= enc.nruns <= 200
        assert enc.nbytes <= 16 + 24 * 200  # ~5 KB vs 40 KB raw


@given(st.lists(st.integers(-1000, 1000), min_size=0, max_size=200))
def test_property_runs_bounded_by_length(values):
    arr = np.array(values, dtype=np.int64)
    r = count_runs(arr)
    assert 0 <= r <= max(1, len(arr))
    if len(arr) >= 1:
        assert r >= 1


@given(
    start=st.integers(-100, 100),
    step=st.integers(-10, 10),
    n=st.integers(1, 100),
)
def test_property_progressions_are_one_run(start, step, n):
    arr = start + step * np.arange(n)
    assert count_runs(arr) == 1


class TestSegmentLayout:
    def _headers(self):
        from repro.core.wire import SegmentHeader

        return (
            SegmentHeader(0, "<f8", 5),   # 40 B -> padded 48
            SegmentHeader(1, "<f4", 3),   # 12 B -> padded 16
            SegmentHeader(2, "<i8", 2),   # 16 B -> padded 16
        )

    def test_offsets_are_aligned(self):
        from repro.core.wire import SEGMENT_ALIGN, segment_layout

        offsets, total = segment_layout(self._headers())
        assert offsets == (0, 48, 64)
        assert total == 80
        assert all(o % SEGMENT_ALIGN == 0 for o in offsets)

    def test_header_sizes(self):
        from repro.core.wire import SegmentHeader

        h = SegmentHeader(3, "<f4", 7)
        assert h.itemsize == 4
        assert h.data_nbytes == 28

    def test_empty_headers(self):
        from repro.core.wire import segment_layout

        assert segment_layout(()) == ((), 0)


class TestFusedBuffer:
    def _fused(self):
        from repro.core.wire import FusedBuffer, SegmentHeader, segment_layout

        headers = (SegmentHeader(0, "<f8", 4), SegmentHeader(1, "<f4", 6))
        offsets, total = segment_layout(headers)
        data = np.zeros(total, dtype=np.uint8)
        fused = FusedBuffer(headers, data)
        fused.segment(0)[:] = np.arange(4, dtype=np.float64)
        fused.segment(1)[:] = np.arange(6, dtype=np.float32) * 0.5
        return fused

    def test_segment_views_roundtrip(self):
        fused = self._fused()
        np.testing.assert_array_equal(fused.segment(0), np.arange(4.0))
        np.testing.assert_array_equal(
            fused.segment(1), np.arange(6, dtype=np.float32) * 0.5
        )
        assert fused.segment(0).dtype == np.float64
        assert fused.segment(1).dtype == np.float32

    def test_segments_are_views_not_copies(self):
        fused = self._fused()
        fused.segment(0)[0] = 99.0
        assert fused.segment(0)[0] == 99.0  # both reads hit shared bytes

    def test_nbytes_charges_headers_and_padding(self):
        from repro.core.wire import FUSED_HEADER_BYTES, SEGMENT_HEADER_BYTES

        fused = self._fused()
        # 32 B f8 payload -> 32 padded; 24 B f4 payload -> 32 padded.
        assert fused.nbytes == FUSED_HEADER_BYTES + 2 * SEGMENT_HEADER_BYTES + 64
        assert len(fused) == 10  # logical elements across segments

    def test_short_data_rejected(self):
        from repro.core.wire import FusedBuffer, SegmentHeader

        with pytest.raises(ValueError):
            FusedBuffer(
                (SegmentHeader(0, "<f8", 4),), np.zeros(8, dtype=np.uint8)
            )

    def test_deepcopy_severs_lease(self):
        import copy

        from repro.vmachine.message import PackArena

        arena = PackArena({})
        from repro.core.wire import FusedBuffer, SegmentHeader, segment_layout

        headers = (SegmentHeader(0, "<f8", 2),)
        _, total = segment_layout(headers)
        lease = arena.checkout(total)
        fused = FusedBuffer(headers, lease.buffer, lease=lease)
        clone = copy.deepcopy(fused)
        clone.segment(0)[:] = 7.0
        clone.release()  # releases nothing: the copy owns private bytes
        assert arena.pooled_bytes == 0
        fused.release()
        assert arena.pooled_bytes > 0
        assert not np.shares_memory(clone.data, fused.data)

    def test_release_idempotent(self):
        from repro.vmachine.message import PackArena
        from repro.core.wire import FusedBuffer, SegmentHeader, segment_layout

        arena = PackArena({})
        headers = (SegmentHeader(0, "<f4", 2),)
        _, total = segment_layout(headers)
        lease = arena.checkout(total)
        fused = FusedBuffer(headers, lease.buffer, lease=lease)
        fused.release()
        fused.release()
        assert arena.pooled_bytes == 256  # pooled exactly once
