"""Run-length wire-encoding tests."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.wire import RunEncoded, count_runs


class TestCountRuns:
    def test_empty(self):
        assert count_runs(np.array([])) == 0

    def test_singleton(self):
        assert count_runs(np.array([5])) == 1

    def test_pair_always_one_run(self):
        assert count_runs(np.array([5, 100])) == 1

    def test_arithmetic_progression(self):
        assert count_runs(np.arange(0, 1000, 7)) == 1

    def test_constant(self):
        assert count_runs(np.zeros(50, dtype=int)) == 1

    def test_two_blocks(self):
        arr = np.concatenate([np.arange(10), np.arange(100, 105)])
        assert count_runs(arr) <= 3  # greedy may add one singleton

    def test_random_is_many_runs(self):
        rng = np.random.default_rng(0)
        arr = rng.permutation(1000)
        assert count_runs(arr) > 300


class TestRunEncoded:
    def test_regular_offsets_compress(self):
        enc = RunEncoded(np.arange(0, 100_000, 3))
        assert enc.nbytes < 100  # vs 800 KB raw

    def test_irregular_offsets_stay_data_sized(self):
        rng = np.random.default_rng(1)
        enc = RunEncoded(rng.permutation(10_000))
        assert enc.nbytes > 10_000  # comparable to the raw data

    def test_array_is_copied(self):
        src = np.arange(10)
        enc = RunEncoded(src)
        src[0] = 99
        assert enc.array[0] == 0

    def test_len(self):
        assert len(RunEncoded(np.arange(7))) == 7

    def test_blockwise_structure(self):
        # 100 rows of 50 contiguous offsets each, row stride 1000: the
        # optimal encoding is 100 runs; the greedy splitter may emit one
        # extra singleton per row jump (its documented 2x bound).
        rows = [np.arange(r * 1000, r * 1000 + 50) for r in range(100)]
        enc = RunEncoded(np.concatenate(rows))
        assert 100 <= enc.nruns <= 200
        assert enc.nbytes <= 16 + 24 * 200  # ~5 KB vs 40 KB raw


@given(st.lists(st.integers(-1000, 1000), min_size=0, max_size=200))
def test_property_runs_bounded_by_length(values):
    arr = np.array(values, dtype=np.int64)
    r = count_runs(arr)
    assert 0 <= r <= max(1, len(arr))
    if len(arr) >= 1:
        assert r >= 1


@given(
    start=st.integers(-100, 100),
    step=st.integers(-10, 10),
    n=st.integers(1, 100),
)
def test_property_progressions_are_one_run(start, step, n):
    arr = start + step * np.arange(n)
    assert count_runs(arr) == 1
