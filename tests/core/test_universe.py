"""Universe topology tests (single- and two-program)."""

import pytest

from repro.core.universe import SingleProgramUniverse, TwoProgramUniverse
from repro.vmachine import ProgramSpec, run_programs

from helpers import run_spmd


class TestSingleProgram:
    def test_roles_and_sizes(self):
        def spmd(comm):
            u = SingleProgramUniverse(comm)
            assert u.single_program
            assert u.src_size == u.dst_size == comm.size
            assert u.my_src_rank == u.my_dst_rank == comm.rank
            assert u.same_proc_dst(comm.rank)
            assert not u.same_proc_dst((comm.rank + 1) % comm.size) or comm.size == 1
            assert u.reversed() is u
            return True

        assert all(run_spmd(3, spmd).values)

    def test_send_recv_through_universe(self):
        def spmd(comm):
            u = SingleProgramUniverse(comm)
            if comm.rank == 0:
                u.send_to_dst(1, "x", 5)
            elif comm.rank == 1:
                return u.recv_from_src(0, 5)
            return None

        assert run_spmd(2, spmd).values[1] == "x"


class TestTwoProgram:
    def test_roles_and_sizes(self):
        def src_prog(ctx):
            u = TwoProgramUniverse(ctx.comm, ctx.peer("d"), "src")
            assert not u.single_program
            assert u.src_size == 2 and u.dst_size == 3
            assert u.my_src_rank == ctx.rank and u.my_dst_rank is None
            assert not u.same_proc_dst(0)
            r = u.reversed()
            assert r.my_dst_rank == ctx.rank and r.my_src_rank is None
            return True

        def dst_prog(ctx):
            u = TwoProgramUniverse(ctx.comm, ctx.peer("s"), "dst")
            assert u.src_size == 2 and u.dst_size == 3
            assert u.my_dst_rank == ctx.rank and u.my_src_rank is None
            return True

        res = run_programs(
            [ProgramSpec("s", 2, src_prog), ProgramSpec("d", 3, dst_prog)]
        )
        assert all(res["s"].values) and all(res["d"].values)

    def test_cross_group_messaging(self):
        def src_prog(ctx):
            u = TwoProgramUniverse(ctx.comm, ctx.peer("d"), "src")
            u.send_to_dst(0, f"s{ctx.rank}", 1)
            return True

        def dst_prog(ctx):
            u = TwoProgramUniverse(ctx.comm, ctx.peer("s"), "dst")
            if ctx.rank == 0:
                return sorted(u.recv_from_src(s, 1) for s in range(u.src_size))
            return None

        res = run_programs(
            [ProgramSpec("s", 3, src_prog), ProgramSpec("d", 2, dst_prog)]
        )
        assert res["d"].values[0] == ["s0", "s1", "s2"]

    def test_intra_group_messaging_through_universe(self):
        def src_prog(ctx):
            u = TwoProgramUniverse(ctx.comm, ctx.peer("d"), "src")
            if ctx.rank == 0:
                u.send_to_src(1, "intra", 2)
            elif ctx.rank == 1:
                return u.recv_from_src(0, 2)
            return None

        res = run_programs(
            [ProgramSpec("s", 2, src_prog), ProgramSpec("d", 1, lambda c: None)]
        )
        assert res["s"].values[1] == "intra"

    def test_invalid_role(self):
        def prog(ctx):
            with pytest.raises(ValueError, match="role"):
                TwoProgramUniverse(ctx.comm, ctx.peer("b"), "client")
            return True

        res = run_programs(
            [ProgramSpec("a", 1, prog), ProgramSpec("b", 1, lambda c: None)]
        )
        assert res["a"].values == [True]
