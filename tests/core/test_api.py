"""Paper-shaped API wrapper tests (§4.2, Figure 9)."""

import numpy as np
import pytest

import repro.hpf  # noqa: F401
from repro.core import (
    IndexRegion,
    mc_add_region_to_set,
    mc_compute_schedule,
    mc_copy,
    mc_data_move_recv,
    mc_data_move_send,
    mc_new_set_of_regions,
)
from repro.hpf import HPFArray, create_region_hpf

from helpers import run_spmd


class TestSetConstruction:
    def test_new_set_empty(self):
        sor = mc_new_set_of_regions()
        assert sor.size == 0

    def test_new_set_prefilled(self):
        sor = mc_new_set_of_regions(IndexRegion(np.arange(3)), IndexRegion(np.arange(2)))
        assert sor.size == 5

    def test_add_region_to_set(self):
        sor = mc_new_set_of_regions()
        out = mc_add_region_to_set(IndexRegion(np.arange(4)), sor)
        assert out is sor and sor.size == 4


class TestFigure9Flow:
    """The exact call sequence of the paper's Figure 9, in one program."""

    def test_full_sequence(self):
        def spmd(comm):
            B = HPFArray.from_function(
                comm, (20, 10), lambda i, j: 100.0 * i + j, ("block", "block")
            )
            A = HPFArray.distribute(comm, (5, 6), ("block", "block"))

            src_region = create_region_hpf(2, (5, 2), (9, 7))
            src_set = mc_new_set_of_regions()
            mc_add_region_to_set(src_region, src_set)

            dst_region = create_region_hpf(2, (0, 0), (4, 5))
            dst_set = mc_new_set_of_regions()
            mc_add_region_to_set(dst_region, dst_set)

            sched = mc_compute_schedule(
                comm, "hpf", B, src_set, "hpf", A, dst_set
            )
            # Within one program the send and receive halves can be driven
            # separately, like the paper's two-program code...
            mc_data_move_send(comm, sched, B)
            mc_data_move_recv(comm, sched, A)
            first = A.gather_global()
            # ...or as the one-shot copy.
            A.local[:] = 0.0
            mc_copy(comm, sched, B, A)
            second = A.gather_global()
            return first, second

        first, second = run_spmd(4, spmd).values[0]
        ii, jj = np.meshgrid(np.arange(5, 10), np.arange(2, 8), indexing="ij")
        expected = 100.0 * ii + jj
        np.testing.assert_allclose(second, expected)
        # The split path misses same-processor elements only via the
        # local-copy step that mc_copy performs; at 4 procs with these two
        # small arrays some elements are processor-local, so only the
        # one-shot result is guaranteed complete.  Where the split path
        # wrote, it must agree.
        mask = first != 0
        np.testing.assert_allclose(first[mask], expected[mask])
