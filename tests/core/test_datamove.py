"""Data-move engine tests: correctness against the sequential oracle,
message aggregation, and the direct-local-copy path."""

import numpy as np
import pytest

import repro.blockparti  # noqa: F401
import repro.chaos  # noqa: F401
import repro.hpf  # noqa: F401
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import ScheduleMethod, mc_compute_schedule, mc_copy
from repro.core.universe import SingleProgramUniverse
from repro.hpf import HPFArray
from repro.vmachine.machine import SPMDError

from helpers import both_methods, index_sor, oracle_copy, run_spmd, section_sor

SHAPE_A = (12, 10)
N_B = 80
GA = np.random.default_rng(2).random(SHAPE_A)
PERM = np.random.default_rng(3).permutation(N_B)


def _setup(comm):
    A = BlockPartiArray.from_global(comm, GA)
    B = ChaosArray.zeros(comm, (PERM * 7) % comm.size)
    src = section_sor((slice(2, 10), slice(0, 10)), SHAPE_A)
    dst = index_sor(PERM)
    return A, B, src, dst


class TestCopyCorrectness:
    @pytest.mark.parametrize("method", both_methods())
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 8])
    def test_copy_matches_oracle(self, method, nprocs):
        def spmd(comm):
            A, B, src, dst = _setup(comm)
            sched = mc_compute_schedule(
                comm, "blockparti", A, src, "chaos", B, dst, method
            )
            mc_copy(comm, sched, A, B)
            return B.gather_global()

        got = run_spmd(nprocs, spmd).values[0]
        expected = oracle_copy(GA, _make_src(), np.zeros(N_B), _make_dst())
        np.testing.assert_allclose(got, expected)

    @pytest.mark.parametrize("method", both_methods())
    def test_roundtrip_restores_source(self, method):
        def spmd(comm):
            A, B, src, dst = _setup(comm)
            sched = mc_compute_schedule(
                comm, "blockparti", A, src, "chaos", B, dst, method
            )
            mc_copy(comm, sched, A, B)
            A.local[:] = 0.0
            mc_copy(comm, sched.reverse(), B, A)
            return A.gather_global()

        got = run_spmd(4, spmd).values[0]
        expected = np.zeros(SHAPE_A)
        expected[2:10, 0:10] = GA[2:10, 0:10]
        np.testing.assert_allclose(got, expected)

    def test_repeated_moves_reuse_schedule(self):
        def spmd(comm):
            A, B, src, dst = _setup(comm)
            sched = mc_compute_schedule(comm, "blockparti", A, src, "chaos", B, dst)
            results = []
            for k in range(3):
                A.local[:] = GA[
                    tuple(slice(lo, hi) for lo, hi in A.owned_block())
                ].ravel() * (k + 1)
                mc_copy(comm, sched, A, B)
                results.append(B.gather_global())
            return results

        results = run_spmd(3, spmd).values[0]
        base = oracle_copy(GA, _make_src(), np.zeros(N_B), _make_dst())
        for k, got in enumerate(results):
            np.testing.assert_allclose(got, base * (k + 1))

    def test_multi_region_sets(self):
        """Figure 4/6-style multi-region SetOfRegions on both sides."""
        from repro.core import SetOfRegions, SectionRegion, IndexRegion
        from repro.distrib.section import Section

        src_sor = SetOfRegions(
            [
                SectionRegion(Section((1, 4), (4, 7), (1, 1))),  # 9 elems
                SectionRegion(Section((2, 1), (6, 3), (1, 1))),  # 8 elems
            ]
        )
        dst_sor = SetOfRegions(
            [
                IndexRegion(np.arange(10, 27, 2)),  # 9 elems
                IndexRegion(np.array([1, 3, 5, 7, 0, 2, 4, 6])),
            ]
        )

        def spmd(comm):
            A = BlockPartiArray.from_global(comm, GA)
            B = ChaosArray.zeros(comm, np.arange(N_B) % comm.size)
            sched = mc_compute_schedule(
                comm, "blockparti", A, src_sor, "chaos", B, dst_sor
            )
            mc_copy(comm, sched, A, B)
            return B.gather_global()

        got = run_spmd(4, spmd).values[0]
        expected = oracle_copy(GA, src_sor, np.zeros(N_B), dst_sor)
        np.testing.assert_allclose(got, expected)


def _make_src():
    return section_sor((slice(2, 10), slice(0, 10)), SHAPE_A)


def _make_dst():
    return index_sor(PERM)


class TestAggregation:
    def test_at_most_one_message_per_processor_pair(self):
        """Paper §4.1.4: 'at most one message is sent between each source
        and each destination processor'."""

        def spmd(comm):
            A, B, src, dst = _setup(comm)
            sched = mc_compute_schedule(comm, "blockparti", A, src, "chaos", B, dst)
            comm.barrier()
            before = comm.process.stats["messages_sent"]
            mc_copy(comm, sched, A, B)
            sent = comm.process.stats["messages_sent"] - before
            partners = len(
                [d for d, v in sched.sends.items() if len(v) and d != comm.rank]
            )
            assert sent == partners, (sent, partners)
            return sent

        run_spmd(4, spmd)

    def test_data_bytes_conserved(self):
        def spmd(comm):
            A, B, src, dst = _setup(comm)
            sched = mc_compute_schedule(comm, "blockparti", A, src, "chaos", B, dst)
            comm.barrier()
            s0 = comm.process.stats["bytes_sent"]
            r0 = comm.process.stats["bytes_received"]
            mc_copy(comm, sched, A, B)
            return (
                comm.process.stats["bytes_sent"] - s0,
                comm.process.stats["bytes_received"] - r0,
            )

        res = run_spmd(4, spmd)
        assert sum(v[0] for v in res.values) == sum(v[1] for v in res.values)

    def test_local_part_costs_no_messages_at_p1(self):
        def spmd(comm):
            A, B, src, dst = _setup(comm)
            sched = mc_compute_schedule(comm, "blockparti", A, src, "chaos", B, dst)
            before = comm.process.stats["messages_sent"]
            mc_copy(comm, sched, A, B)
            return comm.process.stats["messages_sent"] - before

        assert run_spmd(1, spmd).values == [0]


class TestErrorPaths:
    def test_send_on_non_source_rejected(self):
        from repro.core.datamove import data_move_send
        from repro.core.universe import TwoProgramUniverse

        def prog_a(ctx):
            pass

        # construct the error locally with a dst-role universe
        def prog_b(ctx):
            uni = TwoProgramUniverse(ctx.comm, ctx.peer("a"), "dst")
            from repro.core.schedule import CommSchedule, ScheduleMethod

            sched = CommSchedule(
                "hpf", "hpf", 0, 1, 1, ScheduleMethod.COOPERATION
            )
            with pytest.raises(RuntimeError, match="non-source"):
                data_move_send(sched, None, uni)
            return True

        from repro.vmachine import ProgramSpec, run_programs

        res = run_programs(
            [ProgramSpec("a", 1, prog_a), ProgramSpec("b", 1, prog_b)]
        )
        assert res["b"].values == [True]

    def test_mc_copy_rejects_two_program_universe(self):
        from repro.core import mc_copy as mc_copy_fn
        from repro.core.schedule import CommSchedule, ScheduleMethod
        from repro.core.universe import TwoProgramUniverse

        def prog_a(ctx):
            uni = TwoProgramUniverse(ctx.comm, ctx.peer("b"), "src")
            sched = CommSchedule("hpf", "hpf", 0, 1, 1, ScheduleMethod.COOPERATION)
            with pytest.raises(ValueError, match="single-program"):
                mc_copy_fn(uni, sched, None, None)
            return True

        from repro.vmachine import ProgramSpec, run_programs

        res = run_programs(
            [ProgramSpec("a", 1, prog_a), ProgramSpec("b", 1, lambda c: None)]
        )
        assert res["a"].values == [True]


class TestLossyCastUnified:
    """Satellite regression: local direct copies and remote unpack share
    one cast authority (``ensure_safe_cast``), so the same dtype pair is
    rejected (or allowed) no matter which path the elements take."""

    def _run(self, nprocs, dst_dtype):
        """float64 source -> ``dst_dtype`` destination over a schedule
        whose traffic covers the requested paths; returns per-rank
        (local_elements, remote_elements, error-or-None)."""

        def spmd(comm):
            A = BlockPartiArray.from_global(comm, GA)  # float64
            B = ChaosArray.zeros(comm, (PERM * 7) % comm.size, dtype=dst_dtype)
            src = section_sor((slice(2, 10), slice(0, 10)), SHAPE_A)
            dst = index_sor(PERM)
            sched = mc_compute_schedule(comm, "blockparti", A, src, "chaos", B, dst)
            me = comm.rank
            local = len(sched.sends.get(me, ())) if comm.size else 0
            remote = sum(len(v) for d, v in sched.recvs.items() if d != me)
            try:
                mc_copy(comm, sched, A, B)
            except TypeError as e:
                return local, remote, str(e)
            return local, remote, None

        return run_spmd(nprocs, spmd).values

    def test_float64_to_int32_rejected_on_local_path(self):
        # P=1: every element moves through the direct local copy.
        (local, remote, err), = self._run(1, np.int32)
        assert local > 0 and remote == 0
        assert err is not None and "lossy element conversion" in err

    def test_float64_to_int32_rejected_on_remote_path(self):
        # P=4: some rank receives remote elements; all raising ranks must
        # report the identical refusal, wherever their elements came from.
        results = self._run(4, np.int32)
        assert any(r[1] > 0 for r in results)  # remote traffic exists
        messages = {r[2] for r in results if r[2] is not None}
        assert messages, "no rank refused the lossy conversion"
        assert all("lossy element conversion" in m for m in messages)

    @pytest.mark.parametrize("nprocs", [1, 4])
    def test_widening_allowed_on_both_paths(self, nprocs):
        # float64 -> float64 and int-free widening stays permitted.
        results = self._run(nprocs, np.float64)
        assert all(r[2] is None for r in results)

    def test_adapter_copy_local_checks_cast(self):
        """copy_local itself (used by the local path) now refuses, too."""
        from repro.core.registry import ensure_safe_cast

        with pytest.raises(TypeError, match="lossy element conversion"):
            ensure_safe_cast(np.float64, np.int32)
        ensure_safe_cast(np.float32, np.float64)  # widening: no raise
        ensure_safe_cast(np.int64, np.float64)    # int -> float: allowed
