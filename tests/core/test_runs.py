"""RunList compression, structural-op and executor-fast-path tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.runs import RunList, copy_runs, group_by_runs, run_starts
from repro.core.wire import count_runs


def _cases():
    rng = np.random.default_rng(42)
    return {
        "empty": np.zeros(0, dtype=np.int64),
        "length1": np.array([17]),
        "length2": np.array([5, 100]),
        "constant": np.full(50, 9),
        "stride1": np.arange(1000),
        "strided": np.arange(0, 3000, 7),
        "descending": np.arange(100, 0, -1),
        "alternating": np.array([0, 5, 0, 5, 0, 5, 0, 5]),
        "blocky": np.concatenate([np.arange(r * 100, r * 100 + 20) for r in range(30)]),
        "random": rng.permutation(2000),
    }


class TestCompressExpand:
    @pytest.mark.parametrize("name,arr", _cases().items(), ids=_cases().keys())
    def test_roundtrip(self, name, arr):
        rl = RunList.from_dense(arr)
        np.testing.assert_array_equal(rl.dense(), arr)
        np.testing.assert_array_equal(np.asarray(rl), arr)
        assert len(rl) == len(arr)

    @pytest.mark.parametrize("name,arr", _cases().items(), ids=_cases().keys())
    def test_nruns_matches_count_runs(self, name, arr):
        """Wire accounting depends on this identity staying exact."""
        assert RunList.from_dense(arr).nruns == count_runs(arr)

    def test_empty(self):
        rl = RunList.from_dense(np.zeros(0, dtype=np.int64))
        assert len(rl) == 0 and rl.nruns == 0
        assert rl.dense().shape == (0,)
        assert count_runs(np.array([])) == 0

    def test_length_one_and_two_are_single_runs(self):
        assert RunList.from_dense(np.array([3])).nruns == 1
        assert RunList.from_dense(np.array([3, -40])).nruns == 1
        assert count_runs(np.array([3])) == 1
        assert count_runs(np.array([3, -40])) == 1

    def test_constant_array_is_one_step0_run(self):
        rl = RunList.from_dense(np.full(64, 7))
        assert rl.nruns == 1 and rl.is_compressed
        assert rl.runs.tolist() == [[7, 0, 64]]

    def test_alternating_steps_one_run_per_pair_boundary(self):
        arr = np.array([0, 5, 0, 5, 0, 5])
        rl = RunList.from_dense(arr)
        # Greedy: [0,5], then every change of step opens a new run.
        assert rl.nruns == count_runs(arr) == 5
        np.testing.assert_array_equal(rl.dense(), arr)

    def test_irregular_stays_dense_hybrid(self):
        arr = np.random.default_rng(0).permutation(5000)
        rl = RunList.from_dense(arr)
        assert not rl.is_compressed
        # Hybrid storage never exceeds the dense footprint (plus header).
        assert rl.nbytes_memory <= arr.nbytes + 16
        np.testing.assert_array_equal(rl.dense(), arr)

    def test_regular_is_layout_sized(self):
        rl = RunList.from_dense(np.arange(100_000))
        assert rl.is_compressed
        assert rl.nbytes_memory < 100  # vs 800 KB dense

    def test_input_never_aliased(self):
        src = np.random.default_rng(1).permutation(100)  # hybrid path
        rl = RunList.from_dense(src)
        src[0] = -999
        assert rl.dense()[0] != -999

    def test_greedy_vs_optimal_2x_bound(self):
        """The wire.py docstring claim: greedy <= 2x the optimal partition.

        Constructed families with known optimal counts: R contiguous rows
        at irregular row jumps (optimal R: one run per row) — the greedy
        splitter may add at most one singleton per jump.
        """
        rng = np.random.default_rng(7)
        for rows in (1, 2, 10, 100):
            jumps = np.cumsum(rng.integers(100, 1000, size=rows))
            arr = np.concatenate([j + np.arange(20) for j in jumps])
            greedy = count_runs(arr)
            assert rows <= greedy <= 2 * rows
        # A single arithmetic progression is optimal and greedy alike.
        assert count_runs(np.arange(0, 990, 3)) == 1


class TestArrayProtocol:
    def test_len_getitem_slice(self):
        arr = np.arange(0, 60, 3)
        rl = RunList.from_dense(arr)
        assert len(rl) == 20
        assert rl[4] == 12
        np.testing.assert_array_equal(rl[2:5], arr[2:5])
        np.testing.assert_array_equal(rl[:-1], arr[:-1])

    def test_min_max(self):
        for arr in (np.arange(5, 50, 7), np.arange(50, 5, -3),
                    np.array([4]), np.random.default_rng(3).permutation(100)):
            rl = RunList.from_dense(arr)
            assert rl.min() == arr.min()
            assert rl.max() == arr.max()

    def test_min_max_empty_raise(self):
        with pytest.raises(ValueError):
            RunList.empty().min()
        with pytest.raises(ValueError):
            RunList.empty().max()

    def test_copy_is_writable_and_detached(self):
        rl = RunList.from_dense(np.arange(10))
        c = rl.copy()
        c[0] = 99
        assert rl.dense()[0] == 0

    def test_immutable(self):
        rl = RunList.from_dense(np.arange(10))
        with pytest.raises(TypeError):
            rl[0] = 5  # no __setitem__
        with pytest.raises(ValueError):
            rl.dense()[0] = 5  # expansion is read-only
        with pytest.raises(ValueError):
            rl.runs[0, 0] = 5  # run table is read-only

    def test_numpy_interop(self):
        a = RunList.from_dense(np.arange(8))
        b = RunList.from_dense(np.arange(8, 16))
        np.testing.assert_array_equal(np.concatenate([a, b]), np.arange(16))
        data = np.arange(100.0)
        np.testing.assert_array_equal(data[np.asarray(a)], np.arange(8.0))


class TestStructuralOps:
    def test_reverse(self):
        for arr in _cases().values():
            rl = RunList.from_dense(arr)
            np.testing.assert_array_equal(rl.reverse().dense(), arr[::-1])
            assert len(rl.reverse()) == len(arr)

    def test_concat_compressed_stays_in_run_space(self):
        a = RunList.from_dense(np.arange(0, 100, 2))
        b = RunList.from_dense(np.arange(1000, 1100))
        cat = RunList.concat([a, b])
        assert cat.is_compressed and cat.nruns <= a.nruns + b.nruns
        np.testing.assert_array_equal(
            cat.dense(), np.concatenate([np.arange(0, 100, 2), np.arange(1000, 1100)])
        )

    def test_concat_mixed_and_empty(self):
        assert len(RunList.concat([])) == 0
        rng = np.random.default_rng(5)
        parts = [np.arange(10), rng.permutation(200), np.zeros(0, dtype=np.int64)]
        cat = RunList.concat([RunList.from_dense(p) for p in parts])
        np.testing.assert_array_equal(cat.dense(), np.concatenate(parts))

    def test_from_runs(self):
        rl = RunList.from_runs([(0, 1, 5), (100, -2, 3)])
        np.testing.assert_array_equal(rl.dense(), [0, 1, 2, 3, 4, 100, 98, 96])
        with pytest.raises(ValueError):
            RunList.from_runs([(0, 1, 0)])

    def test_group_by_runs(self):
        keys = np.array([1, 0, 1, 0, 1, 0])
        values = np.array([10, 20, 11, 21, 12, 22])
        groups = group_by_runs(keys, values)
        np.testing.assert_array_equal(groups[0].dense(), [20, 21, 22])
        np.testing.assert_array_equal(groups[1].dense(), [10, 11, 12])
        assert all(isinstance(g, RunList) for g in groups.values())
        assert group_by_runs(np.zeros(0, dtype=int), np.zeros(0, dtype=int)) == {}


class TestExecutorFastPaths:
    @pytest.mark.parametrize("name,arr", _cases().items(), ids=_cases().keys())
    def test_gather_matches_fancy_indexing(self, name, arr):
        data = np.random.default_rng(9).random(max(int(arr.max()) + 1 if len(arr) else 1, 1))
        rl = RunList.from_dense(arr)
        np.testing.assert_array_equal(rl.gather(data), data[arr])

    @pytest.mark.parametrize("name,arr", _cases().items(), ids=_cases().keys())
    def test_scatter_matches_fancy_indexing(self, name, arr):
        n = max(int(arr.max()) + 1 if len(arr) else 1, 1)
        values = np.random.default_rng(10).random(len(arr))
        expect = np.zeros(n)
        expect[arr] = values
        got = np.zeros(n)
        RunList.from_dense(arr).scatter(got, values)
        np.testing.assert_array_equal(got, expect)

    def test_copy_runs_aligned_slices(self):
        rng = np.random.default_rng(11)
        src = rng.random(4000)
        # Different run partitions of the same length force refinement.
        src_off = np.concatenate([np.arange(0, 900, 3), np.arange(2000, 2100)])
        dst_off = np.concatenate([np.arange(500, 250, -1), np.arange(1000, 1150)])
        a, b = RunList.from_dense(src_off), RunList.from_dense(dst_off)
        assert a.is_compressed and b.is_compressed
        expect = np.zeros(4000)
        expect[dst_off] = src[src_off]
        got = np.zeros(4000)
        copy_runs(src, a, got, b)
        np.testing.assert_array_equal(got, expect)

    def test_copy_runs_dense_fallback_and_mixed(self):
        rng = np.random.default_rng(12)
        src = rng.random(1000)
        src_off = rng.permutation(1000)[:300]
        dst_off = np.arange(300)
        expect = np.zeros(1000)
        expect[dst_off] = src[src_off]
        for s, d in [
            (src_off, dst_off),
            (RunList.from_dense(src_off), RunList.from_dense(dst_off)),
            (src_off, RunList.from_dense(dst_off)),
        ]:
            got = np.zeros(1000)
            copy_runs(src, s, got, d)
            np.testing.assert_array_equal(got, expect)

    def test_copy_runs_length_mismatch(self):
        with pytest.raises(ValueError, match="differ in length"):
            copy_runs(np.zeros(5), np.arange(3), np.zeros(5), np.arange(4))

    def test_grid_fast_path_matches_fancy_indexing(self):
        """Rows-with-gap offsets: greedy brackets each row jump with a
        singleton; the executor's canonical table merges them back and the
        uniform grid executes as one strided-view copy."""
        rows, width, pitch = 64, 31, 40
        arr = np.concatenate([r * pitch + np.arange(width) for r in range(rows)])
        rl = RunList.from_dense(arr)
        # Wire accounting keeps the greedy count; execution canonicalizes.
        assert rl.nruns == count_runs(arr) == 2 * rows - 1
        assert len(rl._exec_runs()) == rows
        assert rl._uniform_grid() == (0, pitch, 1, rows, width)
        data = np.random.default_rng(13).random(rows * pitch)
        np.testing.assert_array_equal(rl.gather(data), data[arr])
        vals = np.random.default_rng(14).random(len(arr))
        expect = np.zeros(rows * pitch)
        expect[arr] = vals
        got = np.zeros(rows * pitch)
        rl.scatter(got, vals)
        np.testing.assert_array_equal(got, expect)

    def test_grid_strided_columns(self):
        """Grid with strided (step > 1) runs also collapses to one view."""
        arr = np.concatenate([r * 100 + np.arange(0, 30, 3) for r in range(1, 20)])
        rl = RunList.from_dense(arr)
        grid = rl._uniform_grid()
        assert grid is not None and grid[2] == 3
        data = np.random.default_rng(15).random(2000)
        np.testing.assert_array_equal(rl.gather(data), data[arr])
        got = np.zeros(2000)
        vals = np.arange(float(len(arr)))
        got2 = np.zeros(2000)
        got2[arr] = vals
        rl.scatter(got, vals)
        np.testing.assert_array_equal(got, got2)

    def test_interleaved_grid_scatter_falls_back(self):
        """Rows that interleave (rowstep < count*step) must not take the
        vectorized store; the per-run loop handles them correctly."""
        arr = np.concatenate([r + np.arange(0, 40, 4) for r in range(4)])
        assert len(np.unique(arr)) == len(arr)
        rl = RunList.from_dense(arr)
        grid = rl._uniform_grid()
        assert grid is not None and grid[1] < grid[4] * grid[2]  # interleaved
        vals = np.random.default_rng(16).random(len(arr))
        expect = np.zeros(60)
        expect[arr] = vals
        got = np.zeros(60)
        rl.scatter(got, vals)
        np.testing.assert_array_equal(got, expect)

    def test_canonicalization_is_internal_only(self):
        """dense()/nruns/runs are untouched by executor canonicalization."""
        arr = np.concatenate([r * 50 + np.arange(20) for r in range(10)])
        rl = RunList.from_dense(arr)
        before = rl.runs.copy()
        rl.gather(np.zeros(500))  # forces _exec_runs
        np.testing.assert_array_equal(rl.runs, before)
        assert rl.nruns == count_runs(arr)
        np.testing.assert_array_equal(rl.dense(), arr)

    def test_constant_run_gather_scatter(self):
        rl = RunList.from_dense(np.full(6, 2))
        data = np.array([0.0, 1.0, 2.0, 3.0])
        np.testing.assert_array_equal(rl.gather(data), np.full(6, 2.0))
        out = np.zeros(4)
        rl.scatter(out, np.arange(6.0))
        assert out[2] == 5.0  # last write wins, like data[offs] = values


@given(st.lists(st.integers(0, 500), min_size=0, max_size=300))
def test_property_roundtrip_and_counts(values):
    arr = np.array(values, dtype=np.int64)
    rl = RunList.from_dense(arr)
    np.testing.assert_array_equal(rl.dense(), arr)
    assert rl.nruns == count_runs(arr)
    assert len(rl) == len(arr)
    np.testing.assert_array_equal(rl.reverse().dense(), arr[::-1])


@given(st.lists(st.integers(0, 200), min_size=1, max_size=200))
def test_property_gather_scatter_equivalence(values):
    arr = np.array(values, dtype=np.int64)
    rl = RunList.from_dense(arr)
    data = np.arange(201, dtype=float) * 1.5
    np.testing.assert_array_equal(rl.gather(data), data[arr])
    vals = np.random.default_rng(0).random(len(arr))
    a = np.zeros(201)
    b = np.zeros(201)
    a[arr] = vals
    rl.scatter(b, vals)
    np.testing.assert_array_equal(a, b)


@given(
    start=st.integers(-1000, 1000),
    step=st.integers(-50, 50),
    n=st.integers(1, 200),
)
def test_property_progressions_compress_to_one_run(start, step, n):
    arr = start + step * np.arange(n, dtype=np.int64)
    rl = RunList.from_dense(arr)
    assert rl.nruns == 1
    assert rl.is_compressed
    np.testing.assert_array_equal(rl.dense(), arr)
