"""Region type tests."""

import numpy as np
import pytest

from repro.core.region import IndexRegion, SectionRegion
from repro.distrib.section import Section


class TestSectionRegion:
    def test_size(self):
        r = SectionRegion(Section((0, 0), (4, 6), (2, 3)))
        assert r.size == 4

    def test_from_bounds_inclusive(self):
        # the paper's CreateRegion_HPF(2, (50,50), (100,100)) convention
        r = SectionRegion.from_bounds((50, 50), (100, 100))
        assert r.section.counts == (51, 51)

    def test_from_bounds_with_stride(self):
        r = SectionRegion.from_bounds((0,), (10,), (5,))
        np.testing.assert_array_equal(r.section.dim_indices(0), [0, 5, 10])

    def test_lin_to_global_row_major(self):
        r = SectionRegion(Section((1, 1), (3, 3), (1, 1)))
        g = r.lin_to_global(np.arange(4), (5, 5))
        np.testing.assert_array_equal(g, [6, 7, 11, 12])

    def test_global_flat_matches_lin_to_global(self):
        r = SectionRegion(Section((0, 2), (7, 9), (3, 2)))
        shape = (8, 10)
        np.testing.assert_array_equal(
            r.global_flat(shape), r.lin_to_global(np.arange(r.size), shape)
        )

    def test_descriptor_compact(self):
        r = SectionRegion(Section((0, 0), (1000, 1000), (1, 1)))
        assert r.nbytes_descriptor() < 100


class TestIndexRegion:
    def test_order_is_linearization(self):
        r = IndexRegion(np.array([5, 2, 9]))
        np.testing.assert_array_equal(r.lin_to_global(np.array([0, 1, 2]), (10,)), [5, 2, 9])

    def test_size(self):
        assert IndexRegion(np.arange(7)).size == 7

    def test_global_flat_copies(self):
        idx = np.array([1, 2, 3])
        r = IndexRegion(idx)
        out = r.global_flat((10,))
        out[0] = 99
        assert r.indices[0] == 1

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            IndexRegion(np.array([-1, 2]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            IndexRegion(np.zeros((2, 2), dtype=int))

    def test_descriptor_data_sized(self):
        r = IndexRegion(np.arange(1000))
        assert r.nbytes_descriptor() == 8000

    def test_duplicates_allowed_in_region(self):
        # A region may name an element twice (e.g. gather semantics);
        # bijection checks happen at the linearization level.
        r = IndexRegion(np.array([3, 3]))
        assert r.size == 2
