"""Library-adapter registry and generic adapter machinery tests."""

import numpy as np
import pytest

import repro.blockparti  # noqa: F401  (registers "blockparti")
import repro.chaos  # noqa: F401
import repro.hpf  # noqa: F401
import repro.pcxx  # noqa: F401
from repro.core.registry import (
    LibraryAdapter,
    RemoteHandle,
    get_adapter,
    register_adapter,
    registered_libraries,
)

from helpers import index_sor, run_spmd, section_sor


class TestRegistry:
    def test_all_four_libraries_registered(self):
        libs = registered_libraries()
        for name in ("blockparti", "chaos", "hpf", "pcxx"):
            assert name in libs

    def test_unknown_library(self):
        with pytest.raises(KeyError, match="no data parallel library"):
            get_adapter("fortran-d")

    def test_reregistration_replaces(self):
        original = get_adapter("pcxx")
        try:
            replacement = type(original)()
            assert register_adapter(replacement) is replacement
            assert get_adapter("pcxx") is replacement
        finally:
            register_adapter(original)

    def test_unnamed_adapter_rejected(self):
        class Nameless(LibraryAdapter):
            name = ""
            dist_of = shape_of = local_data = itemsize_of = charge_deref = None

        with pytest.raises(ValueError):
            register_adapter(Nameless.__new__(Nameless))


class TestAdapterOperations:
    def test_deref_lin_matches_distribution(self):
        from repro.blockparti import BlockPartiArray

        def spmd(comm):
            arr = BlockPartiArray.zeros(comm, (8, 8))
            adapter = get_adapter("blockparti")
            sor = section_sor((slice(0, 8), slice(0, 8)), (8, 8))
            ranks, offsets = adapter.deref_range(arr, sor, 0, 64)
            r2, o2 = arr.dist.owner_of_flat(np.arange(64))
            assert (ranks == r2).all() and (offsets == o2).all()
            return True

        assert all(run_spmd(4, spmd).values)

    def test_local_elements_cover_partition(self):
        """Union of every rank's local_elements == the full linearization."""
        from repro.chaos import ChaosArray

        owners = np.random.default_rng(3).integers(0, 4, 40)

        def spmd(comm):
            arr = ChaosArray.zeros(comm, owners % comm.size)
            adapter = get_adapter("chaos")
            sor = index_sor(np.random.default_rng(5).permutation(40))
            lin, offs = adapter.local_elements(arr, sor, comm.rank)
            return comm.gather((lin, offs))

        res = run_spmd(4, spmd)
        pieces = res.values[0]
        all_lin = np.concatenate([p[0] for p in pieces])
        assert sorted(all_lin.tolist()) == list(range(40))

    def test_pack_unpack_roundtrip(self):
        from repro.hpf import HPFArray

        def spmd(comm):
            src = HPFArray.from_global(
                comm, np.arange(24, dtype=float), ("cyclic",)
            )
            dst = HPFArray.distribute(comm, (24,), ("cyclic",))
            adapter = get_adapter("hpf")
            offs = np.arange(src.local.size)
            buf = adapter.pack(src, offs)
            adapter.unpack(dst, offs, buf)
            return bool((dst.local == src.local).all())

        assert all(run_spmd(3, spmd).values)

    def test_pack_charges_cost(self):
        from repro.hpf import HPFArray

        def spmd(comm):
            arr = HPFArray.distribute(comm, (100,), ("block",))
            adapter = get_adapter("hpf")
            before = comm.process.clock
            adapter.pack(arr, np.arange(arr.local.size))
            return comm.process.clock - before

        res = run_spmd(2, spmd)
        assert all(v > 0 for v in res.values)


class TestRemoteHandle:
    def test_export_materialize_roundtrip(self):
        from repro.blockparti import BlockPartiArray

        def spmd(comm):
            arr = BlockPartiArray.zeros(comm, (10, 6))
            adapter = get_adapter("blockparti")
            handle = adapter.export_handle(arr)
            assert isinstance(handle, RemoteHandle)
            mat = adapter.resolve_handle(handle)
            assert adapter.shape_of(mat) == (10, 6)
            g = np.arange(60)
            r1, o1 = mat.dist.owner_of_flat(g)
            r2, o2 = arr.dist.owner_of_flat(g)
            return bool((r1 == r2).all() and (o1 == o2).all())

        assert all(run_spmd(3, spmd).values)

    def test_regular_handle_is_compact_irregular_is_not(self):
        from repro.blockparti import BlockPartiArray
        from repro.chaos import ChaosArray

        def spmd(comm):
            reg = BlockPartiArray.zeros(comm, (100, 100))
            irr = ChaosArray.zeros(comm, np.arange(10_000) % comm.size)
            h_reg = get_adapter("blockparti").export_handle(reg)
            h_irr = get_adapter("chaos").export_handle(irr)
            return (h_reg.nbytes, h_irr.nbytes)

        reg_n, irr_n = run_spmd(2, spmd).values[0]
        assert reg_n < 500
        assert irr_n >= 8 * 10_000  # data-sized (the paper's caveat)

    def test_resolve_handle_passthrough_for_local(self):
        from repro.hpf import HPFArray

        def spmd(comm):
            arr = HPFArray.distribute(comm, (8,), ("block",))
            adapter = get_adapter("hpf")
            assert adapter.resolve_handle(arr) is arr
            return True

        assert all(run_spmd(2, spmd).values)

    def test_remote_handle_has_no_data(self):
        from repro.hpf import HPFArray

        def spmd(comm):
            arr = HPFArray.distribute(comm, (8,), ("block",))
            adapter = get_adapter("hpf")
            mat = adapter.resolve_handle(adapter.export_handle(arr))
            with pytest.raises(TypeError):
                adapter.local_data(mat)
            return True

        assert all(run_spmd(2, spmd).values)


class TestDtypeSafety:
    def test_lossy_unpack_rejected(self):
        from repro.hpf import HPFArray
        from repro.vmachine.machine import SPMDError

        def spmd(comm):
            dst = HPFArray.distribute(comm, (10,), ("block",), dtype=np.int64)
            adapter = get_adapter("hpf")
            offs = np.arange(dst.local.size)
            adapter.unpack(dst, offs, np.full(len(offs), 1.5))

        with pytest.raises(SPMDError, match="lossy element conversion"):
            run_spmd(2, spmd)

    def test_widening_unpack_allowed(self):
        from repro.hpf import HPFArray

        def spmd(comm):
            dst = HPFArray.distribute(comm, (10,), ("block",), dtype=np.float64)
            adapter = get_adapter("hpf")
            offs = np.arange(dst.local.size)
            adapter.unpack(dst, offs, np.ones(len(offs), dtype=np.float32))
            return bool((dst.local == 1.0).all())

        assert all(run_spmd(2, spmd).values)

    def test_cross_dtype_copy_through_schedule(self):
        """An int -> float copy works end to end (safe widening)."""
        from repro.blockparti import BlockPartiArray
        from repro.chaos import ChaosArray
        from repro.core import IndexRegion, mc_compute_schedule, mc_copy
        from repro.core.setofregions import SetOfRegions

        def spmd(comm):
            src = BlockPartiArray.from_global(
                comm, np.arange(20, dtype=np.int64)
            )
            dst = ChaosArray.zeros(comm, np.arange(20) % comm.size)
            sor = SetOfRegions([IndexRegion(np.arange(20))])
            sched = mc_compute_schedule(
                comm, "blockparti", src, sor, "chaos", dst, sor
            )
            mc_copy(comm, sched, src, dst)
            return dst.gather_global()

        got = run_spmd(3, spmd).values[0]
        np.testing.assert_allclose(got, np.arange(20, dtype=float))
