"""Fused multi-array moves: MovePlan compilation and execution.

The core contract: ``mc_copy_many`` over k schedules is *byte-identical*
to k sequential ``mc_copy`` calls — same destination arrays, same element
order — while each processor pair exchanges exactly one fused message.
Covered here: compiler structure and validation, the fused==sequential
property across methods × policies × mixed dtypes, message-count
reduction, ``plan:fuse`` observability, the pooled-arena steady state of
iterative loops, copy-on-send mode, chaos-matrix reliability, and the
coupled ``push_many``/``pull_many`` surface.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.blockparti  # noqa: F401
import repro.chaos  # noqa: F401
import repro.hpf  # noqa: F401
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import (
    ExecutorPolicy,
    FusedBuffer,
    ScheduleMethod,
    SegmentHeader,
    compile_plan,
    mc_compute_plan,
    mc_compute_schedule,
    mc_copy,
    mc_copy_many,
)
from repro.core.coupling import CoupledExchange, coupled_universe
from repro.core.plan import _check_fused, PlanSegment
from repro.core.runs import RunList
from repro.core.schedule import CommSchedule
from repro.core.universe import SingleProgramUniverse
from repro.vmachine import ProgramSpec, VirtualMachine, run_programs
from repro.vmachine.faults import FaultPlan, FaultRates

from helpers import both_methods, index_sor, oracle_copy, run_spmd, section_sor

BOTH_POLICIES = [ExecutorPolicy.ORDERED, ExecutorPolicy.OVERLAP]

SHAPE = (12, 10)
N = SHAPE[0] * SHAPE[1]
G1 = np.random.default_rng(11).random(SHAPE)
G2 = np.arange(N, dtype=np.float32).reshape(SHAPE)
PERM1 = np.random.default_rng(12).permutation(N)
PERM2 = np.random.default_rng(13).permutation(N)


def _two_array_spmd(method, policy, fused, k=2, trace_stats=False):
    """Move G1 and G2 (float64 + float32) onto permuted Chaos arrays,
    either fused (one mc_copy_many) or as k sequential mc_copy calls."""

    def spmd(comm):
        full = section_sor((slice(None), slice(None)), SHAPE)
        arrays = []
        for i in range(k):
            glob = [G1, G2][i % 2]
            perm = [PERM1, PERM2][i % 2]
            A = BlockPartiArray.from_global(comm, glob)
            B = ChaosArray.zeros(
                comm, (perm * (i + 3)) % comm.size, dtype=glob.dtype
            )
            sched = mc_compute_schedule(
                comm, "blockparti", A, full, "chaos", B, index_sor(perm),
                method,
            )
            arrays.append((sched, A, B))
        if fused:
            mc_copy_many(
                comm,
                [s for s, _, _ in arrays],
                [a for _, a, _ in arrays],
                [b for _, _, b in arrays],
                policy=policy,
            )
        else:
            for sched, A, B in arrays:
                mc_copy(comm, sched, A, B, policy=policy)
        out = tuple(B.gather_global() for _, _, B in arrays)
        if trace_stats:
            return out, dict(comm.process.stats)
        return out

    return spmd


def _expected(k=2):
    outs = []
    for i in range(k):
        glob = [G1, G2][i % 2]
        perm = [PERM1, PERM2][i % 2]
        outs.append(
            oracle_copy(
                glob,
                section_sor((slice(None), slice(None)), SHAPE),
                np.zeros(N, dtype=glob.dtype),
                index_sor(perm),
            )
        )
    return outs


# ---------------------------------------------------------------------------
# compiler structure and validation
# ---------------------------------------------------------------------------


def _toy_schedule(sends=None, recvs=None, src_size=4, dst_size=4):
    return CommSchedule(
        src_lib="blockparti",
        dst_lib="chaos",
        n_elements=8,
        src_size=src_size,
        dst_size=dst_size,
        method=ScheduleMethod.COOPERATION,
        sends=sends or {},
        recvs=recvs or {},
    )


class TestCompile:
    def test_empty_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            compile_plan([])

    def test_mismatched_universe_rejected(self):
        a = _toy_schedule(src_size=4, dst_size=4)
        b = _toy_schedule(src_size=2, dst_size=2)
        with pytest.raises(ValueError, match="one universe"):
            compile_plan([a, b])

    def test_segments_in_schedule_order(self):
        a = _toy_schedule(sends={1: np.array([0, 1, 2])})
        b = _toy_schedule(sends={1: np.array([4, 5])})
        plan = compile_plan([a, b])
        prog = plan.send_programs[1]
        assert [seg.schedule_id for seg in prog] == [0, 1]
        assert [seg.count for seg in prog] == [3, 2]

    def test_empty_halves_contribute_no_segments(self):
        a = _toy_schedule(sends={1: np.array([0, 1])})
        b = _toy_schedule(sends={2: np.array([3])})
        plan = compile_plan([a, b])
        assert set(plan.send_programs) == {1, 2}
        assert len(plan.send_programs[1]) == 1
        assert len(plan.send_programs[2]) == 1

    def test_counts_and_alpha_saved(self):
        a = _toy_schedule(sends={1: np.array([0]), 2: np.array([1])})
        b = _toy_schedule(sends={1: np.array([2])})
        plan = compile_plan([a, b])
        assert plan.fused_message_count == 2   # peers 1, 2
        assert plan.unfused_message_count == 3  # 2 + 1 segments
        assert plan.alpha_saved == 1

    def test_pair_table_rows(self):
        a = _toy_schedule(sends={1: np.array([0, 1])})
        b = _toy_schedule(sends={1: np.array([2])})
        rows = compile_plan([a, b]).pair_table(itemsizes=[8, 4])
        assert rows == [
            {"peer": 1, "segments": 2, "elements": 3,
             "data_bytes": 2 * 8 + 1 * 4, "alpha_saved": 1}
        ]

    def test_compile_is_local_and_free(self):
        """Compilation must charge no logical time (it is per-rank local)."""

        def spmd(comm):
            A = BlockPartiArray.from_global(comm, G1)
            B = ChaosArray.zeros(comm, PERM1 % comm.size)
            sched = mc_compute_schedule(
                comm, "blockparti", A,
                section_sor((slice(None), slice(None)), SHAPE),
                "chaos", B, index_sor(PERM1), ScheduleMethod.COOPERATION,
            )
            before = comm.process.clock
            mc_compute_plan([sched, sched, sched])
            return comm.process.clock - before

        assert all(d == 0.0 for d in run_spmd(4, spmd).values)


class TestExecutorValidation:
    def test_array_count_mismatch(self):
        def spmd(comm):
            A = BlockPartiArray.from_global(comm, G1)
            B = ChaosArray.zeros(comm, PERM1 % comm.size)
            sched = mc_compute_schedule(
                comm, "blockparti", A,
                section_sor((slice(None), slice(None)), SHAPE),
                "chaos", B, index_sor(PERM1), ScheduleMethod.COOPERATION,
            )
            plan = mc_compute_plan([sched, sched])
            with pytest.raises(ValueError, match="2 schedule"):
                mc_copy_many(comm, plan, [A], [B, B])
            return True

        assert all(run_spmd(2, spmd).values)


class TestCheckFused:
    def _program(self):
        return (
            PlanSegment(0, RunList.from_dense(np.array([0, 1, 2]))),
            PlanSegment(1, RunList.from_dense(np.array([3, 4]))),
        )

    def _fused(self, headers):
        from repro.core.wire import segment_layout

        _, total = segment_layout(tuple(headers))
        return FusedBuffer(headers, np.zeros(max(total, 1), dtype=np.uint8))

    def test_accepts_matching(self):
        fused = self._fused(
            [SegmentHeader(0, "<f8", 3), SegmentHeader(1, "<f4", 2)]
        )
        _check_fused(self._program(), fused, s=1)  # no raise

    def test_rejects_unfused_payload(self):
        with pytest.raises(RuntimeError, match="plan mismatch"):
            _check_fused(self._program(), np.zeros(5), s=1)

    def test_rejects_segment_count_mismatch(self):
        fused = self._fused([SegmentHeader(0, "<f8", 3)])
        with pytest.raises(RuntimeError, match="1 segment"):
            _check_fused(self._program(), fused, s=1)

    def test_rejects_schedule_id_mismatch(self):
        fused = self._fused(
            [SegmentHeader(0, "<f8", 3), SegmentHeader(2, "<f4", 2)]
        )
        with pytest.raises(RuntimeError, match="schedule 2"):
            _check_fused(self._program(), fused, s=1)

    def test_rejects_element_count_mismatch(self):
        fused = self._fused(
            [SegmentHeader(0, "<f8", 3), SegmentHeader(1, "<f4", 7)]
        )
        with pytest.raises(RuntimeError, match="7 elements"):
            _check_fused(self._program(), fused, s=1)


# ---------------------------------------------------------------------------
# fused == sequential (the defining property)
# ---------------------------------------------------------------------------


class TestFusedEqualsSequential:
    @pytest.mark.parametrize("method", both_methods())
    @pytest.mark.parametrize("policy", BOTH_POLICIES)
    def test_mixed_dtypes_match_oracle(self, method, policy):
        got = run_spmd(4, _two_array_spmd(method, policy, fused=True)).values[0]
        for out, want in zip(got, _expected()):
            assert out.dtype == want.dtype
            np.testing.assert_array_equal(out, want)

    @pytest.mark.parametrize("policy", BOTH_POLICIES)
    def test_fused_equals_sequential_bytes(self, policy):
        fused = run_spmd(
            4, _two_array_spmd(ScheduleMethod.COOPERATION, policy, fused=True)
        ).values[0]
        seq = run_spmd(
            4, _two_array_spmd(ScheduleMethod.COOPERATION, policy, fused=False)
        ).values[0]
        for f, s in zip(fused, seq):
            np.testing.assert_array_equal(f, s)

    def test_single_schedule_plan_matches_mc_copy(self):
        got = run_spmd(
            3,
            _two_array_spmd(
                ScheduleMethod.COOPERATION, ExecutorPolicy.ORDERED,
                fused=True, k=1,
            ),
        ).values[0]
        np.testing.assert_array_equal(got[0], _expected(k=1)[0])

    @settings(deadline=None, max_examples=10)
    @given(
        lo=st.integers(0, 5),
        hi=st.integers(6, 12),
        seed=st.integers(0, 2**16),
        nprocs=st.sampled_from([2, 3, 4]),
        k=st.integers(1, 3),
    )
    def test_random_regions_property(self, lo, hi, seed, nprocs, k):
        rng = np.random.default_rng(seed)
        src_slices = (slice(lo, hi), slice(0, 10))
        m = (hi - lo) * 10
        perms = [rng.permutation(N)[:m] for _ in range(k)]
        # Distinct unordered index destinations per array.

        def spmd(comm):
            triples = []
            for j, perm in enumerate(perms):
                A = BlockPartiArray.from_global(comm, G1)
                B = ChaosArray.zeros(
                    comm, (np.arange(N) * 7 + j) % comm.size
                )
                sched = mc_compute_schedule(
                    comm, "blockparti", A, section_sor(src_slices, SHAPE),
                    "chaos", B, index_sor(perm), ScheduleMethod.COOPERATION,
                )
                triples.append((sched, A, B))
            mc_copy_many(
                comm,
                [s for s, _, _ in triples],
                [a for _, a, _ in triples],
                [b for _, _, b in triples],
            )
            return tuple(B.gather_global() for _, _, B in triples)

        got = run_spmd(nprocs, spmd).values[0]
        for out, perm in zip(got, perms):
            want = oracle_copy(
                G1, section_sor(src_slices, SHAPE),
                np.zeros(N), index_sor(perm),
            )
            np.testing.assert_array_equal(out, want)


# ---------------------------------------------------------------------------
# message structure and observability
# ---------------------------------------------------------------------------


class TestMessageReduction:
    def _run(self, fused, k=3):
        def spmd(comm):
            _two_array_spmd(
                ScheduleMethod.COOPERATION, ExecutorPolicy.ORDERED,
                fused=fused, k=k,
            )(comm)
            return None

        return VirtualMachine(4).run(spmd)

    def test_one_message_per_pair(self):
        res_f = self._run(fused=True)
        res_s = self._run(fused=False)
        saved = res_f.total_stat("plan_alpha_saved")
        assert saved > 0
        # Schedule construction and gathers are identical in both runs;
        # the entire message-count difference is the fused data plane.
        assert (
            res_s.total_stat("messages_sent")
            - res_f.total_stat("messages_sent")
            == saved
        )
        # alpha_saved counts exactly the extra segments beyond one per
        # fused message — the k-1 message latencies each fusion removed.
        segments = res_f.total_stat("plan_fused_segments")
        messages = res_f.total_stat("plan_fused_messages")
        assert segments - messages == saved
        # With k=3 member schedules, no fused message carries more than 3
        # segments, and at least one pair appears in several schedules.
        assert messages < segments <= 3 * messages

    def test_plan_fuse_trace_events(self):
        def spmd(comm):
            _two_array_spmd(
                ScheduleMethod.COOPERATION, ExecutorPolicy.ORDERED,
                fused=True,
            )(comm)
            return None

        res = VirtualMachine(3, trace=True).run(spmd)
        fuse_events = [
            e for tr in res.traces for e in tr if e.kind == "plan:fuse"
        ]
        assert fuse_events, "no plan:fuse events recorded"
        assert all(e.nbytes > 0 for e in fuse_events)
        assert len(fuse_events) == res.total_stat("plan_fused_messages")

    def test_fused_wire_bytes_include_headers(self):
        """A fused message charges more than its raw payload (headers +
        padding) but less than payload plus two alphas' worth of waste."""
        h = (SegmentHeader(0, "<f8", 10), SegmentHeader(1, "<f4", 3))
        from repro.core.wire import (
            FUSED_HEADER_BYTES,
            SEGMENT_HEADER_BYTES,
            segment_layout,
        )

        _, total = segment_layout(h)
        fused = FusedBuffer(h, np.zeros(total, dtype=np.uint8))
        raw = 10 * 8 + 3 * 4
        assert fused.nbytes >= raw
        assert fused.nbytes == (
            FUSED_HEADER_BYTES + 2 * SEGMENT_HEADER_BYTES + total
        )


# ---------------------------------------------------------------------------
# arena steady state (the regression the pool exists for)
# ---------------------------------------------------------------------------


class TestArenaSteadyState:
    def test_iterative_loop_allocates_only_on_first_iteration(self):
        iters = 10

        def spmd(comm):
            A = BlockPartiArray.from_global(comm, G1)
            B = ChaosArray.zeros(comm, PERM1 % comm.size)
            full = section_sor((slice(None), slice(None)), SHAPE)
            sched = mc_compute_schedule(
                comm, "blockparti", A, full,
                "chaos", B, index_sor(PERM1), ScheduleMethod.COOPERATION,
            )
            plan = mc_compute_plan([sched, sched])
            misses_per_iter = []
            for _ in range(iters):
                before = comm.process.stats.get("arena_misses", 0)
                mc_copy_many(comm, plan, [A, A], [B, B])
                # Barrier: every receiver has unpacked (and released) its
                # staging buffers before anyone starts the next iteration.
                comm.barrier()
                misses_per_iter.append(
                    comm.process.stats.get("arena_misses", 0) - before
                )
            return misses_per_iter, dict(comm.process.stats)

        res = run_spmd(4, spmd)
        for misses_per_iter, stats in res.values:
            assert misses_per_iter[0] > 0, "first iteration must allocate"
            assert all(m == 0 for m in misses_per_iter[1:]), (
                f"steady-state iterations allocated: {misses_per_iter}"
            )
            assert stats.get("arena_hits", 0) > 0
            assert stats.get("arena_bytes_reused", 0) > 0

    def test_high_water_bounded_by_first_iteration(self):
        def spmd(comm):
            A = BlockPartiArray.from_global(comm, G1)
            B = ChaosArray.zeros(comm, PERM1 % comm.size)
            full = section_sor((slice(None), slice(None)), SHAPE)
            sched = mc_compute_schedule(
                comm, "blockparti", A, full,
                "chaos", B, index_sor(PERM1), ScheduleMethod.COOPERATION,
            )
            plan = mc_compute_plan([sched])
            mc_copy_many(comm, plan, [A], [B])
            comm.barrier()
            high1 = comm.process.stats.get("arena_high_water_bytes", 0)
            for _ in range(5):
                mc_copy_many(comm, plan, [A], [B])
                comm.barrier()
            return high1, comm.process.stats.get("arena_high_water_bytes", 0)

        for high1, high_final in run_spmd(3, spmd).values:
            assert high_final == high1


class TestCopyOnSend:
    def test_copy_on_send_mode_correct_and_bypasses_pool(self):
        vm = VirtualMachine(3, copy_on_send=True)
        got, stats = vm.run(
            _two_array_spmd(
                ScheduleMethod.COOPERATION, ExecutorPolicy.ORDERED,
                fused=True, trace_stats=True,
            )
        ).values[0]
        for out, want in zip(got, _expected()):
            np.testing.assert_array_equal(out, want)
        assert stats.get("arena_bypass", 0) > 0
        assert stats.get("arena_hits", 0) == 0


# ---------------------------------------------------------------------------
# reliability / chaos matrix
# ---------------------------------------------------------------------------


def _chaos_plan(seed):
    return FaultPlan(
        seed=seed,
        rates=FaultRates(drop=0.2, dup=0.2, reorder=0.2, delay=0.2),
    )


class TestChaosMatrix:
    @pytest.mark.parametrize("method", both_methods())
    @pytest.mark.parametrize("policy", BOTH_POLICIES)
    def test_fused_move_matches_oracle_under_chaos(self, method, policy):
        def spmd(comm):
            full = section_sor((slice(None), slice(None)), SHAPE)
            triples = []
            for glob, perm in [(G1, PERM1), (G2, PERM2)]:
                A = BlockPartiArray.from_global(comm, glob)
                B = ChaosArray.zeros(
                    comm, (perm * 3) % comm.size, dtype=glob.dtype
                )
                sched = mc_compute_schedule(
                    comm, "blockparti", A, full,
                    "chaos", B, index_sor(perm), method,
                )
                triples.append((sched, A, B))
            universe = SingleProgramUniverse(comm)
            universe.enable_reliability()
            mc_copy_many(
                universe,
                [s for s, _, _ in triples],
                [a for _, a, _ in triples],
                [b for _, _, b in triples],
                policy=policy,
                timeout=30.0,
            )
            return tuple(B.gather_global() for _, _, B in triples)

        vm = VirtualMachine(4, faults=_chaos_plan(seed=41), recv_timeout_s=30.0)
        got = vm.run(spmd).values[0]
        for out, (glob, perm) in zip(got, [(G1, PERM1), (G2, PERM2)]):
            want = oracle_copy(
                glob, section_sor((slice(None), slice(None)), SHAPE),
                np.zeros(N, dtype=glob.dtype), index_sor(perm),
            )
            np.testing.assert_array_equal(out, want)


# ---------------------------------------------------------------------------
# coupled programs: push_many / pull_many
# ---------------------------------------------------------------------------


def _coupled_many(psrc, pdst, policy, *, faults=None, pull_back=False):
    full = section_sor((slice(None), slice(None)), SHAPE)

    def src_prog(ctx):
        A1 = BlockPartiArray.from_global(ctx.comm, G1)
        A2 = BlockPartiArray.from_global(ctx.comm, G1 * 3.0)
        uni = coupled_universe(ctx, "dstp", "src")
        sched = mc_compute_schedule(
            uni, "blockparti", A1, full, "chaos", None, None,
            ScheduleMethod.COOPERATION,
        )
        ex = CoupledExchange(uni, sched, policy=policy, deadline_s=30.0,
                             reliability=True)
        ex.push_many([A1, A2])
        if pull_back:
            R1 = BlockPartiArray.zeros(ctx.comm, SHAPE)
            R2 = BlockPartiArray.zeros(ctx.comm, SHAPE)
            ex.pull_many([R1, R2])
            return R1.gather_global(), R2.gather_global()
        return None

    def dst_prog(ctx):
        B1 = ChaosArray.zeros(ctx.comm, (PERM1 * 3) % ctx.comm.size)
        B2 = ChaosArray.zeros(ctx.comm, (PERM1 * 3) % ctx.comm.size)
        uni = coupled_universe(ctx, "srcp", "dst")
        sched = mc_compute_schedule(
            uni, "blockparti", None, None, "chaos", B1, index_sor(PERM1),
            ScheduleMethod.COOPERATION,
        )
        ex = CoupledExchange(uni, sched, policy=policy, deadline_s=30.0,
                             reliability=True)
        ex.push_many([B1, B2])
        out = B1.gather_global(), B2.gather_global()
        if pull_back:
            B1.local *= 2.0
            B2.local *= 2.0
            ex.pull_many([B1, B2])
        return out

    return run_programs(
        [ProgramSpec("srcp", psrc, src_prog),
         ProgramSpec("dstp", pdst, dst_prog)],
        faults=faults,
        recv_timeout_s=30.0,
    )


class TestCoupledMany:
    def _want(self):
        full = section_sor((slice(None), slice(None)), SHAPE)
        w1 = oracle_copy(G1, full, np.zeros(N), index_sor(PERM1))
        w2 = oracle_copy(G1 * 3.0, full, np.zeros(N), index_sor(PERM1))
        return w1, w2

    @pytest.mark.parametrize("policy", BOTH_POLICIES)
    def test_push_many_delivers_both_fields(self, policy):
        res = _coupled_many(3, 2, policy)
        got1, got2 = res["dstp"].values[0]
        w1, w2 = self._want()
        np.testing.assert_array_equal(got1, w1)
        np.testing.assert_array_equal(got2, w2)

    def test_pull_many_returns_doubled_fields(self):
        res = _coupled_many(2, 3, ExecutorPolicy.ORDERED, pull_back=True)
        r1, r2 = res["srcp"].values[0]
        w1, w2 = self._want()
        # Destination doubled its fields, then sent them back along the
        # symmetric schedule: the source gets 2x what it pushed.
        np.testing.assert_array_equal(r1, _pullback_expected(w1))
        np.testing.assert_array_equal(r2, _pullback_expected(w2))

    def test_push_many_under_chaos(self):
        res = _coupled_many(
            3, 2, ExecutorPolicy.OVERLAP, faults=_chaos_plan(seed=7)
        )
        got1, got2 = res["dstp"].values[0]
        w1, w2 = self._want()
        np.testing.assert_array_equal(got1, w1)
        np.testing.assert_array_equal(got2, w2)

    def test_plan_cached_across_pushes(self):
        """Repeated push_many calls reuse one compiled plan per (k, dir)."""

        def src_prog(ctx):
            A = BlockPartiArray.from_global(ctx.comm, G1)
            uni = coupled_universe(ctx, "dstp", "src")
            full = section_sor((slice(None), slice(None)), SHAPE)
            sched = mc_compute_schedule(
                uni, "blockparti", A, full, "chaos", None, None,
                ScheduleMethod.COOPERATION,
            )
            ex = CoupledExchange(uni, sched)
            for _ in range(3):
                ex.push_many([A, A])
            return len(ex._plans)

        def dst_prog(ctx):
            B = ChaosArray.zeros(ctx.comm, PERM1 % ctx.comm.size)
            uni = coupled_universe(ctx, "srcp", "dst")
            sched = mc_compute_schedule(
                uni, "blockparti", None, None, "chaos", B, index_sor(PERM1),
                ScheduleMethod.COOPERATION,
            )
            ex = CoupledExchange(uni, sched)
            for _ in range(3):
                ex.push_many([B, B])
            return len(ex._plans)

        res = run_programs(
            [ProgramSpec("srcp", 2, src_prog), ProgramSpec("dstp", 2, dst_prog)]
        )
        assert all(n == 1 for n in res["srcp"].values)
        assert all(n == 1 for n in res["dstp"].values)


def _pullback_expected(pushed: np.ndarray) -> np.ndarray:
    """What the source gets back after the destination doubles and pulls:
    element k of the (full-section) source linearization receives 2x the
    destination element it fed."""
    out = np.zeros(SHAPE)
    out.reshape(-1)[...] = 2.0 * pushed[PERM1]
    return out
