"""Schedule validator and diagnostics tests."""

import numpy as np
import pytest

import repro.blockparti  # noqa: F401
import repro.chaos  # noqa: F401
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import (
    IndexRegion,
    ScheduleValidationError,
    SectionRegion,
    explain_schedule,
    mc_compute_schedule,
    mc_new_set_of_regions,
    schedule_stats,
    validate_schedule,
)
from repro.distrib.section import Section
from repro.vmachine.machine import SPMDError

from helpers import run_spmd

N = 36
PERM = np.random.default_rng(70).permutation(N)


def _build(comm):
    A = BlockPartiArray.zeros(comm, (6, 6))
    B = ChaosArray.zeros(comm, PERM % comm.size)
    sched = mc_compute_schedule(
        comm,
        "blockparti", A,
        mc_new_set_of_regions(SectionRegion(Section.full((6, 6)))),
        "chaos", B, mc_new_set_of_regions(IndexRegion(PERM)),
    )
    return A, B, sched


class TestValidate:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_valid_schedule_passes(self, nprocs):
        def spmd(comm):
            A, B, sched = _build(comm)
            validate_schedule(comm, sched, A, B)
            return True

        assert all(run_spmd(nprocs, spmd).values)

    def test_dropped_element_detected(self):
        def spmd(comm):
            A, B, sched = _build(comm)
            if comm.rank == 0 and sched.sends:
                d = next(iter(sched.sends))
                sched.sends[d] = sched.sends[d][:-1]
            validate_schedule(comm, sched, A, B)

        with pytest.raises(SPMDError, match="expected|covers"):
            run_spmd(2, spmd)

    def test_out_of_range_offset_detected(self):
        def spmd(comm):
            A, B, sched = _build(comm)
            if sched.recvs:
                s = next(iter(sched.recvs))
                bad = sched.recvs[s].copy()
                if len(bad):
                    bad[0] = 10_000
                    sched.recvs[s] = bad
            validate_schedule(comm, sched, A, B)

        with pytest.raises(SPMDError, match="outside local storage"):
            run_spmd(2, spmd)

    def test_duplicate_destination_detected(self):
        def spmd(comm):
            A, B, sched = _build(comm)
            if sched.recvs:
                s = next(iter(sched.recvs))
                bad = sched.recvs[s].copy()
                if len(bad) >= 2:
                    bad[1] = bad[0]
                    sched.recvs[s] = bad
            validate_schedule(comm, sched, A, B)

        with pytest.raises(SPMDError, match="more than one"):
            run_spmd(1, spmd)

    def test_every_rank_raises(self):
        """The verdict is collective: even clean ranks raise."""

        def spmd(comm):
            A, B, sched = _build(comm)
            if comm.rank == 0 and sched.sends:
                d = next(iter(sched.sends))
                sched.sends[d] = sched.sends[d][:-1]
            try:
                validate_schedule(comm, sched, A, B)
                return "no error"
            except ScheduleValidationError:
                return "raised"

        res = run_spmd(3, spmd)
        assert res.values == ["raised"] * 3


class TestStats:
    def test_counts_add_up(self):
        def spmd(comm):
            _, _, sched = _build(comm)
            stats = schedule_stats(comm, sched)
            return (stats.n_elements, stats.local_elements + stats.remote_elements)

        for n, covered in run_spmd(4, spmd).values:
            assert n == N and covered == N

    def test_single_proc_all_local(self):
        def spmd(comm):
            _, _, sched = _build(comm)
            stats = schedule_stats(comm, sched)
            return (stats.locality, stats.message_pairs)

        loc, pairs = run_spmd(1, spmd).values[0]
        assert loc == 1.0 and pairs == 0

    def test_message_pairs_bounded(self):
        def spmd(comm):
            _, _, sched = _build(comm)
            return schedule_stats(comm, sched).message_pairs

        pairs = run_spmd(4, spmd).values[0]
        assert pairs <= 4 * 3


class TestExplain:
    def test_contains_both_halves(self):
        def spmd(comm):
            _, _, sched = _build(comm)
            return explain_schedule(sched)

        text = run_spmd(2, spmd).values[0]
        assert "blockparti -> chaos" in text
        assert "send" in text and "recv" in text

    def test_empty_rank_message(self):
        from repro.core.schedule import CommSchedule, ScheduleMethod

        sched = CommSchedule("hpf", "hpf", 0, 2, 2, ScheduleMethod.COOPERATION)
        assert "moves no elements" in explain_schedule(sched)

    def test_truncation(self):
        def spmd(comm):
            _, _, sched = _build(comm)
            return explain_schedule(sched, max_entries=1)

        text = run_spmd(1, spmd).values[0]
        assert "+35" in text  # 36 elements, one shown
