"""Executor policies: OVERLAP must change only *when*, never *what*.

``ExecutorPolicy.OVERLAP`` staggers injection (rotated send order) and
completes receives in logical-arrival order via wait-any; the contract is
that destination data, message counts and byte counts are identical to
the paper-faithful ORDERED executor — only clocks may differ.  The
property tests here drive random SetOfRegions through both policies
across schedule methods and both universe kinds (single- and
two-program); unit tests pin the rotation itself and the run-to-run
determinism of traced OVERLAP executions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.blockparti  # noqa: F401
import repro.chaos  # noqa: F401
import repro.hpf  # noqa: F401
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import (
    ExecutorPolicy,
    ScheduleCache,
    ScheduleMethod,
    mc_compute_schedule,
    mc_copy,
    rotated_order,
)
from repro.core.coupling import CoupledExchange, coupled_universe
from repro.core.policy import ordered_or_rotated
from repro.vmachine import ProgramSpec, VirtualMachine, run_programs

from helpers import both_methods, index_sor, oracle_copy, run_spmd, section_sor


class TestRotatedOrder:
    def test_starts_at_rank_plus_one(self):
        assert rotated_order(range(6), my_rank=2, group_size=6) == [3, 4, 5, 0, 1, 2]

    def test_wraps_at_group_end(self):
        assert rotated_order(range(4), my_rank=3, group_size=4) == [0, 1, 2, 3]

    def test_permutation_of_subset(self):
        ranks = [0, 2, 5, 7]
        out = rotated_order(ranks, my_rank=4, group_size=8)
        assert sorted(out) == ranks
        assert out == [5, 7, 0, 2]  # rotation point is rank 5

    def test_deterministic(self):
        ranks = [3, 1, 4, 1, 5][:4]
        assert (
            rotated_order(ranks, 2, 6)
            == rotated_order(ranks, 2, 6)
            == rotated_order(list(ranks), 2, 6)
        )

    def test_ordered_policy_is_ascending(self):
        assert ordered_or_rotated(
            [5, 1, 3], 0, 6, ExecutorPolicy.ORDERED
        ) == [1, 3, 5]

    def test_distinct_senders_get_distinct_rotations(self):
        """The staggering property: each sender starts one past itself, so
        no two senders inject toward the same first destination (full
        group case)."""
        firsts = [rotated_order(range(8), r, 8)[0] for r in range(8)]
        assert sorted(firsts) == list(range(8))


# ---------------------------------------------------------------------------
# Property: OVERLAP == ORDERED on data and traffic, single program.
# ---------------------------------------------------------------------------

SHAPE = (12, 10)
NELEMS = SHAPE[0] * SHAPE[1]


def _random_case(seed: int, nprocs: int):
    """A random rectangular source section and a random scatter of the
    same size, plus a random destination ownership map."""
    rng = np.random.default_rng(seed)
    r0 = int(rng.integers(0, SHAPE[0] - 1))
    r1 = int(rng.integers(r0 + 1, SHAPE[0] + 1))
    nsel = (r1 - r0) * SHAPE[1]
    perm = rng.permutation(NELEMS)[:nsel]
    owners = rng.integers(0, nprocs, NELEMS)
    return (slice(r0, r1), slice(0, SHAPE[1])), perm, owners


def _run_policy(policy, method, nprocs, case, stats=True):
    slices, perm, owners = case
    G = np.random.default_rng(77).random(SHAPE)

    def spmd(comm):
        A = BlockPartiArray.from_global(comm, G)
        B = ChaosArray.zeros(comm, owners % comm.size)
        src = section_sor(slices, SHAPE)
        dst = index_sor(perm)
        sched = mc_compute_schedule(
            comm, "blockparti", A, src, "chaos", B, dst, method, policy=policy
        )
        mc_copy(comm, sched, A, B, policy=policy)
        return B.gather_global()

    res = run_spmd(nprocs, spmd)
    traffic = {
        "messages": res.total_stat("messages_sent"),
        "bytes": res.total_stat("bytes_sent"),
    }
    return res.values[0], traffic


class TestOverlapEqualsOrderedSingleProgram:
    @given(
        seed=st.integers(0, 10_000),
        nprocs=st.sampled_from([1, 2, 3, 4, 7, 8]),
        method=st.sampled_from(both_methods()),
    )
    @settings(max_examples=15, deadline=None)
    def test_identical_data_and_traffic(self, seed, nprocs, method):
        case = _random_case(seed, nprocs)
        d_ord, t_ord = _run_policy(ExecutorPolicy.ORDERED, method, nprocs, case)
        d_ovl, t_ovl = _run_policy(ExecutorPolicy.OVERLAP, method, nprocs, case)
        np.testing.assert_array_equal(d_ord, d_ovl)
        assert t_ord == t_ovl

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_overlap_matches_oracle(self, seed):
        """OVERLAP is not merely self-consistent with ORDERED: both match
        the sequential oracle."""
        case = _random_case(seed, 4)
        slices, perm, _ = case
        G = np.random.default_rng(77).random(SHAPE)
        got, _ = _run_policy(
            ExecutorPolicy.OVERLAP, ScheduleMethod.COOPERATION, 4, case
        )
        expected = oracle_copy(
            G, section_sor(slices, SHAPE), np.zeros(NELEMS), index_sor(perm)
        )
        np.testing.assert_allclose(got, expected)


# ---------------------------------------------------------------------------
# Property: OVERLAP == ORDERED across two coupled programs.
# ---------------------------------------------------------------------------

G2 = np.random.default_rng(9).random(SHAPE)


def _run_coupled(policy, psrc, pdst, perm, method):
    def src_prog(ctx):
        comm = ctx.comm
        A = BlockPartiArray.from_global(comm, G2)
        uni = coupled_universe(ctx, "dstp", "src")
        sched = mc_compute_schedule(
            uni,
            "blockparti", A, section_sor((slice(0, SHAPE[0]), slice(0, SHAPE[1])), SHAPE),
            "chaos", None,
            index_sor(perm) if method is ScheduleMethod.DUPLICATION else None,
            method, policy=policy,
        )
        CoupledExchange(uni, sched, policy=policy).push(A)
        return None

    def dst_prog(ctx):
        comm = ctx.comm
        B = ChaosArray.zeros(comm, (perm * 3) % comm.size)
        uni = coupled_universe(ctx, "srcp", "dst")
        sched = mc_compute_schedule(
            uni,
            "blockparti", None,
            section_sor((slice(0, SHAPE[0]), slice(0, SHAPE[1])), SHAPE)
            if method is ScheduleMethod.DUPLICATION else None,
            "chaos", B, index_sor(perm),
            method, policy=policy,
        )
        CoupledExchange(uni, sched, policy=policy).push(B)
        return B.gather_global()

    res = run_programs(
        [ProgramSpec("srcp", psrc, src_prog), ProgramSpec("dstp", pdst, dst_prog)]
    )
    traffic = {
        name: (r.total_stat("messages_sent"), r.total_stat("bytes_sent"))
        for name, r in res.programs.items()
    }
    return res["dstp"].values[0], traffic


class TestOverlapEqualsOrderedTwoProgram:
    @given(
        seed=st.integers(0, 10_000),
        sizes=st.sampled_from([(1, 1), (1, 4), (3, 2), (4, 3)]),
        method=st.sampled_from(both_methods()),
    )
    @settings(max_examples=8, deadline=None)
    def test_identical_data_and_traffic(self, seed, sizes, method):
        psrc, pdst = sizes
        perm = np.random.default_rng(seed).permutation(NELEMS)
        d_ord, t_ord = _run_coupled(ExecutorPolicy.ORDERED, psrc, pdst, perm, method)
        d_ovl, t_ovl = _run_coupled(ExecutorPolicy.OVERLAP, psrc, pdst, perm, method)
        np.testing.assert_array_equal(d_ord, d_ovl)
        assert t_ord == t_ovl
        expected = np.zeros(NELEMS)
        expected[perm] = G2.ravel()
        np.testing.assert_allclose(d_ovl, expected)


# ---------------------------------------------------------------------------
# Determinism and cache interaction.
# ---------------------------------------------------------------------------


class TestDeterminism:
    def _traced_run(self):
        perm = np.random.default_rng(5).permutation(NELEMS)

        def spmd(comm):
            A = BlockPartiArray.from_global(comm, G2)
            B = ChaosArray.zeros(comm, (perm * 5) % comm.size)
            src = section_sor((slice(0, SHAPE[0]), slice(0, SHAPE[1])), SHAPE)
            sched = mc_compute_schedule(
                comm, "blockparti", A, src, "chaos", B, index_sor(perm),
                policy=ExecutorPolicy.OVERLAP,
            )
            mc_copy(comm, sched, A, B, policy=ExecutorPolicy.OVERLAP)
            return None

        return VirtualMachine(4, trace=True).run(spmd).traces

    def test_overlap_traces_reproducible(self):
        """Two identical OVERLAP runs agree event-by-event: send order,
        completion order, clocks.  Host thread scheduling never leaks in."""
        t1, t2 = self._traced_run(), self._traced_run()
        assert len(t1) == len(t2)
        for rank, (a, b) in enumerate(zip(t1, t2)):
            assert a == b, f"rank {rank} trace diverged"

    def test_overlap_has_rotated_sends(self):
        """Sanity: the traced OVERLAP run actually rotates — some rank's
        first data send is not to its lowest-ranked destination."""
        traces = self._traced_run()
        rotated = False
        for trace in traces:
            sends = [ev.peer for ev in trace if ev.kind == "send"]
            if sends and sends[0] != min(sends):
                rotated = True
        assert rotated


class TestCachePolicySharing:
    def test_overlap_request_hits_ordered_entry(self):
        """Schedule content is policy-invariant, so the cache shares
        entries across policies (no rebuild collective on the second
        request)."""
        perm = np.random.default_rng(12).permutation(NELEMS)

        def spmd(comm):
            A = BlockPartiArray.zeros(comm, SHAPE)
            B = ChaosArray.zeros(comm, perm % comm.size)
            cache = ScheduleCache(comm)
            src = section_sor((slice(0, SHAPE[0]), slice(0, SHAPE[1])), SHAPE)
            s1 = cache.get_or_build(
                "blockparti", A, src, "chaos", B, index_sor(perm),
                policy=ExecutorPolicy.ORDERED,
            )
            m0 = comm.process.stats["messages_sent"]
            s2 = cache.get_or_build(
                "blockparti", A, src, "chaos", B, index_sor(perm),
                policy=ExecutorPolicy.OVERLAP,
            )
            assert s2 is s1
            assert comm.process.stats["messages_sent"] == m0
            return True

        assert run_spmd(3, spmd).values == [True, True, True]


class TestPolicyCoercion:
    def test_coerce_accepts_strings(self):
        assert ExecutorPolicy.coerce("overlap") is ExecutorPolicy.OVERLAP
        assert ExecutorPolicy.coerce("ordered") is ExecutorPolicy.ORDERED
        assert ExecutorPolicy.coerce(ExecutorPolicy.OVERLAP) is ExecutorPolicy.OVERLAP

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError):
            ExecutorPolicy.coerce("eager")
