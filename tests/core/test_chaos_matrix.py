"""Chaos matrix: seeded end-to-end property tests.

With reliability enabled, ``mc_copy`` and ``CoupledExchange.push``/
``pull`` must deliver destination arrays identical to the fault-free
oracle under any seeded mix of drop/dup/reorder/delay (each at <= 20%),
across both schedule methods and both executor policies — and the same
seed must replay the same trace.
"""

import time

import numpy as np
import pytest

import repro.blockparti  # noqa: F401
import repro.chaos  # noqa: F401
import repro.hpf  # noqa: F401
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import ExecutorPolicy, ScheduleMethod, mc_compute_schedule, mc_copy
from repro.core.coupling import CoupledExchange, coupled_universe
from repro.core.universe import SingleProgramUniverse
from repro.vmachine import ProgramSpec, VirtualMachine, run_programs
from repro.vmachine.faults import FaultPlan, FaultRates, PeerLostError
from repro.vmachine.machine import SPMDError

from helpers import both_methods, index_sor, oracle_copy, section_sor

SHAPE = (12, 10)
G = np.random.default_rng(2).random(SHAPE)
PERM = np.random.default_rng(3).permutation(80)
SRC_SLICES = (slice(2, 10), slice(0, 10))

BOTH_POLICIES = [ExecutorPolicy.ORDERED, ExecutorPolicy.OVERLAP]


def chaos_plan(seed):
    """<=20% of each fault on the data plane (the default rule class)."""
    return FaultPlan(
        seed=seed,
        rates=FaultRates(drop=0.2, dup=0.2, reorder=0.2, delay=0.2),
    )


def expected():
    return oracle_copy(
        G, section_sor(SRC_SLICES, SHAPE), np.zeros(80), index_sor(PERM)
    )


# ---------------------------------------------------------------------------
# single program: mc_copy over a faulty transport
# ---------------------------------------------------------------------------


def _single_program(method, policy):
    def spmd(comm):
        A = BlockPartiArray.from_global(comm, G)
        B = ChaosArray.zeros(comm, (PERM * 7) % comm.size)
        sched = mc_compute_schedule(
            comm, "blockparti", A, section_sor(SRC_SLICES, SHAPE),
            "chaos", B, index_sor(PERM), method,
        )
        universe = SingleProgramUniverse(comm)
        universe.enable_reliability()
        mc_copy(universe, sched, A, B, policy=policy, timeout=30.0)
        return B.gather_global()

    return spmd


class TestSingleProgramChaos:
    @pytest.mark.parametrize("method", both_methods())
    @pytest.mark.parametrize("policy", BOTH_POLICIES)
    def test_mc_copy_matches_oracle_under_chaos(self, method, policy):
        vm = VirtualMachine(4, faults=chaos_plan(seed=31), recv_timeout_s=30.0)
        got = vm.run(_single_program(method, policy)).values[0]
        np.testing.assert_array_equal(got, expected())

    @pytest.mark.parametrize("seed", [1, 17, 92])
    def test_seed_sweep(self, seed):
        vm = VirtualMachine(3, faults=chaos_plan(seed), recv_timeout_s=30.0)
        got = vm.run(
            _single_program(ScheduleMethod.COOPERATION, ExecutorPolicy.ORDERED)
        ).values[0]
        np.testing.assert_array_equal(got, expected())

    def test_retransmits_actually_happened(self):
        """The chaos plan must be exercising the protocol, not idling."""
        def spmd(comm):
            _single_program(
                ScheduleMethod.COOPERATION, ExecutorPolicy.ORDERED
            )(comm)
            return dict(comm.process.stats)

        vm = VirtualMachine(4, faults=chaos_plan(seed=31), recv_timeout_s=30.0)
        stats = vm.run(spmd).values
        assert sum(s.get("faults_drop", 0) for s in stats) > 0
        assert sum(s.get("rel_retransmits", 0) for s in stats) > 0


class TestChaosDeterminism:
    def _traced(self, seed):
        vm = VirtualMachine(
            4, faults=chaos_plan(seed), recv_timeout_s=30.0, trace=True
        )
        res = vm.run(
            _single_program(ScheduleMethod.COOPERATION, ExecutorPolicy.OVERLAP)
        )
        events = [
            [(e.kind, e.time, e.rank, e.peer, e.tag, e.nbytes, e.wait)
             for e in tr]
            for tr in res.traces
        ]
        return events, res.clocks

    def test_same_seed_replays_identical_trace(self):
        ev_a, clk_a = self._traced(77)
        ev_b, clk_b = self._traced(77)
        assert ev_a == ev_b
        assert clk_a == clk_b

    def test_different_seed_differs(self):
        ev_a, _ = self._traced(77)
        ev_b, _ = self._traced(78)
        assert ev_a != ev_b


# ---------------------------------------------------------------------------
# two programs: CoupledExchange over a faulty inter-program channel
# ---------------------------------------------------------------------------


def _coupled(psrc, pdst, method, policy, *, faults=None, pull_back=False):
    def src_prog(ctx):
        A = BlockPartiArray.from_global(ctx.comm, G)
        uni = coupled_universe(ctx, "dstp", "src")
        sched = mc_compute_schedule(
            uni,
            "blockparti", A, section_sor(SRC_SLICES, SHAPE),
            "chaos", None,
            index_sor(PERM) if method is ScheduleMethod.DUPLICATION else None,
            method,
        )
        ex = CoupledExchange(uni, sched, policy=policy, deadline_s=30.0,
                             reliability=True)
        ex.push(A)
        if pull_back:
            A2 = BlockPartiArray.zeros(ctx.comm, SHAPE)
            ex.pull(A2)
            return A2.gather_global()
        return None

    def dst_prog(ctx):
        B = ChaosArray.zeros(ctx.comm, (PERM * 3) % ctx.comm.size)
        uni = coupled_universe(ctx, "srcp", "dst")
        sched = mc_compute_schedule(
            uni,
            "blockparti", None,
            section_sor(SRC_SLICES, SHAPE)
            if method is ScheduleMethod.DUPLICATION else None,
            "chaos", B, index_sor(PERM),
            method,
        )
        ex = CoupledExchange(uni, sched, policy=policy, deadline_s=30.0,
                             reliability=True)
        ex.push(B)
        out = B.gather_global()
        if pull_back:
            B.local *= 2.0
            ex.pull(B)
        return out

    return run_programs(
        [ProgramSpec("srcp", psrc, src_prog),
         ProgramSpec("dstp", pdst, dst_prog)],
        faults=faults,
        recv_timeout_s=30.0,
    )


class TestCoupledChaos:
    @pytest.mark.parametrize("method", both_methods())
    @pytest.mark.parametrize("policy", BOTH_POLICIES)
    def test_push_matches_oracle_under_chaos(self, method, policy):
        res = _coupled(3, 2, method, policy, faults=chaos_plan(seed=5))
        np.testing.assert_array_equal(res["dstp"].values[0], expected())

    @pytest.mark.parametrize("policy", BOTH_POLICIES)
    def test_pull_returns_doubled_data_under_chaos(self, policy):
        res = _coupled(2, 3, ScheduleMethod.COOPERATION, policy,
                       faults=chaos_plan(seed=8), pull_back=True)
        np.testing.assert_array_equal(res["dstp"].values[0], expected())
        want = np.zeros(SHAPE)
        want[SRC_SLICES] = 2.0 * G[SRC_SLICES]
        np.testing.assert_array_equal(res["srcp"].values[0], want)

    def test_chaos_result_equals_fault_free_result(self):
        a = _coupled(3, 2, ScheduleMethod.COOPERATION, ExecutorPolicy.ORDERED)
        b = _coupled(3, 2, ScheduleMethod.COOPERATION, ExecutorPolicy.ORDERED,
                     faults=chaos_plan(seed=40))
        np.testing.assert_array_equal(
            a["dstp"].values[0], b["dstp"].values[0]
        )


class TestCoupledDegradation:
    def test_crashed_peer_surfaces_peer_lost_error(self):
        """The destination program dies after the schedule exchange; the
        source's push must raise PeerLostError *naming the peer program*
        within the deadline, not hang."""

        def src_prog(ctx):
            A = BlockPartiArray.from_global(ctx.comm, G)
            uni = coupled_universe(ctx, "dstp", "src")
            sched = mc_compute_schedule(
                uni, "blockparti", A, section_sor(SRC_SLICES, SHAPE),
                "chaos", None, None,
            )
            ex = CoupledExchange(uni, sched, deadline_s=20.0,
                                 reliability=True)
            ex.push(A)

        def dst_prog(ctx):
            B = ChaosArray.zeros(ctx.comm, PERM % ctx.comm.size)
            uni = coupled_universe(ctx, "srcp", "dst")
            mc_compute_schedule(
                uni, "blockparti", None, None,
                "chaos", B, index_sor(PERM),
            )
            raise RuntimeError("simulated power loss")

        t0 = time.monotonic()
        with pytest.raises(SPMDError) as ei:
            run_programs(
                [ProgramSpec("srcp", 1, src_prog),
                 ProgramSpec("dstp", 1, dst_prog)],
                recv_timeout_s=60.0,
            )
        assert time.monotonic() - t0 < 15.0
        peer_lost = [
            e.exception for e in ei.value.errors
            if isinstance(e.exception, PeerLostError)
        ]
        assert peer_lost, "no PeerLostError surfaced"
        assert peer_lost[0].peer_program == "dstp"
        assert "dstp" in str(peer_lost[0])

    def test_silent_peer_times_out_within_deadline(self):
        """A peer that is alive but never completes its half: the fence
        deadline converts the stall into PeerLostError diagnostics."""

        def src_prog(ctx):
            A = BlockPartiArray.from_global(ctx.comm, G)
            uni = coupled_universe(ctx, "dstp", "src")
            sched = mc_compute_schedule(
                uni, "blockparti", A, section_sor(SRC_SLICES, SHAPE),
                "chaos", None, None,
            )
            ex = CoupledExchange(uni, sched, deadline_s=1.0,
                                 reliability=True)
            t0 = time.monotonic()
            try:
                ex.push(A)
            except PeerLostError as exc:
                return (time.monotonic() - t0, exc.peer_program, str(exc))
            return None

        def dst_prog(ctx):
            B = ChaosArray.zeros(ctx.comm, PERM % ctx.comm.size)
            uni = coupled_universe(ctx, "srcp", "dst")
            mc_compute_schedule(
                uni, "blockparti", None, None,
                "chaos", B, index_sor(PERM),
            )
            return None  # never calls push: the src's acks never come

        res = run_programs(
            [ProgramSpec("srcp", 1, src_prog),
             ProgramSpec("dstp", 1, dst_prog)],
            recv_timeout_s=60.0,
        )
        out = res["srcp"].values[0]
        assert out is not None, "push did not raise PeerLostError"
        elapsed, peer, text = out
        assert elapsed < 10.0
        assert peer == "dstp"
        assert "dstp" in text
