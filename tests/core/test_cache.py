"""Schedule-cache tests."""

import numpy as np
import pytest

import repro.blockparti  # noqa: F401
import repro.chaos  # noqa: F401
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import (
    IndexRegion,
    ScheduleCache,
    ScheduleMethod,
    SectionRegion,
    mc_copy,
    mc_new_set_of_regions,
    region_key,
    sor_key,
)
from repro.distrib.section import Section

from helpers import run_spmd

N = 36
PERM = np.random.default_rng(90).permutation(N)


def _sors():
    src = mc_new_set_of_regions(SectionRegion(Section.full((6, 6))))
    dst = mc_new_set_of_regions(IndexRegion(PERM))
    return src, dst


class TestKeys:
    def test_section_key_is_content(self):
        a = SectionRegion(Section((0, 0), (4, 4), (1, 1)))
        b = SectionRegion(Section((0, 0), (4, 4), (1, 1)))
        c = SectionRegion(Section((0, 0), (4, 4), (1, 1)), order="F")
        assert region_key(a) == region_key(b)
        assert region_key(a) != region_key(c)

    def test_index_key_is_content(self):
        a = IndexRegion(np.array([3, 1, 2]))
        b = IndexRegion(np.array([3, 1, 2]))
        c = IndexRegion(np.array([1, 3, 2]))
        assert region_key(a) == region_key(b)
        assert region_key(a) != region_key(c)

    def test_sor_key_ordered(self):
        r1, r2 = IndexRegion(np.arange(3)), IndexRegion(np.arange(4))
        from repro.core import SetOfRegions

        assert sor_key(SetOfRegions([r1, r2])) != sor_key(SetOfRegions([r2, r1]))


class TestCache:
    def test_hit_skips_rebuild(self):
        def spmd(comm):
            A = BlockPartiArray.zeros(comm, (6, 6))
            B = ChaosArray.zeros(comm, PERM % comm.size)
            cache = ScheduleCache(comm)
            src, dst = _sors()
            s1 = cache.get_or_build("blockparti", A, src, "chaos", B, dst)
            t0 = comm.process.clock
            m0 = comm.process.stats["messages_sent"]
            # Equivalent request, new region objects: must hit.
            src2, dst2 = _sors()
            s2 = cache.get_or_build("blockparti", A, src2, "chaos", B, dst2)
            assert s2 is s1
            assert comm.process.stats["messages_sent"] == m0  # no collective
            assert cache.hits == 1 and cache.misses == 1
            snap = cache.snapshot()
            assert snap["schedule_hits"] == 1
            assert snap["schedule_misses"] == 1
            assert snap["schedule_entries"] == 1
            return comm.process.clock - t0

        elapsed = run_spmd(4, spmd).values[0]
        assert elapsed < 1e-3  # key hashing only

    def test_distinct_requests_miss(self):
        def spmd(comm):
            A = BlockPartiArray.zeros(comm, (6, 6))
            B = ChaosArray.zeros(comm, PERM % comm.size)
            cache = ScheduleCache(comm)
            src, dst = _sors()
            cache.get_or_build("blockparti", A, src, "chaos", B, dst)
            cache.get_or_build(
                "blockparti", A, src, "chaos", B, dst,
                ScheduleMethod.DUPLICATION,
            )
            other_dst = mc_new_set_of_regions(IndexRegion(np.arange(N)))
            cache.get_or_build("blockparti", A, src, "chaos", B, other_dst)
            return (cache.misses, len(cache))

        misses, size = run_spmd(2, spmd).values[0]
        assert misses == 3 and size == 3

    def test_cached_schedule_still_copies_correctly(self):
        values = np.random.default_rng(91).random((6, 6))

        def spmd(comm):
            A = BlockPartiArray.from_global(comm, values)
            B = ChaosArray.zeros(comm, PERM % comm.size)
            cache = ScheduleCache(comm)
            for _ in range(3):
                src, dst = _sors()
                sched = cache.get_or_build("blockparti", A, src, "chaos", B, dst)
                mc_copy(comm, sched, A, B)
            return B.gather_global()

        got = run_spmd(3, spmd).values[0]
        expected = np.zeros(N)
        expected[PERM] = values.ravel()
        np.testing.assert_allclose(got, expected)

    def test_different_distributions_key_apart(self):
        def spmd(comm):
            A = BlockPartiArray.zeros(comm, (6, 6))
            B1 = ChaosArray.zeros(comm, PERM % comm.size)
            B2 = ChaosArray.zeros(comm, (PERM + 1) % comm.size)
            cache = ScheduleCache(comm)
            src, dst = _sors()
            cache.get_or_build("blockparti", A, src, "chaos", B1, dst)
            src2, dst2 = _sors()
            cache.get_or_build("blockparti", A, src2, "chaos", B2, dst2)
            return cache.misses

        assert run_spmd(2, spmd).values[0] == 2


class TestBoundedLRU:
    def _nth_dst(self, n):
        return mc_new_set_of_regions(IndexRegion(np.roll(np.arange(N), n)))

    def test_eviction_accounting(self):
        def spmd(comm):
            A = BlockPartiArray.zeros(comm, (6, 6))
            B = ChaosArray.zeros(comm, PERM % comm.size)
            src, _ = _sors()
            cache = ScheduleCache(comm, maxsize=2)
            for n in range(4):  # 4 distinct requests through a 2-entry cache
                cache.get_or_build("blockparti", A, src, "chaos", B, self._nth_dst(n))
            return cache.hits, cache.misses, cache.evictions, len(cache)

        hits, misses, evictions, size = run_spmd(2, spmd).values[0]
        assert (hits, misses, evictions, size) == (0, 4, 2, 2)

    def test_lru_order_hits_refresh_recency(self):
        def spmd(comm):
            A = BlockPartiArray.zeros(comm, (6, 6))
            B = ChaosArray.zeros(comm, PERM % comm.size)
            src, _ = _sors()
            cache = ScheduleCache(comm, maxsize=2)
            build = lambda n: cache.get_or_build(
                "blockparti", A, src, "chaos", B, self._nth_dst(n)
            )
            s0 = build(0)
            build(1)
            assert build(0) is s0      # hit refreshes 0's recency
            build(2)                   # evicts 1 (LRU), not 0
            assert build(0) is s0      # still cached: hit again
            return cache.hits, cache.misses, cache.evictions

        hits, misses, evictions = run_spmd(2, spmd).values[0]
        assert (hits, misses, evictions) == (2, 3, 1)

    def test_unbounded_by_default(self):
        def spmd(comm):
            A = BlockPartiArray.zeros(comm, (6, 6))
            B = ChaosArray.zeros(comm, PERM % comm.size)
            src, _ = _sors()
            cache = ScheduleCache(comm)
            for n in range(5):
                cache.get_or_build("blockparti", A, src, "chaos", B, self._nth_dst(n))
            return cache.evictions, len(cache)

        assert run_spmd(2, spmd).values[0] == (0, 5)

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            ScheduleCache(None, maxsize=0)

    def test_cached_schedules_are_compact(self):
        """The cache stores run-compressed schedules: a cached regular
        section move costs KBs per rank, not MBs."""
        def spmd(comm):
            A = BlockPartiArray.zeros(comm, (64, 64))
            B = BlockPartiArray.zeros(comm, (64, 64))
            src = mc_new_set_of_regions(
                SectionRegion(Section((0, 0), (31, 63), (1, 1)))
            )
            dst = mc_new_set_of_regions(
                SectionRegion(Section((32, 0), (63, 63), (1, 1)))
            )
            cache = ScheduleCache(comm)
            sched = cache.get_or_build("blockparti", A, src, "blockparti", B, dst)
            return sched.nbytes_memory, sched.nbytes_dense

        for mem, dense in run_spmd(4, spmd).values:
            assert dense == 0 or mem < dense / 5

    def test_eviction_is_rank_deterministic(self):
        def spmd(comm):
            A = BlockPartiArray.zeros(comm, (6, 6))
            B = ChaosArray.zeros(comm, PERM % comm.size)
            src, _ = _sors()
            cache = ScheduleCache(comm, maxsize=3)
            for n in [0, 1, 2, 0, 3, 1, 4]:
                cache.get_or_build("blockparti", A, src, "chaos", B, self._nth_dst(n))
            return cache.hits, cache.misses, cache.evictions

        res = run_spmd(4, spmd)
        assert len(set(res.values)) == 1  # every rank agrees


class TestPlanCache:
    """get_or_build_plan: fused plans keyed by their member schedule keys."""

    def _nth_dst(self, n):
        return mc_new_set_of_regions(IndexRegion(np.roll(np.arange(N), n)))

    def _requests(self, comm, ns):
        A = BlockPartiArray.zeros(comm, (6, 6))
        src, _ = _sors()
        reqs = []
        for n in ns:
            B = ChaosArray.zeros(comm, np.roll(PERM, n) % comm.size)
            reqs.append(("blockparti", A, src, "chaos", B, self._nth_dst(n)))
        return reqs

    def test_plan_hit_reuses_compiled_plan(self):
        def spmd(comm):
            cache = ScheduleCache(comm)
            reqs = self._requests(comm, [0, 1])
            p1 = cache.get_or_build_plan(reqs)
            p2 = cache.get_or_build_plan(reqs)
            assert p2 is p1
            return (cache.plan_hits, cache.plan_misses, cache.misses,
                    cache.plan_count, p1.nschedules)

        assert run_spmd(2, spmd).values[0] == (1, 1, 2, 1, 2)

    def test_plan_warms_schedule_store(self):
        def spmd(comm):
            cache = ScheduleCache(comm)
            reqs = self._requests(comm, [0, 1])
            plan = cache.get_or_build_plan(reqs)
            # Single-schedule requests now hit the store the plan warmed.
            s0 = cache.get_or_build(*reqs[0])
            assert plan.schedules[0] is s0
            return cache.hits, cache.misses

        assert run_spmd(2, spmd).values[0] == (1, 2)

    def test_member_order_matters(self):
        def spmd(comm):
            cache = ScheduleCache(comm)
            reqs = self._requests(comm, [0, 1])
            cache.get_or_build_plan(reqs)
            cache.get_or_build_plan(list(reversed(reqs)))
            # Same schedules, different fusion order: two distinct plans,
            # but the member schedules all come from the store.
            return cache.plan_misses, cache.plan_count, cache.misses

        assert run_spmd(2, spmd).values[0] == (2, 2, 2)

    def test_schedule_eviction_invalidates_dependent_plans(self):
        def spmd(comm):
            cache = ScheduleCache(comm, maxsize=2)
            reqs = self._requests(comm, [0, 1])
            cache.get_or_build_plan(reqs)
            assert cache.plan_count == 1
            # Two fresh schedule requests evict both plan members.
            for n in (2, 3):
                cache.get_or_build(*self._requests(comm, [n])[0])
            assert cache.plan_count == 0
            return cache.plan_invalidations, cache.evictions

        invalidations, evictions = run_spmd(2, spmd).values[0]
        assert invalidations == 1  # the one dependent plan, dropped once
        assert evictions == 2

    def test_invalidated_plan_rebuilds_against_fresh_member(self):
        def spmd(comm):
            cache = ScheduleCache(comm, maxsize=2)
            reqs = self._requests(comm, [0, 1])
            p1 = cache.get_or_build_plan(reqs)
            for n in (2, 3):
                cache.get_or_build(*self._requests(comm, [n])[0])
            p2 = cache.get_or_build_plan(reqs)
            assert p2 is not p1
            # The recompiled plan holds the *rebuilt* members, not stale ones.
            assert p2.schedules[0] is cache.get_or_build(*reqs[0])
            return cache.plan_misses

        assert run_spmd(2, spmd).values[0] == 2

    def test_midbuild_eviction_never_caches_stale_plan(self):
        """Three members through a maxsize-2 store: inserting member 2
        evicts member 0 *before* the plan is stored.  Historically the
        plan was cached anyway, holding the evicted schedule alive behind
        the cache's back (and invisible to eviction invalidation)."""
        def spmd(comm):
            cache = ScheduleCache(comm, maxsize=2)
            reqs = self._requests(comm, [0, 1, 2])
            plan = cache.get_or_build_plan(reqs)
            assert plan.nschedules == 3
            # The store cannot hold all three members at once, so no plan
            # may be cached — a cached one would be stale by construction.
            assert cache.validate() == []
            assert cache.plan_count == 0
            assert cache.plan_uncached == 1
            # A repeat request recompiles (no hit on a stale plan) and
            # still satisfies the invariant on every rank.
            plan2 = cache.get_or_build_plan(reqs)
            assert plan2 is not plan
            assert cache.validate() == []
            return cache.snapshot()

        snaps = run_spmd(2, spmd).values
        assert snaps[0] == snaps[1]  # counters collective-deterministic

    def test_eviction_rebuild_then_plan_serves_fresh_members(self):
        """Evict a member, rebuild it under the same key, then request the
        plan: the plan must reference the rebuilt store objects."""
        def spmd(comm):
            cache = ScheduleCache(comm, maxsize=2)
            reqs = self._requests(comm, [0, 1])
            cache.get_or_build_plan(reqs)
            # Eviction: a third schedule pushes member 0 out...
            cache.get_or_build(*self._requests(comm, [2])[0])
            # ...rebuild: the same key re-enters the store as a new object.
            rebuilt = cache.get_or_build(*reqs[0])
            plan = cache.get_or_build_plan(reqs)
            assert cache.validate() == []
            assert plan.schedules[0] is rebuilt
            assert plan.schedules[1] is cache.get_or_build(*reqs[1])
            return True

        assert all(run_spmd(2, spmd).values)

    def test_plan_cache_deterministic_across_ranks(self):
        def spmd(comm):
            cache = ScheduleCache(comm, maxsize=3)
            for ns in ([0, 1], [1, 2], [0, 1], [2, 3]):
                cache.get_or_build_plan(self._requests(comm, ns))
            return (cache.plan_hits, cache.plan_misses,
                    cache.plan_invalidations, cache.hits, cache.misses)

        res = run_spmd(4, spmd)
        assert len(set(res.values)) == 1  # every rank agrees

    def test_cached_plan_executes_correctly(self):
        from repro.core import mc_copy_many

        def spmd(comm):
            A = BlockPartiArray.from_function(
                comm, (6, 6), lambda i, j: i * 6.0 + j
            )
            src, _ = _sors()
            B1 = ChaosArray.zeros(comm, PERM % comm.size)
            B2 = ChaosArray.zeros(comm, np.roll(PERM, 1) % comm.size)
            reqs = [
                ("blockparti", A, src, "chaos", B1, self._nth_dst(0)),
                ("blockparti", A, src, "chaos", B2, self._nth_dst(1)),
            ]
            cache = ScheduleCache(comm)
            for _ in range(3):
                plan = cache.get_or_build_plan(reqs)
                mc_copy_many(comm, plan, [A, A], [B1, B2])
            return B1.gather_global(), B2.gather_global(), cache.plan_hits

        values = run_spmd(2, spmd).values
        flat = np.arange(36, dtype=float)
        g1, g2, _ = values[0]  # gathers land on rank 0
        e1 = np.zeros(36)
        e1[np.roll(np.arange(N), 0)] = flat
        e2 = np.zeros(36)
        e2[np.roll(np.arange(N), 1)] = flat
        np.testing.assert_array_equal(g1, e1)
        np.testing.assert_array_equal(g2, e2)
        assert all(v[2] == 2 for v in values)  # plan hit on every rank
