"""Schedule-construction tests: both methods, structure, invariants."""

import numpy as np
import pytest

import repro.blockparti  # noqa: F401
import repro.chaos  # noqa: F401
import repro.hpf  # noqa: F401
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import ScheduleMethod, mc_compute_schedule
from repro.core.schedule import chunk_ranges, _group_by
from repro.hpf import HPFArray
from repro.vmachine.machine import SPMDError

from helpers import both_methods, index_sor, run_spmd, section_sor


class TestChunkRanges:
    def test_even_split(self):
        assert chunk_ranges(10, 2) == [(0, 5), (5, 10)]

    def test_remainder_goes_to_early_chunks(self):
        assert chunk_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_more_parts_than_elements(self):
        ranges = chunk_ranges(2, 4)
        assert ranges == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_zero_elements(self):
        assert chunk_ranges(0, 3) == [(0, 0), (0, 0), (0, 0)]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            chunk_ranges(5, 0)

    def test_covers_range_exactly(self):
        for n in (0, 1, 7, 100):
            for p in (1, 3, 8):
                ranges = chunk_ranges(n, p)
                assert ranges[0][0] == 0 and ranges[-1][1] == n
                for (a, b), (c, d) in zip(ranges, ranges[1:]):
                    assert b == c


class TestGroupBy:
    def test_groups_preserve_order(self):
        keys = np.array([2, 0, 2, 1, 0])
        vals = np.array([10, 20, 30, 40, 50])
        groups = _group_by(keys, vals)
        np.testing.assert_array_equal(groups[2], [10, 30])
        np.testing.assert_array_equal(groups[0], [20, 50])
        np.testing.assert_array_equal(groups[1], [40])

    def test_empty(self):
        assert _group_by(np.zeros(0, dtype=int), np.zeros(0, dtype=int)) == {}

    def test_only_nonempty_groups(self):
        groups = _group_by(np.array([3, 3]), np.array([1, 2]))
        assert set(groups) == {3}


class TestScheduleStructure:
    def _build(self, comm, method):
        A = BlockPartiArray.zeros(comm, (12, 12))
        B = ChaosArray.zeros(comm, np.arange(60) % comm.size)
        src = section_sor((slice(0, 6), slice(0, 10)), (12, 12))
        dst = index_sor(np.random.default_rng(0).permutation(60))
        return mc_compute_schedule(comm, "blockparti", A, src, "chaos", B, dst, method)

    @pytest.mark.parametrize("method", both_methods())
    def test_counts_partition_elements(self, method):
        def spmd(comm):
            sched = self._build(comm, method)
            return (sched.send_count, sched.recv_count)

        res = run_spmd(4, spmd)
        assert sum(v[0] for v in res.values) == 60
        assert sum(v[1] for v in res.values) == 60

    @pytest.mark.parametrize("method", both_methods())
    def test_sends_and_recvs_pair_up(self, method):
        def spmd(comm):
            sched = self._build(comm, method)
            sends = {d: len(v) for d, v in sched.sends.items() if len(v)}
            recvs = {s: len(v) for s, v in sched.recvs.items() if len(v)}
            return comm.gather((sends, recvs))

        res = run_spmd(3, spmd)
        pieces = res.values[0]
        for p, (sends, _) in enumerate(pieces):
            for d, n in sends.items():
                assert pieces[d][1][p] == n, f"pair ({p},{d}) count mismatch"

    def test_methods_produce_identical_schedules(self):
        def spmd(comm):
            coop = self._build(comm, ScheduleMethod.COOPERATION)
            dup = self._build(comm, ScheduleMethod.DUPLICATION)
            assert set(coop.sends) == set(dup.sends)
            assert set(coop.recvs) == set(dup.recvs)
            for d in coop.sends:
                np.testing.assert_array_equal(coop.sends[d], dup.sends[d])
            for s in coop.recvs:
                np.testing.assert_array_equal(coop.recvs[s], dup.recvs[s])
            return True

        assert all(run_spmd(4, spmd).values)

    def test_reverse_swaps_halves(self):
        def spmd(comm):
            sched = self._build(comm, ScheduleMethod.COOPERATION)
            rev = sched.reverse()
            assert rev.src_lib == "chaos" and rev.dst_lib == "blockparti"
            assert rev.sends.keys() == sched.recvs.keys()
            assert rev.recvs.keys() == sched.sends.keys()
            assert rev.n_elements == sched.n_elements
            return True

        assert all(run_spmd(2, spmd).values)

    def test_message_partners_sorted_nonempty(self):
        def spmd(comm):
            sched = self._build(comm, ScheduleMethod.COOPERATION)
            dests, sources = sched.message_partners()
            assert dests == sorted(dests)
            assert all(len(sched.sends[d]) for d in dests)
            return True

        assert all(run_spmd(3, spmd).values)

    def test_conformance_error(self):
        def spmd(comm):
            A = BlockPartiArray.zeros(comm, (4, 4))
            B = ChaosArray.zeros(comm, np.arange(10) % comm.size)
            mc_compute_schedule(
                comm,
                "blockparti", A, section_sor((slice(0, 4), slice(0, 4)), (4, 4)),
                "chaos", B, index_sor(np.arange(10)),
            )

        with pytest.raises(SPMDError, match="16 elements .* 10"):
            run_spmd(2, spmd)


class TestCostShape:
    """The cost relationships the paper's tables rest on."""

    def _timed_build(self, comm, method, n=64):
        proc = comm.process
        A = BlockPartiArray.zeros(comm, (n, n))
        B = ChaosArray.zeros(comm, np.arange(n * n) % comm.size)
        src = section_sor((slice(0, n), slice(0, n)), (n, n))
        dst = index_sor(np.random.default_rng(1).permutation(n * n))
        t0 = proc.clock
        mc_compute_schedule(comm, "blockparti", A, src, "chaos", B, dst, method)
        return proc.clock - t0

    def test_duplication_costs_about_twice_cooperation(self):
        """Paper §5.1: duplication calls the Chaos dereference twice."""

        def spmd(comm):
            coop = self._timed_build(comm, ScheduleMethod.COOPERATION)
            dup = self._timed_build(comm, ScheduleMethod.DUPLICATION)
            return dup / coop

        res = run_spmd(4, spmd)
        for ratio in res.values:
            assert 1.4 < ratio < 3.0

    def test_build_time_scales_down_with_processors(self):
        def spmd(comm):
            return self._timed_build(comm, ScheduleMethod.COOPERATION)

        t2 = max(run_spmd(2, spmd).values)
        t8 = max(run_spmd(8, spmd).values)
        assert t8 < t2 / 2

    def test_regular_regular_build_is_far_cheaper(self):
        """Paper Table 5 vs Table 2: no translation-table lookups."""

        def spmd_rr(comm):
            proc = comm.process
            A = BlockPartiArray.zeros(comm, (64, 64))
            B = HPFArray.distribute(comm, (64, 64), ("block", "block"))
            sor = section_sor((slice(0, 64), slice(0, 64)), (64, 64))
            t0 = proc.clock
            mc_compute_schedule(comm, "blockparti", A, sor, "hpf", B, sor)
            return proc.clock - t0

        def spmd_ri(comm):
            return self._timed_build(comm, ScheduleMethod.COOPERATION)

        t_rr = max(run_spmd(4, spmd_rr).values)
        t_ri = max(run_spmd(4, spmd_ri).values)
        assert t_ri > 20 * t_rr


class TestGroupSizeValidation:
    def test_mismatched_distribution_rejected(self):
        """A structure distributed over fewer ranks than the group."""

        def spmd(comm):
            sub = comm.split(color=0 if comm.rank < 2 else 1)
            if comm.rank < 2:
                A = BlockPartiArray.zeros(sub, (8, 8))  # spans 2 procs
                # ... but the schedule is (wrongly) built on the world comm
                mc_compute_schedule(
                    comm,
                    "blockparti", A,
                    section_sor((slice(0, 8), slice(0, 8)), (8, 8)),
                    "blockparti", A,
                    section_sor((slice(0, 8), slice(0, 8)), (8, 8)),
                )
            else:
                # these ranks never get far enough to participate; the
                # failure on ranks 0-1 aborts the machine
                comm.recv(0, tag=12345)

        with pytest.raises(SPMDError, match="distributed over 2 processors"):
            run_spmd(4, spmd)


class TestRunCompressedSchedules:
    """The tentpole: halves are immutable, run-compressed RunLists."""

    def _regular(self, comm):
        A = BlockPartiArray.zeros(comm, (64, 64))
        B = BlockPartiArray.zeros(comm, (64, 64))
        src = section_sor((slice(0, 32), slice(0, 64)), (64, 64))
        dst = section_sor((slice(32, 64), slice(0, 64)), (64, 64))
        return mc_compute_schedule(comm, "blockparti", A, src, "blockparti", B, dst)

    def test_halves_are_runlists(self):
        from repro.core import RunList

        def spmd(comm):
            sched = self._regular(comm)
            return all(
                isinstance(v, RunList)
                for v in list(sched.sends.values()) + list(sched.recvs.values())
            )

        assert all(run_spmd(4, spmd).values)

    def test_regular_schedule_is_layout_sized(self):
        def spmd(comm):
            sched = self._regular(comm)
            return (sched.nbytes_memory, sched.nbytes_dense)

        for mem, dense in run_spmd(4, spmd).values:
            assert dense == 0 or mem < dense / 5  # >= 5x reduction per rank

    def test_dense_accessor_matches(self):
        def spmd(comm):
            sched = self._regular(comm)
            d = sched.dense()
            ok = set(d.sends) == set(sched.sends) and set(d.recvs) == set(sched.recvs)
            for k in sched.sends:
                ok &= isinstance(d.sends[k], np.ndarray)
                ok &= bool(np.array_equal(d.sends[k], np.asarray(sched.sends[k])))
            for k in sched.recvs:
                ok &= bool(np.array_equal(d.recvs[k], np.asarray(sched.recvs[k])))
            return ok

        assert all(run_spmd(4, spmd).values)

    def test_halves_immutable_and_reverse_shares_safely(self):
        """Satellite regression: reverse() used to alias writable arrays —
        mutating one schedule silently corrupted the other.  Halves are
        now immutable; mutation attempts raise on either view."""

        def spmd(comm):
            sched = self._regular(comm)
            rev = sched.reverse()
            raised = 0
            for half in (sched.sends, sched.recvs, rev.sends, rev.recvs):
                for offs in half.values():
                    if not len(offs):
                        continue
                    try:
                        offs[0] = 12345
                    except (TypeError, ValueError):
                        raised += 1
                    try:
                        offs.dense()[0] = 12345
                    except ValueError:
                        raised += 1
            # And the reverse still mirrors the forward structure.
            ok = rev.sends.keys() == sched.recvs.keys()
            for k in rev.sends:
                ok &= bool(np.array_equal(np.asarray(rev.sends[k]),
                                          np.asarray(sched.recvs[k])))
            return ok and raised > 0

        assert all(run_spmd(4, spmd).values)

    def test_dense_input_auto_compressed(self):
        from repro.core import CommSchedule, RunList

        sched = CommSchedule(
            "hpf", "hpf", 10, 2, 2, ScheduleMethod.COOPERATION,
            sends={1: np.arange(10)}, recvs={0: np.arange(0, 30, 3)},
        )
        assert isinstance(sched.sends[1], RunList)
        assert sched.sends[1].nruns == 1
        assert isinstance(sched.recvs[0], RunList)

    def test_run_and_dense_paths_same_clock_and_result(self):
        """The fast path is wall-clock only: executing a schedule through
        RunList halves and through dense halves must charge identical
        logical time and produce identical data.  Two deterministic VM
        runs, same workload, differing only in the halves' representation."""
        from repro.core import mc_copy

        GA = np.random.default_rng(21).random((64, 64))

        def make_spmd(dense):
            def spmd(comm):
                A = BlockPartiArray.from_global(comm, GA)
                B = BlockPartiArray.zeros(comm, (64, 64))
                src = section_sor((slice(0, 32), slice(0, 64)), (64, 64))
                dst = section_sor((slice(32, 64), slice(0, 64)), (64, 64))
                sched = mc_compute_schedule(
                    comm, "blockparti", A, src, "blockparti", B, dst
                )
                if dense:
                    sched = sched.dense()
                for _ in range(3):
                    mc_copy(comm, sched, A, B)
                return comm.process.clock, B.gather_global()

            return spmd

        run_res = run_spmd(4, make_spmd(dense=False)).values
        dense_res = run_spmd(4, make_spmd(dense=True)).values
        for (run_t, got_run), (dense_t, got_dense) in zip(run_res, dense_res):
            assert run_t == dense_t  # identical simulated physics, per rank
            np.testing.assert_array_equal(got_run, got_dense)


class TestScheduleStats:
    """CommSchedule.stats(): the per-peer summary the plan compiler,
    plan:fuse trace events, and the plan-summary CLI all consume."""

    def _sched(self, comm):
        A = BlockPartiArray.from_function(
            comm, (8, 8), lambda i, j: i * 8.0 + j
        )
        perm = np.random.default_rng(3).permutation(64)
        B = ChaosArray.zeros(comm, perm % comm.size)
        return mc_compute_schedule(
            comm, "blockparti", A, section_sor((slice(0, 8), slice(0, 8)), (8, 8)),
            "chaos", B, index_sor(perm),
        ), A, B

    def test_counts_match_halves(self):
        def spmd(comm):
            sched, _, _ = self._sched(comm)
            st = sched.stats()
            assert st.send_elements == {
                d: len(v) for d, v in sched.sends.items() if len(v)
            }
            assert st.recv_elements == {
                s: len(v) for s, v in sched.recvs.items() if len(v)
            }
            assert st.send_fanout == len(st.send_elements)
            assert st.recv_fanout == len(st.recv_elements)
            assert st.total_send_elements == sum(st.send_elements.values())
            return None

        run_spmd(4, spmd)

    def test_bytes_scale_with_itemsize(self):
        def spmd(comm):
            sched, _, _ = self._sched(comm)
            st8 = sched.stats()           # default doubles
            st4 = sched.stats(itemsize=4)
            assert st8.itemsize == 8 and st4.itemsize == 4
            for d, n in st8.send_elements.items():
                assert st8.send_bytes[d] == 8 * n
                assert st4.send_bytes[d] == 4 * n
            return None

        run_spmd(4, spmd)

    def test_empty_peers_omitted_and_runs_positive(self):
        def spmd(comm):
            sched, _, _ = self._sched(comm)
            st = sched.stats()
            assert all(n > 0 for n in st.send_elements.values())
            assert all(n > 0 for n in st.recv_elements.values())
            # Every nonempty half needs at least one run to encode.
            assert all(r >= 1 for r in st.send_runs.values())
            assert all(r >= 1 for r in st.recv_runs.values())
            return None

        run_spmd(4, spmd)

    def test_stats_charges_no_logical_time(self):
        def spmd(comm):
            sched, _, _ = self._sched(comm)
            before = comm.process.clock
            for _ in range(10):
                sched.stats()
            return comm.process.clock - before

        assert all(dt == 0.0 for dt in run_spmd(4, spmd).values)

    def test_global_totals_balance(self):
        """Summed across ranks, sent elements == received elements."""
        def spmd(comm):
            sched, _, _ = self._sched(comm)
            st = sched.stats()
            return st.total_send_elements, sum(st.recv_elements.values())

        vals = run_spmd(4, spmd).values
        assert sum(v[0] for v in vals) == sum(v[1] for v in vals) == 64
