"""Two-program coupling tests: schedules and exchanges across programs."""

import numpy as np
import pytest

import repro.blockparti  # noqa: F401
import repro.chaos  # noqa: F401
import repro.hpf  # noqa: F401
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import ScheduleMethod, mc_compute_schedule
from repro.core.coupling import CoupledExchange, coupled_universe
from repro.vmachine import ProgramSpec, run_programs
from repro.vmachine.machine import SPMDError

from helpers import index_sor, section_sor

SHAPE = (10, 8)
G = np.random.default_rng(9).random(SHAPE)
PERM = np.random.default_rng(10).permutation(80)


def _run(psrc, pdst, method=ScheduleMethod.COOPERATION, push_back=True):
    def src_prog(ctx):
        comm = ctx.comm
        A = BlockPartiArray.from_global(comm, G)
        uni = coupled_universe(ctx, "dstp", "src")
        sched = mc_compute_schedule(
            uni,
            "blockparti", A, section_sor((slice(0, 10), slice(0, 8)), SHAPE),
            "chaos", None, index_sor(PERM) if method is ScheduleMethod.DUPLICATION else None,
            method,
        )
        ex = CoupledExchange(uni, sched)
        ex.push(A)
        if push_back:
            A2 = BlockPartiArray.zeros(comm, SHAPE)
            ex.pull(A2)
            return A2.gather_global()
        return None

    def dst_prog(ctx):
        comm = ctx.comm
        B = ChaosArray.zeros(comm, (PERM * 3) % comm.size)
        uni = coupled_universe(ctx, "srcp", "dst")
        sched = mc_compute_schedule(
            uni,
            "blockparti", None,
            section_sor((slice(0, 10), slice(0, 8)), SHAPE)
            if method is ScheduleMethod.DUPLICATION else None,
            "chaos", B, index_sor(PERM),
            method,
        )
        ex = CoupledExchange(uni, sched)
        ex.push(B)
        out = B.gather_global()
        if push_back:
            B.local *= 2.0
            ex.pull(B)
        return out

    return run_programs(
        [ProgramSpec("srcp", psrc, src_prog), ProgramSpec("dstp", pdst, dst_prog)]
    )


class TestCrossProgramCopy:
    @pytest.mark.parametrize("psrc,pdst", [(1, 1), (1, 4), (3, 2), (4, 1)])
    def test_push_delivers_oracle_result(self, psrc, pdst):
        res = _run(psrc, pdst, push_back=False)
        got = res["dstp"].values[0]
        expected = np.zeros(80)
        expected[PERM] = G.ravel()
        np.testing.assert_allclose(got, expected)

    def test_pull_uses_symmetric_schedule(self):
        res = _run(2, 3, push_back=True)
        got_back = res["srcp"].values[0]
        np.testing.assert_allclose(got_back, 2.0 * G)

    def test_duplication_across_programs(self):
        """Requires both SetOfRegions everywhere + descriptor exchange."""
        res = _run(2, 2, method=ScheduleMethod.DUPLICATION, push_back=False)
        got = res["dstp"].values[0]
        expected = np.zeros(80)
        expected[PERM] = G.ravel()
        np.testing.assert_allclose(got, expected)

    def test_duplication_without_remote_sor_fails(self):
        def src_prog(ctx):
            A = BlockPartiArray.from_global(ctx.comm, G)
            uni = coupled_universe(ctx, "dstp", "src")
            mc_compute_schedule(
                uni,
                "blockparti", A, section_sor((slice(0, 10), slice(0, 8)), SHAPE),
                "chaos", None, None,  # missing remote SetOfRegions
                ScheduleMethod.DUPLICATION,
            )

        def dst_prog(ctx):
            B = ChaosArray.zeros(ctx.comm, PERM % ctx.comm.size)
            uni = coupled_universe(ctx, "srcp", "dst")
            mc_compute_schedule(
                uni,
                "blockparti", None, section_sor((slice(0, 10), slice(0, 8)), SHAPE),
                "chaos", B, index_sor(PERM),
                ScheduleMethod.DUPLICATION,
            )

        with pytest.raises(SPMDError, match="both SetOfRegions"):
            run_programs(
                [ProgramSpec("srcp", 1, src_prog), ProgramSpec("dstp", 1, dst_prog)]
            )

    def test_cross_program_size_mismatch_detected(self):
        def src_prog(ctx):
            A = BlockPartiArray.from_global(ctx.comm, G)
            uni = coupled_universe(ctx, "dstp", "src")
            mc_compute_schedule(
                uni,
                "blockparti", A, section_sor((slice(0, 10), slice(0, 8)), SHAPE),
                "chaos", None, None,
            )

        def dst_prog(ctx):
            B = ChaosArray.zeros(ctx.comm, np.arange(10) % ctx.comm.size)
            uni = coupled_universe(ctx, "srcp", "dst")
            mc_compute_schedule(
                uni,
                "blockparti", None, None,
                "chaos", B, index_sor(np.arange(10)),
            )

        with pytest.raises(SPMDError, match="different element count"):
            run_programs(
                [ProgramSpec("srcp", 1, src_prog), ProgramSpec("dstp", 1, dst_prog)]
            )


class TestCoupledUniverseHelper:
    def test_unknown_peer(self):
        def prog(ctx):
            with pytest.raises(KeyError, match="no peer"):
                coupled_universe(ctx, "ghost", "src")
            return True

        res = run_programs(
            [ProgramSpec("a", 1, prog), ProgramSpec("b", 1, lambda c: None)]
        )
        assert res["a"].values == [True]
