"""Fortran-order linearization and MaskRegion tests."""

import numpy as np
import pytest

import repro.chaos  # noqa: F401
import repro.hpf  # noqa: F401
from repro.chaos import ChaosArray
from repro.core import (
    IndexRegion,
    MaskRegion,
    SectionRegion,
    mc_compute_schedule,
    mc_copy,
    mc_new_set_of_regions,
)
from repro.distrib.section import Section
from repro.hpf import HPFArray

from helpers import both_methods, run_spmd

G = np.arange(30, dtype=float).reshape(5, 6)


class TestFortranOrderSection:
    def test_global_flat_f_order(self):
        s = Section((0, 0), (2, 3), (1, 1))
        # C order: 0,1,2, 6,7,8 ; F order: 0,6, 1,7, 2,8
        np.testing.assert_array_equal(
            s.global_flat((5, 6), order="F"), [0, 6, 1, 7, 2, 8]
        )

    def test_lin_to_multi_f_roundtrip(self):
        s = Section((1, 2), (5, 6), (2, 2))
        lin = np.arange(s.size)
        coords = s.lin_to_multi(lin, order="F")
        flat = np.ravel_multi_index(coords, (5, 6))
        np.testing.assert_array_equal(flat, s.global_flat((5, 6), order="F"))

    def test_invalid_order(self):
        s = Section((0,), (3,), (1,))
        with pytest.raises(ValueError):
            s.global_flat((3,), order="K")
        with pytest.raises(ValueError):
            s.lin_to_multi(np.arange(3), order="A")
        with pytest.raises(ValueError):
            SectionRegion(s, order="Z")

    def test_region_orders_give_different_correspondences(self):
        c = SectionRegion(Section.full((3, 4)), order="C")
        f = SectionRegion(Section.full((3, 4)), order="F")
        assert not np.array_equal(c.global_flat((3, 4)), f.global_flat((3, 4)))
        # Same set of elements, different order.
        assert sorted(c.global_flat((3, 4))) == sorted(f.global_flat((3, 4)))

    @pytest.mark.parametrize("method", both_methods())
    def test_f_order_copy_matches_fortran_ravel(self, method):
        def spmd(comm):
            A = HPFArray.from_global(comm, G, ("block", "cyclic"))
            B = ChaosArray.zeros(comm, np.arange(30) % comm.size)
            sched = mc_compute_schedule(
                comm,
                "hpf", A,
                mc_new_set_of_regions(SectionRegion(Section.full((5, 6)), order="F")),
                "chaos", B, mc_new_set_of_regions(IndexRegion(np.arange(30))),
                method,
            )
            mc_copy(comm, sched, A, B)
            return B.gather_global()

        got = run_spmd(3, spmd).values[0]
        np.testing.assert_allclose(got, G.ravel(order="F"))

    def test_c_to_f_transpose_through_copy(self):
        """Copy a C-ordered section onto an F-ordered one: a transpose."""

        def spmd(comm):
            A = HPFArray.from_global(comm, G, ("block", "*"))
            B = HPFArray.distribute(comm, (6, 5), ("block", "*"))
            sched = mc_compute_schedule(
                comm,
                "hpf", A,
                mc_new_set_of_regions(SectionRegion(Section.full((5, 6)), order="C")),
                "hpf", B,
                mc_new_set_of_regions(SectionRegion(Section.full((6, 5)), order="F")),
            )
            mc_copy(comm, sched, A, B)
            return B.gather_global()

        got = run_spmd(2, spmd).values[0]
        np.testing.assert_allclose(got, G.T)


class TestMaskRegion:
    def test_selects_true_positions(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[1, 2] = mask[3, 0] = True
        r = MaskRegion(mask)
        np.testing.assert_array_equal(r.global_flat((4, 4)), [6, 12])

    def test_f_order_enumeration(self):
        mask = np.ones((2, 2), dtype=bool)
        c = MaskRegion(mask, order="C")
        f = MaskRegion(mask, order="F")
        np.testing.assert_array_equal(c.global_flat((2, 2)), [0, 1, 2, 3])
        np.testing.assert_array_equal(f.global_flat((2, 2)), [0, 2, 1, 3])

    def test_shape_mismatch_rejected(self):
        r = MaskRegion(np.ones((2, 3), dtype=bool))
        with pytest.raises(ValueError, match="shape"):
            r.global_flat((3, 2))
        with pytest.raises(ValueError, match="shape"):
            r.lin_to_global(np.array([0]), (6,))

    def test_empty_mask(self):
        r = MaskRegion(np.zeros((3, 3), dtype=bool))
        assert r.size == 0

    def test_descriptor_is_bit_sized(self):
        r = MaskRegion(np.ones((100, 100), dtype=bool))
        assert r.nbytes_descriptor() == 100 * 100 // 8

    def test_where_style_copy(self):
        """HPF WHERE: move only the elements above a threshold."""
        mask = G > 17.0
        n = int(mask.sum())

        def spmd(comm):
            A = HPFArray.from_global(comm, G, ("cyclic", "block"))
            B = ChaosArray.zeros(comm, np.arange(n) % comm.size)
            sched = mc_compute_schedule(
                comm,
                "hpf", A, mc_new_set_of_regions(MaskRegion(mask)),
                "chaos", B, mc_new_set_of_regions(IndexRegion(np.arange(n))),
            )
            mc_copy(comm, sched, A, B)
            return B.gather_global()

        got = run_spmd(4, spmd).values[0]
        np.testing.assert_allclose(got, G[mask])

    def test_mask_as_destination(self):
        mask = (np.arange(30).reshape(5, 6) % 7) == 0
        n = int(mask.sum())
        values = np.arange(n, dtype=float) + 100

        def spmd(comm):
            src = ChaosArray.from_global(comm, values, np.arange(n) % comm.size)
            dst = HPFArray.distribute(comm, (5, 6), ("block", "block"))
            sched = mc_compute_schedule(
                comm,
                "chaos", src, mc_new_set_of_regions(IndexRegion(np.arange(n))),
                "hpf", dst, mc_new_set_of_regions(MaskRegion(mask)),
            )
            mc_copy(comm, sched, src, dst)
            return dst.gather_global()

        got = run_spmd(2, spmd).values[0]
        expected = np.zeros((5, 6))
        expected[mask] = values
        np.testing.assert_allclose(got, expected)
