"""Compiled data plane: move-program lowering, strided layouts, donation.

The data plane replaces per-run Python loops with cached
:class:`~repro.core.dataplane.MoveProgram` lowerings (slice / strided
grid / fancy index) and makes every adapter accept arbitrarily strided
local storage with no hidden ``ascontiguousarray`` copy.  These tests
pin the lowering decisions, the layout matrix (contiguous, reversed,
strided 1-D, transposed and sliced 2-D), receive-side buffer donation,
and the ``pack_into`` lossy-cast regression.
"""

import numpy as np
import pytest

import repro.blockparti  # noqa: F401
import repro.chaos  # noqa: F401
import repro.hpf  # noqa: F401
import repro.pcxx  # noqa: F401
from repro.blockparti import BlockPartiArray
from repro.chaos import ChaosArray
from repro.core import (
    MoveProgram,
    mc_compute_schedule,
    mc_copy,
    mc_copy_many,
)
from repro.core.dataplane import (
    accept_local,
    compile_offsets,
    copy_compiled,
    flat_view,
    read_flat,
    write_flat,
)
from repro.core.registry import get_adapter
from repro.core.runs import RunList
from repro.hpf import HPFArray
from repro.vmachine.machine import SPMDError

from helpers import index_sor, layouts_of, run_spmd, strided_local


class TestFlatHelpers:
    def test_flat_view_1d_any_stride_passes_through(self):
        a = np.arange(10.0)
        assert flat_view(a) is a
        assert flat_view(a[::-2]) is not None
        assert np.shares_memory(flat_view(a[::-2]), a)

    def test_flat_view_c_contiguous_flattens_zero_copy(self):
        a = np.arange(12.0).reshape(3, 4)
        v = flat_view(a)
        assert v.ndim == 1 and np.shares_memory(v, a)

    def test_flat_view_non_contiguous_nd_is_none(self):
        a = np.arange(12.0).reshape(3, 4)
        assert flat_view(a.T) is None
        assert flat_view(a[:, ::2]) is None

    def test_accept_local_never_copies(self):
        for label, a in layouts_of(np.arange(12.0)):
            kept = accept_local(a)
            assert np.shares_memory(kept, a), label

    def test_read_write_flat_roundtrip_all_layouts(self):
        vals = np.arange(12.0)
        for label, a in layouts_of(vals):
            np.testing.assert_array_equal(read_flat(a), vals, err_msg=label)
            write_flat(a, vals * 3)
            np.testing.assert_array_equal(read_flat(a), vals * 3, err_msg=label)


# ---------------------------------------------------------------------------
# Lowering decisions: which offsets compile to which program kind.
# ---------------------------------------------------------------------------


class TestCompileKinds:
    def test_empty(self):
        prog = compile_offsets(RunList.from_dense(np.empty(0, dtype=np.int64)))
        assert prog.kind == "empty" and prog.n == 0

    def test_contiguous_run_is_slice(self):
        prog = compile_offsets(RunList.from_dense(np.arange(3, 40)))
        assert prog.kind == "slice"
        assert (prog.start, prog.step, prog.n) == (3, 1, 37)

    def test_strided_run_is_slice(self):
        prog = compile_offsets(RunList.from_dense(np.arange(2, 62, 3)))
        assert prog.kind == "slice" and prog.step == 3

    def test_singleton_is_slice(self):
        prog = compile_offsets(RunList.from_runs([(7, 0, 1)]))
        assert prog.kind == "slice"
        assert (prog.start, prog.step, prog.n) == (7, 1, 1)

    def test_uniform_section_is_grid(self):
        # Rows of a (6, 20)-pitched section: 6 runs of 8, pitch 20.
        idx = (20 * np.arange(6)[:, None] + np.arange(8)[None, :]).ravel()
        prog = compile_offsets(RunList.from_dense(idx))
        assert prog.kind == "grid"
        assert len(prog.grids) == 1
        s0, pitch, step, nrows, count = prog.grids[0].tolist()
        assert (s0, pitch, step, nrows, count) == (0, 20, 1, 6, 8)
        assert prog.scatter_safe

    def test_piecewise_section_is_multiblock_grid(self):
        # Two blocks with different pitches — pre-PR this fell off the
        # single-grid fast path into the per-run Python loop.
        a = (20 * np.arange(4)[:, None] + np.arange(6)[None, :]).ravel()
        b = 200 + (32 * np.arange(5)[:, None] + 2 * np.arange(6)[None, :]).ravel()
        prog = compile_offsets(RunList.from_dense(np.concatenate([a, b])))
        assert prog.kind == "grid"
        assert len(prog.grids) == 2
        assert prog.grids[:, 3].tolist() == [4, 5]

    def test_interleaving_grid_is_scatter_unsafe(self):
        # rowstep 4 < count*step 6: rows overlap; gather fine, scatter
        # must fall back to the fancy store.
        idx = (4 * np.arange(5)[:, None] + np.arange(6)[None, :]).ravel()
        prog = compile_offsets(RunList.from_dense(idx))
        assert prog.kind == "grid" and not prog.scatter_safe

    def test_permutation_is_index(self):
        perm = np.random.default_rng(0).permutation(64)
        prog = compile_offsets(RunList.from_dense(perm))
        assert prog.kind == "index"
        np.testing.assert_array_equal(prog.index(), perm)

    def test_ndarray_offsets_compile_zero_copy(self):
        idx = np.array([5, 1, 9, 3], dtype=np.int64)
        prog = compile_offsets(idx)
        assert prog.kind == "index" and prog.index() is idx

    def test_runlist_memoizes_program(self):
        rl = RunList.from_dense(np.arange(0, 30, 2))
        p1 = compile_offsets(rl)
        p2 = compile_offsets(rl)
        assert p1 is p2
        assert compile_offsets(p1) is p1  # MoveProgram passes through

    def test_index_vector_built_once(self):
        rl = RunList.from_dense(np.random.default_rng(1).permutation(32))
        prog = compile_offsets(rl)
        assert prog.index() is prog.index()

    def test_is_full_span(self):
        assert compile_offsets(RunList.from_dense(np.arange(16))).is_full_span(16)
        assert not compile_offsets(RunList.from_dense(np.arange(16))).is_full_span(17)
        assert not compile_offsets(RunList.from_dense(np.arange(1, 17))).is_full_span(16)
        perm = np.random.default_rng(2).permutation(16)
        assert not compile_offsets(RunList.from_dense(perm)).is_full_span(16)


# ---------------------------------------------------------------------------
# Execution: every program kind against every storage layout.
# ---------------------------------------------------------------------------


def _programs(n):
    """A (label, offsets) sample hitting every program kind within [0, n)."""
    rng = np.random.default_rng(n)
    grid = (8 * np.arange(n // 8)[:, None] + np.arange(6)[None, :]).ravel()
    return [
        ("slice", np.arange(2, n, 3)),
        ("grid", grid[grid < n]),
        ("index", rng.permutation(n)[: n // 2]),
    ]


class TestGatherScatterLayouts:
    @pytest.mark.parametrize("progname,offsets", _programs(24))
    def test_gather_matches_dense_reference(self, progname, offsets):
        vals = np.random.default_rng(7).random(24)
        prog = compile_offsets(RunList.from_dense(offsets))
        for label, data in layouts_of(vals):
            got = prog.gather(data)
            np.testing.assert_array_equal(
                got, vals[offsets], err_msg=f"{progname}/{label}"
            )

    @pytest.mark.parametrize("progname,offsets", _programs(24))
    def test_gather_into_out_buffer(self, progname, offsets):
        vals = np.random.default_rng(8).random(24)
        prog = compile_offsets(RunList.from_dense(offsets))
        for label, data in layouts_of(vals):
            out = np.empty(prog.n)
            assert prog.gather(data, out=out) is out
            np.testing.assert_array_equal(
                out, vals[offsets], err_msg=f"{progname}/{label}"
            )

    @pytest.mark.parametrize("progname,offsets", _programs(24))
    def test_scatter_matches_dense_reference(self, progname, offsets):
        vals = np.random.default_rng(9).random(len(offsets))
        ref = np.zeros(24)
        ref[offsets] = vals
        prog = compile_offsets(RunList.from_dense(offsets))
        for label, data in layouts_of(np.zeros(24)):
            prog.scatter(data, vals)
            np.testing.assert_array_equal(
                read_flat(data), ref, err_msg=f"{progname}/{label}"
            )

    def test_gather_never_aliases_source(self):
        """Packed buffers travel the transport — a slice gather must be a
        fresh array, never a view of the source storage."""
        data = np.arange(20.0)
        for _, offsets in _programs(20):
            prog = compile_offsets(RunList.from_dense(offsets))
            buf = prog.gather(data)
            assert not np.shares_memory(buf, data)

    def test_gather_into_noncontiguous_out_segment(self):
        """Grid gather writing a non-contiguous out segment must not lose
        writes into a reshape copy."""
        idx = (8 * np.arange(3)[:, None] + np.arange(6)[None, :]).ravel()
        prog = compile_offsets(RunList.from_dense(idx))
        assert prog.kind == "grid"
        data = np.arange(24.0)
        backing = np.zeros(2 * prog.n)
        out = backing[::2]  # non-contiguous destination segment
        prog.gather(data, out=out)
        np.testing.assert_array_equal(out, data[idx])

    def test_constant_run_scatter_last_write_wins(self):
        rl = RunList.from_runs([(2, 0, 4)])  # offset 2 four times
        prog = compile_offsets(rl)
        data = np.zeros(5)
        prog.scatter(data, np.array([1.0, 2.0, 3.0, 5.0]))
        assert data[2] == 5.0

    def test_out_size_mismatch_rejected(self):
        prog = compile_offsets(np.arange(4))
        with pytest.raises(ValueError, match="slots for"):
            prog.gather(np.arange(10.0), out=np.empty(3))


class TestCopyCompiled:
    def _roundtrip(self, src_off, dst_off, n=30):
        src = np.random.default_rng(5).random(n)
        dst = np.zeros(n)
        ref = dst.copy()
        ref[dst_off] = src[src_off]
        copy_compiled(
            compile_offsets(RunList.from_dense(src_off)), src,
            compile_offsets(RunList.from_dense(dst_off)), dst,
        )
        np.testing.assert_array_equal(dst, ref)

    def test_slice_to_slice(self):
        self._roundtrip(np.arange(0, 20, 2), np.arange(5, 25, 2))

    def test_matched_grid_to_grid(self):
        g = (10 * np.arange(3)[:, None] + np.arange(4)[None, :]).ravel()
        self._roundtrip(g, g + 5)

    def test_mismatched_structures_fall_back(self):
        perm = np.random.default_rng(6).permutation(30)[:10]
        self._roundtrip(np.arange(10), perm)
        self._roundtrip(perm, np.arange(10))

    def test_same_array_overlapping_copy(self):
        data = np.arange(20.0)
        copy_compiled(
            compile_offsets(RunList.from_dense(np.arange(0, 10))), data,
            compile_offsets(RunList.from_dense(np.arange(5, 15))), data,
        )
        np.testing.assert_array_equal(data[5:15], np.arange(10.0))

    def test_strided_src_and_dst_storage(self):
        vals = np.arange(24.0)
        for slabel, src in layouts_of(vals):
            for dlabel, dst in layouts_of(np.zeros(24)):
                copy_compiled(
                    compile_offsets(RunList.from_dense(np.arange(0, 24, 2))), src,
                    compile_offsets(RunList.from_dense(np.arange(1, 24, 2))), dst,
                )
                np.testing.assert_array_equal(
                    read_flat(dst)[1::2], vals[::2],
                    err_msg=f"{slabel}->{dlabel}",
                )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="differ in length"):
            copy_compiled(
                compile_offsets(np.arange(3)), np.zeros(5),
                compile_offsets(np.arange(4)), np.zeros(5),
            )


# ---------------------------------------------------------------------------
# Layout-agnostic adapters, end to end.
# ---------------------------------------------------------------------------

N = 24
PERM = np.random.default_rng(11).permutation(N)

END_TO_END_LAYOUTS = ["contiguous", "reversed-view", "strided-view", "sliced-2d"]


class TestLayoutAgnosticEndToEnd:
    @pytest.mark.parametrize("layout", END_TO_END_LAYOUTS)
    def test_strided_src_storage_through_mc_copy(self, layout):
        full = np.random.default_rng(12).random(N)

        def spmd(comm):
            proto = HPFArray.from_global(comm, full, ("block",))
            storage = strided_local(np.asarray(read_flat(proto.local)), layout)
            src = HPFArray(comm, proto.dist, storage)
            # no hidden staging copy: the array aliases caller storage
            assert np.shares_memory(src.local, storage)
            dst = ChaosArray.zeros(comm, PERM % comm.size)
            sor = index_sor(np.arange(N))
            sched = mc_compute_schedule(
                comm, "hpf", src, sor, "chaos", dst, index_sor(PERM)
            )
            mc_copy(comm, sched, src, dst)
            return dst.gather_global()

        got = run_spmd(2, spmd).values[0]
        expected = np.zeros(N)
        expected[PERM] = full
        np.testing.assert_allclose(got, expected)

    @pytest.mark.parametrize("layout", END_TO_END_LAYOUTS)
    def test_strided_dst_storage_through_mc_copy(self, layout):
        full = np.random.default_rng(13).random(N)

        def spmd(comm):
            src = BlockPartiArray.from_global(comm, full)
            proto = HPFArray.distribute(comm, (N,), ("block",))
            dst = HPFArray(
                comm, proto.dist,
                strided_local(np.zeros(proto.local.size), layout),
            )
            sor = index_sor(np.arange(N))
            sched = mc_compute_schedule(
                comm, "blockparti", src, sor, "hpf", dst, sor
            )
            mc_copy(comm, sched, src, dst)
            return dst.gather_global()

        got = run_spmd(2, spmd).values[0]
        np.testing.assert_allclose(got, full)

    def test_layout_does_not_change_clocks(self):
        """The cost model sees element counts, never strides: the same
        copy over strided storage must produce byte-identical clocks."""
        full = np.random.default_rng(14).random(N)

        def spmd(comm, layout):
            src = BlockPartiArray.from_global(comm, full)
            proto = HPFArray.distribute(comm, (N,), ("block",))
            dst = HPFArray(
                comm, proto.dist,
                strided_local(np.zeros(proto.local.size), layout),
            )
            sor = index_sor(np.arange(N))
            sched = mc_compute_schedule(
                comm, "blockparti", src, sor, "hpf", dst, index_sor(PERM)
            )
            mc_copy(comm, sched, src, dst)
            return comm.process.clock

        clocks = {
            layout: run_spmd(3, spmd, layout).clocks
            for layout in END_TO_END_LAYOUTS
        }
        base = clocks["contiguous"]
        for layout, c in clocks.items():
            assert c == base, layout


# ---------------------------------------------------------------------------
# Receive-side buffer donation.
# ---------------------------------------------------------------------------


class TestDonation:
    def _full_span_offsets(self, n):
        return RunList.from_dense(np.arange(n))

    def test_adapter_unpack_adopts_eligible_buffer(self):
        def spmd(comm):
            dst = ChaosArray.zeros(comm, np.arange(8) % comm.size)
            n = dst.local.size
            buf = np.random.default_rng(1).random(n)
            adopted = get_adapter("chaos").unpack(
                dst, self._full_span_offsets(n), buf, donate=True
            )
            assert adopted
            assert dst.local is buf
            return True

        assert all(run_spmd(2, spmd).values)

    def test_ineligible_buffers_fall_back_to_scatter(self):
        def spmd(comm):
            adapter = get_adapter("chaos")
            dst = ChaosArray.zeros(comm, np.arange(8) % comm.size)
            n = dst.local.size
            old = dst.local

            # donate=False never adopts
            assert not adapter.unpack(
                dst, self._full_span_offsets(n), np.ones(n), donate=False
            )
            assert dst.local is old

            # partial span
            if n > 1:
                assert not adapter.unpack(
                    dst, RunList.from_dense(np.arange(n - 1)),
                    np.ones(n - 1), donate=True,
                )
                assert dst.local is old

            # dtype mismatch (safe widening still scatters, never adopts)
            assert not adapter.unpack(
                dst, self._full_span_offsets(n),
                np.ones(n, dtype=np.float32), donate=True,
            )
            assert dst.local is old

            # read-only buffer
            ro = np.ones(n)
            ro.setflags(write=False)
            assert not adapter.unpack(
                dst, self._full_span_offsets(n), ro, donate=True
            )
            assert dst.local is old
            return True

        assert all(run_spmd(2, spmd).values)

    def _donation_case(self, donate):
        """Each rank's destination block arrives whole from the other
        rank, so every receive is donation-eligible."""
        full = np.random.default_rng(15).random(16)
        owners = np.array([1] * 8 + [0] * 8)

        def spmd(comm):
            src = BlockPartiArray.from_global(comm, full)
            dst = ChaosArray.zeros(comm, owners % comm.size)
            before = dst.local
            sor = index_sor(np.arange(16))
            sched = mc_compute_schedule(
                comm, "blockparti", src, sor, "chaos", dst, sor
            )
            mc_copy(comm, sched, src, dst, donate=donate)
            rebound = dst.local is not before
            return dst.gather_global(), rebound, comm.process.clock

        res = run_spmd(2, spmd)
        gathered = res.values[0][0]
        rebound = [v[1] for v in res.values]
        clocks = [v[2] for v in res.values]
        return gathered, rebound, clocks

    def test_end_to_end_donation_single_program(self):
        got_d, rebound_d, clocks_d = self._donation_case(donate=True)
        got_n, rebound_n, clocks_n = self._donation_case(donate=False)
        np.testing.assert_allclose(got_d, got_n)
        assert all(rebound_d), "donation did not adopt the received buffers"
        assert not any(rebound_n)
        assert clocks_d == clocks_n, "donation must be clock-neutral"

    def test_fused_donation_severs_arena_lease(self):
        """Bytes adopted from a fused message must never return to the
        sender's pack arena: a later fused move through the same pooled
        buffers must not corrupt the adopted storage."""
        full_a = np.random.default_rng(16).random(16)
        full_b = np.random.default_rng(17).random(16)
        owners = np.array([1] * 8 + [0] * 8)

        def spmd(comm):
            sor = index_sor(np.arange(16))
            src_a = BlockPartiArray.from_global(comm, full_a)
            dst_a = ChaosArray.zeros(comm, owners % comm.size)
            sched = mc_compute_schedule(
                comm, "blockparti", src_a, sor, "chaos", dst_a, sor
            )
            plan = mc_copy_many(comm, [sched], [src_a], [dst_a], donate=True)
            snap = read_flat(dst_a.local).copy()
            src_b = BlockPartiArray.from_global(comm, full_b)
            dst_b = ChaosArray.zeros(comm, owners % comm.size)
            mc_copy_many(comm, plan, [src_b], [dst_b], donate=True)
            assert (read_flat(dst_a.local) == snap).all(), (
                "arena recycled donated bytes"
            )
            return dst_a.gather_global(), dst_b.gather_global()

        got_a, got_b = run_spmd(2, spmd).values[0]
        np.testing.assert_allclose(got_a, full_a)
        np.testing.assert_allclose(got_b, full_b)


# ---------------------------------------------------------------------------
# pack_into lossy-cast regression (the fused path must refuse exactly
# what unpack/copy_local refuse).
# ---------------------------------------------------------------------------


class TestPackIntoSafeCast:
    def test_lossy_pack_into_rejected(self):
        def spmd(comm):
            src = HPFArray.distribute(comm, (12,), ("block",), dtype=np.float64)
            adapter = get_adapter("hpf")
            offs = np.arange(src.local.size)
            adapter.pack_into(src, offs, np.empty(len(offs), dtype=np.int64))

        with pytest.raises(SPMDError, match="lossy element conversion"):
            run_spmd(2, spmd)

    def test_widening_pack_into_allowed(self):
        def spmd(comm):
            src = HPFArray.distribute(comm, (12,), ("block",), dtype=np.float32)
            src.local[:] = 1.5
            adapter = get_adapter("hpf")
            offs = np.arange(src.local.size)
            out = np.zeros(len(offs), dtype=np.float64)
            adapter.pack_into(src, offs, out)
            return bool((out == 1.5).all())

        assert all(run_spmd(2, spmd).values)

    def test_empty_pack_into_skips_cast_check(self):
        def spmd(comm):
            src = HPFArray.distribute(comm, (12,), ("block",), dtype=np.float64)
            adapter = get_adapter("hpf")
            adapter.pack_into(
                src, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            )
            return True

        assert all(run_spmd(2, spmd).values)

    def test_wrong_size_out_rejected(self):
        def spmd(comm):
            src = HPFArray.distribute(comm, (12,), ("block",))
            get_adapter("hpf").pack_into(
                src, np.arange(4), np.empty(3, dtype=np.float64)
            )

        with pytest.raises(SPMDError, match="slots for"):
            run_spmd(2, spmd)
