"""SetOfRegions and linearization tests."""

import numpy as np
import pytest

from repro.core.linearization import Linearization, check_conformance
from repro.core.region import IndexRegion, SectionRegion
from repro.core.setofregions import SetOfRegions
from repro.distrib.section import Section


def sec(slices, shape):
    return SectionRegion(Section.from_slices(slices, shape))


class TestSetOfRegions:
    def test_concatenated_linearization(self):
        # the paper's Figure 5: LSA = LrA1 followed by LrA2
        shape = (9, 9)
        rA1 = sec((slice(1, 4), slice(4, 7)), shape)
        rA2 = sec((slice(2, 6), slice(1, 3)), shape)
        sa = SetOfRegions([rA1, rA2])
        assert sa.size == rA1.size + rA2.size
        gf = sa.global_flat(shape)
        np.testing.assert_array_equal(gf[: rA1.size], rA1.global_flat(shape))
        np.testing.assert_array_equal(gf[rA1.size :], rA2.global_flat(shape))

    def test_add_returns_self(self):
        s = SetOfRegions()
        assert s.add(IndexRegion(np.arange(3))) is s
        assert len(s) == 1

    def test_add_rejects_non_region(self):
        with pytest.raises(TypeError):
            SetOfRegions().add("not a region")

    def test_starts(self):
        s = SetOfRegions([IndexRegion(np.arange(3)), IndexRegion(np.arange(5))])
        np.testing.assert_array_equal(s.starts, [0, 3, 8])

    def test_starts_refresh_after_add(self):
        s = SetOfRegions([IndexRegion(np.arange(3))])
        _ = s.starts
        s.add(IndexRegion(np.arange(2)))
        np.testing.assert_array_equal(s.starts, [0, 3, 5])

    def test_lin_to_global_cross_region(self):
        s = SetOfRegions(
            [IndexRegion(np.array([10, 11])), IndexRegion(np.array([20, 21, 22]))]
        )
        got = s.lin_to_global(np.array([0, 2, 4, 1]), (30,))
        np.testing.assert_array_equal(got, [10, 20, 22, 11])

    def test_lin_to_global_out_of_range(self):
        s = SetOfRegions([IndexRegion(np.arange(3))])
        with pytest.raises(IndexError):
            s.lin_to_global(np.array([3]), (10,))

    def test_empty_set(self):
        s = SetOfRegions()
        assert s.size == 0
        assert len(s.global_flat((5,))) == 0
        assert len(s.lin_to_global(np.zeros(0, dtype=int), (5,))) == 0

    def test_mixed_region_types(self):
        shape = (4, 4)
        s = SetOfRegions([sec((slice(0, 2), slice(0, 2)), shape),
                          IndexRegion(np.array([15]))])
        np.testing.assert_array_equal(s.global_flat(shape), [0, 1, 4, 5, 15])

    def test_iteration(self):
        regions = [IndexRegion(np.arange(2)), IndexRegion(np.arange(3))]
        s = SetOfRegions(regions)
        assert list(s) == regions


class TestLinearization:
    def test_range_to_global(self):
        s = SetOfRegions([IndexRegion(np.array([4, 2, 7, 1]))])
        lin = Linearization(s, (10,))
        np.testing.assert_array_equal(lin.range_to_global(1, 3), [2, 7])

    def test_bijection_check_passes(self):
        lin = Linearization(SetOfRegions([IndexRegion(np.array([1, 2, 3]))]), (5,))
        lin.check_bijection()

    def test_bijection_check_fails_on_duplicates(self):
        lin = Linearization(SetOfRegions([IndexRegion(np.array([1, 1]))]), (5,))
        with pytest.raises(ValueError, match="more than once"):
            lin.check_bijection()

    def test_conformance_equal_sizes(self):
        a = Linearization(SetOfRegions([IndexRegion(np.arange(4))]), (9,))
        b = Linearization(
            SetOfRegions([sec((slice(0, 2), slice(0, 2)), (3, 3))]), (3, 3)
        )
        assert check_conformance(a, b) == 4

    def test_conformance_mismatch(self):
        a = Linearization(SetOfRegions([IndexRegion(np.arange(4))]), (9,))
        b = Linearization(SetOfRegions([IndexRegion(np.arange(5))]), (9,))
        with pytest.raises(ValueError, match="equal counts"):
            check_conformance(a, b)
