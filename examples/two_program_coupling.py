#!/usr/bin/env python3
"""Two separately written programs coupled through Meta-Chaos (§5.2).

``Preg`` is a regular-mesh program (Multiblock Parti); ``Pirreg`` is an
irregular-mesh program (Chaos).  They were "written separately" — neither
knows how the other distributes its data — and exchange interface values
each time-step through a cooperation-method Meta-Chaos schedule over the
inter-program communicator (peer-to-peer coupling).

Run:  python examples/two_program_coupling.py
"""

import numpy as np

from repro.apps.meshes import delaunay_mesh, full_remap_mapping
from repro.blockparti import BlockPartiArray, build_ghost_schedule, jacobi_sweep
from repro.chaos import ChaosArray, EdgeSweep, rcb_owners
from repro.chaos.partition import block_owners
from repro.core import (
    IndexRegion,
    ScheduleMethod,
    SectionRegion,
    mc_compute_schedule,
    mc_new_set_of_regions,
)
from repro.core.coupling import CoupledExchange, coupled_universe
from repro.distrib.section import Section
from repro.vmachine import ProgramSpec, run_programs

SHAPE = (32, 32)
NPOINTS = SHAPE[0] * SHAPE[1]
TIMESTEPS = 3

MESH = delaunay_mesh(NPOINTS, seed=21)
IRREG, _, _ = full_remap_mapping(SHAPE, NPOINTS, seed=9)


def regular_program(ctx):
    comm = ctx.comm
    a = BlockPartiArray.from_function(
        comm, SHAPE, lambda i, j: (i * 31 + j) % 17 / 17.0
    )
    ghosts = build_ghost_schedule(a)
    universe = coupled_universe(ctx, "irreg", "src")
    sched = mc_compute_schedule(
        universe,
        "blockparti", a, mc_new_set_of_regions(SectionRegion(Section.full(SHAPE))),
        "chaos", None, None,
        ScheduleMethod.COOPERATION,
    )
    exchange = CoupledExchange(universe, sched)
    for step in range(TIMESTEPS):
        jacobi_sweep(a, ghosts)
        exchange.push(a)   # whole mesh -> irregular program
        exchange.pull(a)   # updated values come back
    checksum = comm.allreduce(float(a.local.sum()), lambda p, q: p + q)
    if comm.rank == 0:
        print(f"  [reg]   final checksum {checksum:.6e}")
    return checksum


def irregular_program(ctx):
    comm = ctx.comm
    owners = rcb_owners(MESH.coords, comm.size)
    x = ChaosArray.zeros(comm, owners)
    y = ChaosArray.like(x)
    edge_owner = block_owners(MESH.nedges, comm.size)
    mine = np.flatnonzero(edge_owner == comm.rank)
    sweep = EdgeSweep(x, MESH.ia[mine], MESH.ib[mine])
    universe = coupled_universe(ctx, "reg", "dst")
    sched = mc_compute_schedule(
        universe,
        "blockparti", None, None,
        "chaos", x, mc_new_set_of_regions(IndexRegion(IRREG)),
        ScheduleMethod.COOPERATION,
    )
    exchange = CoupledExchange(universe, sched)
    for step in range(TIMESTEPS):
        exchange.push(x)          # receive regular-side values
        y.local[:] = 0.0
        sweep.execute(x, y)
        x.local[:] = 0.5 * x.local + 0.1 * y.local
        exchange.pull(x)          # send updated values back
    checksum = comm.allreduce(float(x.local.sum()), lambda p, q: p + q)
    if comm.rank == 0:
        print(f"  [irreg] final checksum {checksum:.6e}")
    return checksum


def main():
    baseline = None
    for preg, pirreg in ((2, 2), (4, 2), (2, 4)):
        print(f"-- Preg={preg}, Pirreg={pirreg} --")
        result = run_programs(
            [
                ProgramSpec("reg", preg, regular_program),
                ProgramSpec("irreg", pirreg, irregular_program),
            ]
        )
        checksum = result["reg"].values[0]
        if baseline is None:
            baseline = checksum
        assert np.isclose(checksum, baseline), "coupling is processor-dependent!"
        print(
            f"   modelled elapsed {result.elapsed_ms:.2f} ms "
            f"(reg {result['reg'].elapsed_ms:.2f} / irreg "
            f"{result['irreg'].elapsed_ms:.2f})"
        )
    print("two-program coupling OK (checksums identical across layouts)")


if __name__ == "__main__":
    main()
