#!/usr/bin/env python3
"""Multiblock grid with inter-block boundary updates (§5.3's motivation).

"This scenario would occur, for example, in a multiblock computational
fluid dynamics code, where inter-block boundaries must be updated at every
time-step."  An L-shaped domain is decomposed into two logically regular
blocks, each block-distributed over all processors by Multiblock Parti::

        +---------+
        | block 0 |            block 0: 32 x 48   (the horizontal arm)
        +----+----+----+
             | block 1 |       block 1: 48 x 32   (the vertical arm)
             |         |
             +---------+

A heat source sits in block 0; every time-step runs a Jacobi sweep inside
each block, then the declared interface copies carry the solution across
the block boundary in both directions.  Convergence is identical for any
processor count — the physics can't see the decomposition.

Run:  python examples/multiblock_cfd.py
"""

import numpy as np

from repro.blockparti import (
    MultiblockArray,
    build_ghost_schedule,
    fill_block,
    jacobi_sweep,
)
from repro.vmachine import VirtualMachine

SHAPE0 = (32, 48)   # horizontal arm
SHAPE1 = (48, 32)   # vertical arm
STEPS = 6
# The arms overlap along block 0's bottom rows, columns 16..48 of block 0
# == block 1's top rows, columns 0..32.
IFACE_COLS0 = (16, 48)


def spmd(comm):
    mb = MultiblockArray.zeros(comm, [SHAPE0, SHAPE1])
    # Heat source: a hot spot in the horizontal arm, near the interface
    # so the coupling matters within a few steps.
    fill_block(
        mb.block(0),
        lambda i, j: np.exp(-(((i - 28.0) / 4.0) ** 2 + ((j - 30.0) / 6.0) ** 2)),
    )
    # Interface: block 0's last interior row <-> block 1's first row.
    mb.connect(
        0, (slice(SHAPE0[0] - 2, SHAPE0[0] - 1), slice(*IFACE_COLS0)),
        1, (slice(0, 1), slice(0, SHAPE1[1])),
    )
    mb.connect(
        1, (slice(1, 2), slice(0, SHAPE1[1])),
        0, (slice(SHAPE0[0] - 1, SHAPE0[0]), slice(*IFACE_COLS0)),
    )
    mb.build_interface_schedules()

    ghosts = [build_ghost_schedule(mb.block(b)) for b in range(mb.nblocks)]
    history = []
    for step in range(STEPS):
        for b in range(mb.nblocks):
            jacobi_sweep(mb.block(b), ghosts[b])
            mb.block(b).local *= 0.25  # normalize the 4-point sum
        mb.update_interfaces()
        total = comm.allreduce(
            float(sum(blk.local.sum() for blk in mb.blocks)),
            lambda p, q: p + q,
        )
        history.append(total)
    # How much heat crossed into the vertical arm?
    arm1_heat = comm.allreduce(
        float(mb.block(1).local.sum()), lambda p, q: p + q
    )
    return history, arm1_heat


def main():
    baseline = None
    for nprocs in (1, 2, 4, 8):
        result = VirtualMachine(nprocs).run(spmd)
        history, arm1_heat = result.values[0]
        if baseline is None:
            baseline = (history, arm1_heat)
            print(f"-- heat totals per step: "
                  f"{', '.join(f'{h:.4f}' for h in history)}")
            print(f"   heat that crossed the block interface: {arm1_heat:.6f}")
        assert np.allclose(history, baseline[0]), "decomposition leaked into physics!"
        assert np.isclose(arm1_heat, baseline[1])
        assert arm1_heat > 1e-3, "no meaningful heat crossed the interface"
        print(f"   P={nprocs}: identical evolution, "
              f"{result.elapsed_ms:8.2f} ms modelled, "
              f"{result.total_stat('messages_sent'):4.0f} messages")
    print("multiblock CFD example OK")


if __name__ == "__main__":
    main()
