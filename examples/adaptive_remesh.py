#!/usr/bin/env python3
"""Adaptive repartitioning of an irregular computation (Chaos heritage).

Chaos's companion line of work ("runtime and language support for
compiling adaptive irregular programs") repartitions data as the
computation evolves.  This example demonstrates the machinery this
repository provides for it:

1. an unstructured edge sweep starts from a deliberately *bad* (random)
   partition of the node arrays;
2. after a few time-steps the program repartitions the nodes with RCB,
   using :func:`repro.chaos.remap.remap` to redistribute both node arrays
   (one reusable remap schedule each);
3. the edge sweep's inspector is re-run against the new distribution and
   the time-step loop continues — visibly cheaper per iteration.

The modelled times printed show the trade the paper's ecosystem lived by:
a one-time redistribution + re-inspection cost buys a permanently cheaper
executor.

Run:  python examples/adaptive_remesh.py
"""

import numpy as np

from repro.apps.meshes import delaunay_mesh
from repro.chaos import (
    ChaosArray,
    EdgeSweep,
    build_remap_schedule,
    random_owners,
    rcb_owners,
    remap,
)
from repro.vmachine import VirtualMachine

NPOINTS = 4096
STEPS_BEFORE = 3
STEPS_AFTER = 3

MESH = delaunay_mesh(NPOINTS, seed=13)
X0 = np.random.default_rng(4).random(NPOINTS)


def spmd(comm):
    proc = comm.process

    # Phase 1: a careless initial partition.
    bad = random_owners(NPOINTS, comm.size, seed=5)
    x = ChaosArray.from_global(comm, X0, bad)
    y = ChaosArray.like(x)
    mine = np.flatnonzero(bad[MESH.ia] == comm.rank)
    with proc.timer.phase("inspector-bad"):
        sweep = EdgeSweep(x, MESH.ia[mine], MESH.ib[mine])
    with proc.timer.phase("executor-bad"):
        for _ in range(STEPS_BEFORE):
            y.local[:] = 0.0
            sweep.execute(x, y)
            x.local[:] = 0.5 * x.local + 0.5 * y.local

    # Phase 2: repartition with RCB and remap both node arrays.
    good = rcb_owners(MESH.coords, comm.size)
    with proc.timer.phase("remap"):
        sched, table = build_remap_schedule(x, good)
        x = remap(x, good, sched, table)
        y = remap(y, good, sched, table)
    mine = np.flatnonzero(good[MESH.ia] == comm.rank)
    with proc.timer.phase("inspector-good"):
        sweep = EdgeSweep(x, MESH.ia[mine], MESH.ib[mine])
    with proc.timer.phase("executor-good"):
        for _ in range(STEPS_AFTER):
            y.local[:] = 0.0
            sweep.execute(x, y)
            x.local[:] = 0.5 * x.local + 0.5 * y.local

    checksum = comm.allreduce(float(x.local.sum()), lambda a, b: a + b)
    return checksum


def oracle():
    x = X0.copy()
    for _ in range(STEPS_BEFORE + STEPS_AFTER):
        y = np.zeros_like(x)
        flux = (x[MESH.ia] + x[MESH.ib]) / 4.0
        np.add.at(y, MESH.ia, flux)
        np.add.at(y, MESH.ib, flux)
        x = 0.5 * x + 0.5 * y
    return x.sum()


def main():
    for nprocs in (4, 8):
        result = VirtualMachine(nprocs).run(spmd)
        assert np.isclose(result.values[0], oracle()), "remap changed the physics!"
        t = result.merged_timing
        bad = t.get_ms("executor-bad") / STEPS_BEFORE
        good = t.get_ms("executor-good") / STEPS_AFTER
        remap_cost = t.get_ms("remap") + t.get_ms("inspector-good")
        print(f"-- {nprocs} processors --")
        print(f"   executor per step: {bad:8.2f} ms (random partition) -> "
              f"{good:8.2f} ms (RCB)   [{bad / good:.1f}x faster]")
        breakeven = remap_cost / max(bad - good, 1e-9)
        print(f"   repartition + re-inspection cost {remap_cost:8.2f} ms "
              f"-> pays for itself after {breakeven:.1f} steps")
        assert good < bad, "RCB should beat the random partition"
    print("adaptive remesh example OK (checksums match the sequential oracle)")


if __name__ == "__main__":
    main()
