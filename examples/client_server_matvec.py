#!/usr/bin/env python3
"""Client/server computation engine (§5.4): HPF server, Parti client.

The client builds a matrix and a stream of operand vectors; the HPF
server performs the multiplies.  The client never learns how the server
distributes anything (and vice versa) — Meta-Chaos "provides an analogue
of a Unix pipe" between the two programs.  This example verifies the
numerics end-to-end and shows the amortization the paper highlights: the
schedules and the matrix transfer are paid once, every additional vector
reuses them.

Run:  python examples/client_server_matvec.py
"""

import numpy as np

from repro.blockparti import BlockPartiArray
from repro.core import (
    ScheduleMethod,
    SectionRegion,
    mc_compute_schedule,
    mc_new_set_of_regions,
)
from repro.core.coupling import CoupledExchange, coupled_universe
from repro.distrib.section import Section
from repro.hpf import HPFArray, distributed_matvec
from repro.vmachine import ALPHA_FARM_ATM, ProgramSpec, run_programs

N = 96
NVECTORS = 5


def matrix_entry(i, j):
    return 1.0 / (1.0 + np.abs(i - j))


def client_program(ctx):
    comm = ctx.comm
    proc = comm.process
    M = BlockPartiArray.from_function(comm, (N, N), matrix_entry)
    vec = BlockPartiArray.zeros(comm, (N,))
    result = BlockPartiArray.zeros(comm, (N,))

    universe = coupled_universe(ctx, "server", "src")
    with proc.timer.phase("setup"):
        mat_sched = mc_compute_schedule(
            universe,
            "blockparti", M, mc_new_set_of_regions(SectionRegion(Section.full((N, N)))),
            "hpf", None, None,
            ScheduleMethod.COOPERATION,
        )
        vec_sched = mc_compute_schedule(
            universe,
            "blockparti", vec, mc_new_set_of_regions(SectionRegion(Section.full((N,)))),
            "hpf", None, None,
            ScheduleMethod.COOPERATION,
        )
        CoupledExchange(universe, mat_sched).push(M)
    vec_exchange = CoupledExchange(universe, vec_sched)

    errors = []
    for k in range(NVECTORS):
        # Fresh operand: v_k[i] = sin(i + k)
        (lo, hi), = vec.owned_block()
        vec.local[:] = np.sin(np.arange(lo, hi) + float(k))
        with proc.timer.phase("per_vector"):
            vec_exchange.push(vec)
            vec_exchange.pull(result)
        # Verify against a locally computed oracle.
        got = result.gather_global()
        if comm.rank == 0:
            ii, jj = np.meshgrid(np.arange(N), np.arange(N), indexing="ij")
            A = matrix_entry(ii, jj)
            v = np.sin(np.arange(N) + float(k))
            errors.append(float(np.abs(got - A @ v).max()))
    if comm.rank == 0:
        worst = max(errors)
        assert worst < 1e-10, f"server result wrong by {worst}"
        print(f"  {NVECTORS} server-side multiplies verified "
              f"(max |error| = {worst:.2e})")
        setup = proc.timer.report.get_ms("setup")
        per_vec = proc.timer.report.get_ms("per_vector") / NVECTORS
        print(f"  one-time setup (schedules + matrix): {setup:8.2f} ms")
        print(f"  per additional vector:               {per_vec:8.2f} ms")
    return True


def server_program(ctx):
    comm = ctx.comm
    A = HPFArray.distribute(comm, (N, N), ("block", "*"))
    x = HPFArray.distribute(comm, (N,), ("block",))
    y = HPFArray.distribute(comm, (N,), ("block",))
    universe = coupled_universe(ctx, "client", "dst")
    mat_sched = mc_compute_schedule(
        universe,
        "blockparti", None, None,
        "hpf", A, mc_new_set_of_regions(SectionRegion(Section.full((N, N)))),
        ScheduleMethod.COOPERATION,
    )
    vec_sched = mc_compute_schedule(
        universe,
        "blockparti", None, None,
        "hpf", x, mc_new_set_of_regions(SectionRegion(Section.full((N,)))),
        ScheduleMethod.COOPERATION,
    )
    CoupledExchange(universe, mat_sched).push(A)
    vec_exchange = CoupledExchange(universe, vec_sched)
    for _ in range(NVECTORS):
        vec_exchange.push(x)
        distributed_matvec(A, x, y)
        vec_exchange.pull(y)
    return True


def main():
    for nclient, nserver in ((1, 4), (2, 8)):
        print(f"-- client={nclient} proc(s), server={nserver} procs "
              f"(Alpha-farm/ATM profile) --")
        run_programs(
            [
                ProgramSpec("client", nclient, client_program),
                ProgramSpec("server", nserver, server_program),
            ],
            profile=ALPHA_FARM_ATM,
        )
    print("client/server matvec example OK")


if __name__ == "__main__":
    main()
