#!/usr/bin/env python3
"""Shipboard fire simulation: three coupled peer programs (paper intro).

"One example of a peer-to-peer model is a complex physical simulation,
such as shipboard fire modeling.  Such an application would require
communication between the different libraries that were used to
parallelize the structural mechanics code used to model the ship walls,
the CFD code used to model air flow through the room with the fire, and
the flame code used to provide a detailed simulation of the fire."

Three separately written programs, three different libraries, pairwise
Meta-Chaos couplings:

- ``walls``  — structural/thermal model of the bulkheads: a 2-D Parti
  mesh (heat diffusion in the walls);
- ``air``    — room airflow: an HPF temperature field (advected and
  diffused), exchanging its boundary layer with the walls;
- ``flame``  — the fire front: an unstructured Chaos point cloud
  injecting heat into a patch of the air field.

Per time step: flame -> air (heat sources), air sweep, air boundary <->
walls, wall diffusion, walls -> flame feedback (ambient temperature at
the fire, throttling the source).  All six transfers ride two symmetric
schedules plus one one-way schedule, built once.

Run:  python examples/shipboard_fire.py
"""

import numpy as np

from repro.apps.meshes import delaunay_mesh
from repro.blockparti import BlockPartiArray, build_ghost_schedule, jacobi_sweep
from repro.chaos import ChaosArray, rcb_owners
from repro.core import (
    IndexRegion,
    ScheduleMethod,
    SectionRegion,
    mc_compute_schedule,
    mc_new_set_of_regions,
)
from repro.core.coupling import CoupledExchange, coupled_universe
from repro.distrib.section import Section
from repro.hpf import HPFArray, forall
from repro.vmachine import ProgramSpec, run_programs

ROOM = (48, 48)           # air field
WALL = (4, 48)            # wall strip adjacent to the room's i=0 edge
NFIRE = 300               # flame particles
STEPS = 4

FIRE_MESH = delaunay_mesh(NFIRE, seed=77)
# The flame sits in a patch of the room: map each particle to a room cell.
_rng = np.random.default_rng(5)
FIRE_I = _rng.integers(0, 8, NFIRE)   # the fire burns against the bulkhead
FIRE_J = _rng.integers(10, 26, NFIRE)
FIRE_CELLS = FIRE_I * ROOM[1] + FIRE_J


def walls_program(ctx):
    comm = ctx.comm
    wall = BlockPartiArray.zeros(comm, WALL)
    ghosts = build_ghost_schedule(wall)

    # Coupling 1: air boundary row <-> wall inner row (symmetric).
    universe_air = coupled_universe(ctx, "air", "dst")
    wall_row = mc_new_set_of_regions(
        SectionRegion(Section((WALL[0] - 1, 0), (WALL[0], WALL[1]), (1, 1)))
    )
    sched_air = mc_compute_schedule(
        universe_air, "hpf", None, None, "blockparti", wall, wall_row,
        ScheduleMethod.COOPERATION,
    )
    air_exchange = CoupledExchange(universe_air, sched_air)

    # Coupling 2: wall temperature near the fire -> flame program.
    universe_flame = coupled_universe(ctx, "flame", "src")
    probe = mc_new_set_of_regions(
        SectionRegion(Section((WALL[0] - 1, 10), (WALL[0], 26), (1, 1)))
    )
    sched_flame = mc_compute_schedule(
        universe_flame, "blockparti", wall, probe, "chaos", None, None,
        ScheduleMethod.COOPERATION,
    )
    flame_exchange = CoupledExchange(universe_flame, sched_flame)

    for _ in range(STEPS):
        air_exchange.push(wall)       # receive the air boundary row
        jacobi_sweep(wall, ghosts)    # conduct heat through the bulkhead
        wall.local *= 0.25            # (normalize the 4-point sum)
        air_exchange.pull(wall)       # hand the wall row back to the air
        flame_exchange.push(wall)     # report wall temps to the flame
    checksum = comm.allreduce(float(wall.local.sum()), lambda a, b: a + b)
    if comm.rank == 0:
        print(f"  [walls] final wall heat {checksum:10.4f}")
    return checksum


def air_program(ctx):
    comm = ctx.comm
    air = HPFArray.distribute(comm, ROOM, ("block", "block"))
    sources = HPFArray.distribute(comm, ROOM, ("block", "block"))

    # Coupling 1: flame particles -> heat sources in my field.
    universe_flame = coupled_universe(ctx, "flame", "dst")
    source_cells = mc_new_set_of_regions(IndexRegion(FIRE_CELLS))
    sched_flame = mc_compute_schedule(
        universe_flame, "chaos", None, None, "hpf", sources, source_cells,
        ScheduleMethod.COOPERATION,
    )
    flame_exchange = CoupledExchange(universe_flame, sched_flame)

    # Coupling 2: my i=0 boundary row <-> the walls program (symmetric).
    universe_walls = coupled_universe(ctx, "walls", "src")
    boundary = mc_new_set_of_regions(
        SectionRegion(Section((0, 0), (1, ROOM[1]), (1, 1)))
    )
    sched_walls = mc_compute_schedule(
        universe_walls, "hpf", air, boundary, "blockparti", None, None,
        ScheduleMethod.COOPERATION,
    )
    walls_exchange = CoupledExchange(universe_walls, sched_walls)

    for _ in range(STEPS):
        flame_exchange.push(sources)            # flame injects heat
        forall(air, lambda a, s: 0.98 * a + s, air, sources)
        walls_exchange.push(air)                # boundary row -> walls
        walls_exchange.pull(air)                # conducted row comes back
    checksum = comm.allreduce(float(air.local.sum()), lambda a, b: a + b)
    if comm.rank == 0:
        print(f"  [air]   final room heat {checksum:10.4f}")
    return checksum


def flame_program(ctx):
    comm = ctx.comm
    owners = rcb_owners(FIRE_MESH.coords, comm.size)
    intensity = ChaosArray.zeros(comm, owners)
    intensity.local[:] = 1.0
    feedback = ChaosArray.zeros(comm, owners)

    universe_air = coupled_universe(ctx, "air", "src")
    all_particles = mc_new_set_of_regions(IndexRegion(np.arange(NFIRE)))
    sched_air = mc_compute_schedule(
        universe_air, "chaos", intensity, all_particles, "hpf", None, None,
        ScheduleMethod.COOPERATION,
    )
    air_exchange = CoupledExchange(universe_air, sched_air)

    universe_walls = coupled_universe(ctx, "walls", "dst")
    probe_particles = mc_new_set_of_regions(IndexRegion(np.arange(16)))
    sched_walls = mc_compute_schedule(
        universe_walls, "blockparti", None, None, "chaos", feedback,
        probe_particles, ScheduleMethod.COOPERATION,
    )
    walls_exchange = CoupledExchange(universe_walls, sched_walls)

    for _ in range(STEPS):
        air_exchange.push(intensity)     # heat into the room
        walls_exchange.push(feedback)    # wall temps arrive
        # Hot walls slightly throttle the fire model's output.
        damp = comm.allreduce(float(feedback.local.sum()), lambda a, b: a + b)
        intensity.local[:] = 1.0 / (1.0 + 0.001 * damp)
    checksum = comm.allreduce(float(intensity.local.sum()), lambda a, b: a + b)
    if comm.rank == 0:
        print(f"  [flame] final intensity  {checksum:10.4f}")
    return checksum


def main():
    baseline = None
    for layout in ((2, 4, 2), (4, 2, 2)):
        w, a, f = layout
        print(f"-- walls={w} procs, air={a}, flame={f} --")
        result = run_programs(
            [
                ProgramSpec("walls", w, walls_program),
                ProgramSpec("air", a, air_program),
                ProgramSpec("flame", f, flame_program),
            ]
        )
        sums = (
            result["walls"].values[0]
            + result["air"].values[0]
            + result["flame"].values[0]
        )
        if baseline is None:
            baseline = sums
        assert np.isclose(sums, baseline), "coupling depends on layout!"
        print(f"   modelled elapsed {result.elapsed_ms:.2f} ms")
    print("shipboard fire example OK (results identical across layouts)")


if __name__ == "__main__":
    main()
