#!/usr/bin/env python3
"""Coupled structured + unstructured mesh solver in one program (§2, §5.1).

The paper's motivating CFD scenario (Figure 1): a structured mesh models
the space around a body (here a 64x64 grid handled by Multiblock Parti),
an unstructured Delaunay mesh models the complex-geometry region (handled
by Chaos), and the two exchange boundary data every time-step through
Meta-Chaos.

Per time-step:
  1. Jacobi-style sweep on the structured mesh      (Parti ghost cells)
  2. copy interface cells -> unstructured nodes     (Meta-Chaos)
  3. edge-accumulation sweep on the unstructured    (Chaos gather/scatter)
  4. copy interface nodes -> structured cells       (Meta-Chaos, reverse)

Run:  python examples/coupled_mesh.py
"""

import numpy as np

from repro.apps.meshes import delaunay_mesh, interface_mapping
from repro.blockparti import BlockPartiArray, build_ghost_schedule, jacobi_sweep
from repro.chaos import ChaosArray, EdgeSweep, rcb_owners
from repro.chaos.partition import block_owners
from repro.core import (
    IndexRegion,
    ScheduleMethod,
    mc_compute_schedule,
    mc_copy,
    mc_new_set_of_regions,
)
from repro.vmachine import VirtualMachine

SHAPE = (64, 64)
NPOINTS = 2000
TIMESTEPS = 5

MESH = delaunay_mesh(NPOINTS, seed=11)
IRREG, REG1, REG2 = interface_mapping(SHAPE, NPOINTS, strip=2, seed=3)


def spmd(comm):
    proc = comm.process
    # Structured mesh, regularly distributed by Multiblock Parti.
    a = BlockPartiArray.from_function(
        comm, SHAPE, lambda i, j: np.sin(0.1 * i) + np.cos(0.1 * j)
    )
    ghosts = build_ghost_schedule(a)

    # Unstructured mesh, irregularly distributed by Chaos (RCB partition).
    owners = rcb_owners(MESH.coords, comm.size)
    x = ChaosArray.zeros(comm, owners)
    y = ChaosArray.like(x)
    edge_owner = block_owners(MESH.nedges, comm.size)
    mine = np.flatnonzero(edge_owner == comm.rank)
    sweep = EdgeSweep(x, MESH.ia[mine], MESH.ib[mine])

    # The interface mapping (Figure 1's Reg2Irreg arrays) as Regions.
    reg_cells = IndexRegion(REG1 * SHAPE[1] + REG2)
    irreg_nodes = IndexRegion(IRREG)
    sched = mc_compute_schedule(
        comm,
        "blockparti", a, mc_new_set_of_regions(reg_cells),
        "chaos", x, mc_new_set_of_regions(irreg_nodes),
        ScheduleMethod.COOPERATION,
    )

    for step in range(TIMESTEPS):
        jacobi_sweep(a, ghosts)                      # loop 1
        mc_copy(comm, sched, a, x)                   # loop 2
        y.local[:] = 0.0
        sweep.execute(x, y)                          # loop 3
        x.local[:] = y.local
        mc_copy(comm, sched.reverse(), x, a)         # loop 4
        norm = comm.allreduce(float(np.abs(a.local).sum()), lambda p, q: p + q)
        if comm.rank == 0:
            print(f"  step {step}: |a|_1 = {norm:.4e}")
    return float(np.abs(a.local).sum())


def main():
    for nprocs in (2, 4, 8):
        print(f"-- {nprocs} processors --")
        result = VirtualMachine(nprocs).run(spmd)
        total = sum(result.values)
        print(
            f"   final |a|_1 = {total:.6e}   modelled elapsed "
            f"{result.elapsed_ms:.2f} ms   "
            f"{result.total_stat('messages_sent'):.0f} messages"
        )
    print("coupled mesh example OK (identical |a|_1 across P confirms "
          "the remap is processor-count independent)")


if __name__ == "__main__":
    main()
