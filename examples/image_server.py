#!/usr/bin/env python3
"""Satellite image database servers (the paper's introduction scenario).

"An image processing client ... wants to access data from one or more
satellite image database parallel servers.  The servers could return all
the data for a query to the client ... or the servers might also be used
as computational engines to produce a partial output image, with the
combination of partial output images from the various servers occurring
in the client."

Here: two parallel servers each hold one spectral band of a synthetic
satellite scene (RED and NIR), exposed as distributed-object services
(:mod:`repro.dobj`, the paper's future-work layer).  The client asks each
server to compute its partial product for a vegetation index over a query
window, pulls both partials directly into its own distributed memory
through Meta-Chaos bindings, and combines them locally into an NDVI map.

Run:  python examples/image_server.py
"""

import numpy as np

from repro.blockparti import BlockPartiArray
from repro.core import SectionRegion, mc_new_set_of_regions
from repro.distrib.section import Section
from repro.dobj import ParallelObject, connect, serve_objects
from repro.hpf import HPFArray
from repro.vmachine import ALPHA_FARM_ATM, ProgramSpec, run_programs

SCENE = (96, 96)                     # full archived scene, per band
QUERY = (slice(16, 80), slice(24, 88))  # the client's window (64x64)
QSHAPE = (64, 64)


def scene_band(kind):
    """Synthetic radiometry: vegetation patch in the scene center."""
    i, j = np.meshgrid(np.arange(SCENE[0]), np.arange(SCENE[1]), indexing="ij")
    vegetation = np.exp(-(((i - 48) / 22.0) ** 2 + ((j - 52) / 26.0) ** 2))
    if kind == "red":
        return 0.30 - 0.22 * vegetation  # vegetation absorbs red
    return 0.25 + 0.55 * vegetation      # ...and reflects near-infrared


class BandServer(ParallelObject):
    """One spectral band, block-distributed over this server's procs."""

    def __init__(self, comm, kind):
        self.comm = comm
        self.kind = kind
        self.band = HPFArray.from_global(comm, scene_band(kind), ("block", "block"))
        self.window = HPFArray.distribute(comm, QSHAPE, ("block", "block"))

    def export_array(self, attr):
        if attr != "window":
            raise KeyError(attr)
        sor = mc_new_set_of_regions(SectionRegion(Section.full(QSHAPE)))
        return ("hpf", self.window, sor)

    def extract(self, i0, i1, j0, j1):
        """Server-side computation: cut the query window out of the band.

        (A real image server would also radiometrically correct, warp,
        composite over time, etc. — all server-side parallel work.)
        """
        from repro.hpf import hpf_section_copy

        hpf_section_copy(
            self.band, (slice(i0, i1), slice(j0, j1)),
            self.window, (slice(0, QSHAPE[0]), slice(0, QSHAPE[1])),
        )
        return float(self.window.local.sum())


def make_server(kind):
    def server(ctx):
        return serve_objects(ctx, "client", {kind: BandServer(ctx.comm, kind)})

    return server


def client(ctx):
    comm = ctx.comm
    full_window_sor = mc_new_set_of_regions(SectionRegion(Section.full(QSHAPE)))
    red_local = BlockPartiArray.zeros(comm, QSHAPE)
    nir_local = BlockPartiArray.zeros(comm, QSHAPE)

    partials = {}
    for kind, local in (("red", red_local), ("nir", nir_local)):
        broker = connect(ctx, f"{kind}-server")
        obj = broker.object(kind)
        binding = obj.bind("window", "blockparti", local, full_window_sor)
        obj.call("extract", QUERY[0].start, QUERY[0].stop,
                 QUERY[1].start, QUERY[1].stop)
        obj.pull(binding)
        partials[kind] = (broker, obj)

    # Combine partial products locally: NDVI = (NIR - RED) / (NIR + RED).
    ndvi = (nir_local.local - red_local.local) / (
        nir_local.local + red_local.local
    )
    peak_local = float(ndvi.max()) if len(ndvi) else -1.0
    peak = comm.allreduce(peak_local, max)
    mean = comm.allreduce(float(ndvi.sum()), lambda a, b: a + b) / (
        QSHAPE[0] * QSHAPE[1]
    )

    if comm.rank == 0:
        red = scene_band("red")[QUERY]
        nir = scene_band("nir")[QUERY]
        expect = (nir - red) / (nir + red)
        assert np.isclose(peak, expect.max()), (peak, expect.max())
        print(f"  NDVI over the query window: mean={mean:.4f} "
              f"peak={peak:.4f} (verified against local oracle)")

    for broker, _ in partials.values():
        broker.shutdown()
    return peak


def main():
    print("-- image database: 1 client (2 procs), 2 band servers (4 procs each) --")
    result = run_programs(
        [
            ProgramSpec("client", 2, client),
            ProgramSpec("red-server", 4, make_server("red")),
            ProgramSpec("nir-server", 4, make_server("nir")),
        ],
        profile=ALPHA_FARM_ATM,
    )
    print(f"   modelled elapsed {result.elapsed_ms:.2f} ms "
          f"(client {result['client'].elapsed_ms:.2f})")
    print("image server example OK")


if __name__ == "__main__":
    main()
