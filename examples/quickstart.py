#!/usr/bin/env python3
"""Quickstart: the paper's Figure 9 — two HPF programs exchange a section.

Two separately written HPF programs run concurrently on disjoint virtual
processors.  The source program owns a 200x100 (block,block) array ``B``;
the destination owns a 50x60 (block,block) array ``A``.  Meta-Chaos
performs, directly between the distributed memories::

    A[0:50, 10:60] = B[50:100, 50:100]

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import ScheduleMethod, mc_compute_schedule, mc_new_set_of_regions
from repro.core.coupling import CoupledExchange, coupled_universe
from repro.hpf import HPFArray, create_region_hpf
from repro.vmachine import ProgramSpec, run_programs


def source_program(ctx):
    """The paper's left column: owns B, sends a section of it."""
    comm = ctx.comm
    B = HPFArray.from_function(
        comm, (200, 100), lambda i, j: 1000.0 * i + j, specs=("block", "block")
    )
    # define the source array section: B[50:100, 50:100] (inclusive bounds)
    region = create_region_hpf(2, (50, 50), (99, 99))
    src_set = mc_new_set_of_regions(region)

    universe = coupled_universe(ctx, "destination", "src")
    sched = mc_compute_schedule(
        universe,
        "hpf", B, src_set,
        "hpf", None, None,
        ScheduleMethod.COOPERATION,
    )
    CoupledExchange(universe, sched).push(B)  # MC_DataMoveSend
    return comm.process.clock


def destination_program(ctx):
    """The paper's right column: owns A, receives into a section."""
    comm = ctx.comm
    A = HPFArray.distribute(comm, (50, 60), ("block", "block"))
    # define the destination array section: A[0:50, 10:60]
    region = create_region_hpf(2, (0, 10), (49, 59))
    dst_set = mc_new_set_of_regions(region)

    universe = coupled_universe(ctx, "source", "dst")
    sched = mc_compute_schedule(
        universe,
        "hpf", None, None,
        "hpf", A, dst_set,
        ScheduleMethod.COOPERATION,
    )
    CoupledExchange(universe, sched).push(A)  # MC_DataMoveRecv

    full = A.gather_global()
    if comm.rank == 0:
        expected = np.zeros((50, 60))
        ii, jj = np.meshgrid(np.arange(50, 100), np.arange(50, 100), indexing="ij")
        expected[0:50, 10:60] = 1000.0 * ii + jj
        assert np.allclose(full, expected), "section copy mismatch!"
        print("A[0:50, 10:60] = B[50:100, 50:100]  -- verified element-exact")
        print(f"corner values: A[0,10]={full[0,10]:.0f} (B[50,50]=50050), "
              f"A[49,59]={full[49,59]:.0f} (B[99,99]=99099)")
    return comm.process.clock


def main():
    result = run_programs(
        [
            ProgramSpec("source", 4, source_program),
            ProgramSpec("destination", 2, destination_program),
        ]
    )
    print(f"source program:      {result['source'].elapsed_ms:8.3f} ms (modelled)")
    print(f"destination program: {result['destination'].elapsed_ms:8.3f} ms (modelled)")
    print("quickstart OK")


if __name__ == "__main__":
    main()
