#!/usr/bin/env python3
"""Three libraries in one program: pC++ <-> Chaos <-> HPF (§4.1.3).

The paper stresses extensibility: integrating a new library means
implementing the small interface-function set, after which it can talk to
*every* registered library with no pairwise glue (the n^2-interfaces
problem the framework approach avoids).  This example chains three
structurally different libraries in one program:

  1. a pC++ cyclic collection is filled element-parallel;
  2. Meta-Chaos copies it into a Chaos irregularly distributed array
     (an arbitrary permutation mapping);
  3. Meta-Chaos copies a strided slice of that into an HPF
     (block-cyclic) array section.

Run:  python examples/pcxx_exchange.py
"""

import numpy as np

from repro.chaos import ChaosArray, random_owners
from repro.core import (
    IndexRegion,
    ScheduleMethod,
    mc_compute_schedule,
    mc_copy,
    mc_new_set_of_regions,
)
from repro.hpf import HPFArray, hpf_section
from repro.pcxx import DistributedCollection
from repro.vmachine import VirtualMachine

N = 600
PERM = np.random.default_rng(5).permutation(N)
OWNERS = random_owners(N, 4, seed=8)


def spmd(comm):
    # 1. pC++ collection, cyclic layout, element-parallel init e = 3g + 1.
    coll = DistributedCollection.create(comm, N)
    coll.apply(lambda g, e: 3.0 * g + 1.0)

    # 2. permuted copy into a Chaos array (random irregular distribution).
    owners = OWNERS % comm.size
    z = ChaosArray.zeros(comm, owners)
    sched1 = mc_compute_schedule(
        comm,
        "pcxx", coll, mc_new_set_of_regions(IndexRegion(np.arange(N))),
        "chaos", z, mc_new_set_of_regions(IndexRegion(PERM)),
        ScheduleMethod.COOPERATION,
    )
    mc_copy(comm, sched1, coll, z)

    # 3. every third element of the Chaos array into an HPF section.
    taken = np.arange(0, N, 3)
    h = HPFArray.distribute(comm, (N // 3,), ("cyclic(4)",))
    sched2 = mc_compute_schedule(
        comm,
        "chaos", z, mc_new_set_of_regions(IndexRegion(taken)),
        "hpf", h, mc_new_set_of_regions(hpf_section((slice(0, N // 3),), (N // 3,))),
        ScheduleMethod.DUPLICATION,
    )
    mc_copy(comm, sched2, z, h)

    got = h.gather_global()
    if comm.rank == 0:
        z_expect = np.zeros(N)
        z_expect[PERM] = 3.0 * np.arange(N) + 1.0
        expect = z_expect[taken]
        assert np.allclose(got, expect), "three-library chain mismatch"
        print(f"  pC++ -> Chaos -> HPF chain verified on {comm.size} procs "
              f"(first values: {got[:4]})")
    return True


def main():
    for nprocs in (2, 4):
        VirtualMachine(nprocs).run(spmd)
    print("pcxx exchange example OK")


if __name__ == "__main__":
    main()
