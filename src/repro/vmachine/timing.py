"""Logical-clock phase timing.

Benchmarks need per-phase breakdowns ("compute schedule", "send matrix",
"HPF program", "send/recv vector" in Figures 10-14).  :class:`PhaseTimer`
accumulates logical-clock time per named phase on one rank;
:func:`merge_timings` combines the per-rank reports the way the paper does
(maximum across ranks — the time a phase takes is the time the slowest
processor spends in it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PhaseTimer", "TimingReport", "merge_timings"]


@dataclass
class TimingReport:
    """Per-phase logical seconds for one rank (or merged across ranks)."""

    phases: dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    def get_ms(self, phase: str) -> float:
        """Accumulated time of ``phase`` in milliseconds (0 if never timed)."""
        return self.phases.get(phase, 0.0) * 1e3

    def total_ms(self) -> float:
        return sum(self.phases.values()) * 1e3

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v * 1e3:.2f}ms" for k, v in sorted(self.phases.items()))
        return f"TimingReport({body})"


class PhaseTimer:
    """Accumulates elapsed logical time per phase for one process.

    Used as::

        with proc.timer.phase("schedule"):
            ...  # any logical-clock charges land in the "schedule" bucket

    Nested phases are allowed; inner time is charged to the inner phase
    only (the context manager samples the clock on entry and exit).
    """

    def __init__(self, clock_fn):
        self._clock_fn = clock_fn
        self.report = TimingReport()

    def phase(self, name: str) -> "_PhaseContext":
        return _PhaseContext(self, name)


class _PhaseContext:
    def __init__(self, timer: PhaseTimer, name: str):
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_PhaseContext":
        self._start = self._timer._clock_fn()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = self._timer._clock_fn() - self._start
        self._timer.report.add(self._name, elapsed)


def merge_timings(reports: list[TimingReport], how: str = "max") -> TimingReport:
    """Merge per-rank reports into one machine-level report.

    ``how="max"`` (default) reports the slowest rank per phase, which is
    what an SPMD program's elapsed time per phase actually is.  ``"sum"``
    and ``"mean"`` are available for utilization-style analyses.
    """
    merged = TimingReport()
    keys: set[str] = set()
    for r in reports:
        keys.update(r.phases)
    # Sorted, not raw set order: string-set iteration is salted per
    # interpreter (PYTHONHASHSEED), and the merged dict's insertion order
    # leaks into serialized reports — replay-divergence checking demands
    # bit-stable output for identical inputs.
    for key in sorted(keys):
        values = [r.phases.get(key, 0.0) for r in reports]
        if how == "max":
            merged.phases[key] = max(values)
        elif how == "sum":
            merged.phases[key] = sum(values)
        elif how == "mean":
            merged.phases[key] = sum(values) / len(values)
        else:
            raise ValueError(f"unknown merge mode {how!r}")
    return merged
