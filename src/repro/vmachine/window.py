"""One-sided memory windows with active-target epochs (MPI-2 RMA analogue).

The paper's libraries couple through *two-sided* schedules: every element
moved needs a matching send and receive, which is exactly what makes
irregular, data-dependent access patterns (hash tables, work queues,
sparse tensor assembly) painful — the owner of the data must know, ahead
of time, who will touch it.  The one-sided model inverts that: a rank
*registers* a region of memory as a :class:`Window`, and any peer may
``put``/``get``/``accumulate`` into it without the owner posting a
matching receive.  This module reproduces that model **on top of** the
existing two-sided transport, the same way the collectives and the
reliability protocol are layered, so every one-sided operation is

- **charged like a send** on the origin's logical clock (``alpha +
  beta * nbytes`` injection; the target stays passive during the epoch
  and pays only its receive drain at the fence),
- **fault-injectable** (window traffic rides a dedicated wire-tag block
  classified ``"rma"`` by :func:`repro.vmachine.faults.tag_class`),
- **retransmittable** (pass ``reliable=True`` and every envelope rides
  the :class:`~repro.vmachine.reliability.Reliability` ack protocol),
- **observable** (``rma:put``/``rma:get``/``rma:acc``/``rma:fetch``
  spans and kind-prefixed trace annotations, ``rma_*`` metrics), and
- **replayable** (every envelope is an ordinary recorded message, so
  record/replay works unchanged).

Synchronization model — *active target*, fence epochs (the BSP-style
subset of MPI RMA):

1. Every rank issues any number of one-sided operations; each sends one
   eager envelope to the target (self-targeted operations buffer
   locally and send nothing).
2. Every rank calls :meth:`Window.fence` (collective over the window's
   communicator).  The fence exchanges per-pair envelope counts
   (alltoall), drains exactly that many envelopes per peer (pairwise
   FIFO isolates epochs — no trailing barrier is needed), and applies
   every mutating operation in ``(origin rank, issue order)`` — a
   deterministic total order, so even floating-point ``accumulate`` is
   bitwise reproducible run to run.
3. ``get`` requests are served *after* all applies: a get observes the
   fully-updated post-epoch window.  ``fetch_add`` / ``compare_and_swap``
   are mutating and return the value seen at their position in the total
   order — which is what makes them usable as cross-epoch atomics for
   the distributed containers (:mod:`repro.containers`).
4. Handles returned by ``get``/``fetch_add``/``compare_and_swap``
   resolve at the fence; reading ``.value`` earlier raises.

Windows over the same communicator draw sequential ids (collective
construction order) and disjoint tag pairs inside the RMA block, so
multiple windows never cross-match each other's traffic.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.vmachine.comm import Communicator
from repro.vmachine.reliability import Reliability, ReliabilityConfig

__all__ = ["Window", "RMAHandle", "TAG_RMA_BASE", "ACCUMULATE_OPS"]

#: base of the one-sided wire-tag block ``[TAG_RMA_BASE, 1 << 22)`` —
#: above the user/app tag space, below the reliability shadow bits, and
#: classified ``"rma"`` by :func:`repro.vmachine.faults.tag_class`
#: (mirrored there as ``_TAG_RMA_BASE``).
TAG_RMA_BASE = 3 << 20

#: supported elementwise ``accumulate`` combiners
ACCUMULATE_OPS = ("sum", "min", "max", "replace")


class RMAHandle:
    """Deferred result of a ``get``/``fetch_add``/``compare_and_swap``.

    The value materializes at the issuing epoch's :meth:`Window.fence`;
    touching :attr:`value` before that raises ``RuntimeError`` — a
    one-sided read has no defined value until the epoch closes.
    """

    __slots__ = ("_value", "_ready", "_seq")

    def __init__(self, seq: int):
        self._value = None
        self._ready = False
        self._seq = seq

    @property
    def ready(self) -> bool:
        return self._ready

    @property
    def value(self) -> Any:
        if not self._ready:
            raise RuntimeError(
                "RMA handle read before the epoch's fence(); one-sided "
                "results only materialize when the epoch closes"
            )
        return self._value

    def _resolve(self, value: Any) -> None:
        self._value = value
        self._ready = True


class Window:
    """A registered memory region exposed for one-sided access.

    Parameters
    ----------
    comm:
        The communicator spanning the window group.  Construction is
        collective: every rank contributes its local region and learns
        every peer's extent.
    local:
        This rank's exposed storage — a 1-D contiguous NumPy array.  The
        window addresses it by element offset; the caller keeps the
        reference and may read it freely between fences (local reads of
        the post-fence state are the point of the model).
    reliable:
        Route every envelope through a private
        :class:`~repro.vmachine.reliability.Reliability` instance, making
        window traffic correct under a fault plan that drops, duplicates
        or reorders ``"rma"``-class messages.
    reliability:
        Share an existing :class:`Reliability` instance instead (mutually
        exclusive with ``reliable=True`` creating one).
    """

    def __init__(
        self,
        comm: Communicator,
        local: np.ndarray,
        reliable: bool = False,
        reliability: Reliability | None = None,
        reliability_config: ReliabilityConfig | None = None,
    ):
        local = np.asarray(local)
        if local.ndim != 1:
            raise ValueError(
                f"window storage must be 1-D (got shape {local.shape}); "
                "ravel or reshape a view before registering"
            )
        if not local.flags["C_CONTIGUOUS"]:
            raise ValueError("window storage must be C-contiguous")
        self.comm = comm
        self.local = local
        self.dtype = local.dtype
        # Sequential per-communicator window id: every rank constructs
        # windows in the same collective order, so the counter agrees
        # without coordination — and each window owns a disjoint tag pair.
        wid = getattr(comm, "_rma_window_seq", 0)
        comm._rma_window_seq = wid + 1
        if 2 * wid + 1 >= (1 << 22) - TAG_RMA_BASE:
            raise ValueError("window id space exhausted on this communicator")
        self._wid = wid
        self._data_tag = TAG_RMA_BASE + 2 * wid
        self._resp_tag = TAG_RMA_BASE + 2 * wid + 1
        if reliability is not None:
            self._rel: Reliability | None = reliability
        elif reliable:
            self._rel = Reliability(reliability_config)
        else:
            self._rel = None
        # Collective: learn every peer's extent (and check dtype accord)
        # so origins can bounds-check without touching the target.
        meta = comm.allgather((int(local.size), local.dtype.str))
        self.sizes = [m[0] for m in meta]
        dtypes = {m[1] for m in meta}
        if len(dtypes) != 1:
            raise ValueError(
                f"window dtype mismatch across ranks: {sorted(dtypes)}"
            )
        self.epoch = 0
        # -- per-epoch origin-side state -----------------------------------
        self._op_seq = 0                       # issue order, monotone
        self._sent_counts = [0] * comm.size    # envelopes sent per target
        self._self_ops: list[tuple] = []       # ops targeting this rank
        # handles awaiting a response, per target, in issue order
        self._expect: dict[int, list[RMAHandle]] = {}
        self._self_expect: dict[int, RMAHandle] = {}  # seq -> handle

    # -- issue-side helpers ----------------------------------------------

    def _bounds(self, target: int, start: int, count: int) -> None:
        if not 0 <= target < self.comm.size:
            raise ValueError(f"target rank {target} out of range")
        if count < 0:
            raise ValueError(f"negative element count {count}")
        if start < 0 or start + count > self.sizes[target]:
            raise IndexError(
                f"window range [{start}, {start + count}) exceeds rank "
                f"{target}'s extent {self.sizes[target]}"
            )

    def _annotate(self, kind: str, target: int, nbytes: int) -> None:
        """Kind-prefixed trace annotation (never a message endpoint)."""
        proc = self.comm.process
        if proc.trace is not None:
            from repro.vmachine.trace import TraceEvent

            proc.trace.append(
                TraceEvent(kind, proc.clock, proc.rank,
                           self.comm.peer_global(target), self._data_tag,
                           nbytes, phase=proc.phase_path)
            )

    def _issue(self, target: int, envelope: tuple, nbytes_hint: int,
               kind: str) -> None:
        """Ship one envelope toward ``target`` (self-targets buffer)."""
        proc = self.comm.process
        self._annotate(kind, target, nbytes_hint)
        if target == self.comm.rank:
            # Self-targeted: no message; applied in the same deterministic
            # total order at the fence.
            self._self_ops.append(envelope)
            return
        if self._rel is not None:
            self._rel.send(self.comm, target, envelope, self._data_tag)
        else:
            self.comm.send(target, envelope, self._data_tag)
        self._sent_counts[target] += 1

    def _next_seq(self) -> int:
        seq = self._op_seq
        self._op_seq += 1
        return seq

    # -- one-sided operations ---------------------------------------------

    def put(self, target: int, data, start: int = 0) -> None:
        """Replace ``target``'s elements ``[start, start+len(data))``.

        Charged like a send at the origin (injection occupancy + wire
        time); the target applies it at the next fence.  Zero-copy
        transport rules apply: do not mutate ``data`` after issuing.
        """
        data = np.atleast_1d(np.asarray(data, dtype=self.dtype))
        self._bounds(target, start, data.size)
        proc = self.comm.process
        with proc.span("rma:put"):
            proc.metrics.incr("rma_puts")
            proc.metrics.incr("rma_bytes_put", data.nbytes)
            self._issue(target, ("put", self._next_seq(), start, data),
                        data.nbytes, "rma:put")

    def accumulate(self, target: int, data, start: int = 0,
                   op: str = "sum") -> None:
        """Combine ``data`` into ``target``'s elements with ``op``.

        ``op`` is one of :data:`ACCUMULATE_OPS`.  Applications from all
        origins apply in ``(origin, issue order)`` — a deterministic
        total order, so floating-point accumulation is reproducible.
        """
        if op not in ACCUMULATE_OPS:
            raise ValueError(f"unknown accumulate op {op!r}; "
                             f"expected one of {ACCUMULATE_OPS}")
        data = np.atleast_1d(np.asarray(data, dtype=self.dtype))
        self._bounds(target, start, data.size)
        proc = self.comm.process
        with proc.span("rma:acc"):
            proc.metrics.incr("rma_accs")
            proc.metrics.incr("rma_bytes_acc", data.nbytes)
            self._issue(target, ("acc", self._next_seq(), start, op, data),
                        data.nbytes, "rma:acc")

    def get(self, target: int, start: int = 0,
            count: int | None = None) -> RMAHandle:
        """One-sided read of ``target``'s ``[start, start+count)``.

        Returns an :class:`RMAHandle`; the value (a NumPy array) lands at
        the fence and reflects the *post-epoch* window state (every put/
        accumulate of the epoch applies first).
        """
        if count is None:
            count = self.sizes[target] - start
        self._bounds(target, start, count)
        proc = self.comm.process
        with proc.span("rma:get"):
            proc.metrics.incr("rma_gets")
            proc.metrics.incr("rma_bytes_got",
                              count * self.dtype.itemsize)
            handle = RMAHandle(self._next_seq())
            env = ("get", handle._seq, start, count)
            self._issue(target, env, 24, "rma:get")
            self._register_handle(target, handle)
        return handle

    def fetch_add(self, target: int, index: int, value) -> RMAHandle:
        """Atomically add ``value`` to one element; returns the old value.

        The returned handle resolves at the fence to the element's value
        immediately before this operation's position in the epoch's
        deterministic total order — the fetch-and-op primitive BCL-style
        containers build reservations on.
        """
        self._bounds(target, index, 1)
        proc = self.comm.process
        with proc.span("rma:fetch"):
            proc.metrics.incr("rma_fetch_ops")
            handle = RMAHandle(self._next_seq())
            env = ("fadd", handle._seq, index,
                   self.dtype.type(value))
            self._issue(target, env, 24, "rma:fetch")
            self._register_handle(target, handle)
        return handle

    def compare_and_swap(self, target: int, index: int, expected,
                         desired) -> RMAHandle:
        """Atomic CAS on one element; resolves to the *old* value.

        The swap happens iff the element equals ``expected`` at this
        operation's position in the total order; the caller learns the
        outcome by comparing the resolved old value against ``expected``.
        """
        self._bounds(target, index, 1)
        proc = self.comm.process
        with proc.span("rma:fetch"):
            proc.metrics.incr("rma_fetch_ops")
            handle = RMAHandle(self._next_seq())
            env = ("cas", handle._seq, index,
                   self.dtype.type(expected), self.dtype.type(desired))
            self._issue(target, env, 32, "rma:fetch")
            self._register_handle(target, handle)
        return handle

    def _register_handle(self, target: int, handle: RMAHandle) -> None:
        if target == self.comm.rank:
            self._self_expect[handle._seq] = handle
        else:
            self._expect.setdefault(target, []).append(handle)

    # -- epoch close -------------------------------------------------------

    def fence(self) -> None:
        """Close the epoch (collective): apply, serve, resolve, resync.

        Every rank must call ``fence`` the same number of times on every
        window (SPMD discipline).  On return: every put/accumulate of the
        epoch is applied at its target, every handle issued this epoch is
        resolved, and the local region reflects all peers' writes.
        """
        comm = self.comm
        proc = comm.process
        with proc.span("rma:fence"):
            proc.metrics.incr("rma_fences")
            # Release fault-plan-held (reordered) envelopes still sitting
            # on this origin's channels — the network delivering in-flight
            # datagrams at the phase boundary (same contract as the
            # reliability fence, which also does this for its own sends).
            for peer in range(comm.size):
                if peer != comm.rank and self._sent_counts[peer]:
                    comm._flush_held(comm.peer_global(peer))
            # How many envelopes is each pair owed?  The alltoall also
            # orders the epoch: by the time it completes here, every
            # peer's eager envelope sends have executed.
            incoming = comm.alltoall(list(self._sent_counts))
            ops: list[tuple[int, tuple]] = [
                (comm.rank, env) for env in self._self_ops
            ]
            for src in range(comm.size):
                if src == comm.rank:
                    continue
                for _ in range(incoming[src]):
                    if self._rel is not None:
                        env = self._rel.recv(comm, src, self._data_tag)
                    else:
                        env = comm.recv(src, self._data_tag)
                    ops.append((src, env))
            # Deterministic total order: origin rank, then issue order.
            ops.sort(key=lambda o: (o[0], o[1][1]))
            responses = self._apply(ops)
            # Serve responses in (origin, seq) order; per-origin FIFO then
            # delivers them in that origin's issue order.
            resp_targets = set()
            for origin, seq, value in responses:
                if origin == comm.rank:
                    self._self_expect.pop(seq)._resolve(value)
                else:
                    resp_targets.add(origin)
                    if self._rel is not None:
                        self._rel.send(comm, origin, (seq, value),
                                       self._resp_tag)
                    else:
                        comm.send(origin, (seq, value), self._resp_tag)
            # Release fault-plan-held (delayed/reordered) response
            # envelopes before blocking on our own: two ranks whose held
            # responses to each other are never flushed would otherwise
            # deadlock — the reliability fence's flush runs only *after*
            # this collection loop.
            for origin in sorted(resp_targets):
                comm._flush_held(comm.peer_global(origin))
            # Collect my own responses: exact counts, issue order.
            for target in sorted(self._expect):
                for handle in self._expect[target]:
                    if self._rel is not None:
                        seq, value = self._rel.recv(comm, target,
                                                    self._resp_tag)
                    else:
                        seq, value = comm.recv(target, self._resp_tag)
                    if seq != handle._seq:
                        raise RuntimeError(
                            f"rma response out of order: expected seq "
                            f"{handle._seq}, got {seq} (window {self._wid})"
                        )
                    handle._resolve(value)
            if self._rel is not None:
                # Block until every envelope/response is cumulatively
                # acked, so retransmit state cannot leak across epochs.
                self._rel.fence()
        assert not self._self_expect, "unresolved self-targeted handles"
        self._sent_counts = [0] * comm.size
        self._self_ops = []
        self._expect = {}
        self.epoch += 1

    def _apply(self, ops: list[tuple[int, tuple]]) -> list[tuple]:
        """Apply mutating ops in total order; gets observe the final state.

        Returns ``(origin, seq, value)`` response triples sorted by
        ``(origin, seq)``.
        """
        proc = self.comm.process
        local = self.local
        responses: list[tuple] = []
        gets: list[tuple[int, tuple]] = []
        napplied = 0
        for origin, env in ops:
            kind = env[0]
            if kind == "put":
                _, seq, start, data = env
                local[start:start + data.size] = data
                proc.charge_mem(data.nbytes)
                napplied += 1
            elif kind == "acc":
                _, seq, start, op, data = env
                sl = local[start:start + data.size]
                if op == "sum":
                    np.add(sl, data, out=sl)
                elif op == "min":
                    np.minimum(sl, data, out=sl)
                elif op == "max":
                    np.maximum(sl, data, out=sl)
                else:  # replace
                    sl[...] = data
                proc.charge_flops(data.size)
                proc.charge_mem(data.nbytes)
                napplied += 1
            elif kind == "fadd":
                _, seq, index, value = env
                old = local[index]
                local[index] += value
                proc.charge_flops(1)
                responses.append((origin, seq, self.dtype.type(old)))
                napplied += 1
            elif kind == "cas":
                _, seq, index, expected, desired = env
                old = local[index]
                if old == expected:
                    local[index] = desired
                proc.charge_flops(1)
                responses.append((origin, seq, self.dtype.type(old)))
                napplied += 1
            elif kind == "get":
                gets.append((origin, env))
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown rma envelope kind {kind!r}")
        proc.metrics.incr("rma_ops_applied", napplied)
        # Gets read the post-epoch state (every mutation above is in).
        for origin, env in gets:
            _, seq, start, count = env
            value = local[start:start + count].copy()
            proc.charge_mem(value.nbytes)
            responses.append((origin, seq, value))
        responses.sort(key=lambda r: (r[0], r[1]))
        return responses

    # -- conveniences ------------------------------------------------------

    @property
    def size(self) -> int:
        """This rank's exposed extent, in elements."""
        return int(self.local.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Window(id={self._wid}, rank={self.comm.rank}/{self.comm.size}, "
            f"size={self.local.size}, dtype={self.dtype}, epoch={self.epoch}, "
            f"reliable={self._rel is not None})"
        )
