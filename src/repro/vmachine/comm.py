"""Communicators: tagged point-to-point messaging plus collectives.

A :class:`Communicator` spans an ordered group of virtual processors and
gives each a local rank.  All collectives are implemented *on top of* the
point-to-point layer (binomial trees, dissemination barrier, pairwise
exchange), so their logical-clock cost emerges from the same cost model as
application messaging instead of being special-cased.

An :class:`InterComm` connects the processes of two different programs (the
MPI inter-communicator analogue) and is what Meta-Chaos uses for the
separate-program experiments (paper sections 5.2 and 5.4).

.. warning:: The transport is **zero-copy**: the receiver gets a reference
   to the very object that was sent.  As with any zero-copy messaging
   layer, a sender must not mutate a payload after sending it (send a
   ``.copy()`` when the buffer will be reused), and a receiver that plans
   to mutate a payload in place should copy it first.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.vmachine.message import ANY_TAG, Mailbox, Message, payload_nbytes
from repro.vmachine.process import Process

__all__ = ["Communicator", "InterComm", "Request"]

# Tags >= _COLLECTIVE_TAG_BASE are reserved for internal collective traffic.
_COLLECTIVE_TAG_BASE = 1 << 24
# Default wall-clock receive timeout; converts SPMD deadlocks in buggy
# application code into diagnosable failures.
_RECV_TIMEOUT_S = 120.0


class _Endpoint:
    """Shared plumbing between intra- and inter-communicators."""

    def __init__(
        self,
        process: Process,
        router: dict[int, Mailbox],
        context: int,
        contention: float,
    ):
        self.process = process
        self._router = router
        self._context = context
        self._contention = contention

    # -- raw point-to-point (global-rank addressed) ------------------------

    def _send_global(self, dest_global: int, payload: Any, tag: int) -> None:
        proc = self.process
        mailbox = self._router.get(dest_global)
        if mailbox is None:
            raise ValueError(f"no such rank {dest_global} on this machine")
        nbytes = payload_nbytes(payload)
        # Sender pays injection (occupancy); the payload becomes available
        # one wire latency after injection completes.
        proc.charge(proc.cost.send_occupancy(nbytes, self._contention))
        arrival = proc.clock + proc.cost.post_injection_latency()
        proc.stats["messages_sent"] += 1
        proc.stats["bytes_sent"] += nbytes
        if proc.trace is not None:
            from repro.vmachine.trace import TraceEvent

            proc.trace.append(
                TraceEvent("send", proc.clock, proc.rank, dest_global,
                           self._context + tag if tag != ANY_TAG else tag,
                           nbytes)
            )
        mailbox.deliver(
            Message(
                source=proc.rank,
                dest=dest_global,
                tag=self._context + tag if tag != ANY_TAG else tag,
                payload=payload,
                arrival=arrival,
                nbytes=nbytes,
            )
        )

    def _recv_global(self, source_global: int, tag: int) -> Any:
        proc = self.process
        wire_tag = self._context + tag if tag != ANY_TAG else tag
        msg = proc.mailbox.receive(source_global, wire_tag, timeout=_RECV_TIMEOUT_S)
        wait = max(0.0, msg.arrival - proc.clock)
        proc.advance_to(msg.arrival)
        proc.charge(proc.cost.recv_overhead(msg.nbytes))
        proc.stats["messages_received"] += 1
        proc.stats["bytes_received"] += msg.nbytes
        if proc.trace is not None:
            from repro.vmachine.trace import TraceEvent

            proc.trace.append(
                TraceEvent("recv", proc.clock, proc.rank, source_global,
                           wire_tag, msg.nbytes, wait)
            )
        return msg.payload


class Request:
    """Handle for a nonblocking operation.

    Sends on this transport are buffered and eager, so a send request is
    complete at creation.  A receive request defers the matching: the
    payload only enters the program (and the clock only advances to the
    arrival time) at :meth:`wait` — which is exactly what makes
    computation/communication overlap visible in logical time.
    """

    __slots__ = ("_endpoint", "_source_global", "_tag", "_payload", "_done")

    def __init__(self, endpoint=None, source_global=None, tag=None, payload=None,
                 done=False):
        self._endpoint = endpoint
        self._source_global = source_global
        self._tag = tag
        self._payload = payload
        self._done = done

    def test(self) -> bool:
        """True when :meth:`wait` would not block (never charges time)."""
        if self._done:
            return True
        proc = self._endpoint.process
        wire_tag = (
            self._endpoint._context + self._tag
            if self._tag != ANY_TAG
            else self._tag
        )
        return proc.mailbox.probe(self._source_global, wire_tag)

    def wait(self) -> Any:
        """Complete the operation; returns the payload for receives."""
        if self._done:
            return self._payload
        self._payload = self._endpoint._recv_global(self._source_global, self._tag)
        self._done = True
        return self._payload


class Communicator(_Endpoint):
    """Intra-program communicator over an ordered group of global ranks.

    ``members[i]`` is the global rank of local rank ``i``.  All ranks in the
    group must construct the communicator with the same ``members`` order
    and ``context`` id (the :class:`~repro.vmachine.machine.VirtualMachine`
    and :mod:`~repro.vmachine.program` helpers guarantee this).
    """

    def __init__(
        self,
        process: Process,
        members: list[int],
        router: dict[int, Mailbox],
        context: int = 0,
        contention: float = 1.0,
    ):
        super().__init__(process, router, context, contention)
        self.members = list(members)
        if process.rank not in self.members:
            raise ValueError(
                f"process rank {process.rank} is not in communicator group {members}"
            )
        self.rank = self.members.index(process.rank)
        self.size = len(self.members)
        self._collective_seq = 0

    # -- point-to-point ----------------------------------------------------

    def send(self, dest: int, payload: Any, tag: int = 0) -> None:
        """Send ``payload`` to local rank ``dest``."""
        self._check_rank(dest)
        self._send_global(self.members[dest], payload, tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Receive a message from local rank ``source``."""
        self._check_rank(source)
        return self._recv_global(self.members[source], tag)

    def sendrecv(
        self, dest: int, payload: Any, source: int, send_tag: int = 0, recv_tag: int = 0
    ) -> Any:
        """Combined send+receive (deadlock-free pairwise exchange)."""
        self.send(dest, payload, send_tag)
        return self.recv(source, recv_tag)

    def probe(self, source: int, tag: int = 0) -> bool:
        """Non-blocking, zero-cost test for a pending matching message."""
        self._check_rank(source)
        wire_tag = self._context + tag if tag != ANY_TAG else tag
        return self.process.mailbox.probe(self.members[source], wire_tag)

    def recv_any(self, tag: int = 0) -> tuple[int, Any]:
        """Receive from *any* group member (MPI_ANY_SOURCE).

        Returns ``(source_local_rank, payload)``.  Matching is still
        confined to this communicator's tag namespace, so wildcard
        receives never steal another communicator's traffic.
        """
        proc = self.process
        wire_tag = self._context + tag if tag != ANY_TAG else tag
        from repro.vmachine.message import ANY_SOURCE

        msg = proc.mailbox.receive(ANY_SOURCE, wire_tag, timeout=_RECV_TIMEOUT_S)
        wait = max(0.0, msg.arrival - proc.clock)
        proc.advance_to(msg.arrival)
        proc.charge(proc.cost.recv_overhead(msg.nbytes))
        proc.stats["messages_received"] += 1
        proc.stats["bytes_received"] += msg.nbytes
        if proc.trace is not None:
            from repro.vmachine.trace import TraceEvent

            proc.trace.append(
                TraceEvent("recv", proc.clock, proc.rank, msg.source,
                           wire_tag, msg.nbytes, wait)
            )
        return self.members.index(msg.source), msg.payload

    def isend(self, dest: int, payload: Any, tag: int = 0) -> Request:
        """Nonblocking send.  Buffered-eager: complete immediately."""
        self.send(dest, payload, tag)
        return Request(done=True)

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Nonblocking receive: match and charge only at ``wait()``.

        Work performed between ``irecv`` and ``wait`` overlaps the message
        flight time — the classic latency-hiding pattern the inspector/
        executor libraries of the era used.
        """
        self._check_rank(source)
        return Request(self, self.members[source], tag)

    def _check_rank(self, r: int) -> None:
        if not 0 <= r < self.size:
            raise ValueError(f"rank {r} out of range for communicator of size {self.size}")

    # -- collectives -------------------------------------------------------

    def _next_tag(self) -> int:
        self._collective_seq += 1
        return _COLLECTIVE_TAG_BASE + self._collective_seq

    def barrier(self) -> None:
        """Dissemination barrier: ceil(log2 P) rounds of pairwise messages."""
        tag = self._next_tag()
        if self.size == 1:
            return
        distance = 1
        while distance < self.size:
            dest = (self.rank + distance) % self.size
            source = (self.rank - distance) % self.size
            self.send(dest, None, tag)
            self.recv(source, tag)
            distance *= 2

    def bcast(self, payload: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast; returns the payload on every rank."""
        tag = self._next_tag()
        if self.size == 1:
            return payload
        vrank = (self.rank - root) % self.size
        # Phase 1: receive from parent (the rank that differs in my lowest
        # set bit).  The root (vrank 0) never receives and exits the loop
        # with mask = first power of two >= size.
        mask = 1
        while mask < self.size:
            if vrank & mask:
                parent = ((vrank - mask) + root) % self.size
                payload = self.recv(parent, tag)
                break
            mask <<= 1
        # Phase 2: forward to children vrank + m for each m below the bit at
        # which we received (below the tree top, for the root).
        mask >>= 1
        while mask >= 1:
            if vrank + mask < self.size:
                child = ((vrank + mask) + root) % self.size
                self.send(child, payload, tag)
            mask >>= 1
        return payload

    def gather(self, payload: Any, root: int = 0) -> list[Any] | None:
        """Gather one payload from every rank at ``root`` (rank order)."""
        tag = self._next_tag()
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = payload
            for src in range(self.size):
                if src != root:
                    out[src] = self.recv(src, tag)
            return out
        self.send(root, payload, tag)
        return None

    def allgather(self, payload: Any) -> list[Any]:
        """Gather at rank 0, then broadcast the full list."""
        gathered = self.gather(payload, root=0)
        return self.bcast(gathered, root=0)

    def scatter(self, payloads: list[Any] | None, root: int = 0) -> Any:
        """Scatter one element of ``payloads`` to each rank."""
        tag = self._next_tag()
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise ValueError("scatter root needs one payload per rank")
            for dest in range(self.size):
                if dest != root:
                    self.send(dest, payloads[dest], tag)
            return payloads[root]
        return self.recv(root, tag)

    def alltoall(self, payloads: list[Any]) -> list[Any]:
        """Pairwise-exchange all-to-all; ``payloads[i]`` goes to rank ``i``.

        ``None`` entries are still exchanged (they cost one small message);
        use :meth:`alltoall_sparse` to skip empty pairs — the distinction
        matters for the message-count accounting in the benchmarks.
        """
        if len(payloads) != self.size:
            raise ValueError("alltoall needs one payload per rank")
        tag = self._next_tag()
        result: list[Any] = [None] * self.size
        result[self.rank] = payloads[self.rank]
        for step in range(1, self.size):
            dest = (self.rank + step) % self.size
            source = (self.rank - step) % self.size
            result[source] = self.sendrecv(dest, payloads[dest], source, tag, tag)
        return result

    def alltoall_sparse(self, payloads: dict[int, Any]) -> dict[int, Any]:
        """All-to-all that only sends to ranks present in ``payloads``.

        Every rank must call it.  A preliminary allgather of destination
        sets tells each rank how many messages to expect; then only the
        non-empty pairs exchange data.  This is how Meta-Chaos data moves
        send at most one message per communicating processor pair.
        """
        dests = sorted(payloads.keys())
        for d in dests:
            self._check_rank(d)
        all_dests = self.allgather(dests)
        tag = self._next_tag()
        incoming = sorted(
            src for src, their in enumerate(all_dests) if self.rank in their
        )
        result: dict[int, Any] = {}
        # Self-delivery is free of messaging.
        if self.rank in payloads:
            result[self.rank] = payloads[self.rank]
        for d in dests:
            if d != self.rank:
                self.send(d, payloads[d], tag)
        for src in incoming:
            if src != self.rank:
                result[src] = self.recv(src, tag)
        return result

    def scan(self, value: Any, op: Callable[[Any, Any], Any]) -> Any:
        """Inclusive prefix reduction: rank r gets op-fold of ranks 0..r.

        Linear pipeline (rank r receives the prefix from r-1, folds, and
        forwards) — the latency chain is the realistic cost of a scan on
        a message-passing machine without special hardware.
        """
        tag = self._next_tag()
        acc = value
        if self.rank > 0:
            prefix = self.recv(self.rank - 1, tag)
            acc = op(prefix, value)
        if self.rank < self.size - 1:
            self.send(self.rank + 1, acc, tag)
        return acc

    def split(self, color: int, key: int | None = None) -> "Communicator":
        """Partition the communicator by ``color`` (collective).

        Ranks passing the same color form a new communicator, ordered by
        ``key`` (default: current rank).  Mirrors ``MPI_Comm_split``; used
        by applications that carve worker subsets out of a program.
        """
        if key is None:
            key = self.rank
        triples = self.allgather((color, key, self.members[self.rank]))
        mine = sorted(
            (k, g) for c, k, g in triples if c == color
        )
        members = [g for _, g in mine]
        # Deterministic context offset shared by the group: derived from
        # the color, this communicator's context, and the collective epoch
        # (so repeated splits never share a tag namespace).
        new_context = self._context + ((color + 1) << 25) + (self._collective_seq << 13)
        return Communicator(
            self.process, members, self._router,
            context=new_context, contention=self._contention,
        )

    def reduce(self, value: Any, op: Callable[[Any, Any], Any], root: int = 0) -> Any:
        """Tree reduction with a user-supplied associative ``op``."""
        gathered = self.gather(value, root=root)
        if self.rank != root:
            return None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = op(acc, item)
        return acc

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]) -> Any:
        reduced = self.reduce(value, op, root=0)
        return self.bcast(reduced, root=0)


class InterComm(_Endpoint):
    """Connects the processes of two programs (local group vs remote group).

    Ranks passed to :meth:`send`/:meth:`recv` are *remote-group* local
    ranks, mirroring MPI inter-communicator semantics.
    """

    def __init__(
        self,
        process: Process,
        local_members: list[int],
        remote_members: list[int],
        router: dict[int, Mailbox],
        context: int,
        contention: float = 1.0,
    ):
        super().__init__(process, router, context, contention)
        self.local_members = list(local_members)
        self.remote_members = list(remote_members)
        if process.rank not in self.local_members:
            raise ValueError(
                f"process rank {process.rank} is not in local group {local_members}"
            )
        self.rank = self.local_members.index(process.rank)
        self.local_size = len(self.local_members)
        self.remote_size = len(self.remote_members)

    def send(self, dest_remote: int, payload: Any, tag: int = 0) -> None:
        """Send to local rank ``dest_remote`` of the *remote* group."""
        if not 0 <= dest_remote < self.remote_size:
            raise ValueError(f"remote rank {dest_remote} out of range")
        self._send_global(self.remote_members[dest_remote], payload, tag)

    def recv(self, source_remote: int, tag: int = 0) -> Any:
        """Receive from local rank ``source_remote`` of the *remote* group."""
        if not 0 <= source_remote < self.remote_size:
            raise ValueError(f"remote rank {source_remote} out of range")
        return self._recv_global(self.remote_members[source_remote], tag)
