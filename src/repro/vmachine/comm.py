"""Communicators: tagged point-to-point messaging plus collectives.

A :class:`Communicator` spans an ordered group of virtual processors and
gives each a local rank.  All collectives are implemented *on top of* the
point-to-point layer (binomial trees, dissemination barrier, pairwise
exchange), so their logical-clock cost emerges from the same cost model as
application messaging instead of being special-cased.

An :class:`InterComm` connects the processes of two different programs (the
MPI inter-communicator analogue) and is what Meta-Chaos uses for the
separate-program experiments (paper sections 5.2 and 5.4).

.. warning:: The transport is **zero-copy**: the receiver gets a reference
   to the very object that was sent.  As with any zero-copy messaging
   layer, a sender must not mutate a payload after sending it (send a
   ``.copy()`` when the buffer will be reused), and a receiver that plans
   to mutate a payload in place should copy it first.  The opt-in
   *copy-on-send* debug mode (``VirtualMachine(copy_on_send=True)`` or
   ``REPRO_COPY_ON_SEND=1``) deep-copies every payload at send time,
   which makes mutate-after-send bugs visible as behavioural differences
   between the two modes.

Fault injection: when a :class:`~repro.vmachine.faults.FaultPlan` is
installed on the process, every send is routed through it — messages may
be dropped, duplicated, held back (reordered), delayed or discarded as
corrupt, and the send returns a
:class:`~repro.vmachine.faults.DeliveryReceipt` describing what the
virtual NIC observed.  The receipt is what the opt-in reliable-delivery
layer (:mod:`repro.vmachine.reliability`) uses as its retransmission
oracle.
"""

from __future__ import annotations

import copy as _copy
from typing import Any, Callable

from repro.vmachine.faults import OK_RECEIPT, DeliveryReceipt
from repro.vmachine.message import ANY_TAG, Mailbox, Message, payload_nbytes
from repro.vmachine.process import Process

__all__ = ["Communicator", "InterComm", "Request", "waitany", "waitall",
           "CONTEXT_STRIDE"]

# Tags >= _COLLECTIVE_TAG_BASE are reserved for internal collective traffic.
_COLLECTIVE_TAG_BASE = 1 << 24
# Context-id spacing between communicators: each communicator owns the
# wire-tag block [context, context + CONTEXT_STRIDE).  ANY_TAG wildcards
# (receives, probes, Request.test) are scoped to this block so they can
# never match another communicator's traffic.
CONTEXT_STRIDE = 1 << 32
# Split-derived communicators draw their context-block indices from above
# this floor so they can never collide with the small sequential indices
# handed to program/pair communicators by the program runner.
_SPLIT_BLOCK_BASE = 1 << 20


def _cantor_pair(a: int, b: int) -> int:
    """Cantor's pairing function: a deterministic injection N x N -> N."""
    s = a + b
    return s * (s + 1) // 2 + b


def _account_recv(proc, msg: Message, wire_tag: int) -> None:
    """Clock/stats/trace bookkeeping for one completed receive.

    Runs inside a ``wire`` span: the blocked wait (``alpha``) and the
    drain overhead (``occupancy``) are attributed to the enclosing phase,
    and the ``recv`` trace event carries the span path.
    """
    with proc.span("wire"):
        wait = max(0.0, msg.arrival - proc.clock)
        proc.advance_to(msg.arrival)
        proc.charge(proc.cost.recv_overhead(msg.nbytes), term="occupancy")
        metrics = proc.metrics
        metrics.incr("messages_received")
        metrics.incr("bytes_received", msg.nbytes)
        if proc.trace is not None:
            from repro.vmachine.trace import TraceEvent

            proc.trace.append(
                TraceEvent("recv", proc.clock, proc.rank, msg.source,
                           wire_tag, msg.nbytes, wait,
                           phase=proc.phase_path)
            )
        rec = proc.recorder
        if rec is not None:
            rec.on_recv(msg, wire_tag, wait, proc.clock)


def _probe(proc, source_global: int, wire_tag: int, tag_range=None) -> bool:
    """Mailbox probe with its outcome recorded (when recording).

    Probe outcomes are part of a run's provenance: the reliability layer
    drains acks/backlog through ``while probe(...)`` loops, so a
    single-rank isolation replay must answer each probe exactly as the
    original run did — by consulting the recorded outcome stream, not
    the log's future contents.
    """
    hit = proc.mailbox.probe(source_global, wire_tag, tag_range=tag_range)
    rec = proc.recorder
    if rec is not None:
        rec.on_probe(hit)
    return hit


class _Endpoint:
    """Shared plumbing between intra- and inter-communicators."""

    def __init__(
        self,
        process: Process,
        router: dict[int, Mailbox],
        context: int,
        contention: float,
    ):
        self.process = process
        self._router = router
        self._context = context
        self._contention = contention

    # -- wire-tag arithmetic ----------------------------------------------

    def _wire_tag(self, tag: int) -> int:
        """User tag -> wire tag (ANY_TAG stays wildcard; see _tag_range)."""
        return self._context + tag if tag != ANY_TAG else ANY_TAG

    def _tag_range(self, tag: int) -> tuple[int, int] | None:
        """Tag block scoping an ANY_TAG wildcard; None for exact tags.

        The wildcard covers this communicator's *user* tags only — wire
        tags ``[context, context + _COLLECTIVE_TAG_BASE)``.  Internal
        collective traffic lives above ``_COLLECTIVE_TAG_BASE`` within the
        same context block and must never satisfy an application wildcard
        (e.g. a neighbour already inside the next barrier).
        """
        if tag != ANY_TAG:
            return None
        return (self._context, self._context + _COLLECTIVE_TAG_BASE)

    def _context_label(self) -> str:
        """Human-readable communicator context for failure diagnostics."""
        return f"communicator context block {self._context // CONTEXT_STRIDE}"

    # -- raw point-to-point (global-rank addressed) ------------------------

    def _send_global(
        self, dest_global: int, payload: Any, tag: int
    ) -> DeliveryReceipt:
        proc = self.process
        mailbox = self._router.get(dest_global)
        if mailbox is None:
            raise ValueError(f"no such rank {dest_global} on this machine")
        plan = proc.faults
        if plan is not None:
            plan.on_send(proc)  # may raise SimulatedCrash
        if proc.copy_on_send:
            # Debug mode: snapshot the payload so later sender-side
            # mutation cannot reach the receiver (zero-copy hazard guard).
            payload = _copy.deepcopy(payload)
        with proc.span("wire"):
            nbytes = payload_nbytes(payload)
            # Sender pays injection (occupancy + wire serialization); the
            # payload becomes available one wire latency after injection
            # completes.
            proc.charge_send_injection(nbytes, self._contention)
            arrival = proc.clock + proc.cost.post_injection_latency()
            metrics = proc.metrics
            metrics.incr("messages_sent")
            metrics.incr("bytes_sent", nbytes)
            if proc.trace is not None:
                from repro.vmachine.trace import TraceEvent

                proc.trace.append(
                    TraceEvent("send", proc.clock, proc.rank, dest_global,
                               self._context + tag if tag != ANY_TAG else tag,
                               nbytes, phase=proc.phase_path)
                )
            message = Message(
                source=proc.rank,
                dest=dest_global,
                tag=self._context + tag if tag != ANY_TAG else tag,
                payload=payload,
                arrival=arrival,
                nbytes=nbytes,
            )
            rec = proc.recorder
            if rec is not None:
                # Digest before delivery: the receiver may unpack a fused
                # buffer and recycle its staging arena the moment
                # ``deliver`` returns (zero-copy transport).
                rec.pre_send(message)
            if plan is not None:
                receipt = plan.apply(proc, mailbox, message)
            else:
                mailbox.deliver(message)
                receipt = OK_RECEIPT
            if rec is not None:
                rec.on_send(message, receipt, proc.clock)
            return receipt

    def _flush_held(self, dest_global: int) -> int:
        """Deliver fault-plan-held (reordered) messages toward a peer."""
        plan = self.process.faults
        if plan is None:
            return 0
        return plan.flush_channel(self.process.rank, dest_global)

    def _recv_global(
        self, source_global: int, tag: int, timeout: float | None = None
    ) -> Any:
        proc = self.process
        plan = proc.faults
        if plan is not None:
            plan.on_recv(proc)  # may raise SimulatedCrash
        wire_tag = self._wire_tag(tag)
        msg = proc.mailbox.receive(
            source_global, wire_tag,
            timeout=timeout if timeout is not None else proc.recv_timeout_s,
            tag_range=self._tag_range(tag),
            context=self._context_label(),
        )
        _account_recv(proc, msg, wire_tag if wire_tag != ANY_TAG else msg.tag)
        return msg.payload

    def _recv_any_global(self, tag: int) -> Message:
        """Receive from any source within this endpoint's tag namespace."""
        from repro.vmachine.message import ANY_SOURCE

        proc = self.process
        plan = proc.faults
        if plan is not None:
            plan.on_recv(proc)
        wire_tag = self._wire_tag(tag)
        msg = proc.mailbox.receive(
            ANY_SOURCE, wire_tag,
            timeout=proc.recv_timeout_s, tag_range=self._tag_range(tag),
            context=self._context_label(),
        )
        _account_recv(proc, msg, wire_tag if wire_tag != ANY_TAG else msg.tag)
        return msg


class Request:
    """Handle for a nonblocking operation.

    Sends on this transport are buffered and eager, so a send request is
    complete at creation.  A receive request defers the matching: the
    payload only enters the program (and the clock only advances to the
    arrival time) at :meth:`wait` — which is exactly what makes
    computation/communication overlap visible in logical time.
    """

    __slots__ = ("_endpoint", "_source_global", "_tag", "_payload", "_done")

    def __init__(self, endpoint=None, source_global=None, tag=None, payload=None,
                 done=False):
        self._endpoint = endpoint
        self._source_global = source_global
        self._tag = tag
        self._payload = payload
        self._done = done

    def test(self) -> bool:
        """True when :meth:`wait` would not block (never charges time).

        ANY_TAG probes are scoped to the owning communicator's context
        block, so a wildcard request can never report readiness because of
        another communicator's pending traffic.
        """
        if self._done:
            return True
        ep = self._endpoint
        return _probe(
            ep.process, self._source_global, ep._wire_tag(self._tag),
            tag_range=ep._tag_range(self._tag),
        )

    def wait(self) -> Any:
        """Complete the operation; returns the payload for receives."""
        if self._done:
            return self._payload
        self._payload = self._endpoint._recv_global(self._source_global, self._tag)
        self._done = True
        return self._payload

    # -- multi-request completion (MPI_Waitany / MPI_Waitall analogue) -----

    @staticmethod
    def waitany(
        requests: list["Request"], timeout: float | None = None
    ) -> tuple[int, Any]:
        """Complete the *logically earliest* incomplete request.

        Returns ``(index, payload)`` of the completed request.  The choice
        is deterministic: among all incomplete requests' matching messages,
        the one with the smallest ``(arrival, source, tag)`` completes —
        the receiver's clock advances only to *that* message's arrival, so
        work done before the next ``waitany`` call overlaps the remaining
        messages' flight time (the latency-hiding pattern the OVERLAP
        executor policy is built on).

        Determinism is bought by physically waiting until every incomplete
        request has a matching message before choosing (wall-clock only;
        no logical charge) — callers must ensure all awaited messages are
        sent without depending on this rank's subsequent actions, which
        holds for every eager-send/receive-loop phase in this codebase.
        """
        pending = [(i, r) for i, r in enumerate(requests) if not r._done]
        if not pending:
            raise ValueError("waitany needs at least one incomplete request")
        proc = pending[0][1]._endpoint.process
        if any(r._endpoint.process is not proc for _, r in pending):
            raise ValueError("waitany requests must belong to one process")
        patterns = [
            (r._source_global, r._endpoint._wire_tag(r._tag),
             r._endpoint._tag_range(r._tag))
            for _, r in pending
        ]
        plan = proc.faults
        if plan is not None:
            plan.on_recv(proc)
        k, msg = proc.mailbox.receive_any_of(
            patterns,
            timeout=timeout if timeout is not None else proc.recv_timeout_s,
        )
        idx, req = pending[k]
        _account_recv(proc, msg, msg.tag)
        req._payload = msg.payload
        req._done = True
        return idx, msg.payload

    @staticmethod
    def waitall(requests: list["Request"]) -> list[Any]:
        """Complete every request in arrival order; payloads in list order.

        Equivalent to looping :meth:`waitany` until done: each completion
        advances the clock only as far as its own message's arrival, so
        per-message processing interleaves with the later messages' flight
        time instead of serializing behind the slowest one.
        """
        while any(not r._done for r in requests):
            Request.waitany(requests)
        return [r._payload for r in requests]


#: module-level conveniences mirroring ``MPI_Waitany`` / ``MPI_Waitall``
waitany = Request.waitany
waitall = Request.waitall


class Communicator(_Endpoint):
    """Intra-program communicator over an ordered group of global ranks.

    ``members[i]`` is the global rank of local rank ``i``.  All ranks in the
    group must construct the communicator with the same ``members`` order
    and ``context`` id (the :class:`~repro.vmachine.machine.VirtualMachine`
    and :mod:`~repro.vmachine.program` helpers guarantee this).
    """

    def __init__(
        self,
        process: Process,
        members: list[int],
        router: dict[int, Mailbox],
        context: int = 0,
        contention: float = 1.0,
    ):
        super().__init__(process, router, context, contention)
        self.members = list(members)
        if process.rank not in self.members:
            raise ValueError(
                f"process rank {process.rank} is not in communicator group {members}"
            )
        self.rank = self.members.index(process.rank)
        self.size = len(self.members)
        self._collective_seq = 0

    # -- point-to-point ----------------------------------------------------

    def send(self, dest: int, payload: Any, tag: int = 0) -> DeliveryReceipt:
        """Send ``payload`` to local rank ``dest``.

        Returns the :class:`~repro.vmachine.faults.DeliveryReceipt` from
        the (possibly fault-injected) transport; callers on a reliable
        machine can ignore it.
        """
        self._check_rank(dest)
        return self._send_global(self.members[dest], payload, tag)

    def recv(
        self, source: int, tag: int = 0, timeout: float | None = None
    ) -> Any:
        """Receive a message from local rank ``source``.

        ``timeout`` (wall-clock seconds) overrides the per-process receive
        timeout for this one operation — used by the bounded-retry
        degradation paths.
        """
        self._check_rank(source)
        return self._recv_global(self.members[source], tag, timeout=timeout)

    def peer_global(self, rank: int) -> int:
        """Global rank of group-local rank ``rank`` (diagnostics/fencing)."""
        self._check_rank(rank)
        return self.members[rank]

    def sendrecv(
        self, dest: int, payload: Any, source: int, send_tag: int = 0, recv_tag: int = 0
    ) -> Any:
        """Combined send+receive (deadlock-free pairwise exchange)."""
        self.send(dest, payload, send_tag)
        return self.recv(source, recv_tag)

    def probe(self, source: int, tag: int = 0) -> bool:
        """Non-blocking, zero-cost test for a pending matching message.

        ANY_TAG probes are confined to this communicator's context block.
        """
        self._check_rank(source)
        return _probe(
            self.process, self.members[source], self._wire_tag(tag),
            tag_range=self._tag_range(tag),
        )

    def recv_any(self, tag: int = 0) -> tuple[int, Any]:
        """Receive from *any* group member (MPI_ANY_SOURCE).

        Returns ``(source_local_rank, payload)``.  Matching is confined to
        this communicator's tag namespace — including for ANY_TAG, which
        is scoped to the context block — so wildcard receives never steal
        another communicator's traffic.
        """
        msg = self._recv_any_global(tag)
        return self.members.index(msg.source), msg.payload

    def isend(self, dest: int, payload: Any, tag: int = 0) -> Request:
        """Nonblocking send.  Buffered-eager: complete immediately."""
        self.send(dest, payload, tag)
        return Request(done=True)

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Nonblocking receive: match and charge only at ``wait()``.

        Work performed between ``irecv`` and ``wait`` overlaps the message
        flight time — the classic latency-hiding pattern the inspector/
        executor libraries of the era used.
        """
        self._check_rank(source)
        return Request(self, self.members[source], tag)

    def _check_rank(self, r: int) -> None:
        if not 0 <= r < self.size:
            raise ValueError(f"rank {r} out of range for communicator of size {self.size}")

    # -- collectives -------------------------------------------------------

    def _next_tag(self) -> int:
        self._collective_seq += 1
        return _COLLECTIVE_TAG_BASE + self._collective_seq

    def barrier(self) -> None:
        """Dissemination barrier: ceil(log2 P) rounds of pairwise messages."""
        tag = self._next_tag()
        if self.size == 1:
            return
        distance = 1
        while distance < self.size:
            dest = (self.rank + distance) % self.size
            source = (self.rank - distance) % self.size
            self.send(dest, None, tag)
            self.recv(source, tag)
            distance *= 2

    def bcast(self, payload: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast; returns the payload on every rank."""
        tag = self._next_tag()
        if self.size == 1:
            return payload
        vrank = (self.rank - root) % self.size
        # Phase 1: receive from parent (the rank that differs in my lowest
        # set bit).  The root (vrank 0) never receives and exits the loop
        # with mask = first power of two >= size.
        mask = 1
        while mask < self.size:
            if vrank & mask:
                parent = ((vrank - mask) + root) % self.size
                payload = self.recv(parent, tag)
                break
            mask <<= 1
        # Phase 2: forward to children vrank + m for each m below the bit at
        # which we received (below the tree top, for the root).
        mask >>= 1
        while mask >= 1:
            if vrank + mask < self.size:
                child = ((vrank + mask) + root) % self.size
                self.send(child, payload, tag)
            mask >>= 1
        return payload

    def gather(self, payload: Any, root: int = 0) -> list[Any] | None:
        """Gather one payload from every rank at ``root`` (rank order)."""
        tag = self._next_tag()
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = payload
            for src in range(self.size):
                if src != root:
                    out[src] = self.recv(src, tag)
            return out
        self.send(root, payload, tag)
        return None

    def allgather(self, payload: Any) -> list[Any]:
        """Gather at rank 0, then broadcast the full list."""
        gathered = self.gather(payload, root=0)
        return self.bcast(gathered, root=0)

    def scatter(self, payloads: list[Any] | None, root: int = 0) -> Any:
        """Scatter one element of ``payloads`` to each rank."""
        tag = self._next_tag()
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise ValueError("scatter root needs one payload per rank")
            for dest in range(self.size):
                if dest != root:
                    self.send(dest, payloads[dest], tag)
            return payloads[root]
        return self.recv(root, tag)

    def alltoall(self, payloads: list[Any]) -> list[Any]:
        """Pairwise-exchange all-to-all; ``payloads[i]`` goes to rank ``i``.

        ``None`` entries are still exchanged (they cost one small message);
        use :meth:`alltoall_sparse` to skip empty pairs — the distinction
        matters for the message-count accounting in the benchmarks.
        """
        if len(payloads) != self.size:
            raise ValueError("alltoall needs one payload per rank")
        tag = self._next_tag()
        result: list[Any] = [None] * self.size
        result[self.rank] = payloads[self.rank]
        for step in range(1, self.size):
            dest = (self.rank + step) % self.size
            source = (self.rank - step) % self.size
            result[source] = self.sendrecv(dest, payloads[dest], source, tag, tag)
        return result

    def alltoall_sparse(self, payloads: dict[int, Any]) -> dict[int, Any]:
        """All-to-all that only sends to ranks present in ``payloads``.

        Every rank must call it.  A preliminary allgather of destination
        sets tells each rank how many messages to expect; then only the
        non-empty pairs exchange data.  This is how Meta-Chaos data moves
        send at most one message per communicating processor pair.
        """
        dests = sorted(payloads.keys())
        for d in dests:
            self._check_rank(d)
        all_dests = self.allgather(dests)
        tag = self._next_tag()
        incoming = sorted(
            src for src, their in enumerate(all_dests) if self.rank in their
        )
        result: dict[int, Any] = {}
        # Self-delivery is free of messaging.
        if self.rank in payloads:
            result[self.rank] = payloads[self.rank]
        for d in dests:
            if d != self.rank:
                self.send(d, payloads[d], tag)
        for src in incoming:
            if src != self.rank:
                result[src] = self.recv(src, tag)
        return result

    def scan(self, value: Any, op: Callable[[Any, Any], Any]) -> Any:
        """Inclusive prefix reduction: rank r gets op-fold of ranks 0..r.

        Linear pipeline (rank r receives the prefix from r-1, folds, and
        forwards) — the latency chain is the realistic cost of a scan on
        a message-passing machine without special hardware.
        """
        tag = self._next_tag()
        acc = value
        if self.rank > 0:
            prefix = self.recv(self.rank - 1, tag)
            acc = op(prefix, value)
        if self.rank < self.size - 1:
            self.send(self.rank + 1, acc, tag)
        return acc

    def split(self, color: int, key: int | None = None) -> "Communicator":
        """Partition the communicator by ``color`` (collective).

        Ranks passing the same color form a new communicator, ordered by
        ``key`` (default: current rank).  Mirrors ``MPI_Comm_split``; used
        by applications that carve worker subsets out of a program.
        """
        if key is None:
            key = self.rank
        triples = self.allgather((color, key, self.members[self.rank]))
        mine = sorted(
            (k, g) for c, k, g in triples if c == color
        )
        members = [g for _, g in mine]
        # Deterministic, stride-aligned context block shared by the group:
        # the block *index* is a Cantor pairing of the parent's block index
        # with (color, collective epoch), offset above the small sequential
        # indices used for program/pair communicators.  Injective, so no
        # two distinct splits (or nested splits) ever share a wire-tag
        # block — which is what keeps ANY_TAG wildcards from matching
        # another communicator's traffic.  Purely arithmetic: every member
        # computes the same block with no coordination, keeping traces
        # reproducible run to run.
        parent_block = self._context // CONTEXT_STRIDE
        new_block = _SPLIT_BLOCK_BASE + _cantor_pair(
            parent_block, _cantor_pair(color + 1, self._collective_seq)
        )
        new_context = new_block * CONTEXT_STRIDE
        return Communicator(
            self.process, members, self._router,
            context=new_context, contention=self._contention,
        )

    def reduce(self, value: Any, op: Callable[[Any, Any], Any], root: int = 0) -> Any:
        """Binomial-tree reduction with a user-supplied associative ``op``.

        O(ceil(log2 P)) logical depth — the root receives ~log2(P)
        messages instead of the P-1 serialized receives of a gather-based
        reduction, so the critical path shrinks from O(P) to O(log P)
        while the total message count stays P-1 (each non-root sends
        exactly one partial).

        ``op`` must be associative (the MPI contract).  Values combine in
        virtual-rank order — ``root, root+1, ..., P-1, 0, ..., root-1`` —
        as a balanced tree over contiguous rank ranges, so the *order* of
        operands is deterministic and commutativity is not required; the
        tree *grouping* does mean non-associative floating-point effects
        can differ from a linear fold in the last bits.
        """
        tag = self._next_tag()
        if self.size == 1:
            return value
        vrank = (self.rank - root) % self.size
        acc = value
        mask = 1
        while mask < self.size:
            if vrank & mask:
                # My subtree is folded; ship it to the parent and leave.
                parent = ((vrank & ~mask) + root) % self.size
                self.send(parent, acc, tag)
                return None
            child = vrank | mask
            if child < self.size:
                # acc spans vranks [vrank, vrank+mask); the child's partial
                # spans [child, child+mask) — op order stays contiguous.
                acc = op(acc, self.recv((child + root) % self.size, tag))
            mask <<= 1
        return acc

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]) -> Any:
        """Tree reduce at rank 0, then binomial broadcast: O(log P) depth."""
        reduced = self.reduce(value, op, root=0)
        return self.bcast(reduced, root=0)


class InterComm(_Endpoint):
    """Connects the processes of two programs (local group vs remote group).

    Ranks passed to :meth:`send`/:meth:`recv` are *remote-group* local
    ranks, mirroring MPI inter-communicator semantics.
    """

    def __init__(
        self,
        process: Process,
        local_members: list[int],
        remote_members: list[int],
        router: dict[int, Mailbox],
        context: int,
        contention: float = 1.0,
    ):
        super().__init__(process, router, context, contention)
        self.local_members = list(local_members)
        self.remote_members = list(remote_members)
        if process.rank not in self.local_members:
            raise ValueError(
                f"process rank {process.rank} is not in local group {local_members}"
            )
        self.rank = self.local_members.index(process.rank)
        self.local_size = len(self.local_members)
        self.remote_size = len(self.remote_members)

    def send(
        self, dest_remote: int, payload: Any, tag: int = 0
    ) -> DeliveryReceipt:
        """Send to local rank ``dest_remote`` of the *remote* group."""
        if not 0 <= dest_remote < self.remote_size:
            raise ValueError(f"remote rank {dest_remote} out of range")
        return self._send_global(self.remote_members[dest_remote], payload, tag)

    def recv(
        self, source_remote: int, tag: int = 0, timeout: float | None = None
    ) -> Any:
        """Receive from local rank ``source_remote`` of the *remote* group."""
        if not 0 <= source_remote < self.remote_size:
            raise ValueError(f"remote rank {source_remote} out of range")
        return self._recv_global(
            self.remote_members[source_remote], tag, timeout=timeout
        )

    def peer_global(self, rank: int) -> int:
        """Global rank of remote-group local rank ``rank``."""
        if not 0 <= rank < self.remote_size:
            raise ValueError(f"remote rank {rank} out of range")
        return self.remote_members[rank]

    def irecv(self, source_remote: int, tag: int = 0) -> Request:
        """Nonblocking receive from the remote group (match at ``wait()``).

        Composes with :func:`waitany`/:func:`waitall` exactly like
        intra-communicator requests, which is what lets the OVERLAP
        executor complete cross-program messages in arrival order.
        """
        if not 0 <= source_remote < self.remote_size:
            raise ValueError(f"remote rank {source_remote} out of range")
        return Request(self, self.remote_members[source_remote], tag)

    def recv_any(self, tag: int = 0) -> tuple[int, Any]:
        """Receive from *any* remote-group member (MPI_ANY_SOURCE).

        Returns ``(source_remote_local_rank, payload)``.  Matching is
        scoped to this inter-communicator's context block, so the
        wildcard can only complete traffic addressed through it (only
        remote-group members send on this context toward this process).
        """
        msg = self._recv_any_global(tag)
        return self.remote_members.index(msg.source), msg.payload

    def probe(self, source_remote: int, tag: int = 0) -> bool:
        """Non-blocking, zero-cost test for a pending remote-group message."""
        if not 0 <= source_remote < self.remote_size:
            raise ValueError(f"remote rank {source_remote} out of range")
        return _probe(
            self.process, self.remote_members[source_remote],
            self._wire_tag(tag), tag_range=self._tag_range(tag),
        )
