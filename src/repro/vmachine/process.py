"""Virtual processor context.

Each SPMD rank executes in its own thread with a :class:`Process` object as
its identity: global rank, logical clock, mailbox, cost model and phase
timer.  Library code retrieves the ambient process via
:func:`current_process`, so application kernels read like ordinary SPMD
code (``comm.rank``, ``comm.send(...)``) without threading machinery
leaking through.
"""

from __future__ import annotations

import os
import threading
from typing import Any

from repro.observe.metrics import MetricsRegistry
from repro.observe.spans import span_on
from repro.vmachine.cost_model import CostModel
from repro.vmachine.message import Mailbox, PackArena
from repro.vmachine.timing import PhaseTimer

__all__ = ["Process", "current_process", "default_recv_timeout_s"]

_tls = threading.local()

#: hard-coded fallback for the per-receive wall-clock timeout (seconds)
_DEFAULT_RECV_TIMEOUT_S = 120.0


def default_recv_timeout_s() -> float:
    """The default receive timeout: ``REPRO_RECV_TIMEOUT_S`` env var when
    set (seconds), else 120 s.  Evaluated per run so tests can tweak it."""
    raw = os.environ.get("REPRO_RECV_TIMEOUT_S")
    if raw:
        try:
            return float(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_RECV_TIMEOUT_S={raw!r} is not a number"
            ) from None
    return _DEFAULT_RECV_TIMEOUT_S


def current_process() -> "Process":
    """The :class:`Process` bound to the calling thread.

    Raises ``RuntimeError`` outside of a :class:`~repro.vmachine.machine.
    VirtualMachine` run — catching accidental use of distributed APIs from
    the driving (host) thread.
    """
    proc = getattr(_tls, "process", None)
    if proc is None:
        raise RuntimeError(
            "no virtual process bound to this thread; distributed calls are "
            "only valid inside VirtualMachine.run()"
        )
    return proc


class Process:
    """State of one virtual processor.

    The *logical clock* (``self.clock``, seconds) is the process's notion of
    elapsed time.  All charges go through :meth:`charge`/:meth:`advance_to`
    so the phase timer sees a consistent view.
    """

    def __init__(self, rank: int, nprocs: int, cost_model: CostModel):
        self.rank = rank
        self.nprocs = nprocs
        self.cost = cost_model
        self.clock = 0.0
        self.mailbox = Mailbox(rank)
        self.timer = PhaseTimer(lambda: self.clock)
        #: per-rank observability state: named counters (always on) plus
        #: opt-in cost-term attribution of every clock advance
        self.metrics = MetricsRegistry()
        #: free-form per-rank scratch for application code
        self.env: dict[str, Any] = {}
        #: message trace (list of TraceEvent) when tracing is enabled
        self.trace: list | None = None
        #: open-span name stack (always maintained; labels events/terms)
        self._span_stack: list[str] = []
        #: closed-span log (list of SpanRecord) when observing is enabled
        self.spans: list | None = None
        #: per-receive wall-clock timeout (configurable per VirtualMachine
        #: or via the REPRO_RECV_TIMEOUT_S environment variable)
        self.recv_timeout_s: float = default_recv_timeout_s()
        #: debug mode: deep-copy payloads at send time (catches the
        #: mutate-after-send hazard of the zero-copy transport)
        self.copy_on_send: bool = False
        #: clock-slowdown factor applied to every charge (fault injection)
        self.slowdown: float = 1.0
        #: installed FaultPlan (None = perfectly reliable transport)
        self.faults = None
        #: attached RankRecorder (None = not recording); hooks are plain
        #: appends on this rank's own thread and charge zero clock time
        self.recorder = None
        #: pooled pack/unpack staging buffers (counters mirror into
        #: ``self.metrics``; see :class:`~repro.vmachine.message.PackArena`)
        self.arena = PackArena(self.metrics)

    # -- observability -----------------------------------------------------

    @property
    def stats(self) -> dict[str, float]:
        """Counter view (name → number), kept for the historical dict API.

        Backed by :attr:`metrics` — ``proc.stats["messages_sent"] += 1``
        and ``proc.metrics.incr("messages_sent")`` hit the same storage.
        """
        return self.metrics.counters

    def span(self, name: str):
        """Open a zero-clock-charge phase span (context manager).

        Everything executed inside carries ``name`` as its phase: trace
        events record it, cost-term attribution buckets by it, and (when
        observing) a :class:`~repro.observe.spans.SpanRecord` is logged
        at exit for the Perfetto exporter.  Never charges the clock.
        """
        return span_on(self, name)

    @property
    def phase(self) -> str:
        """Innermost open span name ("" outside any span)."""
        stack = self._span_stack
        return stack[-1] if stack else ""

    @property
    def phase_path(self) -> str:
        """Full open-span path, e.g. ``"copy:execute/wire"``."""
        return "/".join(self._span_stack)

    def enable_observability(self) -> None:
        """Turn on span logging and cost-term attribution (idempotent).

        Pure bookkeeping — the logical clock trajectory is unchanged (the
        tables-byte-identity CI guard holds this to the last bit).
        """
        if self.spans is None:
            self.spans = []
        self.metrics.attributing = True

    # -- clock management --------------------------------------------------

    def charge(self, seconds: float, term: str = "other") -> None:
        """Advance the logical clock by a cost-model duration.

        A fault-plan ``slowdown`` factor scales every charge: a straggling
        rank's compute *and* messaging overheads take proportionally
        longer, which is exactly how a slow node manifests to its peers.

        ``term`` names the analytical cost-model term this charge belongs
        to (see :data:`~repro.observe.metrics.COST_TERMS`); when the rank
        is attributing, the *exact* clock delta is recorded under
        ``(current phase, term)`` so the metrics sum reproduces the clock.
        """
        if seconds < 0:
            raise ValueError(f"negative charge {seconds}")
        metrics = self.metrics
        if not metrics.attributing:
            self.clock += seconds * self.slowdown
            return
        before = self.clock
        self.clock += seconds * self.slowdown
        metrics.add_term(self.phase, term, self.clock - before)

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute logical time ``t`` (no-op if
        already past it) — used when a receive waits for a message that has
        not yet 'arrived' in logical time.  The gap is the receiver-side
        latency the model calls ``alpha``."""
        if t > self.clock:
            metrics = self.metrics
            if metrics.attributing:
                metrics.add_term(self.phase, "alpha", t - self.clock)
            self.clock = t

    def charge_send_injection(self, nbytes: int, contention: float) -> None:
        """Charge one message's sender-side injection occupancy.

        Exactly ``charge(cost.send_occupancy(nbytes, contention))`` on
        the clock — the single-charge expression is preserved so clocks
        stay byte-identical — but the attributed delta is split into its
        ``beta`` (wire serialization, ``nbytes / bandwidth``) and
        ``occupancy`` (fixed ``o_send``) components.
        """
        seconds = self.cost.send_occupancy(nbytes, contention)
        metrics = self.metrics
        if not metrics.attributing:
            self.clock += seconds * self.slowdown
            return
        before = self.clock
        self.clock += seconds * self.slowdown
        delta = self.clock - before
        beta = min(
            delta,
            (contention * nbytes / self.cost.profile.bandwidth) * self.slowdown,
        )
        phase = self.phase
        metrics.add_term(phase, "beta", beta)
        metrics.add_term(phase, "occupancy", delta - beta)

    # -- convenience charge helpers ---------------------------------------

    def charge_flops(self, n: float) -> None:
        self.charge(self.cost.flops(n), term="per_element")

    def charge_mem(self, nbytes: float) -> None:
        self.charge(self.cost.mem(nbytes), term="per_element")

    def charge_deref_irregular(self, nelems: float) -> None:
        self.charge(self.cost.deref_irregular(nelems), term="per_element")

    def charge_deref_regular(self, nelems: float) -> None:
        self.charge(self.cost.deref_regular(nelems), term="per_element")

    def charge_hash(self, nrefs: float) -> None:
        self.charge(self.cost.hash_refs(nrefs), term="per_element")

    def charge_pack(self, nelems: float) -> None:
        self.charge(self.cost.pack(nelems), term="per_element")

    def charge_locate(self, nruns: float, nelems: float) -> None:
        self.charge(self.cost.locate(nruns, nelems), term="per_element")

    def charge_startup(self) -> None:
        self.charge(self.cost.startup(), term="occupancy")

    # -- thread binding ----------------------------------------------------

    def bind(self) -> None:
        _tls.process = self

    def unbind(self) -> None:
        _tls.process = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process(rank={self.rank}/{self.nprocs}, clock={self.clock * 1e3:.3f}ms)"
