"""Analytical cost model for the virtual parallel machine.

The model is LogGP-flavoured.  Each rank owns a logical clock (seconds).
Primitive charges:

``send``
    Sender pays a fixed CPU overhead ``o_send`` per message.  The message
    *arrives* at ``sender_clock + alpha + nbytes / bandwidth`` — latency plus
    serialization of the payload on the wire.

``recv``
    Receiver pays ``o_recv`` after the arrival time.

``compute``
    Per-element work: floating point (``gamma_flop``), memory traffic for
    packing/copying (``gamma_byte``), and the translation-table dereference
    cost ``deref`` that dominates Chaos-style schedule building (paper
    section 5.1: "The cost of the schedule computation for Chaos is
    dominated by the calls to the Chaos dereference function").

Machine profiles calibrate the constants so that the logical-clock results
land in the same regime as the paper's tables.  Absolute agreement is not a
goal (the paper measured real 1996 hardware); *shape* agreement is — who
wins, scaling with processor count, cooperation-vs-duplication ratios.

Profiles
--------
:data:`IBM_SP2`
    The 16-node SP2 used for Tables 1-5 (MPL transport, high per-element
    dereference cost on POWER2 CPUs, ~35 MB/s sustained point-to-point).

:data:`ALPHA_FARM_ATM`
    The 8-node, 4-way SMP DEC Alpha farm connected via OC-3 ATM used for the
    client/server experiments (Figures 10-15).  The ATM link is shared by
    the processes of one node, so this profile carries a per-node link
    contention factor.
"""

from __future__ import annotations

import dataclasses
import math

__all__ = ["MachineProfile", "CostModel", "IBM_SP2", "ALPHA_FARM_ATM"]


@dataclasses.dataclass(frozen=True)
class MachineProfile:
    """Primitive rates of one machine configuration.

    All times are in seconds; ``bandwidth`` is bytes/second.
    """

    name: str
    #: per-message wire latency (seconds)
    alpha: float
    #: point-to-point bandwidth (bytes/second)
    bandwidth: float
    #: per-message sender CPU overhead
    o_send: float
    #: per-message receiver CPU overhead
    o_recv: float
    #: per floating-point operation
    gamma_flop: float
    #: per byte of local memory traffic (packing, copying, unpacking)
    gamma_byte: float
    #: per-element dereference through a Chaos-style translation table
    deref: float
    #: per-reference hashing/deduplication cost in Chaos-style inspectors
    hash_ref: float
    #: per-element cost of a regular (closed-form) distribution dereference
    deref_regular: float
    #: per-element cost of gather/scatter through an offset list (pack,
    #: unpack, indirection-array access) — dominates data-copy time
    pack_per_elem: float
    #: per-run cost of closed-form section/block intersection (the cheap
    #: "locate my elements" path of the regular libraries)
    locate_run: float
    #: per-element bookkeeping while expanding located runs
    locate_elem: float
    #: fixed cost of starting any schedule/collective operation
    startup: float
    #: processors per SMP node (for link-contention modelling); 1 = no SMP
    procs_per_node: int = 1
    #: if true, processes on one node share the node's network link
    shared_node_link: bool = False

    def contention_factor(self, nprocs: int) -> float:
        """Bandwidth-division factor for ``nprocs`` processes on this machine.

        On the Alpha farm, up to four processes share each node's single ATM
        adapter, so effective per-process bandwidth shrinks once more than
        one process is placed per node.  On the SP2 each CPU owns its switch
        adapter and there is no sharing.
        """
        if not self.shared_node_link or nprocs <= 0:
            return 1.0
        per_node = math.ceil(nprocs / max(1, math.ceil(nprocs / self.procs_per_node)))
        return float(max(1, per_node))


# Calibrated so Tables 1-5 land in the paper's regime (hundreds of ms for
# 64k-point schedule builds, tens of ms for megabyte-scale copies).
IBM_SP2 = MachineProfile(
    name="IBM-SP2/MPL",
    alpha=40e-6,
    bandwidth=35e6,
    o_send=30e-6,
    o_recv=30e-6,
    gamma_flop=15e-9,
    gamma_byte=9e-9,
    deref=30e-6,
    hash_ref=1.5e-6,
    deref_regular=50e-9,
    pack_per_elem=350e-9,
    locate_run=2e-6,
    locate_elem=10e-9,
    startup=250e-6,
)

ALPHA_FARM_ATM = MachineProfile(
    name="DEC-Alpha-farm/ATM",
    alpha=400e-6,
    bandwidth=14e6,
    o_send=80e-6,
    o_recv=80e-6,
    # Scalar Fortran/HPF-compiled flop rate (~6 Mflop/s): calibrated so a
    # sequential 512x512 matvec costs ~90 ms, which reproduces both the
    # ~4.5x twenty-vector server speedup (Fig. 13) and the ~2-vector
    # break-even (Fig. 15).
    gamma_flop=170e-9,
    gamma_byte=6e-9,
    deref=20e-6,
    hash_ref=1.0e-6,
    deref_regular=40e-9,
    pack_per_elem=250e-9,
    locate_run=2e-6,
    locate_elem=8e-9,
    startup=600e-6,
    procs_per_node=4,
    shared_node_link=True,
)


class CostModel:
    """Stateless charge calculator bound to a :class:`MachineProfile`.

    The :class:`~repro.vmachine.process.Process` applies the returned charges
    to its logical clock; this class only computes durations, which keeps the
    model easy to unit-test in isolation.
    """

    def __init__(self, profile: MachineProfile):
        self.profile = profile

    # -- messaging ---------------------------------------------------------
    #
    # LogGP split: the sender is *occupied* for o_send plus the payload's
    # link-injection time (nbytes/bandwidth, scaled by node-link
    # contention) — a one-process client really does serialize a 2 MB
    # matrix through its own adapter.  The message then arrives one wire
    # latency after injection completes; the receiver pays o_recv plus a
    # small per-byte drain.

    def send_occupancy(self, nbytes: int, contention: float = 1.0) -> float:
        """Sender-side time to inject one message into the network."""
        p = self.profile
        return p.o_send + contention * nbytes / p.bandwidth

    def post_injection_latency(self) -> float:
        """Wire latency from injection completion to availability."""
        return self.profile.alpha

    def recv_overhead(self, nbytes: int) -> float:
        """CPU time the receiver spends draining one message."""
        p = self.profile
        return p.o_recv + nbytes * p.gamma_byte * 0.25

    # Backwards-compatible composite view used by tests/analyses:

    def send_overhead(self, nbytes: int) -> float:
        """Sender occupancy at unit contention (compatibility alias)."""
        return self.send_occupancy(nbytes, 1.0)

    def wire_time(self, nbytes: int, contention: float = 1.0) -> float:
        """Total sender-clock-to-availability time of one message."""
        p = self.profile
        return p.alpha + contention * nbytes / p.bandwidth

    # -- local work --------------------------------------------------------

    def flops(self, n: float) -> float:
        """Time for ``n`` floating point operations."""
        return n * self.profile.gamma_flop

    def mem(self, nbytes: float) -> float:
        """Time to stream ``nbytes`` through memory (pack/unpack/copy)."""
        return nbytes * self.profile.gamma_byte

    def deref_irregular(self, nelems: float) -> float:
        """Time for ``nelems`` translation-table dereferences (Chaos-style)."""
        return nelems * self.profile.deref

    def deref_regular(self, nelems: float) -> float:
        """Time for ``nelems`` closed-form (block arithmetic) dereferences."""
        return nelems * self.profile.deref_regular

    def hash_refs(self, nrefs: float) -> float:
        """Time to hash/deduplicate ``nrefs`` indirection references."""
        return nrefs * self.profile.hash_ref

    def pack(self, nelems: float) -> float:
        """Time to gather/scatter ``nelems`` elements through an offset list."""
        return nelems * self.profile.pack_per_elem

    def locate(self, nruns: float, nelems: float) -> float:
        """Time to locate locally-owned elements via closed-form
        intersection producing ``nruns`` runs over ``nelems`` elements."""
        return nruns * self.profile.locate_run + nelems * self.profile.locate_elem

    def startup(self) -> float:
        """Fixed cost charged at the start of a schedule/collective op."""
        return self.profile.startup
