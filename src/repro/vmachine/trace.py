"""Message tracing and communication analysis.

Pass ``trace=True`` to :class:`~repro.vmachine.machine.VirtualMachine` (or
``repro.vmachine.program.run_programs``) and every rank records a
:class:`TraceEvent` per message send/receive, with logical timestamps and
receive wait times.  The helpers here turn those event streams into the
communication summaries performance work actually uses:

- :func:`message_matrix` — bytes (or message counts) per (source,
  destination) rank pair;
- :func:`rank_activity` — per-rank busy vs. blocked-receiving time;
- :func:`format_timeline` — compact text timeline for debugging
  choreography problems (who waited on whom, when).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TraceEvent", "message_matrix", "rank_activity", "format_timeline"]


@dataclass(frozen=True)
class TraceEvent:
    """One message endpoint event on one rank."""

    kind: str       # "send" | "recv"
    time: float     # logical clock after the operation completed
    rank: int       # the rank recording the event
    peer: int       # global rank of the other endpoint
    tag: int
    nbytes: int
    #: for "recv": logical seconds spent blocked before the message arrived
    wait: float = 0.0


def message_matrix(
    traces: list[list[TraceEvent]], what: str = "bytes"
) -> np.ndarray:
    """P x P matrix of traffic from sends: entry [s, d].

    ``what`` is ``"bytes"`` or ``"count"``.
    """
    nprocs = len(traces)
    out = np.zeros((nprocs, nprocs), dtype=np.int64)
    for events in traces:
        for e in events:
            if e.kind == "send":
                out[e.rank, e.peer] += e.nbytes if what == "bytes" else 1
    return out


def rank_activity(
    traces: list[list[TraceEvent]], clocks: list[float]
) -> list[dict[str, float]]:
    """Per-rank time budget: total, blocked-in-receive, and busy seconds."""
    out = []
    for events, total in zip(traces, clocks):
        waited = sum(e.wait for e in events if e.kind == "recv")
        out.append(
            {
                "total": total,
                "blocked": waited,
                "busy": max(0.0, total - waited),
                "messages_sent": float(sum(1 for e in events if e.kind == "send")),
                "messages_received": float(
                    sum(1 for e in events if e.kind == "recv")
                ),
            }
        )
    return out


def format_timeline(
    traces: list[list[TraceEvent]], limit: int = 40, unit: float = 1e-3
) -> str:
    """Merge all ranks' events into one time-ordered text log.

    ``unit`` scales timestamps (default: milliseconds).  Long traces are
    truncated to the first ``limit`` events (communication bugs are
    almost always visible at the start).
    """
    merged = sorted(
        (e for events in traces for e in events), key=lambda e: (e.time, e.rank)
    )
    lines = []
    for e in merged[:limit]:
        if e.kind == "send":
            arrow = f"{e.rank} -> {e.peer}"
            extra = ""
        else:
            arrow = f"{e.rank} <- {e.peer}"
            extra = f" (waited {e.wait / unit:.3f})" if e.wait > 0 else ""
        lines.append(
            f"{e.time / unit:10.3f}  {e.kind:<4} {arrow:>9}  "
            f"tag={e.tag & 0xFFFF:<6} {e.nbytes:>8} B{extra}"
        )
    if len(merged) > limit:
        lines.append(f"... {len(merged) - limit} more events")
    return "\n".join(lines)
