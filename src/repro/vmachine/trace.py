"""Message tracing and communication analysis.

Pass ``trace=True`` to :class:`~repro.vmachine.machine.VirtualMachine` (or
``repro.vmachine.program.run_programs``) and every rank records a
:class:`TraceEvent` per message send/receive, with logical timestamps and
receive wait times.  Fault injection (:mod:`repro.vmachine.faults`) and
the fused-plan executor (:mod:`repro.core.plan`) ride the same stream
with kind-prefixed events (``fault:drop``, ``fault:dup``, ...,
``plan:fuse``) that are *not* message endpoints — the analysis helpers
here treat only ``"send"``/``"recv"`` as messages and render everything
else on its own line form.

The helpers turn event streams into the communication summaries
performance work actually uses:

- :func:`message_matrix` — bytes (or message counts) per (source,
  destination) rank pair;
- :func:`rank_activity` — per-rank busy vs. blocked-receiving time
  (non-message kinds are ignored so fault/plan events cannot skew the
  budgets);
- :func:`format_timeline` — compact text timeline for debugging
  choreography problems (who waited on whom, when).

Tags are rendered as ``context_block:user_tag`` (see :func:`format_tag`):
a wire tag is ``context + user_tag`` with one context block per
communicator, and split communicators derive Cantor-paired block indices
that do not survive naive low-bit truncation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "TraceEvent",
    "MESSAGE_KINDS",
    "format_tag",
    "event_to_tuple",
    "event_from_tuple",
    "message_matrix",
    "rank_activity",
    "format_timeline",
]

#: event kinds that are message endpoints (everything else — ``fault:*``,
#: ``plan:fuse`` — is an annotation riding the stream)
MESSAGE_KINDS = ("send", "recv")


@dataclass(frozen=True)
class TraceEvent:
    """One traced event on one rank.

    ``"send"``/``"recv"`` are message endpoints; other kinds
    (``fault:*``, ``plan:fuse``) annotate the stream and must not be
    counted as traffic.
    """

    kind: str       # "send" | "recv" | "fault:*" | "plan:fuse" | ...
    time: float     # logical clock after the operation completed
    rank: int       # the rank recording the event
    peer: int       # global rank of the other endpoint
    tag: int
    nbytes: int
    #: for "recv": logical seconds spent blocked before the message arrived
    wait: float = 0.0
    #: enclosing span path when the event was recorded ("" outside spans)
    phase: str = ""


def event_to_tuple(e: TraceEvent) -> list:
    """Flatten a :class:`TraceEvent` for JSON serialization.

    Field order is fixed — ``[kind, time, rank, peer, tag, nbytes, wait,
    phase]`` — and every field round-trips exactly through JSON (floats
    via shortest-repr, arbitrary-size tag ints natively), so serialized
    traces compare byte-for-byte across record and replay.
    """
    return [e.kind, e.time, e.rank, e.peer, e.tag, e.nbytes, e.wait, e.phase]


def event_from_tuple(t: list | tuple) -> TraceEvent:
    """Inverse of :func:`event_to_tuple` (works for every event kind)."""
    kind, time, rank, peer, tag, nbytes, wait, phase = t
    return TraceEvent(kind, time, rank, peer, tag, nbytes, wait, phase)


def format_tag(tag: int) -> str:
    """Render a wire tag as ``context_block:user_tag``.

    Wire tags are ``context + user_tag`` where ``context`` is a multiple
    of :data:`~repro.vmachine.comm.CONTEXT_STRIDE`; split communicators
    use large Cantor-paired block indices, so truncating with ``& 0xFFFF``
    aliases distinct communicators.  Negative tags (``ANY_TAG``) render
    as-is.
    """
    from repro.vmachine.comm import CONTEXT_STRIDE

    if tag < 0:
        return str(tag)
    return f"{tag // CONTEXT_STRIDE}:{tag % CONTEXT_STRIDE}"


def message_matrix(
    traces: list[list[TraceEvent]], what: str = "bytes"
) -> np.ndarray:
    """P x P matrix of traffic from sends: entry [s, d].

    ``what`` is ``"bytes"`` or ``"count"``.  Only ``"send"`` endpoints
    contribute; annotation kinds never count as traffic.
    """
    nprocs = len(traces)
    out = np.zeros((nprocs, nprocs), dtype=np.int64)
    for events in traces:
        for e in events:
            if e.kind == "send":
                out[e.rank, e.peer] += e.nbytes if what == "bytes" else 1
    return out


def rank_activity(
    traces: list[list[TraceEvent]], clocks: list[float]
) -> list[dict[str, float]]:
    """Per-rank time budget: total, blocked-in-receive, and busy seconds.

    Hardened against mixed streams: only ``"recv"`` events contribute
    blocked time and only message kinds are tallied as traffic, so
    ``fault:*`` / ``plan:fuse`` annotations (whatever their fields carry)
    cannot skew the busy/blocked budgets.  Their count is surfaced
    separately as ``other_events``.
    """
    out = []
    for events, total in zip(traces, clocks):
        waited = sum(e.wait for e in events if e.kind == "recv")
        out.append(
            {
                "total": total,
                "blocked": waited,
                "busy": max(0.0, total - waited),
                "messages_sent": float(sum(1 for e in events if e.kind == "send")),
                "messages_received": float(
                    sum(1 for e in events if e.kind == "recv")
                ),
                "other_events": float(
                    sum(1 for e in events if e.kind not in MESSAGE_KINDS)
                ),
            }
        )
    return out


def format_timeline(
    traces: list[list[TraceEvent]], limit: int = 40, unit: float = 1e-3
) -> str:
    """Merge all ranks' events into one time-ordered text log.

    ``unit`` scales timestamps (default: milliseconds).  Long traces are
    truncated to the first ``limit`` events (communication bugs are
    almost always visible at the start).  Message endpoints render as
    directional arrows (``s -> d`` / ``d <- s``); annotation kinds
    (``fault:*``, ``plan:fuse``) get their own line form — an ``@ rank``
    marker with the affected peer — instead of a bogus receive arrow.
    """
    merged = sorted(
        (e for events in traces for e in events), key=lambda e: (e.time, e.rank)
    )
    lines = []
    for e in merged[:limit]:
        tag = format_tag(e.tag)
        if e.kind == "send":
            lines.append(
                f"{e.time / unit:10.3f}  {e.kind:<4} {e.rank} -> {e.peer:<4}  "
                f"tag={tag:<9} {e.nbytes:>8} B"
            )
        elif e.kind == "recv":
            extra = f" (waited {e.wait / unit:.3f})" if e.wait > 0 else ""
            lines.append(
                f"{e.time / unit:10.3f}  {e.kind:<4} {e.rank} <- {e.peer:<4}  "
                f"tag={tag:<9} {e.nbytes:>8} B{extra}"
            )
        else:
            where = f" [{e.phase}]" if e.phase else ""
            lines.append(
                f"{e.time / unit:10.3f}  {e.kind} @ rank {e.rank} "
                f"(peer {e.peer})  tag={tag} {e.nbytes} B{where}"
            )
    if len(merged) > limit:
        lines.append(f"... {len(merged) - limit} more events")
    return "\n".join(lines)
