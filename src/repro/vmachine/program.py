"""Multiple programs on one virtual machine.

The paper's sections 5.2 and 5.4 run *two separately written programs* on
disjoint processor sets (a regular-mesh program and an irregular-mesh
program; an HPF compute server and a Parti client) that exchange data only
through Meta-Chaos.  :func:`run_programs` reproduces that setting: each
:class:`ProgramSpec` gets its own contiguous block of global ranks, a
private intra-program :class:`~repro.vmachine.comm.Communicator`, and an
:class:`~repro.vmachine.comm.InterComm` to every other program.
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.vmachine.comm import Communicator, InterComm
from repro.vmachine.cost_model import CostModel, IBM_SP2, MachineProfile
from repro.vmachine.faults import FailureDetector, FaultPlan
from repro.vmachine.machine import (
    CONTEXT_STRIDE,
    RankError,
    SPMDError,
    SPMDResult,
    _env_truthy,
)
from repro.vmachine.message import Mailbox
from repro.vmachine.process import Process

__all__ = ["ProgramSpec", "ProgramContext", "CoupledResult", "run_programs"]


@dataclass
class ProgramSpec:
    """One program of a coupled run.

    ``fn`` is called once per rank of the program as
    ``fn(ctx, *args, **kwargs)`` with a :class:`ProgramContext`.
    """

    name: str
    nprocs: int
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)


class ProgramContext:
    """Per-rank view of a coupled run.

    Attributes
    ----------
    program:
        This program's name.
    comm:
        Intra-program communicator (rank/size are program-local).
    intercomms:
        Mapping of peer program name to the :class:`InterComm` reaching it.
    """

    def __init__(
        self,
        program: str,
        comm: Communicator,
        intercomms: dict[str, InterComm],
    ):
        self.program = program
        self.comm = comm
        self.intercomms = intercomms

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    def peer(self, name: str) -> InterComm:
        """The inter-communicator to program ``name``."""
        try:
            return self.intercomms[name]
        except KeyError:
            raise KeyError(
                f"program {self.program!r} has no peer {name!r}; "
                f"peers: {sorted(self.intercomms)}"
            ) from None


@dataclass
class CoupledResult:
    """Per-program results of a coupled run."""

    programs: dict[str, SPMDResult]

    def __getitem__(self, name: str) -> SPMDResult:
        return self.programs[name]

    @property
    def elapsed_ms(self) -> float:
        return max(r.elapsed_ms for r in self.programs.values())


def run_programs(
    specs: list[ProgramSpec],
    profile: MachineProfile = IBM_SP2,
    trace: bool = False,
    recv_timeout_s: float | None = None,
    copy_on_send: bool | None = None,
    faults: FaultPlan | None = None,
    observe: bool | None = None,
    recorder=None,
) -> CoupledResult:
    """Run several programs concurrently on disjoint processor sets.

    Global ranks are assigned contiguously in spec order.  The inter-program
    network uses the same cost profile as the intra-program network (on the
    SP2 both are the switch; on the Alpha farm both are the ATM fabric).

    ``recv_timeout_s``, ``copy_on_send``, ``faults``, ``observe`` and
    ``recorder`` mirror the :class:`~repro.vmachine.machine.VirtualMachine`
    parameters; a :class:`~repro.vmachine.faults.FaultPlan` crash event
    may name a whole program (``rank="program:<name>"``) and is expanded
    to that program's global ranks here.  Recorded artifacts index ranks
    *globally* (spec-order blocks), which is also how the single-rank
    isolation replayer addresses them.
    """
    if not specs:
        raise ValueError("need at least one program")
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate program names in {names}")

    total = sum(s.nprocs for s in specs)
    cost_model = CostModel(profile)
    detector = FailureDetector()
    processes = [Process(r, total, cost_model) for r in range(total)]
    router: dict[int, Mailbox] = {p.rank: p.mailbox for p in processes}
    copy_flag = (
        _env_truthy("REPRO_COPY_ON_SEND") if copy_on_send is None
        else copy_on_send
    )
    observe_flag = (
        _env_truthy("REPRO_OBSERVE") if observe is None else observe
    )
    if recorder is None and _env_truthy("REPRO_RECORD"):
        from repro.replay.recorder import Recorder

        recorder = Recorder()
    for p in processes:
        detector.register(p.mailbox)
        if recv_timeout_s is not None:
            p.recv_timeout_s = recv_timeout_s
        p.copy_on_send = copy_flag
        if trace or observe_flag or recorder is not None:
            p.trace = []
        if observe_flag:
            p.enable_observability()
        if recorder is not None:
            p.recorder = recorder.rank_recorder(p.rank)

    # Contiguous global-rank blocks per program.
    blocks: dict[str, list[int]] = {}
    base = 0
    for s in specs:
        if s.nprocs < 1:
            raise ValueError(f"program {s.name!r} needs at least one processor")
        blocks[s.name] = list(range(base, base + s.nprocs))
        base += s.nprocs

    if faults is not None:
        faults.resolve_program_crashes(blocks)
        for p in processes:
            p.faults = faults
            p.slowdown = faults.slowdown_for(p.rank)

    # Deterministic context ids: one per communicator, spec order.
    contexts: dict[str, int] = {
        s.name: (i + 1) * CONTEXT_STRIDE for i, s in enumerate(specs)
    }
    pair_contexts: dict[tuple[str, str], int] = {}
    next_ctx = (len(specs) + 1) * CONTEXT_STRIDE
    for i, a in enumerate(specs):
        for b in specs[i + 1 :]:
            pair_contexts[(a.name, b.name)] = next_ctx
            pair_contexts[(b.name, a.name)] = next_ctx
            next_ctx += CONTEXT_STRIDE

    # Contention is per program: coupled programs run on *disjoint* node
    # sets (the paper allocates the client and server their own nodes), so
    # each program's node-link sharing depends on its own process count.
    contentions = {s.name: profile.contention_factor(s.nprocs) for s in specs}
    values: dict[str, list[Any]] = {s.name: [None] * s.nprocs for s in specs}
    errors: list[RankError] = []
    errors_lock = threading.Lock()

    def worker(spec: ProgramSpec, proc: Process, local_rank: int) -> None:
        proc.bind()
        try:
            comm = Communicator(
                proc,
                blocks[spec.name],
                router,
                context=contexts[spec.name],
                contention=contentions[spec.name],
            )
            intercomms = {
                other.name: InterComm(
                    proc,
                    blocks[spec.name],
                    blocks[other.name],
                    router,
                    context=pair_contexts[(spec.name, other.name)],
                    # The sender's own node link is the modelled bottleneck.
                    contention=contentions[spec.name],
                )
                for other in specs
                if other.name != spec.name
            }
            ctx = ProgramContext(spec.name, comm, intercomms)
            values[spec.name][local_rank] = spec.fn(ctx, *spec.args, **spec.kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported to host
            with errors_lock:
                errors.append(RankError(proc.rank, exc, traceback.format_exc()))
            # Graceful degradation: targeted dead-rank marking (see
            # VirtualMachine.run) — the surviving program's blocked
            # receives surface RankLostError with diagnostics, which the
            # coupling layer upgrades to PeerLostError.
            detector.mark_dead(proc.rank, f"{type(exc).__name__}: {exc}")
        finally:
            proc.unbind()

    threads: list[threading.Thread] = []
    for spec in specs:
        for local_rank, grank in enumerate(blocks[spec.name]):
            threads.append(
                threading.Thread(
                    target=worker,
                    args=(spec, processes[grank], local_rank),
                    name=f"{spec.name}-{local_rank}",
                    daemon=True,
                )
            )
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    # Replay provenance: global-rank-ordered views (spec-order blocks).
    def _global_values() -> list[Any]:
        flat: list[Any] = [None] * total
        for spec in specs:
            for local_rank, grank in enumerate(blocks[spec.name]):
                flat[grank] = values[spec.name][local_rank]
        return flat

    def _finalize_recording(error=None) -> None:
        if recorder is None:
            return
        recorder.finalize(
            kind="programs",
            config={
                "nprocs": total,
                "profile": profile.name,
                "programs": [[s.name, s.nprocs] for s in specs],
                "recv_timeout_s": recv_timeout_s,
                "copy_on_send": copy_flag,
                "observe": bool(observe_flag),
                "workload": None,
            },
            fault_plan_dict=faultplan_to_dict(faults),
            clocks=[p.clock for p in processes],
            traces=[p.trace if p.trace is not None else [] for p in processes],
            values=_global_values(),
            error=error,
        )

    from repro.replay.artifact import faultplan_to_dict
    from repro.replay.fingerprint import replay_handle

    handle = replay_handle(
        total, profile.name, faultplan_to_dict(faults),
        programs=[(s.name, s.nprocs) for s in specs],
    )

    if errors:
        errors.sort(key=lambda e: e.rank)
        err = SPMDError(errors)
        err.replay_handle = handle
        _finalize_recording(error=err)
        raise err

    _finalize_recording()

    results: dict[str, SPMDResult] = {}
    for spec in specs:
        granks = blocks[spec.name]
        results[spec.name] = SPMDResult(
            values=values[spec.name],
            clocks=[processes[g].clock for g in granks],
            timings=[processes[g].timer.report for g in granks],
            stats=[processes[g].stats for g in granks],
            traces=[
                processes[g].trace if processes[g].trace is not None else []
                for g in granks
            ],
            metrics=[processes[g].metrics.snapshot() for g in granks],
            spans=[
                processes[g].spans if processes[g].spans is not None else []
                for g in granks
            ],
            replay=handle,
        )
    return CoupledResult(programs=results)
