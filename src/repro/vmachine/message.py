"""Messages and per-rank mailboxes.

A :class:`Mailbox` is the receive side of one virtual processor.  Senders
append :class:`Message` envelopes; the receiver blocks until a message
matching ``(source, tag)`` is available.  Matching supports the usual MPI
wildcards (:data:`ANY_SOURCE`, :data:`ANY_TAG`) and preserves pairwise FIFO
order: two messages from the same source with the same tag are received in
the order they were sent.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "Mailbox", "payload_nbytes"]

ANY_SOURCE = -1
ANY_TAG = -1


def payload_nbytes(payload: Any) -> int:
    """Best-effort size in bytes of a message payload.

    NumPy arrays report their buffer size; tuples/lists/dicts are sized
    recursively; everything else is charged a small fixed envelope.  The
    size feeds the cost model only — it does not have to be exact, just
    monotone in the real data volume.
    """
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (tuple, list)):
        return 8 + sum(payload_nbytes(item) for item in payload)
    if isinstance(payload, dict):
        return 8 + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items()
        )
    if isinstance(payload, (int, float, bool)) or payload is None:
        return 8
    if isinstance(payload, str):
        return len(payload)
    # Opaque object: charge an envelope. Schedules and descriptors define
    # their own nbytes property so they do not land here.
    return 64


@dataclass
class Message:
    """One in-flight message envelope."""

    source: int
    dest: int
    tag: int
    payload: Any
    #: logical time at which the payload is available at the receiver
    arrival: float
    #: payload size used for cost accounting
    nbytes: int = field(default=0)

    def matches(self, source: int, tag: int) -> bool:
        return (source == ANY_SOURCE or source == self.source) and (
            tag == ANY_TAG or tag == self.tag
        )


class Mailbox:
    """Blocking, condition-variable based receive queue for one rank."""

    def __init__(self, rank: int):
        self.rank = rank
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._messages: deque[Message] = deque()
        self._closed = False

    def deliver(self, message: Message) -> None:
        """Called by the sender thread to enqueue a message."""
        with self._cond:
            if self._closed:
                raise RuntimeError(
                    f"mailbox of rank {self.rank} is closed; "
                    f"late message from rank {message.source}"
                )
            self._messages.append(message)
            self._cond.notify_all()

    def receive(self, source: int, tag: int, timeout: float | None = None) -> Message:
        """Block until a message matching ``(source, tag)`` arrives.

        Raises ``TimeoutError`` after ``timeout`` wall-clock seconds, which
        turns an SPMD deadlock into a diagnosable test failure instead of a
        hung process.
        """
        with self._cond:
            while True:
                for i, msg in enumerate(self._messages):
                    if msg.matches(source, tag):
                        del self._messages[i]
                        return msg
                if self._closed:
                    raise RuntimeError(
                        f"rank {self.rank}: receive(source={source}, tag={tag}) "
                        "on a closed mailbox"
                    )
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError(
                        f"rank {self.rank}: receive(source={source}, tag={tag}) "
                        f"timed out after {timeout}s "
                        f"({len(self._messages)} unmatched message(s) pending)"
                    )

    def probe(self, source: int, tag: int) -> bool:
        """Non-blocking test for a matching pending message."""
        with self._lock:
            return any(m.matches(source, tag) for m in self._messages)

    def pending(self) -> int:
        """Number of undelivered messages (used by leak checks in tests)."""
        with self._lock:
            return len(self._messages)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
