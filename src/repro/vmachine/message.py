"""Messages, per-rank mailboxes, and the pooled pack-buffer arena.

A :class:`Mailbox` is the receive side of one virtual processor.  Senders
append :class:`Message` envelopes; the receiver blocks until a message
matching ``(source, tag)`` is available.  Matching supports the usual MPI
wildcards (:data:`ANY_SOURCE`, :data:`ANY_TAG`) and preserves pairwise FIFO
order: two messages from the same source with the same tag are received in
the order they were sent.

:class:`PackArena` is each rank's pool of message *staging* buffers
(pack/unpack scratch for the fused-plan executor in
:mod:`repro.core.plan`): size-class reuse so iterative loops stop
allocating a fresh buffer per message per timestep.  Buffers are leased
at send time and returned by the *receiver* once it has unpacked the
payload — safe on this zero-copy transport because each fused buffer has
exactly one receiver, and by the time ``release()`` runs nobody else
holds a live reference.  Checkout/release never charges the logical
clock, so arena behaviour (hit or miss) can never perturb a run's
timing determinism; the counters are wall-clock-truthful observability
only.

Failure behaviour: a mailbox may carry a reference to the run's
:class:`~repro.vmachine.faults.FailureDetector`.  A receive blocked on a
*specific* source that the detector knows to be dead raises
:class:`~repro.vmachine.faults.RankLostError` immediately (with a dump of
the undelivered envelopes) instead of waiting out the receive timeout —
this is what turns a crashed peer into a structured, diagnosable error
rather than a 120-second hang.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "ArenaLease",
    "Message",
    "Mailbox",
    "PackArena",
    "payload_nbytes",
]

ANY_SOURCE = -1
ANY_TAG = -1


def payload_nbytes(payload: Any) -> int:
    """Best-effort size in bytes of a message payload.

    Buffer-like objects (NumPy arrays and scalars, ``memoryview``) report
    their buffer size via ``.nbytes``; strings are charged their encoded
    UTF-8 length (what would actually cross the wire, not the code-point
    count); tuples/lists/dicts are sized recursively; everything else is
    charged a small fixed envelope.  The size feeds the cost model only —
    it does not have to be exact, just monotone in the real data volume.

    The ``.nbytes`` probe is restricted to genuinely buffer-like types up
    front; for opaque objects it is honored only when the attribute is a
    plain non-negative integer.  Schedules and descriptors define exactly
    such an ``nbytes`` property, so they stay precisely charged, while an
    arbitrary object whose ``nbytes`` is a method, a dtype quirk, or
    otherwise not a byte count falls back to the fixed envelope instead
    of crashing or mischarging — and a container subclass carrying a
    stray ``nbytes`` attribute is still sized by its contents.
    """
    if isinstance(payload, (np.ndarray, np.generic, memoryview)):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        # len() *is* the byte count for these.
        return len(payload)
    if isinstance(payload, (tuple, list)):
        return 8 + sum(payload_nbytes(item) for item in payload)
    if isinstance(payload, dict):
        return 8 + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items()
        )
    if isinstance(payload, (int, float, bool)) or payload is None:
        return 8
    if isinstance(payload, str):
        # Encoded size, not len(): non-ASCII text serializes to more than
        # one byte per code point (ASCII is unchanged, so historical
        # logical clocks are unaffected).
        return len(payload.encode("utf-8"))
    nbytes = getattr(payload, "nbytes", None)
    if (
        isinstance(nbytes, (int, np.integer))
        and not isinstance(nbytes, bool)
        and nbytes >= 0
    ):
        return int(nbytes)
    # Opaque object with no usable size: charge an envelope.
    return 64


@dataclass
class Message:
    """One in-flight message envelope."""

    source: int
    dest: int
    tag: int
    payload: Any
    #: logical time at which the payload is available at the receiver
    arrival: float
    #: payload size used for cost accounting
    nbytes: int = field(default=0)

    def matches(
        self,
        source: int,
        tag: int,
        tag_range: tuple[int, int] | None = None,
    ) -> bool:
        """Does this message match ``(source, tag)``?

        ``tag_range`` scopes an :data:`ANY_TAG` wildcard to the half-open
        wire-tag interval ``[lo, hi)`` — the caller's communicator context
        block — so a wildcard receive or probe can never match another
        communicator's traffic.  Ignored for exact tags.
        """
        if source != ANY_SOURCE and source != self.source:
            return False
        if tag == ANY_TAG:
            return tag_range is None or tag_range[0] <= self.tag < tag_range[1]
        return tag == self.tag

    def clone(self) -> "Message":
        """Shallow duplicate (same payload reference) — used by the fault
        layer's duplicate injection; the network copies bytes, not the
        application object graph."""
        return Message(
            source=self.source,
            dest=self.dest,
            tag=self.tag,
            payload=self.payload,
            arrival=self.arrival,
            nbytes=self.nbytes,
        )


class Mailbox:
    """Blocking, condition-variable based receive queue for one rank."""

    def __init__(self, rank: int):
        self.rank = rank
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._messages: deque[Message] = deque()
        self._closed = False
        #: run-wide failure detector (set by VirtualMachine/run_programs)
        self.detector = None

    def deliver(self, message: Message) -> None:
        """Called by the sender thread to enqueue a message."""
        with self._cond:
            if self._closed:
                raise RuntimeError(
                    f"mailbox of rank {self.rank} is closed; "
                    f"late message from rank {message.source}"
                )
            self._messages.append(message)
            self._cond.notify_all()

    def deliver_many(self, messages: list[Message]) -> None:
        """Atomically enqueue several messages (single lock acquisition).

        The fault layer uses this so a duplicate is never observable
        without its original, and a flushed (reordered) batch keeps its
        chosen order — both properties the reliable layer's deterministic
        drain depends on.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError(
                    f"mailbox of rank {self.rank} is closed; "
                    f"late message batch of {len(messages)}"
                )
            self._messages.extend(messages)
            self._cond.notify_all()

    def wake(self) -> None:
        """Wake all blocked receivers so they re-check failure state."""
        with self._cond:
            self._cond.notify_all()

    # -- failure / diagnostic helpers (call with lock held) ----------------

    def _pending_summary(self) -> list[tuple[int, int, int]]:
        return [(m.source, m.tag, m.nbytes) for m in self._messages]

    def _format_pending(self, limit: int = 8) -> str:
        pend = self._pending_summary()
        if not pend:
            return "no undelivered envelopes pending"
        shown = ", ".join(
            f"(src={s}, tag={t & 0xFFFF}, {n}B)" for s, t, n in pend[:limit]
        )
        more = f" ... and {len(pend) - limit} more" if len(pend) > limit else ""
        return f"{len(pend)} undelivered envelope(s): {shown}{more}"

    def _check_lost(self, source: int) -> None:
        """Raise RankLostError if ``source`` is known dead (lock held)."""
        det = self.detector
        if det is None or source == ANY_SOURCE:
            return
        reason = det.dead_reason(source)
        if reason is not None:
            from repro.vmachine.faults import RankLostError

            raise RankLostError(
                self.rank, source, reason, pending=self._pending_summary()
            )

    def receive(
        self,
        source: int,
        tag: int,
        timeout: float | None = None,
        tag_range: tuple[int, int] | None = None,
        context: str | None = None,
    ) -> Message:
        """Block until a message matching ``(source, tag)`` arrives.

        ``tag_range`` scopes :data:`ANY_TAG` wildcards to one communicator's
        wire-tag block (see :meth:`Message.matches`).  ``context`` is an
        optional human-readable description of the waiting operation
        (communicator context), included in failure diagnostics.

        Raises ``TimeoutError`` after ``timeout`` wall-clock seconds
        (measured against a deadline, so spurious wakeups do not extend
        the wait), which turns an SPMD deadlock into a diagnosable test
        failure instead of a hung process; raises
        :class:`~repro.vmachine.faults.RankLostError` as soon as the
        awaited source is marked dead.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                for i, msg in enumerate(self._messages):
                    if msg.matches(source, tag, tag_range):
                        del self._messages[i]
                        return msg
                if self._closed:
                    raise RuntimeError(
                        f"rank {self.rank}: receive(source={source}, tag={tag}) "
                        "on a closed mailbox"
                    )
                self._check_lost(source)
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(self._timeout_text(source, tag, timeout,
                                                          context))
                self._cond.wait(timeout=remaining)

    def _timeout_text(
        self, source: int, tag: int, timeout: float | None, context: str | None
    ) -> str:
        where = f" in {context}" if context else ""
        return (
            f"rank {self.rank}: receive(source={source}, "
            f"tag={tag if tag == ANY_TAG else tag & 0xFFFF}){where} "
            f"timed out after {timeout}s; {self._format_pending()}"
        )

    def receive_any_of(
        self,
        patterns: list[tuple[int, int, tuple[int, int] | None]],
        timeout: float | None = None,
        context: str | None = None,
    ) -> tuple[int, Message]:
        """Wait-any over several ``(source, tag, tag_range)`` patterns.

        Blocks (wall-clock) until **every** pattern has at least one
        matching message physically delivered, then removes and returns
        ``(pattern_index, message)`` for the candidate with the earliest
        *logical* arrival time (ties broken by ``(source, tag)``; messages
        from the same source+tag keep pairwise FIFO order).

        Waiting for the full candidate set before choosing is what makes
        arrival-order completion *deterministic*: the pick depends only on
        logical arrival times, never on host thread scheduling.  The
        physical wait costs no logical time — completing the earliest
        message advances the clock only to that message's arrival.
        Callers must therefore only use it when every pattern's message is
        already in flight or will be sent without depending on this rank's
        subsequent actions (true for all Meta-Chaos executor phases, where
        sends are injected eagerly before the receive loop starts).

        Raises :class:`~repro.vmachine.faults.RankLostError` when an
        unmatched pattern's exact source is known dead — that pattern can
        never complete.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                claimed: set[int] = set()
                candidates: list[tuple[float, int, int, int, int]] = []
                complete = True
                unmatched_sources: list[int] = []
                for k, (source, tag, tag_range) in enumerate(patterns):
                    found = False
                    for i, msg in enumerate(self._messages):
                        if i in claimed:
                            continue
                        if msg.matches(source, tag, tag_range):
                            # (arrival, source, tag) is a deterministic key;
                            # deque index i only resolves same-pair FIFO.
                            candidates.append(
                                (msg.arrival, msg.source, msg.tag, i, k)
                            )
                            claimed.add(i)
                            found = True
                            break
                    if not found:
                        complete = False
                        unmatched_sources.append(source)
                if complete:
                    arrival, src, tg, i, k = min(
                        candidates, key=lambda c: (c[0], c[1], c[2])
                    )
                    msg = self._messages[i]
                    del self._messages[i]
                    return k, msg
                if self._closed:
                    raise RuntimeError(
                        f"rank {self.rank}: receive_any_of on a closed mailbox"
                    )
                for source in unmatched_sources:
                    self._check_lost(source)
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    where = f" in {context}" if context else ""
                    raise TimeoutError(
                        f"rank {self.rank}: receive_any_of over "
                        f"{len(patterns)} pattern(s){where} timed out after "
                        f"{timeout}s; still unmatched sources "
                        f"{unmatched_sources}; {self._format_pending()}"
                    )
                self._cond.wait(timeout=remaining)

    def probe(
        self,
        source: int,
        tag: int,
        tag_range: tuple[int, int] | None = None,
    ) -> bool:
        """Non-blocking test for a matching pending message."""
        with self._lock:
            return any(m.matches(source, tag, tag_range) for m in self._messages)

    def pending(self) -> int:
        """Number of undelivered messages (used by leak checks in tests)."""
        with self._lock:
            return len(self._messages)

    def pending_summary(self) -> list[tuple[int, int, int]]:
        """Snapshot of undelivered envelopes as ``(source, tag, nbytes)``."""
        with self._lock:
            return self._pending_summary()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()


# ---------------------------------------------------------------------------
# pooled pack-buffer arena
# ---------------------------------------------------------------------------

#: smallest pooled buffer (bytes); sub-minimum requests round up to this
ARENA_MIN_CLASS = 256


class ArenaLease:
    """One checked-out staging buffer.

    ``buffer`` is a 1-D ``uint8`` array of the size class's capacity
    (>= the requested bytes; slice it to the payload length).  Call
    :meth:`release` exactly when no live reference to the bytes remains —
    for a fused data message, that is the moment the receiver has
    unpacked every segment.  ``release`` is idempotent and thread-safe
    (the receiver's thread returns the buffer to the *sender's* arena).
    A lease from a bypassed checkout (``pooled=False``) releases to
    nowhere: the buffer is ordinary garbage-collected storage.
    """

    __slots__ = ("buffer", "_arena", "_released")

    def __init__(self, buffer: np.ndarray, arena: "PackArena | None"):
        self.buffer = buffer
        self._arena = arena
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        if self._arena is not None:
            self._arena._give_back(self.buffer)


class PackArena:
    """Per-rank, size-class pool of message staging buffers.

    Capacities are powers of two (>= :data:`ARENA_MIN_CLASS`); a checkout
    reuses the most recently released buffer of the class when one is
    free (LIFO — the cache-warm buffer) and allocates otherwise.

    Counters (mirrored into the owning process's ``stats`` dict so they
    surface in :meth:`~repro.vmachine.machine.SPMDResult.total_stat`):

    - ``arena_hits`` / ``arena_misses`` — checkouts served from the pool
      vs freshly allocated;
    - ``arena_bytes_reused`` — capacity bytes served from the pool;
    - ``arena_high_water_bytes`` — largest total capacity ever owned
      (pooled + outstanding), the arena's memory footprint ceiling;
    - ``arena_bypass`` — checkouts that skipped pooling (see below).

    The ``copy_on_send`` escape hatch: when the process runs in
    copy-on-send debug mode, the transport deep-copies every payload at
    send time — the receiver then unpacks a *private copy* and its
    ``release()`` must not recycle a buffer the pool never really
    controlled (the deep copy severs the lease).  Callers therefore pass
    ``pooled=False`` (the fused executor passes
    ``not process.copy_on_send``), turning the checkout into a plain
    allocation with a no-op release.
    """

    def __init__(self, stats: Any = None):
        self._lock = threading.Lock()
        self._free: dict[int, list[np.ndarray]] = {}
        # Accepts a plain dict (historical/tests) or a
        # :class:`~repro.observe.metrics.MetricsRegistry` (the process
        # passes its registry; the arena writes the registry's counter
        # storage directly so `proc.stats` and `proc.metrics` agree).
        counters = getattr(stats, "counters", None)
        if counters is not None:
            self._stats = counters
        else:
            self._stats = stats if stats is not None else {}
        self._owned_bytes = 0  # total capacity: pooled + outstanding

    @staticmethod
    def size_class(nbytes: int) -> int:
        """Smallest power-of-two capacity >= ``nbytes`` (floored at
        :data:`ARENA_MIN_CLASS`)."""
        if nbytes < 0:
            raise ValueError(f"negative buffer size {nbytes}")
        cls = ARENA_MIN_CLASS
        while cls < nbytes:
            cls <<= 1
        return cls

    def _bump(self, key: str, amount: float = 1) -> None:
        self._stats[key] = self._stats.get(key, 0) + amount

    def checkout(self, nbytes: int, pooled: bool = True) -> ArenaLease:
        """Lease a staging buffer of capacity >= ``nbytes``.

        Never charges logical time.  ``pooled=False`` is the escape
        hatch: a fresh, unpooled allocation whose release is a no-op.
        """
        cls = self.size_class(nbytes)
        if not pooled:
            self._bump("arena_bypass")
            return ArenaLease(np.empty(cls, dtype=np.uint8), None)
        with self._lock:
            bucket = self._free.get(cls)
            if bucket:
                buf = bucket.pop()
                self._bump("arena_hits")
                self._bump("arena_bytes_reused", cls)
                return ArenaLease(buf, self)
            self._bump("arena_misses")
            self._owned_bytes += cls
            high = self._stats.get("arena_high_water_bytes", 0)
            if self._owned_bytes > high:
                self._stats["arena_high_water_bytes"] = self._owned_bytes
        return ArenaLease(np.empty(cls, dtype=np.uint8), self)

    def _give_back(self, buffer: np.ndarray) -> None:
        with self._lock:
            self._free.setdefault(len(buffer), []).append(buffer)

    # -- introspection (tests / diagnostics) -------------------------------

    @property
    def pooled_bytes(self) -> int:
        """Capacity currently sitting free in the pool."""
        with self._lock:
            return sum(cls * len(b) for cls, b in self._free.items())

    @property
    def owned_bytes(self) -> int:
        """Total capacity this arena has allocated and still tracks."""
        with self._lock:
            return self._owned_bytes
