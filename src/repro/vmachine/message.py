"""Messages and per-rank mailboxes.

A :class:`Mailbox` is the receive side of one virtual processor.  Senders
append :class:`Message` envelopes; the receiver blocks until a message
matching ``(source, tag)`` is available.  Matching supports the usual MPI
wildcards (:data:`ANY_SOURCE`, :data:`ANY_TAG`) and preserves pairwise FIFO
order: two messages from the same source with the same tag are received in
the order they were sent.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "Mailbox", "payload_nbytes"]

ANY_SOURCE = -1
ANY_TAG = -1


def payload_nbytes(payload: Any) -> int:
    """Best-effort size in bytes of a message payload.

    NumPy arrays report their buffer size; tuples/lists/dicts are sized
    recursively; everything else is charged a small fixed envelope.  The
    size feeds the cost model only — it does not have to be exact, just
    monotone in the real data volume.
    """
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (tuple, list)):
        return 8 + sum(payload_nbytes(item) for item in payload)
    if isinstance(payload, dict):
        return 8 + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items()
        )
    if isinstance(payload, (int, float, bool)) or payload is None:
        return 8
    if isinstance(payload, str):
        return len(payload)
    # Opaque object: charge an envelope. Schedules and descriptors define
    # their own nbytes property so they do not land here.
    return 64


@dataclass
class Message:
    """One in-flight message envelope."""

    source: int
    dest: int
    tag: int
    payload: Any
    #: logical time at which the payload is available at the receiver
    arrival: float
    #: payload size used for cost accounting
    nbytes: int = field(default=0)

    def matches(
        self,
        source: int,
        tag: int,
        tag_range: tuple[int, int] | None = None,
    ) -> bool:
        """Does this message match ``(source, tag)``?

        ``tag_range`` scopes an :data:`ANY_TAG` wildcard to the half-open
        wire-tag interval ``[lo, hi)`` — the caller's communicator context
        block — so a wildcard receive or probe can never match another
        communicator's traffic.  Ignored for exact tags.
        """
        if source != ANY_SOURCE and source != self.source:
            return False
        if tag == ANY_TAG:
            return tag_range is None or tag_range[0] <= self.tag < tag_range[1]
        return tag == self.tag


class Mailbox:
    """Blocking, condition-variable based receive queue for one rank."""

    def __init__(self, rank: int):
        self.rank = rank
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._messages: deque[Message] = deque()
        self._closed = False

    def deliver(self, message: Message) -> None:
        """Called by the sender thread to enqueue a message."""
        with self._cond:
            if self._closed:
                raise RuntimeError(
                    f"mailbox of rank {self.rank} is closed; "
                    f"late message from rank {message.source}"
                )
            self._messages.append(message)
            self._cond.notify_all()

    def receive(
        self,
        source: int,
        tag: int,
        timeout: float | None = None,
        tag_range: tuple[int, int] | None = None,
    ) -> Message:
        """Block until a message matching ``(source, tag)`` arrives.

        ``tag_range`` scopes :data:`ANY_TAG` wildcards to one communicator's
        wire-tag block (see :meth:`Message.matches`).  Raises
        ``TimeoutError`` after ``timeout`` wall-clock seconds, which turns
        an SPMD deadlock into a diagnosable test failure instead of a hung
        process.
        """
        with self._cond:
            while True:
                for i, msg in enumerate(self._messages):
                    if msg.matches(source, tag, tag_range):
                        del self._messages[i]
                        return msg
                if self._closed:
                    raise RuntimeError(
                        f"rank {self.rank}: receive(source={source}, tag={tag}) "
                        "on a closed mailbox"
                    )
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError(
                        f"rank {self.rank}: receive(source={source}, tag={tag}) "
                        f"timed out after {timeout}s "
                        f"({len(self._messages)} unmatched message(s) pending)"
                    )

    def receive_any_of(
        self,
        patterns: list[tuple[int, int, tuple[int, int] | None]],
        timeout: float | None = None,
    ) -> tuple[int, Message]:
        """Wait-any over several ``(source, tag, tag_range)`` patterns.

        Blocks (wall-clock) until **every** pattern has at least one
        matching message physically delivered, then removes and returns
        ``(pattern_index, message)`` for the candidate with the earliest
        *logical* arrival time (ties broken by ``(source, tag)``; messages
        from the same source+tag keep pairwise FIFO order).

        Waiting for the full candidate set before choosing is what makes
        arrival-order completion *deterministic*: the pick depends only on
        logical arrival times, never on host thread scheduling.  The
        physical wait costs no logical time — completing the earliest
        message advances the clock only to that message's arrival.
        Callers must therefore only use it when every pattern's message is
        already in flight or will be sent without depending on this rank's
        subsequent actions (true for all Meta-Chaos executor phases, where
        sends are injected eagerly before the receive loop starts).
        """
        with self._cond:
            while True:
                claimed: set[int] = set()
                candidates: list[tuple[float, int, int, int, int]] = []
                complete = True
                for k, (source, tag, tag_range) in enumerate(patterns):
                    found = False
                    for i, msg in enumerate(self._messages):
                        if i in claimed:
                            continue
                        if msg.matches(source, tag, tag_range):
                            # (arrival, source, tag) is a deterministic key;
                            # deque index i only resolves same-pair FIFO.
                            candidates.append(
                                (msg.arrival, msg.source, msg.tag, i, k)
                            )
                            claimed.add(i)
                            found = True
                            break
                    if not found:
                        complete = False
                        break
                if complete:
                    arrival, src, tg, i, k = min(
                        candidates, key=lambda c: (c[0], c[1], c[2])
                    )
                    msg = self._messages[i]
                    del self._messages[i]
                    return k, msg
                if self._closed:
                    raise RuntimeError(
                        f"rank {self.rank}: receive_any_of on a closed mailbox"
                    )
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError(
                        f"rank {self.rank}: receive_any_of over "
                        f"{len(patterns)} pattern(s) timed out after {timeout}s "
                        f"({len(self._messages)} unmatched message(s) pending)"
                    )

    def probe(
        self,
        source: int,
        tag: int,
        tag_range: tuple[int, int] | None = None,
    ) -> bool:
        """Non-blocking test for a matching pending message."""
        with self._lock:
            return any(m.matches(source, tag, tag_range) for m in self._messages)

    def pending(self) -> int:
        """Number of undelivered messages (used by leak checks in tests)."""
        with self._lock:
            return len(self._messages)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
