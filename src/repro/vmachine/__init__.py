"""Virtual distributed-memory parallel machine.

This subpackage is the hardware/transport substrate for the reproduction.
The paper ran on a 16-node IBM SP2 (MPL message passing) and an 8-node DEC
Alpha farm connected by an ATM switch (PVM / UDP).  Neither is available, so
we substitute a *virtual machine*: every virtual processor ("rank") runs the
SPMD program in its own thread with a private address space, exchanging data
only through an explicit message-passing :class:`Communicator`.

Times reported by the virtual machine are **logical-clock** times: each rank
carries a clock that advances according to a LogGP-style analytical cost
model (:mod:`repro.vmachine.cost_model`).  A message sent at sender-clock
``t`` with ``n`` payload bytes becomes available to the receiver at
``t + alpha + n/bandwidth``; local work charges per-element/per-byte costs.
This makes the reported times deterministic and hardware independent while
preserving exactly the quantities the paper's evaluation depends on:
message counts, message sizes and per-element processing work.

The transport is perfectly reliable by default.  A seeded
:class:`FaultPlan` (``VirtualMachine(faults=...)``) turns it into the
paper's Alpha-farm UDP fabric — dropping, duplicating, reordering,
delaying and corrupting messages deterministically — and the opt-in
:class:`Reliability` layer implements the ack/retransmit protocol that
makes data moves correct on top of it, with every control message charged
by the same cost model.
"""

from repro.vmachine.cost_model import CostModel, MachineProfile, IBM_SP2, ALPHA_FARM_ATM
from repro.vmachine.message import Message, Mailbox, ANY_SOURCE, ANY_TAG, payload_nbytes
from repro.vmachine.process import Process, current_process, default_recv_timeout_s
from repro.vmachine.comm import Communicator, InterComm, Request, waitall, waitany
from repro.vmachine.machine import VirtualMachine, RankError, SPMDError
from repro.vmachine.program import ProgramSpec, run_programs, CoupledResult
from repro.vmachine.timing import PhaseTimer, TimingReport, merge_timings
from repro.vmachine.trace import (
    MESSAGE_KINDS,
    TraceEvent,
    format_tag,
    format_timeline,
    message_matrix,
    rank_activity,
)
from repro.vmachine.faults import (
    CrashEvent,
    DeliveryReceipt,
    FailureDetector,
    FaultPlan,
    FaultRates,
    FaultRule,
    PeerLostError,
    RankLostError,
    SimulatedCrash,
    tag_class,
)
from repro.vmachine.reliability import Reliability, ReliabilityConfig
from repro.vmachine.window import Window, RMAHandle, TAG_RMA_BASE, ACCUMULATE_OPS

__all__ = [
    "CostModel",
    "MachineProfile",
    "IBM_SP2",
    "ALPHA_FARM_ATM",
    "Message",
    "Mailbox",
    "ANY_SOURCE",
    "ANY_TAG",
    "Process",
    "current_process",
    "Communicator",
    "Request",
    "InterComm",
    "waitany",
    "waitall",
    "VirtualMachine",
    "RankError",
    "SPMDError",
    "ProgramSpec",
    "run_programs",
    "CoupledResult",
    "PhaseTimer",
    "TimingReport",
    "merge_timings",
    "TraceEvent",
    "MESSAGE_KINDS",
    "format_tag",
    "message_matrix",
    "rank_activity",
    "format_timeline",
    "payload_nbytes",
    "default_recv_timeout_s",
    "FaultPlan",
    "FaultRates",
    "FaultRule",
    "CrashEvent",
    "DeliveryReceipt",
    "FailureDetector",
    "RankLostError",
    "PeerLostError",
    "SimulatedCrash",
    "tag_class",
    "Reliability",
    "ReliabilityConfig",
    "Window",
    "RMAHandle",
    "TAG_RMA_BASE",
    "ACCUMULATE_OPS",
]
