"""Seeded, deterministic fault injection for the virtual transport.

The paper's DEC Alpha farm experiments ran Meta-Chaos over PVM **on UDP
over ATM** (§5) — an unreliable datagram transport — while the SP2 runs
used MPL's reliable messaging.  The virtual machine historically modelled
only the reliable case: every :meth:`~repro.vmachine.message.Mailbox.
deliver` succeeded, and a lost peer turned into a 120-second hang.

This module supplies the missing machinery:

:class:`FaultPlan`
    A *seeded* description of network misbehaviour.  Per
    ``(src, dst, tag-class)`` it can **drop**, **duplicate**, **reorder**
    (hold a message back so a later one overtakes it), **delay** (inflate
    the logical arrival time) and **corrupt** (the envelope fails its
    checksum at the receiving NIC and is discarded) messages at
    configurable rates, plus slow individual ranks down and **crash**
    ranks or whole peer programs mid-run.  Every decision is drawn from a
    per-channel ``random.Random`` seeded by ``(seed, src, dst)``, so the
    same seed replays the same faults — and the same trace — every run.

:class:`FailureDetector`
    Shared run-wide registry of dead ranks.  When a rank dies (simulated
    crash or real exception) it is marked dead and every mailbox is woken;
    a receive blocked on a dead source raises :class:`RankLostError` with
    per-rank diagnostics instead of hanging until the receive timeout.

Error hierarchy
---------------
``RankLostError``
    A specific remote *rank* is known dead (or exhausted its retransmit
    budget) while this rank needed a message from it.  Carries the
    observing rank, the lost rank, the reason, and a dump of the
    observer's undelivered mailbox envelopes.

``PeerLostError``
    Subclass raised by the coupling layer when the lost rank belongs to a
    *peer program* of a coupled run (:mod:`repro.core.coupling`), adding
    the peer program's name.

All fault events are visible in traces (``TraceEvent.kind`` =
``"fault:drop"``, ``"fault:dup"``, ``"fault:hold"``, ``"fault:delay"``,
``"fault:corrupt"``) and in per-rank stats (``faults_dropped`` etc.), so
chaos runs are replayable *and* auditable.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.vmachine.message import Mailbox, Message
    from repro.vmachine.process import Process

__all__ = [
    "FaultRates",
    "FaultRule",
    "CrashEvent",
    "FaultPlan",
    "DeliveryReceipt",
    "FailureDetector",
    "RankLostError",
    "PeerLostError",
    "SimulatedCrash",
    "tag_class",
]

# Tag-block layout (mirrors repro.vmachine.comm / repro.core.universe /
# repro.vmachine.reliability — kept numeric here to avoid import cycles):
_CONTEXT_STRIDE = 1 << 32          # comm.CONTEXT_STRIDE
_COLLECTIVE_BASE = 1 << 24         # comm._COLLECTIVE_TAG_BASE
_REL_ACK_BIT = 1 << 23             # reliability ack/control envelopes
_REL_DATA_BIT = 1 << 22            # reliability data envelopes
_TAG_SCHED_SRCINFO = 1 << 20       # universe.TAG_SCHED_SRCINFO
_TAG_SCHED_PIECES = (1 << 20) + 1  # universe.TAG_SCHED_PIECES
_TAG_DATA = (1 << 20) + 2          # universe.TAG_DATA
_TAG_DESCRIPTOR = (1 << 20) + 3    # universe.TAG_DESCRIPTOR
_TAG_RMA_BASE = 3 << 20            # window.TAG_RMA_BASE (one-sided block)


def tag_class(wire_tag: int) -> str:
    """Classify a wire tag into a fault-targeting class.

    Classes:

    - ``"collective"`` — internal collective traffic (barrier/bcast/...)
    - ``"control"``    — reliability acks / control envelopes
    - ``"data"``       — application data-move payloads (bare ``TAG_DATA``
      or a reliability data envelope wrapping it)
    - ``"sched"``      — schedule-construction exchanges (descriptors,
      ownership pieces)
    - ``"rma"``        — one-sided window traffic (put/get/accumulate
      envelopes and get responses, :mod:`repro.vmachine.window`)
    - ``"user"``       — everything else (application point-to-point)

    Reliability *data* envelopes inherit the class of the tag they wrap,
    so a plan targeting ``"data"`` (or ``"rma"``) faults the same logical
    traffic whether or not the reliable layer is interposed.
    """
    offset = wire_tag % _CONTEXT_STRIDE
    if offset >= _COLLECTIVE_BASE:
        return "collective"
    if offset & _REL_ACK_BIT:
        return "control"
    if offset & _REL_DATA_BIT:
        return tag_class(offset ^ _REL_DATA_BIT)
    if offset == _TAG_DATA:
        return "data"
    if offset in (_TAG_SCHED_SRCINFO, _TAG_SCHED_PIECES, _TAG_DESCRIPTOR):
        return "sched"
    if _TAG_RMA_BASE <= offset < _REL_DATA_BIT:
        return "rma"
    return "user"


@dataclass(frozen=True)
class FaultRates:
    """Per-message fault probabilities for one matched channel class.

    Rates are independent draws per message, in precedence order
    ``drop`` → ``corrupt`` → ``reorder`` (hold) → deliver.  ``dup`` and
    ``delay`` are orthogonal extras applied to *delivered* messages.
    """

    drop: float = 0.0
    dup: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0
    corrupt: float = 0.0
    #: uniform range of extra logical arrival latency for delayed messages
    delay_range_s: tuple[float, float] = (1e-4, 2e-3)

    def __post_init__(self) -> None:
        for name in ("drop", "dup", "reorder", "delay", "corrupt"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} rate {v} outside [0, 1]")

    @property
    def any_active(self) -> bool:
        return any(
            getattr(self, n) > 0.0
            for n in ("drop", "dup", "reorder", "delay", "corrupt")
        )


@dataclass(frozen=True)
class FaultRule:
    """One targeting rule: rates applied to matching ``(src, dst, class)``.

    ``src``/``dst`` are global ranks (``None`` = any).  ``classes`` is the
    set of :func:`tag_class` values the rule covers; the default targets
    only the data plane, leaving schedule construction and collectives on
    the (reliable) control transport — mirroring the paper's split between
    the MPL/reliable setup phase and the UDP data path.
    """

    rates: FaultRates
    src: int | None = None
    dst: int | None = None
    classes: tuple[str, ...] = ("data",)

    def matches(self, src: int, dst: int, klass: str) -> bool:
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return klass in self.classes


@dataclass(frozen=True)
class CrashEvent:
    """Deterministic simulated crash of one rank.

    The rank raises :class:`SimulatedCrash` at its first send after it has
    completed ``after_sends`` sends (or its first receive after
    ``after_receives`` receives, or the first transport operation once its
    logical clock reaches ``at_time_s``).  ``rank`` is a global rank, or a
    ``"program:<name>"`` string resolved to every rank of that program by
    :func:`repro.vmachine.program.run_programs`.
    """

    rank: int | str
    after_sends: int | None = None
    after_receives: int | None = None
    at_time_s: float | None = None

    def __post_init__(self) -> None:
        if (
            self.after_sends is None
            and self.after_receives is None
            and self.at_time_s is None
        ):
            raise ValueError("CrashEvent needs a trigger")


class SimulatedCrash(RuntimeError):
    """Raised on a rank's own thread when its CrashEvent triggers."""

    def __init__(self, rank: int, trigger: str):
        self.rank = rank
        self.trigger = trigger
        super().__init__(f"rank {rank} crashed by fault plan ({trigger})")


class RankLostError(RuntimeError):
    """A needed remote rank is dead (crashed or unreachable).

    Attributes
    ----------
    rank:
        The observing (raising) rank.
    lost_rank:
        The dead/unreachable global rank.
    reason:
        Why the peer is considered lost.
    pending:
        Summaries of the observer's undelivered mailbox envelopes —
        ``(source, tag, nbytes)`` triples — at the time of the failure.
    last_ack:
        Reliability-layer acknowledgement state for the channel, when the
        failure was detected by the reliable-delivery protocol.
    """

    def __init__(
        self,
        rank: int,
        lost_rank: int,
        reason: str,
        pending: list[tuple[int, int, int]] | None = None,
        last_ack: str | None = None,
    ):
        self.rank = rank
        self.lost_rank = lost_rank
        self.reason = reason
        self.pending = list(pending or [])
        self.last_ack = last_ack
        lines = [
            f"rank {rank}: peer rank {lost_rank} lost ({reason})",
            f"  undelivered envelopes in rank {rank}'s mailbox: "
            + (
                ", ".join(
                    f"(src={s}, tag={t & 0xFFFF}, {n}B)"
                    for s, t, n in self.pending[:8]
                )
                + (" ..." if len(self.pending) > 8 else "")
                if self.pending
                else "none"
            ),
        ]
        if last_ack is not None:
            lines.append(f"  last-ack state: {last_ack}")
        super().__init__("\n".join(lines))


class PeerLostError(RankLostError):
    """A rank of a *peer program* in a coupled run is dead."""

    def __init__(
        self,
        rank: int,
        lost_rank: int,
        reason: str,
        peer_program: str | None = None,
        pending: list[tuple[int, int, int]] | None = None,
        last_ack: str | None = None,
    ):
        super().__init__(rank, lost_rank, reason, pending, last_ack)
        self.peer_program = peer_program
        if peer_program is not None:
            self.args = (
                f"peer program {peer_program!r} failed:\n" + self.args[0],
            )


class FailureDetector:
    """Run-wide registry of dead ranks shared by every mailbox.

    ``mark_dead`` records the rank and wakes every registered mailbox so
    that receives blocked on the dead rank can re-check and raise
    :class:`RankLostError` immediately instead of waiting out the receive
    timeout.  Pure bookkeeping: it charges no logical time.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._dead: dict[int, str] = {}
        self._mailboxes: list["Mailbox"] = []

    def register(self, mailbox: "Mailbox") -> None:
        with self._lock:
            self._mailboxes.append(mailbox)
        mailbox.detector = self

    def mark_dead(self, rank: int, reason: str) -> None:
        with self._lock:
            if rank in self._dead:
                return
            self._dead[rank] = reason
            boxes = list(self._mailboxes)
        for mb in boxes:
            mb.wake()

    def dead_reason(self, rank: int) -> str | None:
        with self._lock:
            return self._dead.get(rank)

    def dead_ranks(self) -> dict[int, str]:
        with self._lock:
            return dict(self._dead)


class DeliveryReceipt:
    """What the (virtual) NIC reports about one send's delivery.

    The reliable-delivery layer uses this as its *retransmission oracle*:
    a real sender learns about a lost datagram only when its retransmission
    timer expires, so on a lost receipt the reliability layer charges the
    RTO wait to the sender's logical clock and retransmits — same logical
    cost and trace as a timer-driven ARQ, without wall-clock
    non-determinism.
    """

    __slots__ = ("delivered", "dropped", "corrupted", "held", "duplicated",
                 "delay_s")

    def __init__(
        self,
        delivered: int = 1,
        dropped: bool = False,
        corrupted: bool = False,
        held: bool = False,
        duplicated: int = 0,
        delay_s: float = 0.0,
    ):
        self.delivered = delivered
        self.dropped = dropped
        self.corrupted = corrupted
        self.held = held
        self.duplicated = duplicated
        self.delay_s = delay_s

    @property
    def lost(self) -> bool:
        """True when the payload will never reach the receiver's mailbox."""
        return self.dropped or self.corrupted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = [
            n for n in ("dropped", "corrupted", "held") if getattr(self, n)
        ]
        return (
            f"DeliveryReceipt(delivered={self.delivered}, "
            f"dup={self.duplicated}, delay={self.delay_s:g}, "
            f"{'|'.join(flags) or 'ok'})"
        )


#: shared receipt for the fault-free fast path (immutable by convention)
OK_RECEIPT = DeliveryReceipt()


class _ChannelState:
    """Per-(src, dst) deterministic fault state.

    Only the *sender's* thread ever touches a channel (sends on a channel
    are sequential program order on the source rank), so no lock is
    needed beyond the creation lock in :class:`FaultPlan`.
    """

    __slots__ = ("rng", "stash")

    def __init__(self, seed: int, src: int, dst: int):
        # Mix with large odd constants: avoids Python's salted hash() so
        # the stream is stable across interpreter runs.
        self.rng = random.Random(((seed * 1000003) + src) * 1000003 + dst)
        #: held-back (reordered) messages awaiting a later delivery
        self.stash: list[tuple["Mailbox", "Message"]] = []


class FaultPlan:
    """Seeded, deterministic description of transport misbehaviour.

    Parameters
    ----------
    seed:
        Root seed; every per-channel RNG derives from it, so a plan with
        the same seed produces the same faults (and the same trace) on
        every run of the same program.
    rules:
        :class:`FaultRule` list checked in order; the first match supplies
        the rates for a message.  Convenience: passing ``rates=`` builds a
        single catch-all rule over ``classes``.
    slowdown:
        Mapping of global rank to a clock-slowdown factor (``2.0`` = the
        rank's local work and messaging overheads take twice as long).
    crashes:
        :class:`CrashEvent` list (deterministic rank/program kills).
    """

    def __init__(
        self,
        seed: int = 0,
        rules: Iterable[FaultRule] = (),
        rates: FaultRates | None = None,
        classes: tuple[str, ...] = ("data",),
        slowdown: dict[int, float] | None = None,
        crashes: Iterable[CrashEvent] = (),
        enabled: bool = True,
    ):
        self.seed = seed
        self.rules: list[FaultRule] = list(rules)
        if rates is not None:
            self.rules.append(FaultRule(rates=rates, classes=classes))
        self.slowdown = dict(slowdown or {})
        self.crashes = list(crashes)
        self.enabled = enabled
        self._lock = threading.Lock()
        self._channels: dict[tuple[int, int], _ChannelState] = {}
        #: per-rank transport-operation counters for crash triggers
        self._op_counts: dict[int, dict[str, int]] = {}
        #: ranks whose CrashEvent already fired (never fire twice)
        self._crashed: set[int] = set()

    # -- targeting ---------------------------------------------------------

    def rates_for(self, src: int, dst: int, wire_tag: int) -> FaultRates | None:
        """The first matching rule's rates, or None when unfaulted."""
        if not self.enabled:
            return None
        klass = tag_class(wire_tag)
        for rule in self.rules:
            if rule.matches(src, dst, klass):
                return rule.rates if rule.rates.any_active else None
        return None

    def slowdown_for(self, rank: int) -> float:
        return self.slowdown.get(rank, 1.0)

    # -- crash triggers ----------------------------------------------------

    def resolve_program_crashes(self, blocks: dict[str, list[int]]) -> None:
        """Expand ``rank="program:<name>"`` crash events to global ranks.

        Called by :func:`repro.vmachine.program.run_programs` once the
        program→rank blocks are known.
        """
        resolved: list[CrashEvent] = []
        for ev in self.crashes:
            if isinstance(ev.rank, str) and ev.rank.startswith("program:"):
                name = ev.rank.split(":", 1)[1]
                if name not in blocks:
                    raise ValueError(
                        f"CrashEvent names unknown program {name!r}; "
                        f"programs: {sorted(blocks)}"
                    )
                for g in blocks[name]:
                    resolved.append(
                        CrashEvent(
                            rank=g,
                            after_sends=ev.after_sends,
                            after_receives=ev.after_receives,
                            at_time_s=ev.at_time_s,
                        )
                    )
            else:
                resolved.append(ev)
        self.crashes = resolved

    def _counts(self, rank: int) -> dict[str, int]:
        c = self._op_counts.get(rank)
        if c is None:
            with self._lock:
                c = self._op_counts.setdefault(
                    rank, {"sends": 0, "recvs": 0}
                )
        return c

    def _check_crash(self, proc: "Process", op: str) -> None:
        if not self.enabled or not self.crashes:
            return
        rank = proc.rank
        if rank in self._crashed:
            return
        counts = self._counts(rank)
        for ev in self.crashes:
            if ev.rank != rank:
                continue
            fired = (
                (ev.after_sends is not None and counts["sends"] >= ev.after_sends)
                or (
                    ev.after_receives is not None
                    and counts["recvs"] >= ev.after_receives
                )
                or (ev.at_time_s is not None and proc.clock >= ev.at_time_s)
            )
            if fired:
                self._crashed.add(rank)
                trigger = (
                    f"after_sends={ev.after_sends}"
                    if ev.after_sends is not None
                    else f"after_receives={ev.after_receives}"
                    if ev.after_receives is not None
                    else f"at_time_s={ev.at_time_s}"
                )
                raise SimulatedCrash(rank, trigger)

    def on_send(self, proc: "Process") -> None:
        """Crash hook + counter, called before every transport send."""
        self._check_crash(proc, "send")
        self._counts(proc.rank)["sends"] += 1

    def on_recv(self, proc: "Process") -> None:
        """Crash hook + counter, called before every blocking receive."""
        self._check_crash(proc, "recv")
        self._counts(proc.rank)["recvs"] += 1

    # -- delivery ----------------------------------------------------------

    def _channel(self, src: int, dst: int) -> _ChannelState:
        key = (src, dst)
        ch = self._channels.get(key)
        if ch is None:
            with self._lock:
                ch = self._channels.get(key)
                if ch is None:
                    ch = _ChannelState(self.seed, src, dst)
                    self._channels[key] = ch
        return ch

    def apply(
        self, proc: "Process", mailbox: "Mailbox", message: "Message"
    ) -> DeliveryReceipt:
        """Deliver ``message`` through the fault model; returns the receipt.

        Draw order per message (fixed, so streams are reproducible):
        ``drop``, ``corrupt``, ``reorder``, ``dup``, ``delay``.  A new
        delivery on a channel flushes any held (reordered) messages *after*
        itself — the overtaking that reordering means.  Duplicates are
        appended atomically with their original so the reliable layer's
        post-receive drain deterministically scoops them.
        """
        rates = self.rates_for(message.source, message.dest, message.tag)
        if rates is None:
            mailbox.deliver(message)
            return OK_RECEIPT
        ch = self._channel(message.source, message.dest)
        rng = ch.rng
        # Fixed draw schedule: always consume the same number of variates
        # per message so one fault never shifts the stream of the next.
        u_drop = rng.random()
        u_corrupt = rng.random()
        u_hold = rng.random()
        u_dup = rng.random()
        u_delay = rng.random()
        u_delay_amount = rng.random()

        if u_drop < rates.drop:
            self._note(proc, "fault:drop", message)
            return DeliveryReceipt(delivered=0, dropped=True)
        if u_corrupt < rates.corrupt:
            # Envelope fails its checksum at the receiving NIC: discarded
            # before it can be matched — indistinguishable from a drop to
            # the application, but separately traced and counted.
            self._note(proc, "fault:corrupt", message)
            return DeliveryReceipt(delivered=0, corrupted=True)

        delay = 0.0
        if u_delay < rates.delay:
            lo, hi = rates.delay_range_s
            delay = lo + (hi - lo) * u_delay_amount
            message.arrival += delay
            self._note(proc, "fault:delay", message)

        if u_hold < rates.reorder:
            ch.stash.append((mailbox, message))
            self._note(proc, "fault:hold", message)
            return DeliveryReceipt(delivered=0, held=True, delay_s=delay)

        batch = [message]
        duplicated = 0
        if u_dup < rates.dup:
            duplicated = 1
            batch.append(message.clone())
            self._note(proc, "fault:dup", message)
        # Overtaking: this delivery goes first, then the held-back
        # messages follow (FIFO among themselves).
        held = [m for mb, m in ch.stash if mb is mailbox]
        if held:
            ch.stash = [(mb, m) for mb, m in ch.stash if mb is not mailbox]
            batch.extend(held)
        mailbox.deliver_many(batch)
        return DeliveryReceipt(
            delivered=len(batch), duplicated=duplicated, delay_s=delay
        )

    def flush_channel(self, src: int, dst: int) -> int:
        """Deliver any held (reordered) messages on ``src → dst``.

        Called by the reliability layer's fence — the network finally
        delivering in-flight packets costs the *sender* nothing.  Returns
        the number of messages flushed.
        """
        ch = self._channels.get((src, dst))
        if ch is None or not ch.stash:
            return 0
        stash, ch.stash = ch.stash, []
        n = 0
        for mb, m in stash:
            mb.deliver(m)
            n += 1
        return n

    def held_count(self, src: int, dst: int) -> int:
        """Number of messages currently held back on ``src → dst``."""
        ch = self._channels.get((src, dst))
        return len(ch.stash) if ch is not None else 0

    # -- observability -----------------------------------------------------

    @staticmethod
    def _note(proc: "Process", kind: str, message: "Message") -> None:
        proc.metrics.incr("faults_" + kind.split(":", 1)[1])
        if proc.trace is not None:
            from repro.vmachine.trace import TraceEvent

            # ``peer`` is the *other* endpoint relative to the observing
            # rank: a sender-side fault names the destination, a
            # receiver-side one (dup suppression, reorder release) names
            # the source.  Recording ``message.dest`` unconditionally
            # mislabelled receiver-side events as self-directed.
            peer = (
                message.dest if proc.rank == message.source
                else message.source
            )
            path = proc.phase_path
            proc.trace.append(
                TraceEvent(
                    kind, proc.clock, proc.rank, peer,
                    message.tag, message.nbytes,
                    # span context plus the fault kind, so a timeline or
                    # Perfetto export shows *where* the fault struck
                    phase=f"{path}/{kind}" if path else kind,
                )
            )
