"""SPMD execution on the virtual machine.

:class:`VirtualMachine` spawns one thread per virtual processor, binds a
:class:`~repro.vmachine.process.Process` to each, hands every rank a world
:class:`~repro.vmachine.comm.Communicator`, and joins the threads.  An
exception on any rank marks that rank dead in the run's
:class:`~repro.vmachine.faults.FailureDetector` — receives blocked on the
dead rank raise :class:`~repro.vmachine.faults.RankLostError` with
per-rank diagnostics (pending mailbox envelopes) instead of hanging — and
everything is re-raised on the host thread as :class:`SPMDError` with
per-rank tracebacks.
"""

from __future__ import annotations

import os
import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.vmachine.comm import CONTEXT_STRIDE, Communicator
from repro.vmachine.cost_model import CostModel, IBM_SP2, MachineProfile
from repro.vmachine.faults import FailureDetector, FaultPlan, RankLostError
from repro.vmachine.message import Mailbox
from repro.vmachine.process import Process
from repro.vmachine.timing import TimingReport, merge_timings

__all__ = ["VirtualMachine", "SPMDResult", "RankError", "SPMDError"]


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")

# CONTEXT_STRIDE (re-exported from repro.vmachine.comm): context-id spacing
# between communicators; user+collective tags stay below, and ANY_TAG
# wildcards are scoped to one communicator's [context, context+stride).


@dataclass
class RankError:
    """Captured failure of one rank."""

    rank: int
    exception: BaseException
    formatted: str


class SPMDError(RuntimeError):
    """One or more ranks raised; carries every rank's traceback."""

    def __init__(self, errors: list[RankError]):
        self.errors = errors
        chunks = [f"{len(errors)} rank(s) failed:"]
        for e in errors:
            chunks.append(f"--- rank {e.rank} ---\n{e.formatted}")
        super().__init__("\n".join(chunks))

    @property
    def lost_ranks(self) -> list[int]:
        """Ranks whose failure was a lost-peer condition (degradation)."""
        return sorted(
            e.rank for e in self.errors if isinstance(e.exception, RankLostError)
        )

    @property
    def root_causes(self) -> list[RankError]:
        """Failures that were *not* a reaction to another rank's death."""
        return [
            e for e in self.errors if not isinstance(e.exception, RankLostError)
        ]


@dataclass
class SPMDResult:
    """Outcome of one SPMD run."""

    values: list[Any]
    clocks: list[float]
    timings: list[TimingReport]
    stats: list[dict[str, float]]
    #: per-rank message traces (populated when the run traced messages)
    traces: list[list] = field(default_factory=list)
    #: per-rank :class:`~repro.observe.metrics.MetricsSnapshot` (counters
    #: always; (phase, term) attribution when the run observed)
    metrics: list = field(default_factory=list)
    #: per-rank closed-span logs (populated when the run observed)
    spans: list[list] = field(default_factory=list)
    #: replay handle — nprocs/profile/fault seed/plan fingerprint/env
    #: snapshot — attached to every run (recording or not), so a failure
    #: report always carries enough provenance to re-create the run
    replay: dict = field(default_factory=dict)

    @property
    def elapsed_ms(self) -> float:
        """Logical elapsed time of the run: the slowest rank's clock."""
        return max(self.clocks) * 1e3 if self.clocks else 0.0

    @property
    def merged_timing(self) -> TimingReport:
        """Per-phase times merged across ranks (max per phase)."""
        return merge_timings(self.timings, how="max")

    def total_stat(self, key: str) -> float:
        """Sum of one counter (e.g. ``messages_sent``) across all ranks."""
        return sum(s.get(key, 0.0) for s in self.stats)


class VirtualMachine:
    """A fixed-size virtual distributed-memory machine.

    Parameters
    ----------
    nprocs:
        Number of virtual processors.
    profile:
        Cost-model calibration (defaults to the IBM SP2 used for the
        paper's Tables 1-5).
    recv_timeout_s:
        Per-receive wall-clock timeout (seconds).  Defaults to the
        ``REPRO_RECV_TIMEOUT_S`` environment variable, else 120 s.
    copy_on_send:
        Debug mode: deep-copy every payload at send time, guarding
        against the zero-copy transport's mutate-after-send hazard.
        Defaults to the ``REPRO_COPY_ON_SEND`` environment variable.
    faults:
        Optional seeded :class:`~repro.vmachine.faults.FaultPlan`; when
        installed, message delivery runs through the fault model and rank
        slowdown/crash events apply.  ``None`` (default) is the perfectly
        reliable historical transport — logical clocks are byte-identical
        with and without this parameter at its default.
    observe:
        Full observability: implies ``trace=True`` and additionally logs
        phase spans and attributes every clock advance to its cost-model
        term (:class:`~repro.observe.metrics.MetricsRegistry`).  Defaults
        to the ``REPRO_OBSERVE`` environment variable.  Zero-cost to the
        logical clocks: every published table is byte-identical with
        observability on or off (guarded in CI).
    recorder:
        Optional :class:`~repro.replay.recorder.Recorder`; when present,
        every rank's message log, probe outcomes, trace and final clock
        are captured into a sealed replay artifact
        (``recorder.artifact`` after the run).  Implies tracing.  Like
        observability, recording charges zero logical-clock time — the
        published tables stay byte-identical with recording on (guarded
        in CI).  Defaults to a fresh in-memory recorder when the
        ``REPRO_RECORD`` environment variable is truthy.
    """

    def __init__(
        self,
        nprocs: int,
        profile: MachineProfile = IBM_SP2,
        trace: bool = False,
        check_leaks: bool = True,
        recv_timeout_s: float | None = None,
        copy_on_send: bool | None = None,
        faults: FaultPlan | None = None,
        observe: bool | None = None,
        recorder=None,
    ):
        if nprocs < 1:
            raise ValueError("need at least one virtual processor")
        self.nprocs = nprocs
        self.profile = profile
        self.cost_model = CostModel(profile)
        self.trace = trace
        #: fail the run if any message is delivered but never received
        self.check_leaks = check_leaks
        self.recv_timeout_s = recv_timeout_s
        self.copy_on_send = (
            _env_truthy("REPRO_COPY_ON_SEND") if copy_on_send is None
            else copy_on_send
        )
        self.faults = faults
        self.observe = (
            _env_truthy("REPRO_OBSERVE") if observe is None else observe
        )
        if recorder is None and _env_truthy("REPRO_RECORD"):
            from repro.replay.recorder import Recorder

            recorder = Recorder()
        self.recorder = recorder

    def _configure(self, proc: Process) -> None:
        """Apply machine-level transport settings to one process."""
        if self.recv_timeout_s is not None:
            proc.recv_timeout_s = self.recv_timeout_s
        proc.copy_on_send = self.copy_on_send
        if self.faults is not None:
            proc.faults = self.faults
            proc.slowdown = self.faults.slowdown_for(proc.rank)
        if self.observe:
            proc.enable_observability()

    def _provenance(self) -> tuple[dict, dict | None]:
        """Replay handle + serialized fault plan (function-level imports:
        repro.replay sits above the machine layer)."""
        from repro.replay.artifact import faultplan_to_dict
        from repro.replay.fingerprint import replay_handle

        plan_dict = faultplan_to_dict(self.faults)
        return replay_handle(self.nprocs, self.profile.name, plan_dict), plan_dict

    def _finalize_recording(
        self, plan_dict, processes, values, error=None
    ) -> None:
        if self.recorder is None:
            return
        self.recorder.finalize(
            kind="vm",
            config={
                "nprocs": self.nprocs,
                "profile": self.profile.name,
                "programs": None,
                "recv_timeout_s": self.recv_timeout_s,
                "copy_on_send": self.copy_on_send,
                "observe": bool(self.observe),
                "workload": None,
            },
            fault_plan_dict=plan_dict,
            clocks=[p.clock for p in processes],
            traces=[p.trace if p.trace is not None else [] for p in processes],
            values=values,
            error=error,
        )

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> SPMDResult:
        """Run ``fn(comm, *args, **kwargs)`` on every rank and collect results.

        ``fn`` receives the world communicator as its first argument; the
        ambient :class:`Process` is reachable as ``comm.process`` or via
        :func:`~repro.vmachine.process.current_process`.
        """
        router: dict[int, Mailbox] = {}
        detector = FailureDetector()
        processes = [Process(r, self.nprocs, self.cost_model) for r in range(self.nprocs)]
        for p in processes:
            router[p.rank] = p.mailbox
            detector.register(p.mailbox)
            self._configure(p)
            if self.trace or self.observe or self.recorder is not None:
                p.trace = []
            if self.recorder is not None:
                p.recorder = self.recorder.rank_recorder(p.rank)

        members = list(range(self.nprocs))
        contention = self.profile.contention_factor(self.nprocs)
        values: list[Any] = [None] * self.nprocs
        errors: list[RankError] = []
        errors_lock = threading.Lock()

        def worker(proc: Process) -> None:
            proc.bind()
            try:
                comm = Communicator(
                    proc, members, router, context=0, contention=contention
                )
                values[proc.rank] = fn(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - reported to host
                with errors_lock:
                    errors.append(
                        RankError(proc.rank, exc, traceback.format_exc())
                    )
                # Graceful degradation: mark this rank dead so receives
                # blocked on it raise RankLostError (with diagnostics)
                # promptly, instead of closing every mailbox and erasing
                # who actually failed.  Ranks blocked on still-live peers
                # unblock transitively as the failure cascades.
                detector.mark_dead(
                    proc.rank, f"{type(exc).__name__}: {exc}"
                )
            finally:
                proc.unbind()

        threads = [
            threading.Thread(
                target=worker, args=(p,), name=f"vproc-{p.rank}", daemon=True
            )
            for p in processes
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        handle, plan_dict = self._provenance()

        if errors:
            errors.sort(key=lambda e: e.rank)
            err = SPMDError(errors)
            err.replay_handle = handle
            self._finalize_recording(plan_dict, processes, values, error=err)
            raise err

        # A correct SPMD program consumes every message it sends; leftovers
        # mean mismatched sends/receives (a silent protocol bug).
        if self.check_leaks:
            leaked = {
                p.rank: p.mailbox.pending()
                for p in processes
                if p.mailbox.pending()
            }
            if leaked:
                err = SPMDError(
                    [
                        RankError(
                            rank,
                            RuntimeError("unconsumed messages"),
                            f"rank {rank}: {n} message(s) were delivered "
                            "but never received (mismatched send/recv)",
                        )
                        for rank, n in sorted(leaked.items())
                    ]
                )
                err.replay_handle = handle
                self._finalize_recording(
                    plan_dict, processes, values, error=err
                )
                raise err

        self._finalize_recording(plan_dict, processes, values)
        return SPMDResult(
            values=values,
            clocks=[p.clock for p in processes],
            timings=[p.timer.report for p in processes],
            stats=[p.stats for p in processes],
            traces=[p.trace if p.trace is not None else [] for p in processes],
            metrics=[p.metrics.snapshot() for p in processes],
            spans=[p.spans if p.spans is not None else [] for p in processes],
            replay=handle,
        )
