"""Opt-in reliable delivery over the unreliable point-to-point transport.

The paper's Alpha-farm runs put Meta-Chaos on **PVM over UDP over ATM**
(§5) — the runtime itself had to tolerate datagram loss — while the SP2
runs rode MPL's reliable messaging.  This module reproduces that split as
a measurable design axis: the :class:`Reliability` layer implements a
sequence-numbered, cumulative-ack, timeout/backoff-retransmit protocol
**on top of** the ordinary ``send``/``recv`` primitives, exactly the way
the collectives are layered, so every control message (ack, retransmit)
is charged by the same LogGP cost model as application traffic.  Running
a workload with and without the layer is the reliability-overhead
ablation (``benchmarks/bench_ablation_reliability.py``) — the analogue of
the paper's MPL-vs-PVM/UDP transport difference.

Protocol
--------
Per directed channel ``(communicator context, peer, tag)``:

- **Sender**: wraps each payload as ``(seq, payload)`` and sends it on the
  shadow data tag (``tag | REL_DATA``).  The virtual NIC's
  :class:`~repro.vmachine.faults.DeliveryReceipt` is the *retransmission
  oracle*: a real sender only learns of a lost datagram when its
  retransmission timer (RTO) expires, so on a lost receipt the layer
  charges the RTO (exponential backoff: ``base_rto_s * backoff**attempt``)
  to the sender's logical clock and retransmits — the same logical cost
  and the same wire traffic as a timer-driven ARQ, with none of the
  wall-clock non-determinism.  After ``max_retries`` lost receipts the
  peer is declared lost (:class:`~repro.vmachine.faults.RankLostError`
  carrying the channel's last-ack state).
- **Receiver**: accepts envelopes, suppresses duplicates, buffers
  out-of-order sequence numbers, delivers strictly in order, and answers
  each delivery with a **cumulative ack** (highest contiguous sequence
  received) on the shadow ack tag.  After every accepted envelope it
  drains the channel's mailbox backlog so duplicate copies (which the
  fault layer appends atomically with their originals) are consumed and
  counted rather than leaking.
- **Fence**: the sender's end-of-phase barrier.  It first asks the fault
  plan to release any held-back (reordered) in-flight messages, then
  blocks until every channel's cumulative ack has caught up with its send
  sequence; acks are received as ordinary charged messages.  A fence that
  cannot complete within the bounded deadline raises with the channel's
  last-ack diagnostics.

The layer is deliberately *conservative*: the sender's retransmission
timer blocks the injection pipeline (stop-and-wait on loss), so measured
reliability overhead is an upper bound of what a windowed implementation
would pay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.vmachine.faults import RankLostError

__all__ = ["ReliabilityConfig", "Reliability", "REL_DATA", "REL_ACK"]

#: shadow-tag bits: a reliable data envelope for user/runtime tag ``t``
#: travels on ``t | REL_DATA``; its cumulative acks on ``t | REL_ACK``.
#: Both stay below the collective tag block (1 << 24) and inside the
#: owning communicator's context block, so context scoping still applies.
REL_DATA = 1 << 22
REL_ACK = 1 << 23


@dataclass(frozen=True)
class ReliabilityConfig:
    """Tunables of the ack/retransmit protocol."""

    #: initial retransmission timeout charged on the first lost delivery
    base_rto_s: float = 2e-3
    #: multiplicative backoff applied per successive retransmission
    backoff: float = 2.0
    #: lost deliveries tolerated per message before declaring the peer lost
    max_retries: int = 8
    #: wall-clock bound for the fence's blocking ack collection (seconds);
    #: ``None`` uses the process receive timeout
    fence_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.base_rto_s < 0:
            raise ValueError("base_rto_s must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")


class _OutChannel:
    """Sender-side state of one directed channel."""

    __slots__ = ("endpoint", "peer", "tag", "next_seq", "acked")

    def __init__(self, endpoint, peer: int, tag: int):
        self.endpoint = endpoint
        self.peer = peer
        self.tag = tag
        self.next_seq = 0
        #: highest cumulatively acknowledged sequence (-1 = none yet)
        self.acked = -1

    def describe(self) -> str:
        return (
            f"out-channel to group rank {self.peer} tag {self.tag & 0xFFFF}: "
            f"sent seqs [0, {self.next_seq}), last cumulative ack "
            f"{self.acked}"
        )


class _InChannel:
    """Receiver-side state of one directed channel."""

    __slots__ = ("endpoint", "peer", "tag", "expected", "buffer", "dups")

    def __init__(self, endpoint, peer: int, tag: int):
        self.endpoint = endpoint
        self.peer = peer
        self.tag = tag
        #: next in-order sequence number owed to the application
        self.expected = 0
        #: out-of-order envelopes keyed by sequence number
        self.buffer: dict[int, Any] = {}
        self.dups = 0

    def describe(self) -> str:
        return (
            f"in-channel from group rank {self.peer} tag {self.tag & 0xFFFF}: "
            f"delivered seqs [0, {self.expected}), {len(self.buffer)} "
            f"buffered out-of-order, {self.dups} duplicate(s) suppressed"
        )


class Reliability:
    """Reliable-delivery protocol instance for one processor's channels.

    One instance is attached per :class:`~repro.core.universe.Universe`
    (and shared with its reversed view), so sequence numbers persist
    across repeated data moves on the same topology — exactly what
    duplicate suppression across retransmissions requires.
    """

    def __init__(self, config: ReliabilityConfig | None = None):
        self.config = config or ReliabilityConfig()
        self._out: dict[tuple[int, int, int], _OutChannel] = {}
        self._in: dict[tuple[int, int, int], _InChannel] = {}

    # -- channel lookup ----------------------------------------------------

    def _out_channel(self, endpoint, peer: int, tag: int) -> _OutChannel:
        key = (endpoint._context, peer, tag)
        ch = self._out.get(key)
        if ch is None:
            ch = self._out[key] = _OutChannel(endpoint, peer, tag)
        return ch

    def _in_channel(self, endpoint, peer: int, tag: int) -> _InChannel:
        key = (endpoint._context, peer, tag)
        ch = self._in.get(key)
        if ch is None:
            ch = self._in[key] = _InChannel(endpoint, peer, tag)
        return ch

    # -- stats helpers -----------------------------------------------------

    @staticmethod
    def _bump(proc, key: str, amount: float = 1) -> None:
        proc.metrics.incr(key, amount)

    # -- sender side -------------------------------------------------------

    def send(self, endpoint, peer: int, payload: Any, tag: int) -> None:
        """Reliably send ``payload`` to group rank ``peer`` on ``tag``.

        Never blocks on the ack (acks are collected opportunistically and
        at :meth:`fence`); blocks only for the logical RTO charges of
        retransmissions when the virtual NIC reports loss.
        """
        cfg = self.config
        proc = endpoint.process
        ch = self._out_channel(endpoint, peer, tag)
        seq = ch.next_seq
        ch.next_seq += 1
        envelope = (seq, payload)
        receipt = endpoint.send(peer, envelope, REL_DATA | tag)
        attempt = 0
        while receipt.lost:
            if attempt >= cfg.max_retries:
                raise RankLostError(
                    proc.rank,
                    endpoint.peer_global(peer),
                    f"no acknowledgement after {cfg.max_retries} "
                    f"retransmissions of seq {seq}",
                    pending=proc.mailbox.pending_summary(),
                    last_ack=ch.describe(),
                )
            # The sender's retransmission timer: charged logical wait,
            # exponential backoff — then the retransmit itself goes out as
            # an ordinary (charged, traced) message.
            proc.charge(cfg.base_rto_s * cfg.backoff ** attempt, term="rto")
            self._bump(proc, "rel_rto_wait_s", cfg.base_rto_s * cfg.backoff ** attempt)
            receipt = endpoint.send(peer, envelope, REL_DATA | tag)
            self._bump(proc, "rel_retransmits")
            attempt += 1
        # Acks are *not* harvested here: an opportunistic probe-based
        # drain would make the sender's logical clock depend on host
        # thread scheduling (whether an ack is physically present at send
        # time).  All acks are collected at the fence, whose blocking
        # receives match deterministically (pairwise FIFO) — this is what
        # keeps a seeded chaos run's trace byte-identical across replays.

    def _drain_acks(self, endpoint, peer: int, tag: int, ch: _OutChannel) -> None:
        """Scoop physically-pending ack copies (post-fence housekeeping).

        Only called once a channel is fully acked, when any matching
        envelope is necessarily a duplicated/late ack copy — consuming it
        keeps the machine's leak check clean.  With the default fault
        targeting (``classes=("data",)``) acks are never faulted and this
        probe deterministically finds nothing.
        """
        while endpoint.probe(peer, REL_ACK | tag):
            ack = endpoint.recv(peer, REL_ACK | tag)
            if ack > ch.acked:
                ch.acked = ack

    def _send_ack(self, endpoint, peer: int, tag: int, ch: _InChannel) -> None:
        """Cumulative ack: highest contiguous sequence delivered so far.

        Ack datagrams cross the same faulty network; a lost ack is
        retransmitted under the same RTO/backoff discipline (acks are
        class ``"control"`` to the fault plan, so they are only faulted
        when a rule targets that class).
        """
        cfg = self.config
        proc = endpoint.process
        ack_value = ch.expected - 1
        receipt = endpoint.send(peer, ack_value, REL_ACK | tag)
        attempt = 0
        while receipt.lost:
            if attempt >= cfg.max_retries:
                raise RankLostError(
                    proc.rank,
                    endpoint.peer_global(peer),
                    f"unable to deliver cumulative ack {ack_value} after "
                    f"{cfg.max_retries} retransmissions",
                    pending=proc.mailbox.pending_summary(),
                    last_ack=ch.describe(),
                )
            proc.charge(cfg.base_rto_s * cfg.backoff ** attempt, term="rto")
            self._bump(proc, "rel_rto_wait_s", cfg.base_rto_s * cfg.backoff ** attempt)
            receipt = endpoint.send(peer, ack_value, REL_ACK | tag)
            self._bump(proc, "rel_retransmits")
            attempt += 1
        self._bump(proc, "rel_acks_sent")

    # -- receiver side -----------------------------------------------------

    def _ingest(self, ch: _InChannel, proc, envelope: tuple[int, Any]) -> None:
        seq, payload = envelope
        if seq < ch.expected or seq in ch.buffer:
            ch.dups += 1
            self._bump(proc, "rel_dups_discarded")
            return
        ch.buffer[seq] = payload

    def _drain_backlog(self, endpoint, peer: int, tag: int, ch: _InChannel) -> None:
        """Consume every already-delivered envelope on the channel.

        The fault layer appends duplicate copies atomically with their
        originals, so by the time the application has matched a given
        envelope, all its duplicates are physically pending — one probe
        loop deterministically scoops them (each is a charged receive)
        and duplicate suppression discards them.
        """
        while endpoint.probe(peer, REL_DATA | tag):
            envelope = endpoint.recv(peer, REL_DATA | tag)
            self._ingest(ch, endpoint.process, envelope)

    def recv(self, endpoint, peer: int, tag: int,
             timeout: float | None = None) -> Any:
        """Reliably receive the next in-order payload from ``peer``."""
        proc = endpoint.process
        ch = self._in_channel(endpoint, peer, tag)
        while ch.expected not in ch.buffer:
            envelope = endpoint.recv(peer, REL_DATA | tag, timeout=timeout)
            self._ingest(ch, proc, envelope)
            self._drain_backlog(endpoint, peer, tag, ch)
        payload = ch.buffer.pop(ch.expected)
        ch.expected += 1
        self._send_ack(endpoint, peer, tag, ch)
        return payload

    def recv_any(
        self,
        endpoint,
        peers: list[int],
        tag: int,
        timeout: float | None = None,
    ) -> tuple[int, Any]:
        """Reliable wait-any: next in-order payload from any of ``peers``.

        Buffered deliverable payloads win first (lowest group rank — a
        deterministic tie-break); otherwise the call waits on all listed
        channels and completes the logically earliest arrival, exactly
        like :func:`~repro.vmachine.comm.waitany`, ingesting whatever
        envelope (original, duplicate or out-of-order) that yields.
        Returns ``(peer, payload)``.
        """
        from repro.vmachine.comm import Request

        proc = endpoint.process
        channels = {p: self._in_channel(endpoint, p, tag) for p in peers}
        while True:
            deliverable = sorted(
                p for p, ch in channels.items() if ch.expected in ch.buffer
            )
            if deliverable:
                p = deliverable[0]
                ch = channels[p]
                payload = ch.buffer.pop(ch.expected)
                ch.expected += 1
                self._send_ack(endpoint, p, tag, ch)
                return p, payload
            requests = [
                endpoint.irecv(p, REL_DATA | tag) for p in sorted(channels)
            ]
            idx, envelope = Request.waitany(requests, timeout=timeout)
            p = sorted(channels)[idx]
            self._ingest(channels[p], proc, envelope)
            self._drain_backlog(endpoint, p, tag, channels[p])

    # -- fencing -----------------------------------------------------------

    def flush(self) -> int:
        """Release every fault-plan-held message on this side's channels.

        Non-blocking and free of logical charge — it models the network
        finally delivering in-flight datagrams at a phase boundary.  The
        single-program data move calls it between its send and receive
        halves: each (src, dst) pair carries one aggregated message per
        move, so a held *final* packet has no later same-channel traffic
        to overtake it, and without the boundary flush two ranks holding
        each other's packets would wait out the receive timeout.  Returns
        the number of messages released.
        """
        n = 0
        for ch in self._out.values():
            n += ch.endpoint._flush_held(ch.endpoint.peer_global(ch.peer))
        return n

    def fence(self, timeout: float | None = None) -> None:
        """Block until every sent sequence number is cumulatively acked.

        Also releases any fault-plan-held (reordered) messages still in
        flight on this sender's channels — the network finally delivering
        them — before waiting, so a held final packet cannot wedge the
        receiver.  Raises :class:`~repro.vmachine.faults.RankLostError`
        with last-ack diagnostics when a peer stops acknowledging.
        """
        cfg = self.config
        for ch in self._out.values():
            endpoint = ch.endpoint
            proc = endpoint.process
            if ch.acked >= ch.next_seq - 1:
                self._drain_acks(endpoint, ch.peer, ch.tag, ch)
                continue
            endpoint._flush_held(endpoint.peer_global(ch.peer))
            budget = (
                timeout
                if timeout is not None
                else cfg.fence_timeout_s
                if cfg.fence_timeout_s is not None
                else proc.recv_timeout_s
            )
            while ch.acked < ch.next_seq - 1:
                try:
                    ack = endpoint.recv(ch.peer, REL_ACK | ch.tag,
                                        timeout=budget)
                except TimeoutError as exc:
                    raise RankLostError(
                        proc.rank,
                        endpoint.peer_global(ch.peer),
                        f"fence timed out after {budget}s awaiting acks",
                        pending=proc.mailbox.pending_summary(),
                        last_ack=ch.describe(),
                    ) from exc
                except RankLostError as exc:
                    exc.last_ack = ch.describe()
                    raise
                if ack > ch.acked:
                    ch.acked = ack
            # Scoop duplicated/late ack copies so they cannot trip the
            # machine's unconsumed-message leak check after the run.
            self._drain_acks(endpoint, ch.peer, ch.tag, ch)

    # -- diagnostics -------------------------------------------------------

    def describe(self) -> str:
        """Multi-line protocol state summary (used in failure reports)."""
        lines = [ch.describe() for ch in self._out.values()]
        lines += [ch.describe() for ch in self._in.values()]
        return "\n".join(lines) if lines else "no reliable channels"
