"""Meta-Chaos reproduction: interoperability of data parallel runtime libraries.

This package reproduces, in pure Python/NumPy, the system described in
"Interoperability of Data Parallel Runtime Libraries with Meta-Chaos"
(Edjlali, Sussman, Saltz — IPPS 1997):

- :mod:`repro.vmachine` — a virtual distributed-memory parallel machine
  (rank threads, message passing, LogGP-style logical-clock cost model)
  standing in for the paper's IBM SP2 and DEC Alpha farm;
- :mod:`repro.distrib` — distribution descriptors (block, cyclic,
  block-cyclic, irregular);
- :mod:`repro.blockparti` — the Multiblock Parti analogue (regular
  multiblock arrays, regular-section schedules);
- :mod:`repro.chaos` — the CHAOS analogue (translation tables, irregular
  arrays, inspector/executor gather-scatter schedules);
- :mod:`repro.hpf` — an HPF runtime analogue (BLOCK/CYCLIC arrays, array
  sections, forall, distributed matvec);
- :mod:`repro.pcxx` — a pC++/Tulip-style distributed element collection;
- :mod:`repro.core` — **Meta-Chaos itself**: Regions (sections in C or
  Fortran order, index lists, WHERE-style masks), SetOfRegions, virtual
  linearization, the library-adapter registry, communication-schedule
  construction (cooperation and duplication methods), the data-move
  engine, schedule caching and validation;
- :mod:`repro.dobj` — distributed data parallel objects (the paper's §6
  future work): ORB-style RPC between coupled programs with bulk arrays
  riding Meta-Chaos bindings;
- :mod:`repro.apps` — the paper's application kernels (coupled
  structured/unstructured mesh solver, client/server matrix-vector
  multiply);
- :mod:`repro.util` — canonical-form gather/scatter (checkpointing
  through the linearization).

See README.md for the full tour and EXPERIMENTS.md for the reproduction of
every table and figure in the paper's evaluation section.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
