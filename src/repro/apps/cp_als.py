"""Sparse CP-ALS coupling an irregular tensor partition to BLOCK factors.

The demonstration app for the one-sided layer: a 3-way sparse tensor is
CP-decomposed (canonical polyadic, alternating least squares) with the
two distribution styles the paper couples —

- the **nonzeros** live in a Chaos-style *irregular* partition: raw
  coordinate/value entries (with duplicates) are assembled into a
  :class:`~repro.containers.DistHashMap`, whose hash distribution *is*
  the data-dependent ownership map.  The deduplicated entries are also
  registered as a :class:`~repro.chaos.array.ChaosArray` over exactly
  that ownership, so the irregular side speaks the paper's Chaos
  interface;
- the **factor matrices** are HPF ``(BLOCK, *)`` row distributions
  (:class:`~repro.hpf.array.HPFArray`), and each factor's local storage
  is registered directly as a one-sided :class:`Window` — remote factor
  rows are fetched with ``get`` and MTTKRP partials are scattered back
  with ``accumulate`` (or, with ``use_queue=True``, pushed through a
  :class:`~repro.containers.DistQueue` and folded owner-side), with no
  receiver-side matching code anywhere.

Every iteration per mode: fetch the needed remote rows of the other two
factors (one epoch), compute local MTTKRP partials, scatter-add them
into the target factor's accumulator (one epoch), allreduce the R x R
Gram matrices, and solve ``A <- M @ pinv(G)`` — the identical update
expression the serial oracle uses, so the distributed result matches
the oracle to float round-off (the deterministic ``(origin, seq)``
apply order differs from the serial summation order only in grouping).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chaos.array import ChaosArray
from repro.containers import DistHashMap, DistQueue
from repro.hpf.array import HPFArray
from repro.vmachine.comm import Communicator
from repro.vmachine.window import Window

__all__ = [
    "sparse_entries",
    "cp_als_serial",
    "cp_als_spmd",
    "CPALSResult",
]


def sparse_entries(shape, nnz: int, seed: int):
    """Deterministic raw COO entries — *with* duplicate coordinates.

    Returns ``(coords, vals)`` with ``coords`` of shape ``(nnz, 3)``.
    Duplicates are deliberate: assembly must combine them, which is what
    exercises ``accumulate_all``'s deterministic summing.
    """
    rng = np.random.default_rng(seed)
    coords = np.stack(
        [rng.integers(0, s, size=nnz) for s in shape], axis=1
    ).astype(np.int64)
    vals = rng.standard_normal(nnz)
    return coords, vals


def _init_factors(shape, R: int, seed: int):
    rng = np.random.default_rng(seed + 1)
    return [rng.standard_normal((s, R)) for s in shape]


def _linearize(coords: np.ndarray, shape) -> np.ndarray:
    return (coords[:, 0] * shape[1] + coords[:, 1]) * shape[2] + coords[:, 2]


def _delinearize(keys: np.ndarray, shape) -> np.ndarray:
    k = np.asarray(keys, dtype=np.int64)
    i, rem = divmod(k, shape[1] * shape[2])
    j, l = divmod(rem, shape[2])
    return np.stack([i, j, l], axis=1)


# ---------------------------------------------------------------------------
# serial oracle
# ---------------------------------------------------------------------------

def cp_als_serial(shape, R: int, nnz: int, iters: int, seed: int):
    """Sequential NumPy reference: same entries, same update expression."""
    coords, vals = sparse_entries(shape, nnz, seed)
    # Combine duplicates in first-appearance order (matches the map's
    # per-key accumulation order).
    combined: dict[int, float] = {}
    for key, v in zip(_linearize(coords, shape), vals):
        combined[int(key)] = combined.get(int(key), 0.0) + float(v)
    keys = np.fromiter(combined.keys(), dtype=np.int64)
    cvals = np.fromiter(combined.values(), dtype=np.float64)
    ccoords = _delinearize(keys, shape)
    factors = _init_factors(shape, R, seed)
    others = {0: (1, 2), 1: (0, 2), 2: (0, 1)}
    for _ in range(iters):
        for mode in range(3):
            a, b = others[mode]
            kr = factors[a][ccoords[:, a]] * factors[b][ccoords[:, b]]
            M = np.zeros((shape[mode], R))
            np.add.at(M, ccoords[:, mode], cvals[:, None] * kr)
            G = (factors[a].T @ factors[a]) * (factors[b].T @ factors[b])
            factors[mode] = M @ np.linalg.pinv(G)
    return factors


# ---------------------------------------------------------------------------
# distributed SPMD version
# ---------------------------------------------------------------------------

@dataclass
class CPALSResult:
    """One rank's observation of a distributed CP-ALS run."""

    #: gathered global factor matrices (replicated; identical on all ranks)
    factors: list = field(default_factory=list)
    #: deduplicated nonzeros resident on this rank after assembly
    local_nnz: int = 0
    #: this rank's counter snapshot (rma_*, hashmap_*, queue_* included)
    stats: dict = field(default_factory=dict)


def cp_als_spmd(
    comm: Communicator,
    shape=(12, 11, 10),
    R: int = 3,
    nnz: int = 200,
    iters: int = 3,
    seed: int = 7,
    use_queue: bool = False,
    reliable: bool = False,
) -> CPALSResult:
    """Run distributed sparse CP-ALS; collective over ``comm``.

    ``use_queue=True`` scatters MTTKRP partials through a
    :class:`DistQueue` (owner folds drained records) instead of direct
    window ``accumulate`` — same result, different one-sided idiom.
    """
    proc = comm.process
    P = comm.size
    coords, vals = sparse_entries(shape, nnz, seed)

    # -- assembly: raw entries -> DistHashMap (irregular ownership) --------
    with proc.span("cp_als:assembly"):
        lo = comm.rank * nnz // P
        hi = (comm.rank + 1) * nnz // P
        keys = _linearize(coords[lo:hi], shape)
        cap = max(16, 2 * (nnz // P) + 16)
        hmap = DistHashMap(comm, capacity_per_rank=cap, value_width=1,
                           reliable=reliable)
        hmap.accumulate_all(
            [(int(k), [float(v)]) for k, v in zip(keys, vals[lo:hi])])
        owned = sorted(hmap.local_items())  # [(key, [val])] on this rank
        my_keys = np.array([k for k, _ in owned], dtype=np.int64)
        my_vals = np.array([v[0] for _, v in owned])
        my_coords = _delinearize(my_keys, shape)

    # -- register the irregular side as a ChaosArray over the hash owners --
    with proc.span("cp_als:chaos_view"):
        # The deduped entries, in sorted-key order, with each entry owned
        # by the rank whose hash-map slot holds it — the translation from
        # raw data to irregular ownership the Chaos interface expects.
        all_keys = comm.allgather(my_keys)
        cat = np.concatenate(all_keys) if any(len(k) for k in all_keys) \
            else np.empty(0, dtype=np.int64)
        order = np.argsort(cat, kind="stable")
        owners = np.repeat(
            np.arange(P), [len(k) for k in all_keys])[order]
        nz_values = ChaosArray.from_global(
            comm, np.zeros(len(cat)), owners)
        # My slots, in global (sorted-key) order, are exactly my owned
        # values sorted by key — which `owned` already is.
        nz_values.local[:] = my_vals

    # -- factors: HPF (BLOCK, *) rows, local storage exposed as windows ----
    with proc.span("cp_als:factors"):
        full = _init_factors(shape, R, seed)
        factors = [HPFArray.from_global(comm, f, ("block", "*"))
                   for f in full]
        fwin = [Window(comm, f.local, reliable=reliable) for f in factors]
        acc = [Window(comm, np.zeros_like(f.local), reliable=reliable)
               for f in factors]
        queue = None
        if use_queue:
            depth = max(64, 4 * max(shape))
            queue = DistQueue(comm, capacity=depth, record_width=R + 1,
                              reliable=reliable)
        row_dim = [f.dist.dims[0] for f in factors]

    others = {0: (1, 2), 1: (0, 2), 2: (0, 1)}

    def fetch_rows(mode: int) -> dict[int, np.ndarray]:
        """One-sided gather of the factor rows my nonzeros touch."""
        need = np.unique(my_coords[:, mode])
        handles = {}
        owners_pc, local_rows = row_dim[mode].map(need)
        for g, owner, lr in zip(need, owners_pc, local_rows):
            handles[int(g)] = fwin[mode].get(int(owner), int(lr) * R, R)
        fwin[mode].fence()
        return {g: h.value for g, h in handles.items()}

    with proc.span("cp_als:iterate"):
        for _ in range(iters):
            for mode in range(3):
                a, b = others[mode]
                rows_a = fetch_rows(a)
                rows_b = fetch_rows(b)
                # local MTTKRP partials, pre-combined per target row
                partials: dict[int, np.ndarray] = {}
                for (i3, v) in zip(my_coords, my_vals):
                    t = int(i3[mode])
                    kr = rows_a[int(i3[a])] * rows_b[int(i3[b])]
                    contrib = v * kr
                    if t in partials:
                        partials[t] = partials[t] + contrib
                    else:
                        partials[t] = contrib
                proc.charge_flops(3 * R * len(my_vals))
                # scatter-add into the target factor's accumulator
                acc[mode].local[:] = 0.0
                tpc, tlr = row_dim[mode].map(
                    np.array(sorted(partials), dtype=np.int64))
                if use_queue:
                    items = []
                    for (t, owner, lr) in zip(sorted(partials), tpc, tlr):
                        items.append((int(owner), np.concatenate(
                            ([float(lr)], partials[t]))))
                    queue.push_all(items)
                    acc[mode].fence()  # keep window epochs collective
                    for rec in queue.pop_all():
                        lr = int(rec[0])
                        acc[mode].local[lr * R:(lr + 1) * R] += rec[1:]
                        proc.charge_flops(R)
                else:
                    for (t, owner, lr) in zip(sorted(partials), tpc, tlr):
                        acc[mode].accumulate(int(owner), partials[t],
                                             start=int(lr) * R)
                    acc[mode].fence()
                # Gram matrices from local BLOCK rows + allreduce
                la = factors[a].local_nd
                lb = factors[b].local_nd
                G = comm.allreduce(
                    np.stack([la.T @ la, lb.T @ lb]),
                    lambda x, y: x + y)
                proc.charge_flops(2 * R * R * (la.shape[0] + lb.shape[0]))
                G = G[0] * G[1]
                M = acc[mode].local.reshape(-1, R)
                factors[mode].local[:] = (M @ np.linalg.pinv(G)).reshape(-1)
                proc.charge_flops(2 * R * R * M.shape[0])
                # republish before anyone fetches the new rows
                fwin[mode].fence()

    with proc.span("cp_als:gather"):
        gathered = [comm.bcast(f.gather_global(), root=0) for f in factors]

    return CPALSResult(
        factors=gathered,
        local_nnz=int(len(my_vals)),
        stats=dict(proc.stats),
    )
